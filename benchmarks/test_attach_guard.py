"""Attach-path regression guard for the shared program-image cache.

The hosting engine's attach step verifies the image and (for the JIT
build) transpiles it.  Since PR 2 both artifacts are shared through the
process-wide :data:`~repro.vm.imagecache.IMAGE_CACHE`, keyed by content
hash: attaching the N-th instance of an already-seen image must cost
dictionary lookups, not a re-verify and a re-compile.  This guard
measures first-attach (cold cache) versus cached-attach wall time per
engine, records the numbers to ``BENCH_attach.json`` at the repository
root, and **fails** if a cached JIT attach is not at least 5x faster
than a cold one — the whole point of the cache is to amortize the §11
install work across instances.

The virtual clock is asserted to be cache-*oblivious*: a cached attach
charges exactly the same modelled cycles as a cold one (the cache is a
host wall-clock optimization, never a device-semantics change).

Each attach uses a fresh :class:`Program` object decoded from the same
bytes — the SUIT-deployment shape — so the guard exercises the content
hash, not Python object identity.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import HostingEngine
from repro.rtos import Kernel, nrf52840
from repro.vm import Program
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads.fletcher32 import fletcher32_program

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_attach.json"

ENGINES = ("femto-containers", "certfc", "jit")

#: The cached-vs-cold bar for the JIT engine, where the cache removes
#: the dominant transpile+compile cost.  (Interpreter engines only skip
#: the re-verify, so their ratio is recorded but not gated.)
JIT_SPEEDUP_BAR = 5.0

_TRIALS = 7


def _image_bytes() -> bytes:
    return fletcher32_program().to_bytes()


def _attach_once(implementation: str, raw: bytes) -> tuple[float, int]:
    """One load+attach of a fresh engine/program; returns (secs, cycles)."""
    engine = HostingEngine(Kernel(nrf52840()), implementation=implementation)
    program = Program.from_bytes(raw, name="fletcher32")
    container = engine.load(program)
    before = engine.kernel.clock.cycles
    start = time.perf_counter()
    engine.attach(container, "fc.hook.timer")
    elapsed = time.perf_counter() - start
    return elapsed, engine.kernel.clock.cycles - before


def _measure(implementation: str, raw: bytes) -> dict:
    cold_times, cold_cycles = [], []
    for _ in range(_TRIALS):
        IMAGE_CACHE.clear()
        secs, cycles = _attach_once(implementation, raw)
        cold_times.append(secs)
        cold_cycles.append(cycles)

    IMAGE_CACHE.clear()
    _attach_once(implementation, raw)  # warm the cache once
    warm_times, warm_cycles = [], []
    for _ in range(_TRIALS):
        secs, cycles = _attach_once(implementation, raw)
        warm_times.append(secs)
        warm_cycles.append(cycles)

    # The modelled install cost must be identical cold vs cached — the
    # cache must never leak into the virtual clock.
    assert set(cold_cycles) == set(warm_cycles), (implementation, cold_cycles,
                                                  warm_cycles)
    cold, cached = min(cold_times), min(warm_times)
    return {
        "cold_us": round(cold * 1e6, 1),
        "cached_us": round(cached * 1e6, 1),
        "speedup": round(cold / cached, 2),
        "attach_cycles": cold_cycles[0],
    }


def test_attach_guard():
    raw = _image_bytes()
    results = {name: _measure(name, raw) for name in ENGINES}
    IMAGE_CACHE.clear()  # leave no benchmark state behind for other tests

    RESULT_PATH.write_text(json.dumps(
        {
            "workload": "fletcher32 image, fresh Program per attach",
            "unit": "microseconds wall per attach (min of trials)",
            "python": sys.version.split()[0],
            "engines": results,
            "jit_speedup_bar": JIT_SPEEDUP_BAR,
        },
        indent=2,
    ) + "\n")

    # The cache must amortize the JIT's install work across instances.
    assert results["jit"]["speedup"] >= JIT_SPEEDUP_BAR, results["jit"]
    # Interpreter engines skip only the re-verify; cached attach must at
    # minimum never be slower than cold (generous noise margin).
    for name in ("femto-containers", "certfc"):
        cached = results[name]["cached_us"]
        cold = results[name]["cold_us"]
        assert cached <= cold * 1.5, (name, results[name])
