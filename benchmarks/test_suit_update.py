"""§5 validation experiment — end-to-end SUIT update latency and security.

No paper table gives absolute numbers here; the experiment validates the
whole deployment pipeline (manifest signing, CoAP trigger, block-wise
fetch over a lossy 802.15.4-class link, digest/signature/rollback checks,
pre-flight verification, hot attach) and reports where the time goes.
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table
from repro.core import FC_HOOK_SCHED, HostingEngine
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.rtos import Kernel, nrf52840
from repro.suit import (
    SuitEnvelope,
    SuitManifest,
    SuitUpdateWorker,
    UpdateStatus,
    ed25519,
    payload_digest,
)
from repro.workloads import thread_counter_program

SEED = bytes(range(32))


def run_update(loss: float):
    kernel = Kernel(nrf52840())
    engine = HostingEngine(kernel)
    link = Link(kernel, loss=loss, seed=21)
    device_if = link.attach(Interface("dev"))
    host_if = link.attach(Interface("host"))
    device_udp, host_udp = UdpStack(device_if), UdpStack(host_if)
    repo = CoapServer(kernel, host_udp.socket(5683), threaded=False)
    client = CoapClient(kernel, device_udp.socket(40000))
    worker = SuitUpdateWorker(engine, client,
                              trust_anchor=ed25519.public_key(SEED),
                              repo_addr="host")
    payload = thread_counter_program().to_bytes()
    manifest = SuitManifest(
        sequence_number=1,
        storage_location=str(engine.hook(FC_HOOK_SCHED).uuid),
        digest=payload_digest(payload),
        size=len(payload),
        uri="/fw/tc",
        name="thread-counter",
    )
    repo.register_blob("/fw/tc", lambda: payload)
    worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
    kernel.run(until_us=600_000_000)
    result = worker.results[-1]
    return result, len(payload), link.stats


def test_suit_update_end_to_end(benchmark):
    result, payload_bytes, stats = benchmark(run_update, 0.0)
    lossy_result, _bytes, lossy_stats = run_update(0.20)

    rows = [
        ["payload", f"{payload_bytes} B", ""],
        ["clean link: status", result.status.value, ""],
        ["clean link: latency", f"{result.duration_us / 1000:.1f} ms",
         "(dominated by the ed25519 verify, ~91 ms at 64 MHz)"],
        ["clean link: frames", stats.frames_sent, ""],
        ["20% loss: status", lossy_result.status.value, ""],
        ["20% loss: latency", f"{lossy_result.duration_us / 1000:.1f} ms",
         "(CoAP retransmissions recover)"],
        ["20% loss: frames", lossy_stats.frames_sent, ""],
    ]
    record("suit_update", format_table(
        ["Quantity", "value", "note"], rows,
        title="SUIT end-to-end update (validation experiment)",
    ))

    assert result.status is UpdateStatus.OK
    assert lossy_result.status is UpdateStatus.OK
    assert lossy_stats.frames_sent > stats.frames_sent  # retransmissions
    assert result.duration_us < lossy_result.duration_us
