"""Fig 2 — Flash memory distribution with different Femto-Containers.

Paper: RIOT with MicroPython runtime totals 154 kB (runtime 66 %);
RIOT with rBPF runtime totals 57 kB (crypto 13 %, network 35 %, kernel
30 %, OTA 14 %, runtime 8 %).
"""

from __future__ import annotations

from conftest import record

from repro.analysis import pie_breakdown
from repro.rtos import FirmwareImage, nrf52840
from repro.runtimes.profiles import MICROPYTHON_ROM, RBPF_RUNTIME_ROM


def build_images():
    board = nrf52840()
    rbpf = FirmwareImage.riot_base(board).add_runtime("rBPF", RBPF_RUNTIME_ROM)
    upy = FirmwareImage.riot_base(board).add_runtime(
        "MicroPython", MICROPYTHON_ROM)
    return rbpf, upy


def test_fig2_flash_distribution(benchmark):
    rbpf, upy = benchmark(build_images)

    text = "\n\n".join([
        pie_breakdown(
            "Fig 2 (right): RIOT with rBPF Femto-Container "
            f"({rbpf.flash_bytes / 1000:.0f} kB total; paper: 57 kB)",
            {m.name: m.flash_bytes for m in rbpf.modules},
        ),
        pie_breakdown(
            "Fig 2 (left): RIOT with MicroPython Femto-Container "
            f"({upy.flash_bytes / 1000:.0f} kB total; paper: 154 kB)",
            {m.name: m.flash_bytes for m in upy.modules},
        ),
    ])
    record("fig2_flash_distribution", text)

    rbpf_share = rbpf.flash_percentages()["rBPF runtime"]
    upy_share = upy.flash_percentages()["MicroPython runtime"]
    # Paper: 8 % vs 66 % — "negligible impact (8% more ROM with rBPF)" vs
    # "a tremendous increase (200% more ROM with MicroPython)".
    assert 6.0 <= rbpf_share <= 10.0
    assert 60.0 <= upy_share <= 72.0
    assert 50_000 <= rbpf.flash_bytes <= 62_000
    assert 145_000 <= upy.flash_bytes <= 165_000
    base = FirmwareImage.riot_base(nrf52840())
    assert upy.flash_overhead_percent(base) > 150.0
    assert rbpf.flash_overhead_percent(base) < 10.0
