"""Fleet-publish regression guard.

One :meth:`~repro.deploy.FleetPublisher.publish` signs one manifest and
fans it out to N devices over the shared radio link; every device
independently authenticates, fetches block-wise, and reconciles.  The
guard holds the cache-warm convergence invariant and records it to
``BENCH_publish.json`` at the repository root:

* **Warm fan-out** — device 1's apply slice pays the cold host-side
  verify + JIT compile; devices 2..N converge off the *same* publish
  through pure image-cache hits and must be at least 5x faster in wall
  time (the deploy/canary bar, now over the radio path).
* **Wire honesty** — a replayed sequence is refused by every device and
  an idempotent republish converges with zero actions, every trial.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
    plan,
)
from repro.scenarios import build_fleet_publisher
from repro.suit import UpdateStatus
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads.fletcher32 import fletcher32_program

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_publish.json"

DEVICES = 4
TENANTS = 2
#: Distinct content-addressed images per device (same text, distinct
#: rodata tags): the cold device pays one host-side verify + JIT compile
#: *per image*, the warm devices none at all.
IMAGES = 6

#: Devices 2..N skip the dominant host-side verify+JIT compiles entirely.
WARM_SPEEDUP_BAR = 5.0

_TRIALS = 5


def _spec() -> DeploymentSpec:
    base = ImageSpec.from_program(fletcher32_program())
    images = {
        f"app{index}": ImageSpec(name=f"app{index}", text=base.text,
                                 rodata=b"release-%d" % index)
        for index in range(IMAGES)
    }
    return DeploymentSpec(
        name="release",
        tenants=tuple(f"tenant-{index}" for index in range(TENANTS)),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images=images,
        attachments=tuple(
            AttachmentSpec(image=f"app{index}", hook=FC_HOOK_FANOUT,
                           tenant=f"tenant-{index % TENANTS}",
                           name=f"fc-{index}")
            for index in range(IMAGES)
        ),
    )


def _one_trial() -> tuple[list[float], int]:
    """Cold publish, replay refusal, idempotent republish.

    Returns (per-device convergence walls in fleet order, payload bytes).
    """
    IMAGE_CACHE.clear()
    publisher = build_fleet_publisher(devices=DEVICES)
    spec = _spec()
    rollout = publisher.publish(spec)
    assert rollout.converged, rollout.reason
    assert all(plan(device.engine, spec).empty
               for device in publisher.fleet.devices)
    walls = {row.device.name: row.wall_s for row in rollout.devices}

    replay = publisher.publish(spec, sequence_number=rollout.sequence_number)
    assert all(row.result.status is UpdateStatus.SEQUENCE_REPLAY
               for row in replay.devices), "a replayed sequence was accepted"

    republish = publisher.publish(spec)
    assert republish.converged
    assert all(row.actions == 0 for row in republish.devices), \
        "an identical republish planned actions"

    return ([walls[f"dev{index}"] for index in range(DEVICES)],
            rollout.payload_bytes)


def test_publish_guard():
    device_walls: list[list[float]] = [[] for _ in range(DEVICES)]
    payload_bytes = 0
    for _ in range(_TRIALS):
        walls, payload_bytes = _one_trial()
        for index, wall in enumerate(walls):
            device_walls[index].append(wall)
    IMAGE_CACHE.clear()  # leave no benchmark state behind for other tests

    best = [min(walls) for walls in device_walls]
    cold = best[0]
    speedups = [cold / wall for wall in best[1:]]
    RESULT_PATH.write_text(json.dumps(
        {
            "workload": (f"{TENANTS} tenants x {IMAGES} distinct fletcher32 "
                         f"images per device, {DEVICES}-device fleet, "
                         "one signed spec manifest over the shared link"),
            "unit": "seconds wall per device convergence (min of trials)",
            "python": sys.version.split()[0],
            "payload_bytes": payload_bytes,
            "replay_refused": True,
            "republish_actions": 0,
            "devices": [
                {"device": "dev0", "role": "cold",
                 "rollout_us": round(cold * 1e6, 1),
                 "speedup_vs_dev0": 1.0},
            ] + [
                {"device": f"dev{index + 1}", "role": "warm",
                 "rollout_us": round(wall * 1e6, 1),
                 "speedup_vs_dev0": round(cold / wall, 2)}
                for index, wall in enumerate(best[1:])
            ],
            "warm_speedup_bar": WARM_SPEEDUP_BAR,
        },
        indent=2,
    ) + "\n")

    for index, speedup in enumerate(speedups, start=1):
        assert speedup >= WARM_SPEEDUP_BAR, (
            f"dev{index} converged only {speedup:.2f}x faster than the cold "
            f"dev0 off one publish (bar {WARM_SPEEDUP_BAR}x): "
            f"cold={cold * 1e6:.0f}us walls={best[1:]}"
        )
