"""Fleet-rollout regression guard for the declarative deployment API.

Applying one K-tenant x M-instance spec across an N-device fleet is the
cross-board payoff of the shared image cache: device 1 pays the host-side
verify and JIT transpile cold, devices 2..N ride the cached artifacts.
This guard rolls a 2x2 fletcher32 spec onto a 4-device fleet, records the
per-device wall times to ``BENCH_deploy.json`` at the repository root,
and **fails** if any cache-warm device's rollout is not at least 5x
faster than device 1's cold rollout.

The modelled device cost must be cache-*oblivious*: every device in the
fleet charges bit-identical virtual cycles for the same spec, warm or
cold (asserted on every trial).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.deploy import Fleet, fanout_spec
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads.fletcher32 import fletcher32_program

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_deploy.json"

DEVICES = 4
TENANTS = 2
INSTANCES = 2

#: Warm devices skip the dominant JIT transpile+compile entirely.
WARM_SPEEDUP_BAR = 5.0

_TRIALS = 5


def _one_rollout() -> tuple[list[float], list[int]]:
    """Cold-cache rollout of the spec across a fresh fleet."""
    IMAGE_CACHE.clear()
    fleet = Fleet(DEVICES, implementation="jit")
    spec = fanout_spec(tenants=TENANTS, instances_per_tenant=INSTANCES,
                       image=fletcher32_program())
    rollout = fleet.apply(spec)
    walls = [device.wall_s for device in rollout.devices]
    cycles = rollout.cycles_per_device()
    # Cache-obliviousness of the device model, checked on every trial.
    assert len(set(cycles)) == 1, cycles
    return walls, cycles


def test_deploy_guard():
    per_device: list[list[float]] = [[] for _ in range(DEVICES)]
    cycles: list[int] = []
    for _ in range(_TRIALS):
        walls, trial_cycles = _one_rollout()
        for index, wall in enumerate(walls):
            per_device[index].append(wall)
        cycles = trial_cycles
    IMAGE_CACHE.clear()  # leave no benchmark state behind for other tests

    best = [min(times) for times in per_device]
    speedups = [best[0] / wall for wall in best[1:]]
    RESULT_PATH.write_text(json.dumps(
        {
            "workload": (f"{TENANTS} tenants x {INSTANCES} instances of "
                         f"fletcher32 per device, {DEVICES}-device fleet"),
            "unit": "seconds wall per device rollout (min of trials)",
            "python": sys.version.split()[0],
            "devices": [
                {
                    "device": f"dev{index}",
                    "rollout_us": round(wall * 1e6, 1),
                    "speedup_vs_dev0": (round(best[0] / wall, 2)
                                        if index else 1.0),
                }
                for index, wall in enumerate(best)
            ],
            "cycles_per_device": cycles[0],
            "warm_speedup_bar": WARM_SPEEDUP_BAR,
        },
        indent=2,
    ) + "\n")

    # Every cache-warm device must beat the cold device by the bar.
    for index, speedup in enumerate(speedups, start=1):
        assert speedup >= WARM_SPEEDUP_BAR, (
            f"dev{index} rollout only {speedup:.2f}x faster than dev0 "
            f"(bar {WARM_SPEEDUP_BAR}x): {best}"
        )
