"""Toolchain ablation — femtoC codegen vs hand-written assembly.

Not a paper experiment (the paper uses LLVM), but the same question its
toolchain answers: what does compiling high-level source cost vs expert
assembly, in code size and run time?  The naive femtoC lowering (stack
slots, no cross-statement register allocation) is the honest lower bound
of compiler quality; LLVM sits between it and hand-written code.
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table
from repro.femtoc import compile_source
from repro.rtos import nrf52840
from repro.vm import Interpreter
from repro.vm.memory import Permission
from repro.workloads.fletcher32 import (
    FLETCHER32_INPUT,
    INPUT_BASE,
    fletcher32_program,
    fletcher32_reference,
    make_context,
)

FLETCHER32_FEMTOC = """
var nbytes = 360;
var sum1 = 65535;
var sum2 = 65535;
var words = nbytes / 2;
var i = 0;
while (words > 0) {
  var tlen = words;
  if (tlen > 359) { tlen = 359; }
  words = words - tlen;
  while (tlen > 0) {
    sum1 = sum1 + (ctx_u8(i) | (ctx_u8(i + 1) << 8));
    sum2 = sum2 + sum1;
    i = i + 2;
    tlen = tlen - 1;
  }
  sum1 = (sum1 & 65535) + (sum1 >> 16);
  sum2 = (sum2 & 65535) + (sum2 >> 16);
}
sum1 = (sum1 & 65535) + (sum1 >> 16);
sum2 = (sum2 & 65535) + (sum2 >> 16);
return (sum2 << 16) | sum1;
"""


def measure():
    board = nrf52840()
    expected = fletcher32_reference(FLETCHER32_INPUT)

    hand = fletcher32_program()
    hand_vm = Interpreter(hand)
    hand_vm.access_list.grant_bytes("in", INPUT_BASE, FLETCHER32_INPUT,
                                    Permission.READ)
    hand_run = hand_vm.run(context=make_context())
    assert hand_run.value == expected

    compiled = compile_source(FLETCHER32_FEMTOC, name="fletcher-femtoc")
    compiled_vm = Interpreter(compiled)
    compiled_run = compiled_vm.run(context=FLETCHER32_INPUT,
                                   context_perms=Permission.READ)
    assert compiled_run.value == expected

    return {
        "hand": (hand.code_size, hand_run.stats.executed,
                 board.vm_execution_us(hand_run.stats, "femto-containers")),
        "femtoc": (compiled.code_size, compiled_run.stats.executed,
                   board.vm_execution_us(compiled_run.stats,
                                         "femto-containers")),
    }


def test_femtoc_codegen_overhead(benchmark):
    results = benchmark(measure)

    hand_size, hand_instr, hand_us = results["hand"]
    cc_size, cc_instr, cc_us = results["femtoc"]
    rows = [
        ["hand-written asm", hand_size, hand_instr, f"{hand_us:.0f} us", "1.0x"],
        ["femtoC compiled", cc_size, cc_instr, f"{cc_us:.0f} us",
         f"{cc_us / hand_us:.1f}x"],
    ]
    record("femtoc_overhead", format_table(
        ["fletcher32 variant", "code B", "executed", "run (M4)", "slowdown"],
        rows,
        title="Toolchain ablation: femtoC codegen vs hand-written eBPF",
    ))

    # Same answer, bounded overhead.
    assert cc_size <= 6 * hand_size
    assert cc_us / hand_us <= 6.0
