"""Simulator wall-clock throughput (not a paper experiment).

Library-health benchmark: how many eBPF instructions per wall-second each
execution engine simulates.  Useful for users sizing long simulations, and
it quantifies the execution-core design points in wall time as well as in
modelled cycles: the pre-decoded interpreter dispatch, the defensive
CertFC build, and the §11 install-time template JIT (basic blocks
compiled to Python source with registers as locals), which must deliver
at least a 3x interpreter-relative speedup.

Modelled-cycle accounting is engine-independent, so this file is the only
benchmark whose recorded output changes with execution-core performance
work; all Fig. 8 / Table 2 / Table 4 outputs stay byte-identical.
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table
from repro.vm import CertFCInterpreter, Interpreter, compile_program
from repro.vm.memory import Permission
from repro.workloads.fletcher32 import (
    FLETCHER32_INPUT,
    INPUT_BASE,
    fletcher32_program,
    make_context,
)

_ENGINES = {
    "interpreter": Interpreter,
    "certfc (defensive)": CertFCInterpreter,
    "jit (template)": compile_program,
}


def _make(factory):
    vm = factory(fletcher32_program())
    vm.access_list.grant_bytes("in", INPUT_BASE, FLETCHER32_INPUT,
                               Permission.READ)
    context = make_context()
    return vm, context


def _bench(benchmark, factory):
    vm, context = _make(factory)
    result = benchmark(lambda: vm.run(context=context))
    return result.stats.executed


def test_simulator_throughput_interpreter(benchmark):
    executed = _bench(benchmark, Interpreter)
    assert executed > 1000


def test_simulator_throughput_certfc(benchmark):
    executed = _bench(benchmark, CertFCInterpreter)
    assert executed > 1000


def test_simulator_throughput_jit(benchmark):
    executed = _bench(benchmark, compile_program)
    assert executed > 1000


def test_relative_wall_speed(benchmark):
    """One combined row: instructions simulated per wall-second."""
    import time

    def measure_all():
        rows = {}
        for name, factory in _ENGINES.items():
            vm, context = _make(factory)
            vm.run(context=context)  # warm up
            best = 0.0
            for _ in range(3):  # best-of-three damps scheduler noise
                start = time.perf_counter()
                executed = 0
                while time.perf_counter() - start < 0.05:
                    executed += vm.run(context=context).stats.executed
                best = max(best, executed / (time.perf_counter() - start))
            rows[name] = best
        return rows

    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    record("simulator_throughput", format_table(
        ["Engine", "instructions / wall second"],
        [[name, f"{rate:,.0f}"] for name, rate in rows.items()],
        title="Simulator wall-clock throughput (host-dependent)",
    ))
    # The template JIT must beat the pre-decoded interpreter by at least
    # 3x in wall time (the acceptance bar for the install-time-transpile
    # design point; it typically lands near 4x).
    assert rows["jit (template)"] > 3.0 * rows["interpreter"]
