"""Simulator wall-clock throughput (not a paper experiment).

Library-health benchmark: how many eBPF instructions per wall-second each
execution engine simulates.  Useful for users sizing long simulations, and
it quantifies the §7 design note that the computed-jumptable interpreter
is "small and fast" relative to the defensive build, in wall time as well
as in modelled cycles.
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table
from repro.vm import CertFCInterpreter, Interpreter, compile_program
from repro.vm.memory import Permission
from repro.workloads.fletcher32 import (
    FLETCHER32_INPUT,
    INPUT_BASE,
    fletcher32_program,
    make_context,
)

_ENGINES = {
    "interpreter": Interpreter,
    "certfc (defensive)": CertFCInterpreter,
    "jit (closures)": compile_program,
}


def _make(factory):
    vm = factory(fletcher32_program())
    vm.access_list.grant_bytes("in", INPUT_BASE, FLETCHER32_INPUT,
                               Permission.READ)
    context = make_context()
    return vm, context


def _bench(benchmark, factory):
    vm, context = _make(factory)
    result = benchmark(lambda: vm.run(context=context))
    return result.stats.executed


def test_simulator_throughput_interpreter(benchmark):
    executed = _bench(benchmark, Interpreter)
    assert executed > 1000


def test_simulator_throughput_certfc(benchmark):
    executed = _bench(benchmark, CertFCInterpreter)
    assert executed > 1000


def test_simulator_throughput_jit(benchmark):
    executed = _bench(benchmark, compile_program)
    assert executed > 1000


def test_relative_wall_speed(benchmark):
    """One combined row: instructions simulated per wall-second."""
    import time

    def measure_all():
        rows = {}
        for name, factory in _ENGINES.items():
            vm, context = _make(factory)
            vm.run(context=context)  # warm up
            start = time.perf_counter()
            runs = 0
            executed = 0
            while time.perf_counter() - start < 0.05:
                executed += vm.run(context=context).stats.executed
                runs += 1
            elapsed = time.perf_counter() - start
            rows[name] = executed / elapsed
        return rows

    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    record("simulator_throughput", format_table(
        ["Engine", "instructions / wall second"],
        [[name, f"{rate:,.0f}"] for name, rate in rows.items()],
        title="Simulator wall-clock throughput (host-dependent)",
    ))
    # The JIT must beat the decoding interpreter in wall time too.
    assert rows["jit (closures)"] > rows["interpreter"]
