"""Throughput regression guard for the execution engines.

Records instructions-per-wall-second for every engine to
``BENCH_throughput.json`` at the repository root (machine-readable, so CI
and future sessions can diff trends), and **fails** if the template JIT
is not faster than the interpreter — the whole point of install-time
transpilation is that the one-off compile buys per-run speed, so a JIT
that interprets slower than the interpreter is a regression by
definition.

Unlike ``test_simulator_performance.py`` (pytest-benchmark statistics for
humans), this guard is a plain test: it always runs, keeps its own
timing loop, and asserts the invariant rather than a host-dependent
absolute number.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.vm import CertFCInterpreter, Interpreter, compile_program
from repro.vm.memory import Permission
from repro.workloads.fletcher32 import (
    FLETCHER32_INPUT,
    INPUT_BASE,
    fletcher32_program,
    make_context,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_throughput.json"

_ENGINES = {
    "interpreter": Interpreter,
    "certfc": CertFCInterpreter,
    "jit": compile_program,
}

#: Per-engine measurement window (seconds).  Short enough for CI, long
#: enough that the insns/s estimate is stable to a few percent.
_WINDOW_S = 0.15


def _throughput(factory) -> float:
    vm = factory(fletcher32_program())
    vm.access_list.grant_bytes("in", INPUT_BASE, FLETCHER32_INPUT,
                               Permission.READ)
    context = make_context()
    vm.run(context=context)  # warm up (and warm the MRU region cache)
    best = 0.0
    for _ in range(2):  # best-of-two damps scheduler noise
        start = time.perf_counter()
        executed = 0
        while time.perf_counter() - start < _WINDOW_S:
            executed += vm.run(context=context).stats.executed
        best = max(best, executed / (time.perf_counter() - start))
    return best


def test_throughput_guard():
    rates = {name: _throughput(factory) for name, factory in _ENGINES.items()}

    RESULT_PATH.write_text(json.dumps(
        {
            "workload": "fletcher32 (360 B input)",
            "unit": "instructions per wall second",
            "python": sys.version.split()[0],
            "engines": {name: round(rate) for name, rate in rates.items()},
            "jit_speedup_vs_interpreter": round(
                rates["jit"] / rates["interpreter"], 2
            ),
        },
        indent=2,
    ) + "\n")

    # The install-time template JIT must out-run the interpreter, full stop.
    assert rates["jit"] > rates["interpreter"], rates
