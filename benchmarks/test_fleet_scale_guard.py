"""Fleet scale-out guard: 1,000 devices off one multicast publish.

The fleet-scale profile (:meth:`PublishOptions.scale`) replaces N
unicast trigger POSTs + N block-wise fetches with ONE broadcast
trigger carrying the integrated payload, co-runs the fleet through the
shard executor, and shares one decoded release across workers
(wall-clock only — modelled cycles stay per-device).  This guard
publishes one realistic release (two 4 KiB images) to a 1,000-device
fleet both ways and records ``BENCH_fleet_scale.json``:

* **Throughput bar** — devices converged per wall-second on the scale
  profile must be >= 3x the unicast/single-shard baseline at N=1000;
* **Airtime bar** — maintainer trigger radio bytes *per device* under
  multicast must be <= 0.5x the unicast baseline (measured: one
  broadcast frame amortized over N vs one signed envelope POST each).

Both bars are re-derived and enforced by ``tools/check_bench.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
    PublishOptions,
    plan,
)
from repro.scenarios import build_fleet_publisher
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_fleet_scale.json"

DEVICES = 1000
IMAGES = 2
RODATA_BYTES = 4096

#: Scale-profile convergence throughput vs the unicast baseline.
SCALE_SPEEDUP_BAR = 3.0
#: Multicast trigger airtime per device vs one unicast POST each.
TRIGGER_BYTES_RATIO_BAR = 0.5

_TRIALS = 2


def _spec() -> DeploymentSpec:
    """One realistic fleet release: two 4 KiB content-addressed images."""
    base = ImageSpec.from_program(
        assemble("mov r0, 7\n    exit", name="app"))
    images = {
        f"app{index}": ImageSpec(name=f"app{index}", text=base.text,
                                 rodata=bytes([index % 256]) * RODATA_BYTES)
        for index in range(IMAGES)
    }
    return DeploymentSpec(
        name="fleet-release",
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images=images,
        attachments=tuple(
            AttachmentSpec(image=f"app{index}", hook=FC_HOOK_FANOUT,
                           tenant="ops", name=f"fc-{index}", count=1)
            for index in range(IMAGES)
        ),
    )


def _one_trial(options: PublishOptions) -> dict:
    """One cold N-device publish; returns wall/byte accounting."""
    import time

    IMAGE_CACHE.clear()
    publisher = build_fleet_publisher(devices=DEVICES)
    spec = _spec()
    start = time.perf_counter()
    result = publisher.publish(spec, options)
    wall_s = time.perf_counter() - start
    assert result.ok, result.reason
    assert len(result.rows()) == DEVICES
    assert plan(publisher.fleet.devices[-1].engine, spec).empty
    return {
        "wall_s": wall_s,
        "multicast": result.multicast,
        "trigger_tx_bytes": result.trigger_tx_bytes,
        "acks": len(result.mcast_acks),
        "payload_bytes": result.payload_bytes,
    }


def _best(options: PublishOptions) -> dict:
    trials = [_one_trial(options) for _ in range(_TRIALS)]
    return min(trials, key=lambda trial: trial["wall_s"])


def test_fleet_scale_guard():
    unicast = _best(PublishOptions.legacy())
    scale = _best(PublishOptions.scale())
    IMAGE_CACHE.clear()  # leave no benchmark state behind for other tests

    assert not unicast["multicast"] and scale["multicast"]
    assert 0 < scale["acks"] <= 2 * 8  # bounded suppression sample

    unicast_rate = DEVICES / unicast["wall_s"]
    scale_rate = DEVICES / scale["wall_s"]
    speedup = scale_rate / unicast_rate
    unicast_trigger = unicast["trigger_tx_bytes"] / DEVICES
    scale_trigger = scale["trigger_tx_bytes"] / DEVICES
    ratio = scale_trigger / unicast_trigger

    RESULT_PATH.write_text(json.dumps(
        {
            "workload": (f"{IMAGES} x {RODATA_BYTES} B images, one signed "
                         f"spec release published to {DEVICES} devices over "
                         "the shared link (best of "
                         f"{_TRIALS} cold trials per mode)"),
            "unit": "devices converged per wall-second",
            "python": sys.version.split()[0],
            "devices_total": DEVICES,
            "payload_bytes": scale["payload_bytes"],
            "unicast": {
                "wall_s": round(unicast["wall_s"], 3),
                "devices_per_s": round(unicast_rate, 1),
                "trigger_bytes_per_device": round(unicast_trigger, 1),
            },
            "multicast": {
                "wall_s": round(scale["wall_s"], 3),
                "devices_per_s": round(scale_rate, 1),
                "trigger_bytes_per_device": round(scale_trigger, 1),
                "ack_sample": scale["acks"],
            },
            "scale_speedup": round(speedup, 2),
            "scale_speedup_bar": SCALE_SPEEDUP_BAR,
            "trigger_bytes_ratio": round(ratio, 4),
            "trigger_bytes_ratio_bar": TRIGGER_BYTES_RATIO_BAR,
        },
        indent=2,
    ) + "\n")

    assert speedup >= SCALE_SPEEDUP_BAR, (
        f"scale profile converged only {speedup:.2f}x the unicast baseline "
        f"at N={DEVICES} (bar {SCALE_SPEEDUP_BAR}x): "
        f"unicast={unicast['wall_s']:.2f}s scale={scale['wall_s']:.2f}s"
    )
    assert ratio <= TRIGGER_BYTES_RATIO_BAR, (
        f"multicast trigger spent {scale_trigger:.1f} B/device vs "
        f"{unicast_trigger:.1f} unicast (ratio {ratio:.2f}, "
        f"bar {TRIGGER_BYTES_RATIO_BAR})"
    )
