"""Fig 8 — Time per instruction on the Cortex-M4 platform.

Paper: twelve instructions (ALU, MEM, branches) for rBPF,
Femto-Containers and CertFC; rBPF ~ Femto-Containers ("the rBPF
extensions incur minimal overhead"), CertFC clearly slower ("the trade
off between the formally verified code and a natively optimized
implementation"), memory instructions the most expensive, up to ~2.75 us.
"""

from __future__ import annotations

from conftest import record

from repro.analysis import bar_chart
from repro.rtos import nrf52840
from repro.vm import CertFCInterpreter, Interpreter, RbpfInterpreter
from repro.workloads.microbench import all_pairs

IMPLEMENTATIONS = (
    ("rBPF", RbpfInterpreter, "rbpf"),
    ("Femto-Containers", Interpreter, "femto-containers"),
    ("CertFC", CertFCInterpreter, "certfc"),
)


def measure():
    board = nrf52840()
    pairs = all_pairs(iterations=64, unroll=16)
    labels = [pair.label for pair in pairs]
    series = {name: [] for name, _cls, _impl in IMPLEMENTATIONS}
    for pair in pairs:
        for name, vm_class, implementation in IMPLEMENTATIONS:
            measured = vm_class(pair.measured).run()
            baseline = vm_class(pair.baseline).run()
            delta = (
                board.vm_execution_cycles(measured.stats, implementation)
                - board.vm_execution_cycles(baseline.stats, implementation)
            )
            series[name].append(
                board.us(delta) / (pair.iterations * pair.unroll)
            )
    return labels, series


def test_fig8_per_instruction(benchmark):
    labels, series = benchmark(measure)

    record("fig8_per_instruction", bar_chart(
        "Fig 8: time per instruction, Cortex-M4 (us)",
        labels, series, unit="us",
    ))

    for index, label in enumerate(labels):
        rbpf = series["rBPF"][index]
        femto = series["Femto-Containers"][index]
        certfc = series["CertFC"][index]
        # Extensions incur minimal overhead (within ~5 %).
        assert abs(femto - rbpf) / rbpf < 0.05, label
        # The verified build is 1.5-3x slower.
        assert 1.4 <= certfc / femto <= 3.2, label
        # Everything sits on the figure's 0-2.75 us axis.
        assert certfc <= 2.75, label

    by_label = dict(zip(labels, range(len(labels))))
    femto = series["Femto-Containers"]
    # Memory ops cost more than plain ALU; divide costs more than multiply.
    assert femto[by_label["MEM load double"]] > femto[by_label["ALU Add"]]
    assert femto[by_label["ALU divide imm"]] > femto[by_label["ALU multiply imm"]]
