"""Table 4 — Hook overhead in clock ticks for the thread-switch example.

Paper:
                Empty hook   Hook with application
    Cortex-M4        109            1750
    ESP32             83            1163
    RISC-V           106             754
"""

from __future__ import annotations

import struct

from conftest import record

from repro.analysis import format_table
from repro.core import FC_HOOK_SCHED, HostingEngine
from repro.rtos import Kernel, all_boards
from repro.workloads import thread_counter_program

PAPER = {
    "nrf52840": (109, 1750),
    "esp32-wroom-32": (83, 1163),
    "gd32vf103": (106, 754),
}


def measure(board):
    kernel = Kernel(board)
    engine = HostingEngine(kernel)
    context = struct.pack("<QQ", 1, 2)

    before = kernel.clock.cycles
    engine.fire_hook(FC_HOOK_SCHED, context)
    empty = kernel.clock.cycles - before

    container = engine.load(thread_counter_program())
    engine.attach(container, FC_HOOK_SCHED)
    before = kernel.clock.cycles
    engine.fire_hook(FC_HOOK_SCHED, context)
    with_app = kernel.clock.cycles - before
    return empty, with_app


def collect():
    return {board.name: measure(board) for board in all_boards()}


def test_table4_hook_overhead(benchmark):
    results = benchmark(collect)

    rows = [
        [name, empty, PAPER[name][0], with_app, PAPER[name][1]]
        for name, (empty, with_app) in results.items()
    ]
    record("table4_hook_overhead", format_table(
        ["Platform", "empty", "paper", "with app", "paper"], rows,
        title="Table 4: hook overhead in clock ticks (thread-switch hook)",
    ))

    for name, (empty, with_app) in results.items():
        paper_empty, paper_app = PAPER[name]
        assert empty == paper_empty  # calibrated anchor, exact
        assert abs(with_app - paper_app) / paper_app < 0.05
        # "~100 clock ticks on all the hardware we tested", and the hook is
        # a small fraction of the hosted logic's cost (the paper says <10 %;
        # its own RISC-V numbers give 16 %, so assert the loose form).
        assert 80 <= empty <= 120
        assert empty / (with_app - empty) < 0.20
