"""Container-supervisor regression guard.

Two trials, recorded to ``BENCH_supervisor.json`` at the repository
root:

* **Quarantine-aware fleet publish** — a 3-device publish where one
  device hosts a crash-looping resident container.  The supervisor
  quarantines the sick slot mid-convergence; the publish still
  converges fleet-wide and the device's row is flagged ``QUARANTINED``
  (reported, counted, not failed).
* **Runaway-container waste bound** — a clean but runaway cycle hog
  (every run far over its per-run cycle ceiling) fired repeatedly on a
  supervised versus an unsupervised engine.  The supervisor's overrun
  streak quarantines the hog after a few runs, so the supervised engine
  spends a fraction of the modelled cycles the unsupervised one burns
  re-running it forever.  The guard holds ``supervised/unsupervised``
  at or below :data:`WASTE_RATIO_BAR`.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import FC_HOOK_FANOUT, HostingEngine
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
)
from repro.rtos import Kernel, nrf52840
from repro.scenarios import build_fleet_publisher
from repro.suit import UpdateStatus
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE
from repro.vm.supervisor import SupervisorConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_supervisor.json"

DEVICES = 3
FIRES = 200
#: Supervised crash-loop cycles must stay at or below this fraction of
#: the unsupervised burn.
WASTE_RATIO_BAR = 0.5

GOOD = "mov r0, 7\n    exit"
#: Verifies clean, dereferences an unmapped address at runtime.
POISON = "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"
#: Clean but runaway: a sensor filter's worth of ALU traffic per run,
#: far over the supervised trial's per-run cycle ceiling.
CYCLE_HOG = "\n    ".join(["mov r0, 0"] + ["add r0, 1"] * 100 + ["exit"])


def _spec() -> DeploymentSpec:
    return DeploymentSpec(
        name="release",
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(GOOD, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


def _publish_trial() -> dict:
    """A fleet publish converges around a quarantined crash-looper."""
    IMAGE_CACHE.clear()
    publisher = build_fleet_publisher(
        devices=DEVICES, supervisor=SupervisorConfig(fault_streak=4))
    sick = publisher.fleet.devices[1]
    looper = sick.engine.load(assemble(POISON, name="sensor"))
    sick.engine.attach_periodic(looper, 1_000.0)
    result = publisher.publish(_spec())
    assert result.converged, result.reason
    rows = {row.device.name: row for row in result.devices}
    assert rows["dev1"].result.status is UpdateStatus.QUARANTINED
    assert rows["dev0"].result.status is UpdateStatus.OK
    assert sick.radio.worker.storage.highest_sequence(
        publisher.slot) == result.sequence_number
    return {
        "devices_total": DEVICES,
        "devices_converged": sum(row.ok for row in result.devices),
        "quarantined_devices": len(result.quarantined_devices()),
        "quarantined_slots": rows["dev1"].quarantined,
        "fault_delta": rows["dev1"].fault_delta,
    }


def _runaway_cycles(supervised: bool) -> int:
    """Modelled cycles of ``FIRES`` SYNC-hook fires of a cycle hog."""
    from repro.core.hooks import Hook

    kernel = Kernel(nrf52840())
    if supervised:
        engine = HostingEngine(kernel, supervisor=SupervisorConfig(
            cycle_ceiling=1_000, overrun_streak=3))
    else:
        engine = HostingEngine(kernel, supervisor=False)
    engine.register_hook(Hook("bench.runaway", mode=HookMode.SYNC))
    engine.attach(engine.load(assemble(CYCLE_HOG, name="hog")),
                  "bench.runaway")
    before = kernel.clock.cycles
    for _ in range(FIRES):
        engine.fire_hook("bench.runaway")
    return kernel.clock.cycles - before


def test_supervisor_guard():
    publish = _publish_trial()
    supervised = _runaway_cycles(supervised=True)
    unsupervised = _runaway_cycles(supervised=False)
    IMAGE_CACHE.clear()  # leave no benchmark state behind for other tests
    ratio = supervised / unsupervised

    RESULT_PATH.write_text(json.dumps(
        {
            "workload": (f"{DEVICES}-device fleet publish around a "
                         "crash-looping resident container, plus "
                         f"{FIRES} hook fires of a runaway cycle hog on "
                         "supervised vs unsupervised engines"),
            "unit": "converged devices / modelled cycles",
            "python": sys.version.split()[0],
            "publish": publish,
            "fires": FIRES,
            "supervised_cycles": supervised,
            "unsupervised_cycles": unsupervised,
            "waste_ratio": round(ratio, 4),
            "waste_ratio_bar": WASTE_RATIO_BAR,
        },
        indent=2,
    ) + "\n")

    assert publish["devices_converged"] == DEVICES
    assert publish["quarantined_devices"] == 1
    assert ratio <= WASTE_RATIO_BAR, (
        f"supervised runaway container still burned {ratio:.2f} of the "
        f"unsupervised cycles (bar {WASTE_RATIO_BAR})"
    )
