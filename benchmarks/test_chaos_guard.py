"""Chaos-publish regression guard.

One :meth:`~repro.deploy.FleetPublisher.publish` fans a signed spec out
to N devices while a :class:`~repro.deploy.FaultInjector` crashes two of
them mid-update and the shared radio drops 10% of all frames.  The guard
holds the self-healing convergence invariant and records it to
``BENCH_chaos.json`` at the repository root:

* **Convergence under chaos** — every device (including both crashed
  ones, which reboot and resume from NVM) converges on the published
  sequence; the publisher's retry machinery pays the bill in re-triggers
  rather than raising.
* **Graceful degradation** — a device that never comes back yields a
  ``converged=False`` result with an ``UNREACHABLE`` row instead of an
  exception, and the reachable majority still converges.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    CrashAt,
    DeploymentSpec,
    FaultInjector,
    HookSpec,
    ImageSpec,
)
from repro.scenarios import build_fleet_publisher
from repro.suit import UpdateStatus
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_chaos.json"

DEVICES = 4
LOSS = 0.10

SCRIPTED_CRASHES = [
    CrashAt("dev1", at_us=1_000.0, down_us=300_000.0),
    CrashAt("dev2", at_us=5_000.0, down_us=300_000.0),
]


def _spec() -> DeploymentSpec:
    program = assemble("mov r0, 7\n    exit", name="app")
    return DeploymentSpec(
        name="release",
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(program)},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


def _chaos_trial() -> dict:
    """Lossy publish with two scripted mid-update crashes: must converge."""
    IMAGE_CACHE.clear()
    publisher = build_fleet_publisher(devices=DEVICES, loss=LOSS, seed=77)
    publisher.chaos = FaultInjector(SCRIPTED_CRASHES)
    result = publisher.publish(_spec())
    assert result.converged, result.reason
    assert publisher.chaos.crashes == len(SCRIPTED_CRASHES)
    assert publisher.chaos.reboots == len(SCRIPTED_CRASHES)
    for device in publisher.fleet.devices:
        assert device.radio.worker.storage.highest_sequence(
            publisher.slot) == result.sequence_number
    return {
        "devices_converged": sum(row.ok for row in result.devices),
        "reboots": result.total_reboots,
        "retriggers": result.total_retries,
    }


def _unreachable_demo() -> dict:
    """A device that never reboots degrades the result, never raises."""
    IMAGE_CACHE.clear()
    publisher = build_fleet_publisher(devices=3, loss=0.0, seed=77)
    publisher.chaos = FaultInjector(
        [CrashAt("dev1", at_us=1_000.0, down_us=None)])
    result = publisher.publish(_spec(), max_windows=300)
    assert not result.converged
    unreachable = result.unreachable()
    assert [row.device.name for row in unreachable] == ["dev1"]
    assert unreachable[0].result.status is UpdateStatus.UNREACHABLE
    others = [row for row in result.devices if row.device.name != "dev1"]
    assert all(row.ok for row in others)
    return {
        "converged": result.converged,
        "unreachable": len(unreachable),
        "others_converged": len(others),
        "raised": False,
    }


def test_chaos_guard():
    trial = _chaos_trial()
    demo = _unreachable_demo()
    IMAGE_CACHE.clear()  # leave no benchmark state behind for other tests

    RESULT_PATH.write_text(json.dumps(
        {
            "workload": (f"{DEVICES}-device fleet publish at {LOSS:.0%} "
                         "frame loss with two scripted mid-update power "
                         "failures, plus a never-returning device"),
            "unit": "converged devices / reboots / trigger retries",
            "python": sys.version.split()[0],
            "devices_total": DEVICES,
            "devices_converged": trial["devices_converged"],
            "loss": LOSS,
            "scripted_crashes": len(SCRIPTED_CRASHES),
            "reboots": trial["reboots"],
            "retriggers": trial["retriggers"],
            "unreachable_demo": demo,
        },
        indent=2,
    ) + "\n")

    assert trial["devices_converged"] == DEVICES, (
        f"only {trial['devices_converged']}/{DEVICES} devices converged "
        "under scripted chaos"
    )
    assert trial["reboots"] >= len(SCRIPTED_CRASHES)
