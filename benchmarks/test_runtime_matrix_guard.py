"""Cross-runtime cost-model guard for the multi-runtime deploy plane.

Runs the same fletcher32 workload as an rBPF container, a mini-Wasm
container and a script container on one hosting engine, and records the
per-runtime code size, attach (startup) cycles, execution cycles and RAM
footprint to ``BENCH_runtime_matrix.json`` at the repository root.

The guarded invariants are the §6 story of the paper: every runtime must
produce the *same* checksum (the deploy plane is semantics-preserving
across runtimes), while the modelled per-run cost must order
``script > wasm > rbpf`` — rBPF with install-time transpilation is the
cheapest hook-path runtime, which is why the paper picks it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import FC_HOOK_FANOUT, HostingEngine
from repro.core.hooks import Hook, HookMode
from repro.deploy import ImageSpec
from repro.rtos import Kernel
from repro.runtimes.sources import SCRIPT_FLETCHER32_PY, WASM_FLETCHER32
from repro.vm.imagecache import IMAGE_CACHE
from repro.vm.memory import Permission
from repro.workloads import FLETCHER32_INPUT, fletcher32_reference
from repro.workloads.fletcher32 import (
    INPUT_BASE,
    fletcher32_program,
    make_context,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_runtime_matrix.json"

_SPECS = {
    "rbpf": lambda: ImageSpec.from_program(fletcher32_program()),
    "wasm": lambda: ImageSpec.from_wasm(WASM_FLETCHER32, name="fletcher32"),
    "script": lambda: ImageSpec.from_script(SCRIPT_FLETCHER32_PY,
                                            name="fletcher32"),
}


def _measure(runtime: str) -> dict:
    IMAGE_CACHE.clear()
    spec = _SPECS[runtime]()
    engine = HostingEngine(Kernel(), implementation="jit")
    engine.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.SYNC))
    container = engine.load(spec.instantiate("fletcher32"), name="fletcher32")

    before = engine.kernel.clock.cycles
    engine.attach(container, FC_HOOK_FANOUT)
    attach_cycles = engine.kernel.clock.cycles - before

    if runtime == "rbpf":
        # The eBPF program takes a {data_ptr, len} context and reads the
        # input buffer through a granted region.
        container.vm.access_list.grant_bytes(
            "in", INPUT_BASE, FLETCHER32_INPUT, Permission.READ)
        context = bytearray(make_context())
    else:
        context = bytearray(FLETCHER32_INPUT)
    run = engine.execute(container, context=context)
    assert run.ok, run.fault

    return {
        "code_bytes": len(spec.text) + len(spec.rodata) + len(spec.data),
        "attach_cycles": attach_cycles,
        "exec_cycles": run.cycles,
        "ram_bytes": container.ram_bytes,
        "value": run.value,
    }


def test_runtime_matrix_guard():
    ref = fletcher32_reference(FLETCHER32_INPUT)
    rows = {runtime: _measure(runtime) for runtime in _SPECS}

    # Semantics preservation: one workload, three runtimes, one answer.
    for runtime, row in rows.items():
        assert row["value"] == ref, (runtime, hex(row["value"]))
        row["checksum"] = f"0x{row.pop('value'):08x}"

    RESULT_PATH.write_text(json.dumps(
        {
            "workload": "fletcher32 (360 B input), jit engine",
            "unit": "modelled board cycles",
            "python": sys.version.split()[0],
            "checksum": f"0x{ref:08x}",
            "runtimes": rows,
            "wasm_exec_overhead_vs_rbpf": round(
                rows["wasm"]["exec_cycles"] / rows["rbpf"]["exec_cycles"], 2
            ),
            "script_exec_overhead_vs_wasm": round(
                rows["script"]["exec_cycles"] / rows["wasm"]["exec_cycles"], 2
            ),
            "exec_overhead_bar": 1.0,
        },
        indent=2,
    ) + "\n")

    # The §6 ordering: per-run cost script > wasm > rbpf, full stop.
    assert (rows["script"]["exec_cycles"]
            > rows["wasm"]["exec_cycles"]
            > rows["rbpf"]["exec_cycles"]), rows
