"""Canary-rollout regression guard.

Two invariants of the canary fleet rollout, checked on every trial and
recorded to ``BENCH_canary.json`` at the repository root:

* **Isolation** — a poisoned rollout (image verifies clean, faults at
  runtime) must roll back on the canary subset with *zero* observable
  change on every non-canary device: no actions applied, no cycles
  charged, no image hash moved.
* **Warm promotion** — when the fixed spec bakes clean and promotes, the
  non-canary devices ride the image cache the canary already warmed:
  each promoted device's rollout must be at least 5x faster in wall time
  than the canary's cold rollout (the same bar the deploy guard holds).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    Fleet,
    HookSpec,
    ImageSpec,
    plan,
)
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads.fletcher32 import fletcher32_program

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_canary.json"

DEVICES = 4
CANARIES = 1
TENANTS = 2
INSTANCES = 2

#: Promoted devices skip the dominant JIT transpile+compile entirely.
PROMOTED_SPEEDUP_BAR = 5.0

_TRIALS = 5

#: Passes the pre-flight verifier, dereferences an unmapped address.
POISON = "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"


def _spec(name: str, image: ImageSpec) -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=tuple(f"tenant-{index}" for index in range(TENANTS)),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": image},
        attachments=tuple(
            AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                           tenant=f"tenant-{index}",
                           name=f"fc-{index}-{{i}}", count=INSTANCES)
            for index in range(TENANTS)
        ),
    )


def _fingerprint(device):
    return (
        device.kernel.clock.cycles,
        sorted((c.hook.name, c.name, c.image_hash)
               for c in device.engine.containers()),
    )


def _one_trial() -> tuple[float, list[float], int]:
    """Cold fleet, poisoned rollback, then clean promotion.

    Returns (canary cold wall, per-control walls, canary fault count).
    """
    IMAGE_CACHE.clear()
    fleet = Fleet(DEVICES, implementation="jit")
    base_image = ImageSpec.from_program(fletcher32_program())
    base = _spec("base", base_image)
    fleet.apply(base)

    # Poisoned rollout: must roll back without disturbing the controls.
    control = fleet.devices[CANARIES:]
    before = [_fingerprint(device) for device in control]
    poisoned = fleet.canary_rollout(
        _spec("v2", ImageSpec.from_program(
            assemble(POISON, name="poison"))),
        canary_count=CANARIES, bake_us=200_000.0, bake_fires=2,
    )
    assert poisoned.rolled_back and not poisoned.promoted
    faults = sum(poisoned.fault_deltas.values())
    assert faults > 0, "poisoned canary never faulted during the bake"
    assert [_fingerprint(device) for device in control] == before, \
        "rollback disturbed a non-canary device"
    assert plan(fleet.devices[0].engine, base).empty

    # Clean rollout: same program text, new content hash (rodata tag),
    # so the canary pays one cold JIT compile and promotion rides it.
    fixed_image = ImageSpec(name="app",
                            text=base_image.text,
                            rodata=b"release-v2")
    promoted = fleet.canary_rollout(_spec("v2", fixed_image),
                                    canary_count=CANARIES,
                                    bake_us=200_000.0, bake_fires=2)
    assert promoted.promoted, promoted.reason
    assert all(plan(device.engine, _spec("v2", fixed_image)).empty
               for device in fleet.devices)
    return (promoted.canary[0].wall_s,
            [rollout.wall_s for rollout in promoted.control],
            faults)


def test_canary_guard():
    cold_walls: list[float] = []
    control_walls: list[list[float]] = [[] for _ in range(DEVICES - CANARIES)]
    faults = 0
    for _ in range(_TRIALS):
        cold, controls, trial_faults = _one_trial()
        cold_walls.append(cold)
        for index, wall in enumerate(controls):
            control_walls[index].append(wall)
        faults = trial_faults
    IMAGE_CACHE.clear()  # leave no benchmark state behind for other tests

    cold = min(cold_walls)
    best = [min(walls) for walls in control_walls]
    speedups = [cold / wall for wall in best]
    RESULT_PATH.write_text(json.dumps(
        {
            "workload": (f"{TENANTS} tenants x {INSTANCES} instances of "
                         f"fletcher32 per device, {DEVICES}-device fleet, "
                         f"{CANARIES} canary"),
            "unit": "seconds wall per device rollout (min of trials)",
            "python": sys.version.split()[0],
            "rollback": {
                "canary_faults": faults,
                "control_devices_disturbed": 0,
            },
            "devices": [
                {"device": "dev0", "role": "canary",
                 "rollout_us": round(cold * 1e6, 1),
                 "speedup_vs_canary": 1.0},
            ] + [
                {"device": f"dev{index + CANARIES}", "role": "promoted",
                 "rollout_us": round(wall * 1e6, 1),
                 "speedup_vs_canary": round(cold / wall, 2)}
                for index, wall in enumerate(best)
            ],
            "promoted_speedup_bar": PROMOTED_SPEEDUP_BAR,
        },
        indent=2,
    ) + "\n")

    for index, speedup in enumerate(speedups, start=CANARIES):
        assert speedup >= PROMOTED_SPEEDUP_BAR, (
            f"dev{index} promotion only {speedup:.2f}x faster than the "
            f"cold canary (bar {PROMOTED_SPEEDUP_BAR}x): "
            f"cold={cold * 1e6:.0f}us walls={best}"
        )
