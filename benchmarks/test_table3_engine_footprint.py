"""Table 3 — Memory footprint of a Femto-Container hosting minimal logic
on Arm Cortex-M4.

Paper:
    Femto-Containers  2992 B ROM   624 B RAM
    rBPF              3032 B ROM   620 B RAM
    CertFC            1378 B ROM   672 B RAM
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table
from repro.rtos import nrf52840
from repro.rtos.firmware import engine_flash_bytes
from repro.vm import CertFCInterpreter, Interpreter, RbpfInterpreter, assemble

PAPER = {
    "femto-containers": (2992, 624),
    "rbpf": (3032, 620),
    "certfc": (1378, 672),
}

MINIMAL = "mov r0, 0\n    exit"

VM_CLASSES = {
    "femto-containers": Interpreter,
    "rbpf": RbpfInterpreter,
    "certfc": CertFCInterpreter,
}


def collect():
    board = nrf52840()
    program = assemble(MINIMAL)
    out = {}
    for name, vm_class in VM_CLASSES.items():
        vm = vm_class(program)
        vm.run()  # host minimal logic, as the paper does
        out[name] = (engine_flash_bytes(name, board), vm.ram_bytes)
    return out


def test_table3_engine_footprint(benchmark):
    results = benchmark(collect)

    rows = [
        [name, rom, PAPER[name][0], ram, PAPER[name][1]]
        for name, (rom, ram) in results.items()
    ]
    record("table3_engine_footprint", format_table(
        ["Implementation", "ROM B", "paper", "RAM B", "paper"], rows,
        title="Table 3: hosting-engine footprint, minimal logic, Cortex-M4",
    ))

    # Exact anchors (ROM is the calibrated model; RAM is derived).
    for name, (rom, ram) in results.items():
        assert rom == PAPER[name][0]
        assert abs(ram - PAPER[name][1]) <= 4
    # Orderings the paper highlights.
    assert results["certfc"][0] < results["femto-containers"][0]
    assert results["certfc"][1] > results["femto-containers"][1]
    # "CertFC actually reduces the footprint by 55 % on Cortex-M4".
    reduction = 1 - results["certfc"][0] / results["rbpf"][0]
    assert 0.5 <= reduction <= 0.6
