"""§10.3 — Femto-Containers with multiple instances: RAM accounting.

Paper anchors:
* each instance needs 624 B of RAM (stack + housekeeping);
* key-value stores for the multi-tenant example: ~340 B;
* the 3-container / 2-tenant example needs ~3.2 KiB of RAM;
* with ~2000 B applications, a 256 KiB Cortex-M4 fits ~100 instances
  next to the OS.
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table
from repro.rtos import nrf52840
from repro.rtos.firmware import HOST_OS_RAM
from repro.scenarios import build_multi_tenant_device


def collect():
    device = build_multi_tenant_device()
    # Run the system briefly so stores get populated realistically.
    device.kernel.run(until_us=3_000_000)
    engine = device.engine
    per_instance = device.sensor.vm.ram_bytes
    stores = engine.store_ram_bytes()
    total = engine.total_ram_bytes()
    return per_instance, stores, total


def density(app_bytes: int, ram_kib: int = 256) -> int:
    per_instance = 624 + app_bytes
    return (ram_kib * 1024 - HOST_OS_RAM) // per_instance


def test_sec10_3_multi_instance_density(benchmark):
    per_instance, stores, total = benchmark(collect)

    rows = [
        ["per-instance RAM", f"{per_instance} B", "624 B"],
        ["key-value stores", f"{stores} B", "~340 B"],
        ["3 containers / 2 tenants", f"{total} B", "~3.2 KiB"],
        ["density @2000 B apps, 256 KiB", f"{density(2000)} instances",
         "~100 instances"],
    ]
    record("sec10_3_density", format_table(
        ["Quantity", "measured", "paper"], rows,
        title="Sec 10.3: multi-instance RAM accounting",
    ))

    assert per_instance == 624
    assert 200 <= stores <= 500          # paper: 340 B
    assert 2_400 <= total <= 3_600       # paper: ~3.2 KiB
    assert 85 <= density(2000) <= 110    # paper: ~100 instances


def test_instances_scale_linearly(benchmark):
    """Adding instances adds exactly one VM state + image each."""
    from repro.core import FC_HOOK_TIMER, HostingEngine
    from repro.rtos import Kernel
    from repro.vm import assemble

    def grow():
        kernel = Kernel(nrf52840())
        engine = HostingEngine(kernel)
        sizes = []
        for index in range(8):
            container = engine.load(
                assemble("mov r0, 0\n    exit"), name=f"c{index}")
            engine.attach(container, FC_HOOK_TIMER)
            sizes.append(engine.total_ram_bytes())
        return sizes

    sizes = benchmark(grow)
    deltas = {b - a for a, b in zip(sizes, sizes[1:])}
    assert len(deltas) == 1  # perfectly linear
    (delta,) = deltas
    assert 624 <= delta <= 700  # instance + 16 B image + local store header
