"""Fig 9 — Execution duration of the three example applications on the
three platforms.

Paper: fletcher32 1.3-2.2 ms; thread-counter 10-27 us (Cortex-M4 the
slowest at ~27 us); CoAP response formatter 23-72 us.
"""

from __future__ import annotations

import struct

from conftest import record

from repro.analysis import bar_chart
from repro.core import CoapResponseContext, FC_HOOK_COAP, FC_HOOK_SCHED, FC_HOOK_TIMER, HostingEngine
from repro.rtos import Kernel, all_boards
from repro.vm.memory import Permission
from repro.workloads import (
    FLETCHER32_INPUT,
    coap_handler_program,
    fletcher32_program,
    thread_counter_program,
)
from repro.workloads.fletcher32 import INPUT_BASE, make_context


def run_fletcher(board) -> float:
    kernel = Kernel(board)
    engine = HostingEngine(kernel)
    container = engine.load(fletcher32_program())
    engine.attach(container, FC_HOOK_TIMER)
    container.vm.access_list.grant_bytes(
        "input", INPUT_BASE, FLETCHER32_INPUT, Permission.READ)
    run = engine.execute(container, make_context())
    assert run.ok
    return run.duration_us


def run_thread_counter(board) -> float:
    kernel = Kernel(board)
    engine = HostingEngine(kernel)
    container = engine.load(thread_counter_program())
    engine.attach(container, FC_HOOK_SCHED)
    run = engine.execute(container, struct.pack("<QQ", 1, 2))
    assert run.ok
    return run.duration_us


def run_coap_formatter(board) -> float:
    kernel = Kernel(board)
    engine = HostingEngine(kernel)
    tenant = engine.create_tenant("A")
    tenant.store.store(0x10, 2150)
    container = engine.load(coap_handler_program(), tenant=tenant)
    engine.attach(container, FC_HOOK_COAP)
    run = engine.execute(container, struct.pack("<Q", 1),
                         pdu=CoapResponseContext())
    assert run.ok
    return run.duration_us


def collect():
    boards = all_boards()
    labels = [board.name for board in boards]
    return labels, {
        "fletcher32": [run_fletcher(b) for b in boards],
        "thread-counter": [run_thread_counter(b) for b in boards],
        "coap-formatter": [run_coap_formatter(b) for b in boards],
    }


def test_fig9_applications(benchmark):
    labels, series = benchmark(collect)

    record("fig9_applications", bar_chart(
        "Fig 9: execution duration of the example applications (us)\n"
        "paper bands: fletcher32 1300-2200 us | thread-counter 10-27 us | "
        "coap-formatter 23-72 us",
        labels, series, unit="us",
    ))

    fletcher = series["fletcher32"]
    counter = series["thread-counter"]
    formatter = series["coap-formatter"]

    # fletcher32: millisecond-scale, Cortex-M4 slowest; the absolute band is
    # ~25 % below the paper's (documented calibration trade-off vs Table 4).
    assert all(800 <= v <= 2300 for v in fletcher)
    assert fletcher[0] == max(fletcher)
    assert 1300 <= fletcher[0] <= 2300  # M4 lands inside the paper band

    # thread-counter: 10-27 us band, Cortex-M4 slowest, RISC-V fastest.
    assert all(8 <= v <= 30 for v in counter)
    assert counter[0] == max(counter)
    assert counter[2] == min(counter)

    # CoAP formatter: 23-72 us band, same platform ordering.
    assert all(20 <= v <= 75 for v in formatter)
    assert formatter[0] == max(formatter)
    assert formatter[2] == min(formatter)
