"""Shared helpers for the paper-reproduction benchmark harness.

Every benchmark regenerates one table or figure of the paper, prints it,
and records it under ``benchmarks/results/`` so the numbers in
EXPERIMENTS.md can be cross-checked at any time.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print a rendered table/figure and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
