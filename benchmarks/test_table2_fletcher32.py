"""Table 2 — Size and performance of fletcher32 logic per runtime.

Paper (Cortex-M4 @ 64 MHz):
    Runtime      code size  cold start   run time
    Native C         74 B        --         27 us
    WASM3           322 B    17 096 us     980 us
    rBPF            456 B         1 us    2133 us
    RIOTjs          593 B     5589 us   14 726 us
    MicroPython     497 B    21 907 us  16 325 us
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table, format_us
from repro.rtos import nrf52840
from repro.runtimes import all_candidates

PAPER = {
    "Native C": (74, None, 27),
    "WASM3": (322, 17_096, 980),
    "rBPF": (456, 1, 2_133),
    "RIOTjs": (593, 5_589, 14_726),
    "MicroPython": (497, 21_907, 16_325),
}


def collect():
    board = nrf52840()
    return [c.fletcher32_metrics(board) for c in all_candidates()]


def test_table2_fletcher32(benchmark):
    metrics = benchmark(collect)
    by_name = {m.name: m for m in metrics}
    native = by_name["Native C"].run_us

    rows = []
    for m in metrics:
        paper_code, paper_cold, paper_run = PAPER[m.name]
        rows.append([
            m.name,
            f"{m.code_size} B ({paper_code})",
            f"{format_us(m.cold_start_us)} ({paper_cold or '--'})",
            f"{format_us(m.run_us)} ({paper_run})",
            f"{m.run_us / native:.0f}x",
        ])
    record("table2_fletcher32", format_table(
        ["Runtime", "code size (paper)", "cold start (paper)",
         "run time (paper)", "vs native"], rows,
        title="Table 2: fletcher32 logic hosted in different runtimes "
              "(Cortex-M4 @ 64 MHz)",
    ))

    # §6 narrative assertions.
    assert by_name["rBPF"].cold_start_us <= 2.0
    assert by_name["WASM3"].run_us < by_name["rBPF"].run_us
    for script in ("RIOTjs", "MicroPython"):
        assert 400 <= by_name[script].run_us / native <= 800
    assert 25 <= by_name["WASM3"].run_us / native <= 50
    assert 40 <= by_name["rBPF"].run_us / native <= 100
    spread = max(m.cold_start_us for m in metrics) / by_name["rBPF"].cold_start_us
    assert spread > 500  # "startup time varies almost 1000 fold"
