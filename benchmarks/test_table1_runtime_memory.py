"""Table 1 — Memory requirements for Femto-Container runtimes.

Paper (Cortex-M4):
    WASM3        64 KiB ROM   85 KiB RAM
    rBPF        4.4 KiB ROM  0.6 KiB RAM
    RIOTjs      121 KiB ROM   18 KiB RAM
    MicroPython 101 KiB ROM  8.2 KiB RAM
    Host OS    52.5 KiB ROM 16.3 KiB RAM
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table
from repro.rtos import nrf52840
from repro.runtimes import all_candidates, host_os_ram_bytes, host_os_rom_bytes

PAPER_ROWS = {
    "WASM3": (64.0, 85.0),
    "rBPF": (4.4, 0.6),
    "RIOTjs": (121.0, 18.0),
    "MicroPython": (101.0, 8.2),
}


def collect():
    board = nrf52840()
    metrics = {}
    for candidate in all_candidates():
        m = candidate.fletcher32_metrics(board)
        if m.name != "Native C":
            metrics[m.name] = m
    return metrics


def test_table1_runtime_memory(benchmark):
    metrics = benchmark(collect)

    rows = []
    for name in ("WASM3", "rBPF", "RIOTjs", "MicroPython"):
        m = metrics[name]
        paper_rom, paper_ram = PAPER_ROWS[name]
        rows.append([
            name,
            f"{m.rom_bytes / 1024:.1f}",
            f"{paper_rom:.1f}",
            f"{m.ram_bytes / 1024:.2f}",
            f"{paper_ram:.2f}",
        ])
    rows.append([
        "Host OS (no VM)",
        f"{host_os_rom_bytes() / 1024:.1f}", "52.5",
        f"{host_os_ram_bytes() / 1024:.2f}", "16.30",
    ])
    record("table1_runtime_memory", format_table(
        ["Runtime", "ROM KiB", "paper", "RAM KiB", "paper"], rows,
        title="Table 1: memory requirements for Femto-Container runtimes",
    ))

    # Shape assertions (who wins, by what factor).
    rbpf = metrics["rBPF"]
    for name in ("WASM3", "RIOTjs", "MicroPython"):
        assert metrics[name].rom_bytes >= 10 * rbpf.rom_bytes
    assert metrics["WASM3"].ram_bytes / rbpf.ram_bytes >= 100
    assert rbpf.rom_bytes / host_os_rom_bytes() < 0.10
