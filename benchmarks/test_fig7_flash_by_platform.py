"""Fig 7 — Flash requirement for the engine builds across platforms.

Paper: grouped bars for rBPF / Femto-Containers / CertFC on Cortex-M4,
ESP32 and RISC-V, all under ~4.5 kB, CertFC always the smallest.
"""

from __future__ import annotations

from conftest import record

from repro.analysis import bar_chart
from repro.rtos import all_boards
from repro.rtos.firmware import engine_flash_bytes

IMPLEMENTATIONS = ("rbpf", "femto-containers", "certfc")


def collect():
    boards = all_boards()
    return boards, {
        implementation: [
            engine_flash_bytes(implementation, board) for board in boards
        ]
        for implementation in IMPLEMENTATIONS
    }


def test_fig7_flash_by_platform(benchmark):
    boards, series = benchmark(collect)

    record("fig7_flash_by_platform", bar_chart(
        "Fig 7: flash requirement per implementation and platform",
        [board.name for board in boards],
        series,
        unit="B",
    ))

    for index, board in enumerate(boards):
        rbpf = series["rbpf"][index]
        femto = series["femto-containers"][index]
        certfc = series["certfc"][index]
        # Shapes: rBPF and Femto-Containers are nearly identical; CertFC is
        # roughly half; everything fits in the figure's 4.5 kB axis.
        assert abs(rbpf - femto) / rbpf < 0.05
        assert 0.35 <= certfc / rbpf <= 0.60
        assert certfc < femto < 4600
        assert rbpf <= 4600
    # ESP32 code is the largest, RISC-V (compressed ISA) the smallest.
    assert series["rbpf"][1] == max(series["rbpf"])
    assert series["rbpf"][2] == min(series["rbpf"])
