"""§11 ablations — the paper's discussion-section design alternatives.

1. *Install time vs execution time*: transpiling eBPF to native closures at
   install time trades a one-off install cost for per-run speedup; we
   measure the crossover in runs.
2. *Fixed- vs variable-length instructions*: re-encoding the instruction
   stream without the unused fields ("the immediate field is not used with
   half of the instructions") shrinks images by roughly half.
3. *Virtualization vs power efficiency*: updating a container image over
   the radio costs far less energy than shipping a whole firmware.
"""

from __future__ import annotations

from conftest import record

from repro.analysis import format_table
from repro.rtos import nrf52840, update_energy_uj
from repro.rtos.firmware import FirmwareImage
from repro.vm import Interpreter, compile_program
from repro.vm.compress import analyze
from repro.vm.memory import Permission
from repro.workloads import (
    FLETCHER32_INPUT,
    coap_handler_program,
    fletcher32_program,
    sensor_program,
    thread_counter_program,
)
from repro.workloads.fletcher32 import INPUT_BASE, make_context


def jit_crossover():
    board = nrf52840()
    program = fletcher32_program()

    interp = Interpreter(program)
    interp.access_list.grant_bytes("in", INPUT_BASE, FLETCHER32_INPUT,
                                   Permission.READ)
    interp_run = interp.run(context=make_context())
    interp_cycles = board.vm_execution_cycles(interp_run.stats,
                                              "femto-containers")

    jit = compile_program(program)
    jit.access_list.grant_bytes("in", INPUT_BASE, FLETCHER32_INPUT,
                                Permission.READ)
    jit_run = jit.run(context=make_context())
    jit_cycles = board.vm_execution_cycles(jit_run.stats, "jit")
    install_cycles = (jit.install_instruction_count
                      * board.jit_install_cycles_per_slot)

    assert interp_run.value == jit_run.value
    saving = interp_cycles - jit_cycles
    crossover_runs = -(-install_cycles // saving)
    return board, interp_cycles, jit_cycles, install_cycles, crossover_runs


def test_jit_install_vs_execution(benchmark):
    board, interp, jit, install, crossover = benchmark(jit_crossover)

    rows = [
        ["interpreted run", f"{board.us(interp):.0f} us"],
        ["transpiled run", f"{board.us(jit):.0f} us"],
        ["speedup", f"{interp / jit:.1f}x"],
        ["install cost (one-off)", f"{board.us(install):.0f} us"],
        ["crossover", f"{crossover} run(s)"],
    ]
    record("sec11_jit", format_table(
        ["Quantity", "value"], rows,
        title="Sec 11 ablation: install-time transpilation (fletcher32, M4)",
    ))

    assert interp / jit > 5          # "can result into a speed-up"
    assert crossover <= 3            # pays for itself almost immediately


def test_variable_length_encoding(benchmark):
    programs = {
        "fletcher32": fletcher32_program(),
        "thread-counter": thread_counter_program(),
        "sensor": sensor_program(),
        "coap-formatter": coap_handler_program(),
    }

    def analyze_all():
        return {name: analyze(program) for name, program in programs.items()}

    stats = benchmark(analyze_all)

    rows = [
        [name, s.original_bytes, s.compressed_bytes,
         f"{s.saving_percent:.1f}%"]
        for name, s in stats.items()
    ]
    record("sec11_compression", format_table(
        ["Program", "fixed B", "variable B", "saving"], rows,
        title="Sec 11 ablation: fixed- vs variable-length instructions",
    ))

    for name, s in stats.items():
        # "would reduce the instructions to 32 bits in size" for about half
        # the instructions -> expect 30-60 % total savings.
        assert 30.0 <= s.saving_percent <= 65.0, name


def test_update_energy_vs_virtualization(benchmark):
    """§11: network-transfer savings offset interpretation overhead."""
    board = nrf52840()
    container_image = coap_handler_program().to_bytes()
    firmware_image = FirmwareImage.riot_base(board).flash_bytes

    def compare():
        container = update_energy_uj(board, len(container_image))
        firmware = update_energy_uj(board, firmware_image)
        return container, firmware

    container_uj, firmware_uj = benchmark(compare)
    rows = [
        ["container update", f"{len(container_image)} B",
         f"{container_uj:,.0f} uJ"],
        ["full firmware update", f"{firmware_image} B",
         f"{firmware_uj:,.0f} uJ"],
        ["ratio", "", f"{firmware_uj / container_uj:.0f}x"],
    ]
    record("sec11_update_energy", format_table(
        ["Update", "payload", "radio+install energy"], rows,
        title="Sec 11 ablation: update energy, container vs full firmware",
    ))
    assert firmware_uj / container_uj > 50
