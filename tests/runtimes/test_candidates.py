"""§6 candidate comparison: Tables 1 & 2 shape assertions."""

from __future__ import annotations

import pytest

from repro.rtos import nrf52840
from repro.runtimes import (
    all_candidates,
    host_os_rom_bytes,
    NativeCandidate,
    RbpfCandidate,
    ScriptCandidate,
    WasmCandidate,
    MICROPYTHON_PROFILE,
    RIOTJS_PROFILE,
)
from repro.workloads.fletcher32 import FLETCHER32_INPUT, fletcher32_reference


@pytest.fixture(scope="module")
def metrics():
    board = nrf52840()
    return {c.name: c.fletcher32_metrics(board) for c in all_candidates()}


class TestCorrectness:
    def test_every_candidate_computes_the_same_checksum(self, metrics):
        expected = fletcher32_reference(FLETCHER32_INPUT)
        for name, m in metrics.items():
            assert m.result == expected, name


class TestTable1Shape:
    def test_rbpf_rom_10x_smaller_than_all(self, metrics):
        """§6 headline: 'a Femto-Container runtime based on eBPF
        virtualization requires 10x less memory footprint'."""
        rbpf = metrics["rBPF"].rom_bytes
        for name in ("WASM3", "RIOTjs", "MicroPython"):
            assert metrics[name].rom_bytes >= 10 * rbpf, name

    def test_rom_ordering_matches_paper(self, metrics):
        assert (metrics["rBPF"].rom_bytes
                < metrics["WASM3"].rom_bytes
                < metrics["MicroPython"].rom_bytes
                < metrics["RIOTjs"].rom_bytes)

    def test_ram_extremes_paper_ratios(self, metrics):
        """'the biggest RAM budget requires 140 times more RAM than the
        smallest budget' (wasm vs rbpf)."""
        ratio = metrics["WASM3"].ram_bytes / metrics["rBPF"].ram_bytes
        assert 100 <= ratio <= 180

    def test_script_interpreters_need_100kb_class_rom(self, metrics):
        for name in ("RIOTjs", "MicroPython"):
            assert metrics[name].rom_bytes > 100_000

    def test_rbpf_ram_is_one_instance(self, metrics):
        assert metrics["rBPF"].ram_bytes == 620  # Table 1's 0.6 kB

    def test_rom_overhead_vs_host_os(self, metrics):
        """Fig 2: rBPF adds ~8 %, MicroPython ~200 % to the OS image."""
        host = host_os_rom_bytes()
        assert metrics["rBPF"].rom_bytes / host < 0.10
        assert metrics["MicroPython"].rom_bytes / host > 1.5


class TestTable2Shape:
    def test_native_is_fastest(self, metrics):
        native = metrics["Native C"].run_us
        for name, m in metrics.items():
            if name != "Native C":
                assert m.run_us > 10 * native, name

    def test_script_interpreters_about_600x_slower(self, metrics):
        native = metrics["Native C"].run_us
        for name in ("RIOTjs", "MicroPython"):
            slowdown = metrics[name].slowdown_vs(native)
            assert 400 <= slowdown <= 800, (name, slowdown)

    def test_wasm_about_2x_faster_than_rbpf_at_runtime(self, metrics):
        ratio = metrics["rBPF"].run_us / metrics["WASM3"].run_us
        assert 1.3 <= ratio <= 3.0

    def test_cold_start_spread_about_1000x(self, metrics):
        """'startup time varies almost 1000 fold'."""
        fastest = metrics["rBPF"].cold_start_us
        slowest = max(m.cold_start_us for m in metrics.values())
        assert slowest / fastest > 500

    def test_rbpf_cold_start_is_microseconds(self, metrics):
        assert metrics["rBPF"].cold_start_us <= 2.0

    def test_transcoding_runtimes_pay_startup(self, metrics):
        """WASM3 and MicroPython pre-process; rBPF does not."""
        assert metrics["WASM3"].cold_start_us > 10_000
        assert metrics["MicroPython"].cold_start_us > 15_000
        assert metrics["RIOTjs"].cold_start_us > 3_000

    def test_code_size_ordering(self, metrics):
        assert (metrics["Native C"].code_size
                < metrics["WASM3"].code_size
                < metrics["rBPF"].code_size
                < metrics["MicroPython"].code_size
                < metrics["RIOTjs"].code_size)


class TestCandidateIndependence:
    def test_candidates_are_reusable(self):
        board = nrf52840()
        candidate = WasmCandidate()
        first = candidate.fletcher32_metrics(board)
        second = candidate.fletcher32_metrics(board)
        assert first.run_us == second.run_us

    def test_profiles_differ(self):
        board = nrf52840()
        upy = ScriptCandidate(MICROPYTHON_PROFILE).fletcher32_metrics(board)
        js = ScriptCandidate(RIOTJS_PROFILE).fletcher32_metrics(board)
        assert upy.cold_start_us > js.cold_start_us
        assert upy.rom_bytes != js.rom_bytes

    def test_native_and_rbpf_candidates(self):
        board = nrf52840()
        native = NativeCandidate().fletcher32_metrics(board)
        rbpf = RbpfCandidate().fletcher32_metrics(board)
        assert 20 <= native.run_us <= 35           # paper: 27 us
        assert 1000 <= rbpf.run_us <= 2500         # paper: 2133 us
