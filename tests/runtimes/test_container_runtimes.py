"""The ContainerRuntime registry: one engine hosting three runtimes.

The tentpole contract of the multi-runtime deploy plane:

* the registry resolves runtime tags to :class:`ContainerRuntime`
  implementations (and refuses unknown tags);
* runtime-tagged content addressing — the same bytes under two runtimes
  are two *distinct* images, while rBPF keeps its historical untagged
  hash so seed-era content addresses are unchanged;
* modelled cycles for Wasm and script containers come from their §6
  profiles, so they are identical across engine implementations (the
  engine implementation choice only governs the rBPF cost model);
* attach charges each runtime's startup cost (JIT/verify for rBPF,
  module instantiation for Wasm, parsing for script);
* broken payloads are refused at decode/attach, exactly like an rBPF
  image that fails pre-flight verification.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT, HostingEngine
from repro.core.hooks import Hook, HookMode
from repro.deploy import ImageSpec
from repro.rtos import Kernel
from repro.runtimes import (
    RUNTIME_RBPF,
    RUNTIME_SCRIPT,
    RUNTIME_WASM,
    MICROPYTHON_PROFILE,
    WASM3_PROFILE,
    UnknownRuntimeError,
    container_runtime,
    runtime_names,
)
from repro.runtimes.sources import SCRIPT_FLETCHER32_PY, WASM_FLETCHER32
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads import FLETCHER32_INPUT, fletcher32_reference

IMPLEMENTATIONS = ("rbpf", "femto-containers", "certfc", "jit")


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def engine_with(spec: ImageSpec, implementation: str = "jit",
                name: str = "app") -> tuple[HostingEngine, object]:
    engine = HostingEngine(Kernel(), implementation=implementation)
    engine.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.SYNC))
    container = engine.load(spec.instantiate(name), name=name)
    engine.attach(container, FC_HOOK_FANOUT)
    return engine, container


class TestRegistry:
    def test_builtin_runtimes_resolve(self):
        assert container_runtime(RUNTIME_RBPF).name == "rbpf"
        assert container_runtime(RUNTIME_WASM).name == "wasm"
        assert container_runtime(RUNTIME_SCRIPT).name == "script"

    def test_resolution_is_cached(self):
        assert container_runtime("wasm") is container_runtime("wasm")

    def test_unknown_tag_refused(self):
        with pytest.raises(UnknownRuntimeError, match="lua"):
            container_runtime("lua")

    def test_runtime_names_lists_builtins(self):
        assert {"rbpf", "wasm", "script"} <= runtime_names()

    def test_rom_footprints_follow_profiles(self):
        from repro.runtimes.profiles import WASM3_ROM

        assert container_runtime("wasm").rom_bytes == WASM3_ROM
        assert (container_runtime("script").rom_bytes
                == MICROPYTHON_PROFILE.rom_bytes)


class TestContentAddressing:
    def test_same_bytes_two_runtimes_two_images(self):
        payload = SCRIPT_FLETCHER32_PY.encode()
        script = ImageSpec(name="x", text=payload, runtime="script")
        wasm = ImageSpec(name="x", text=payload, runtime="wasm")
        assert script.image_hash != wasm.image_hash

    def test_rbpf_hash_is_the_historical_untagged_hash(self):
        program = assemble("mov r0, 7\n    exit")
        spec = ImageSpec.from_program(program)
        assert spec.image_hash == program.image_hash

    def test_instance_hash_matches_spec_hash(self):
        for spec in (ImageSpec.from_wasm(WASM_FLETCHER32),
                     ImageSpec.from_script(SCRIPT_FLETCHER32_PY)):
            assert spec.instantiate().image_hash == spec.image_hash


class TestProfileCycles:
    """Wasm/script cost models are engine-implementation-independent."""

    @pytest.mark.parametrize("spec", [
        ImageSpec.from_wasm(WASM_FLETCHER32, name="wasm-sum"),
        ImageSpec.from_script(SCRIPT_FLETCHER32_PY, name="script-sum"),
    ], ids=["wasm", "script"])
    def test_cycles_identical_across_implementations(self, spec):
        ref = fletcher32_reference(FLETCHER32_INPUT)
        observed = set()
        for implementation in IMPLEMENTATIONS:
            engine, container = engine_with(spec, implementation)
            run = engine.execute(container,
                                 context=bytearray(FLETCHER32_INPUT))
            assert run.ok and run.value == ref
            observed.add(run.cycles)
        assert len(observed) == 1

    def test_wasm_attach_charges_instantiation(self):
        spec = ImageSpec.from_wasm(WASM_FLETCHER32)
        engine = HostingEngine(Kernel())
        engine.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.SYNC))
        container = engine.load(spec.instantiate(), name="w")
        before = engine.kernel.clock.cycles
        engine.attach(container, FC_HOOK_FANOUT)
        charged = engine.kernel.clock.cycles - before
        expected = (WASM3_PROFILE.startup_base_cycles
                    + WASM3_PROFILE.startup_cycles_per_byte
                    * len(spec.text))
        assert charged >= expected

    def test_script_attach_charges_parsing(self):
        spec = ImageSpec.from_script(SCRIPT_FLETCHER32_PY)
        image = spec.instantiate()
        engine = HostingEngine(Kernel())
        engine.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.SYNC))
        container = engine.load(image, name="s")
        before = engine.kernel.clock.cycles
        engine.attach(container, FC_HOOK_FANOUT)
        charged = engine.kernel.clock.cycles - before
        expected = (MICROPYTHON_PROFILE.parse_base_cycles
                    + MICROPYTHON_PROFILE.parse_cycles_per_token
                    * image.tokens)
        assert charged >= expected

    def test_script_dominates_wasm_dominates_rbpf_per_run(self):
        """The §6 ordering: script >> wasm > rBPF modelled cycles."""
        from repro.vm.memory import Permission
        from repro.workloads import fletcher32_program
        from repro.workloads.fletcher32 import INPUT_BASE, make_context

        cycles = {}
        for key, spec in (
            ("rbpf", ImageSpec.from_program(fletcher32_program())),
            ("wasm", ImageSpec.from_wasm(WASM_FLETCHER32)),
            ("script", ImageSpec.from_script(SCRIPT_FLETCHER32_PY)),
        ):
            engine, container = engine_with(spec, "jit")
            if key == "rbpf":
                # The eBPF program takes a {data_ptr, len} context and
                # reads the buffer through a granted region.
                container.vm.access_list.grant_bytes(
                    "in", INPUT_BASE, FLETCHER32_INPUT, Permission.READ)
                context = bytearray(make_context())
            else:
                context = bytearray(FLETCHER32_INPUT)
            run = engine.execute(container, context=context)
            assert run.ok, run.fault
            assert run.value == fletcher32_reference(FLETCHER32_INPUT)
            cycles[key] = run.cycles
        assert cycles["script"] > cycles["wasm"] > cycles["rbpf"]


class TestDecodeRefusal:
    def test_wasm_garbage_payload_refused(self):
        spec = ImageSpec(name="bad", text=b"\x00garbage", runtime="wasm")
        with pytest.raises(Exception):
            spec.instantiate()

    def test_script_syntax_error_refused(self):
        spec = ImageSpec(name="bad", text=b"func {{{", runtime="script")
        with pytest.raises(Exception):
            spec.instantiate()

    def test_wasm_rejects_data_sections(self):
        runtime = container_runtime("wasm")
        with pytest.raises(Exception):
            runtime.decode(b"\x00", rodata=b"x")

    def test_script_rejects_data_sections(self):
        runtime = container_runtime("script")
        with pytest.raises(Exception):
            runtime.decode(b"return 1;", data=b"x")


class TestEngineIntegration:
    def test_container_records_its_runtime(self):
        engine, container = engine_with(ImageSpec.from_wasm(WASM_FLETCHER32))
        assert container.runtime is container_runtime("wasm")
        assert container.program.runtime == "wasm"

    def test_ram_accounting_spans_runtimes(self):
        engine, container = engine_with(
            ImageSpec.from_script(SCRIPT_FLETCHER32_PY))
        assert container.ram_bytes >= MICROPYTHON_PROFILE.ram_bytes
        assert engine.total_ram_bytes() > 0

    def test_shell_lists_runtime_column(self):
        from repro.rtos.shell import DeviceShell

        engine, container = engine_with(ImageSpec.from_wasm(WASM_FLETCHER32))
        text = DeviceShell(engine).execute("fc list")
        header, row = text.splitlines()[0], text.splitlines()[1]
        assert "runtime" in header
        assert "wasm" in row

    def test_replace_swaps_wasm_image_in_place(self):
        spec = ImageSpec.from_wasm(WASM_FLETCHER32, name="sum")
        engine, container = engine_with(spec)
        other = ImageSpec.from_wasm(
            "module pages=1\nfunc main params=1 locals=0\n"
            "    i32.const 42\n    return\nend\n", name="sum")
        replacement = engine.replace(container, other.instantiate("sum"))
        run = engine.execute(replacement, context=b"\x00" * 16)
        assert run.ok and run.value == 42
