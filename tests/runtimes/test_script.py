"""Mini scripting language: lexer, parser, evaluator, error handling."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.runtimes.script import (
    Interpreter,
    ScriptRuntimeError,
    ScriptSyntaxError,
    parse,
    run_source,
    tokenize,
)


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize('var x = 0x1f + 2; # comment\n"str"')
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "name", "op", "int", "op", "int", "op",
                         "string", "eof"]

    def test_hex_and_decimal_values(self):
        tokens = tokenize("0xff 255")
        assert tokens[0].value == 255 and tokens[1].value == 255

    def test_multichar_operators(self):
        tokens = tokenize("a << 2 >= b")
        assert [t.text for t in tokens[:4]] == ["a", "<<", "2", ">="]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_unterminated_string_raises(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize('"never closed')

    def test_unknown_character_raises(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize("a @ b")


class TestParser:
    def test_precedence(self):
        result, _stats = run_source("return 2 + 3 * 4;")
        assert result == 14

    def test_parentheses_override(self):
        result, _stats = run_source("return (2 + 3) * 4;")
        assert result == 20

    def test_shift_binds_looser_than_add(self):
        result, _stats = run_source("return 1 << 1 + 1;")
        assert result == 4

    def test_comparison_chain(self):
        result, _stats = run_source("return 1 < 2 == true;")
        assert result is True

    def test_missing_semicolon_raises(self):
        with pytest.raises(ScriptSyntaxError, match="expected"):
            parse("return 1")

    def test_unterminated_block_raises(self):
        with pytest.raises(ScriptSyntaxError):
            parse("while (1) { return 1;")


class TestEvaluation:
    def test_variables_and_assignment(self):
        result, _ = run_source("var x = 1; x = x + 41; return x;")
        assert result == 42

    def test_while_loop(self):
        result, _ = run_source("""
var total = 0;
var i = 1;
while (i <= 10) { total = total + i; i = i + 1; }
return total;
""")
        assert result == 55

    def test_if_else_chain(self):
        source = """
var x = {value};
if (x > 10) {{ return 1; }}
else if (x > 5) {{ return 2; }}
else {{ return 3; }}
"""
        assert run_source(source.format(value=20))[0] == 1
        assert run_source(source.format(value=7))[0] == 2
        assert run_source(source.format(value=1))[0] == 3

    def test_function_definition_and_call(self):
        result, _ = run_source("""
func square(x) { return x * x; }
return square(6) + square(1);
""")
        assert result == 37

    def test_recursion(self):
        result, _ = run_source("""
func fact(n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
return fact(6);
""")
        assert result == 720

    def test_function_scope_isolated(self):
        result, _ = run_source("""
var x = 1;
func shadow() { var x = 99; return x; }
shadow();
return x;
""")
        assert result == 1

    def test_bytes_indexing_builtin(self):
        result, _ = run_source("return data[1];",
                               builtins={"data": b"\x0a\x0b"})
        assert result == 0x0B

    def test_len_builtin(self):
        result, _ = run_source("return len(data);", builtins={"data": b"abc"})
        assert result == 3

    def test_logical_short_circuit(self):
        result, _ = run_source("""
var hits = 0;
func bump() { hits = hits + 1; return true; }
var r = false && bump();
return hits;
""")
        assert result == 0

    def test_string_concat(self):
        result, _ = run_source('return "ab" + "cd";')
        assert result == "abcd"


class TestRuntimeErrors:
    def test_unknown_name(self):
        with pytest.raises(ScriptRuntimeError, match="unknown name"):
            run_source("return ghost;")

    def test_assignment_to_undeclared(self):
        with pytest.raises(ScriptRuntimeError, match="undeclared"):
            run_source("ghost = 1;")

    def test_division_by_zero(self):
        with pytest.raises(ScriptRuntimeError, match="division by zero"):
            run_source("return 1 / 0;")

    def test_index_out_of_range(self):
        with pytest.raises(ScriptRuntimeError, match="out of range"):
            run_source("return data[9];", builtins={"data": b"ab"})

    def test_wrong_arity(self):
        with pytest.raises(ScriptRuntimeError, match="expects"):
            run_source("func f(a) { return a; } return f(1, 2);")

    def test_unknown_function(self):
        with pytest.raises(ScriptRuntimeError, match="unknown function"):
            run_source("return missing();")

    def test_loop_budget(self):
        interp = Interpreter.from_source("while (true) { }")
        interp.MAX_LOOP_ITERATIONS = 100
        with pytest.raises(ScriptRuntimeError, match="limit"):
            interp.run()

    def test_type_error_indexing_int(self):
        with pytest.raises(ScriptRuntimeError, match="not indexable"):
            run_source("var x = 1; return x[0];")


class TestStats:
    def test_visits_counted_by_class(self):
        _result, stats = run_source("var x = 1; return x + 1;")
        assert stats.class_counts["assign"] == 1
        assert stats.class_counts["binop"] == 1
        assert stats.visits > 3

    @given(n=st.integers(0, 50))
    def test_loop_visits_scale_linearly(self, n):
        source = f"var i = 0; while (i < {n}) {{ i = i + 1; }} return i;"
        result, stats = run_source(source)
        assert result == n
        # one check per iteration, the failing exit check, and the return
        assert stats.class_counts["control"] == n + 2
