"""Mini-WebAssembly VM: codec, validation, execution, traps."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.runtimes.wasm import (
    Module,
    PAGE_SIZE,
    WasmError,
    WasmInstance,
    WasmTrap,
    assemble,
    validate,
)
from repro.runtimes.wasm.module import decode_varint, encode_varint


class TestVarint:
    @given(value=st.integers(-(2**40), 2**40))
    def test_roundtrip(self, value):
        decoded, pos = decode_varint(encode_varint(value), 0)
        assert decoded == value

    def test_small_values_one_byte(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(63)) == 1
        assert len(encode_varint(-64)) == 1


class TestModuleCodec:
    SOURCE = """
module pages=1
func main params=1 locals=1
    local.get 0
    i32.const 2
    i32.mul
    return
end
"""

    def test_encode_decode_roundtrip(self):
        module = assemble(self.SOURCE)
        decoded = Module.decode(module.encode())
        assert decoded.memory_pages == 1
        assert decoded.functions[0].body == module.functions[0].body

    def test_bad_magic_rejected(self):
        with pytest.raises(WasmError):
            Module.decode(b"\x00bad" + bytes(8))

    def test_code_size_positive(self):
        assert assemble(self.SOURCE).code_size > 8


class TestExecution:
    def run(self, source: str, args: list[int] | None = None,
            memory: bytes = b"") -> int:
        instance = WasmInstance(assemble(source))
        if memory:
            instance.write_memory(0, memory)
        return instance.run(args or [])

    def test_arithmetic(self):
        assert self.run("""
module pages=1
func main params=1 locals=0
    local.get 0
    i32.const 2
    i32.mul
    return
end
""", [21]) == 42

    def test_locals_and_tee(self):
        assert self.run("""
module pages=1
func main params=0 locals=2
    i32.const 5
    local.tee 0
    local.set 1
    local.get 0
    local.get 1
    i32.add
    return
end
""") == 10

    def test_if_else_both_arms(self):
        source = """
module pages=1
func main params=1 locals=1
    local.get 0
    if
        i32.const 100
        local.set 1
    else
        i32.const 200
        local.set 1
    end
    local.get 1
    return
end
"""
        assert self.run(source, [1]) == 100
        assert self.run(source, [0]) == 200

    def test_if_without_else_skips(self):
        source = """
module pages=1
func main params=1 locals=1
    i32.const 7
    local.set 1
    local.get 0
    if
        i32.const 9
        local.set 1
    end
    local.get 1
    return
end
"""
        assert self.run(source, [0]) == 7
        assert self.run(source, [1]) == 9

    def test_loop_with_br_if(self):
        # sum 1..10 = 55
        assert self.run("""
module pages=1
func main params=0 locals=2
    i32.const 10
    local.set 0
    loop
        local.get 1
        local.get 0
        i32.add
        local.set 1
        local.get 0
        i32.const 1
        i32.sub
        local.tee 0
        i32.const 0
        i32.ne
        br_if 0
    end
    local.get 1
    return
end
""") == 55

    def test_block_br_exits_forward(self):
        assert self.run("""
module pages=1
func main params=0 locals=1
    block
        i32.const 1
        local.set 0
        br 0
        i32.const 99
        local.set 0
    end
    local.get 0
    return
end
""") == 1

    def test_memory_load_store(self):
        assert self.run("""
module pages=1
func main params=0 locals=0
    i32.const 16
    i32.const 258
    i32.store 0
    i32.const 16
    i32.load16_u 0
    return
end
""") == 258

    def test_load_with_offset_immediate(self):
        assert self.run("""
module pages=1
func main params=0 locals=0
    i32.const 0
    i32.load8_u 3
    return
end
""", memory=b"\x00\x01\x02\x07") == 7

    def test_function_call(self):
        assert self.run("""
module pages=1
func main params=0 locals=0
    i32.const 20
    i32.const 22
    call 1
    return
end
func add2 params=2 locals=0
    local.get 0
    local.get 1
    i32.add
    return
end
""") == 42

    def test_wrap_around_32bit(self):
        assert self.run("""
module pages=1
func main params=0 locals=0
    i32.const -1
    i32.const 2
    i32.add
    return
end
""") == 1


class TestTraps:
    def trap(self, source: str, args=None):
        instance = WasmInstance(assemble(source))
        with pytest.raises(WasmTrap):
            instance.run(args or [])

    def test_out_of_bounds_load_traps(self):
        self.trap(f"""
module pages=1
func main params=0 locals=0
    i32.const {PAGE_SIZE}
    i32.load 0
    return
end
""")

    def test_division_by_zero_traps(self):
        self.trap("""
module pages=1
func main params=0 locals=0
    i32.const 1
    i32.const 0
    i32.div_u
    return
end
""")

    def test_unreachable_traps(self):
        self.trap("""
module pages=1
func main params=0 locals=0
    unreachable
end
""")

    def test_call_stack_exhaustion_traps(self):
        self.trap("""
module pages=1
func main params=0 locals=0
    call 0
    return
end
""")

    def test_host_memory_respects_page_bounds(self):
        instance = WasmInstance(assemble("""
module pages=1
func main params=0 locals=0
    i32.const 0
    return
end
"""))
        with pytest.raises(WasmTrap):
            instance.write_memory(PAGE_SIZE - 1, b"xx")


class TestValidator:
    def test_branch_depth_out_of_range(self):
        module = assemble("""
module pages=1
func main params=0 locals=0
    block
        br 5
    end
    return
end
""")
        with pytest.raises(WasmError, match="depth"):
            validate(module)

    def test_unknown_call_target(self):
        module = assemble("""
module pages=1
func main params=0 locals=0
    call 9
    return
end
""")
        with pytest.raises(WasmError, match="unknown function"):
            validate(module)

    def test_local_out_of_range(self):
        module = assemble("""
module pages=1
func main params=0 locals=1
    local.get 5
    return
end
""")
        with pytest.raises(WasmError, match="local"):
            validate(module)

    def test_unbalanced_end_rejected_by_assembler(self):
        with pytest.raises(WasmError):
            assemble("""
module pages=1
func main params=0 locals=0
    end
    return
end
""")


class TestFootprint:
    def test_ram_includes_the_64k_page_floor(self):
        """The paper's explanation of WASM3's RAM: the spec-mandated page."""
        instance = WasmInstance(assemble("""
module pages=1
func main params=0 locals=0
    i32.const 0
    return
end
"""))
        assert instance.ram_bytes >= PAGE_SIZE

    def test_stats_count_executed_ops(self):
        instance = WasmInstance(assemble("""
module pages=1
func main params=0 locals=0
    i32.const 1
    i32.const 2
    i32.add
    return
end
"""))
        instance.run([])
        assert instance.stats.executed == 4
        assert instance.stats.class_counts["alu"] == 1
