"""Cross-runtime differential tests: all engines agree on fletcher32.

The §6 comparison only makes sense if every candidate really computes the
same function; these property tests check it on random inputs, which also
exercises the wasm VM's memory path and the script interpreter's
arithmetic far beyond the canonical 360 B input.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.runtimes.script.interp import run_source
from repro.runtimes.sources import SCRIPT_FLETCHER32_PY, WASM_FLETCHER32
from repro.runtimes.wasm.asm import assemble as wasm_assemble
from repro.runtimes.wasm.interpreter import WasmInstance
from repro.workloads.fletcher32 import fletcher32_reference

_even_binary = st.binary(min_size=2, max_size=400).filter(
    lambda b: len(b) % 2 == 0)


@settings(max_examples=25, deadline=None)
@given(data=_even_binary)
def test_wasm_matches_reference(data):
    instance = WasmInstance(wasm_assemble(WASM_FLETCHER32))
    instance.write_memory(0, data)
    assert instance.run([len(data)]) == fletcher32_reference(data)


@settings(max_examples=25, deadline=None)
@given(data=_even_binary)
def test_script_matches_reference(data):
    result, _stats = run_source(SCRIPT_FLETCHER32_PY,
                                builtins={"input": data, "len": len})
    assert result == fletcher32_reference(data)


@settings(max_examples=10, deadline=None)
@given(data=st.binary(min_size=720, max_size=1200).filter(
    lambda b: len(b) % 2 == 0))
def test_wasm_handles_multi_block_inputs(data):
    """Inputs above 359 words exercise the modulo-reduction branch."""
    instance = WasmInstance(wasm_assemble(WASM_FLETCHER32))
    instance.write_memory(0, data)
    assert instance.run([len(data)]) == fletcher32_reference(data)


def test_all_five_engines_agree_on_one_input():
    from repro.vm import Interpreter
    from repro.vm.memory import Permission
    from repro.workloads.fletcher32 import (
        INPUT_BASE,
        fletcher32_program,
        make_context,
    )

    data = bytes(range(256)) + bytes(104)
    expected = fletcher32_reference(data)

    vm = Interpreter(fletcher32_program())
    vm.access_list.grant_bytes("in", INPUT_BASE, data, Permission.READ)
    assert vm.run(context=make_context(len(data))).value == expected

    instance = WasmInstance(wasm_assemble(WASM_FLETCHER32))
    instance.write_memory(0, data)
    assert instance.run([len(data)]) == expected

    result, _ = run_source(SCRIPT_FLETCHER32_PY,
                           builtins={"input": data, "len": len})
    assert result == expected
