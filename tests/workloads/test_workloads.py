"""The paper's example applications, validated against references."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FC_HOOK_SCHED, FC_HOOK_TIMER
from repro.rtos import synthetic_temperature
from repro.vm import CertFCInterpreter, Interpreter, compile_program, verify
from repro.vm.memory import Permission
from repro.workloads import (
    FLETCHER32_INPUT,
    fletcher32_program,
    fletcher32_reference,
    sensor_program,
    thread_counter_program,
)
from repro.workloads.fletcher32 import INPUT_BASE, make_context
from repro.workloads.microbench import FIG8_INSTRUCTIONS, all_pairs, build_pair


class TestFletcher32:
    def test_reference_known_value(self):
        # Classic test vector: fletcher32("abcde") with trailing zero pad.
        assert fletcher32_reference(b"abcde") == 0xF04FC729

    def test_reference_known_value_abcdef(self):
        assert fletcher32_reference(b"abcdef") == 0x56502D2A

    def test_ebpf_matches_reference_on_canonical_input(self):
        program = fletcher32_program()
        vm = Interpreter(program)
        vm.access_list.grant_bytes("in", INPUT_BASE, FLETCHER32_INPUT,
                                   Permission.READ)
        result = vm.run(context=make_context())
        assert result.value == fletcher32_reference(FLETCHER32_INPUT)

    def test_null_context_returns_zero(self):
        assert Interpreter(fletcher32_program()).run().value == 0

    @settings(max_examples=20, deadline=None)
    @given(data=st.binary(min_size=2, max_size=720).filter(
        lambda b: len(b) % 2 == 0))
    def test_ebpf_matches_reference_property(self, data):
        program = fletcher32_program()
        for factory in (Interpreter, CertFCInterpreter, compile_program):
            vm = factory(program)
            vm.access_list.grant_bytes("in", INPUT_BASE, data, Permission.READ)
            result = vm.run(context=make_context(len(data)))
            assert result.value == fletcher32_reference(data)

    def test_long_input_crosses_block_boundary(self):
        """More than 359 words exercises the modulo-reduction path."""
        data = bytes(range(256)) * 4  # 1024 B = 512 words > 359
        program = fletcher32_program()
        vm = Interpreter(program)
        vm.access_list.grant_bytes("in", INPUT_BASE, data, Permission.READ)
        result = vm.run(context=make_context(len(data)))
        assert result.value == fletcher32_reference(data)

    def test_input_is_360_bytes(self):
        assert len(FLETCHER32_INPUT) == 360


class TestThreadCounter:
    def test_counts_only_nonzero_next(self, engine):
        container = engine.load(thread_counter_program())
        engine.attach(container, FC_HOOK_SCHED)
        engine.fire_hook(FC_HOOK_SCHED, struct.pack("<QQ", 1, 0))  # to idle
        assert engine.global_store.snapshot() == {}
        engine.fire_hook(FC_HOOK_SCHED, struct.pack("<QQ", 0, 3))
        engine.fire_hook(FC_HOOK_SCHED, struct.pack("<QQ", 3, 3))
        assert engine.global_store.snapshot() == {3: 2}

    def test_counter_accumulates_across_pids(self, engine):
        container = engine.load(thread_counter_program())
        engine.attach(container, FC_HOOK_SCHED)
        for next_pid in (1, 2, 1, 1, 2):
            engine.fire_hook(FC_HOOK_SCHED, struct.pack("<QQ", 0, next_pid))
        assert engine.global_store.snapshot() == {1: 3, 2: 2}


class TestSensor:
    def test_moving_average_converges(self, engine, kernel):
        engine.saul.register(
            synthetic_temperature(kernel, seed=2, swing_centi_c=0,
                                  noise_centi_c=0, base_centi_c=2000))
        tenant = engine.create_tenant("A")
        container = engine.load(sensor_program(), tenant=tenant)
        engine.attach(container, FC_HOOK_TIMER)
        for _ in range(5):
            run = engine.execute(container, struct.pack("<QQ", 0, 0))
            assert run.ok
        from repro.workloads import KEY_SENSOR_AVG, KEY_SENSOR_RAW

        assert tenant.store.fetch(KEY_SENSOR_AVG) == 2000
        assert tenant.store.fetch(KEY_SENSOR_RAW) == 2000

    def test_missing_sensor_reports_error_code(self, engine):
        tenant = engine.create_tenant("A")
        container = engine.load(sensor_program(), tenant=tenant)
        engine.attach(container, FC_HOOK_TIMER)
        run = engine.execute(container, struct.pack("<QQ", 0, 0))
        assert run.ok and run.value == 1


class TestMicrobench:
    def test_all_twelve_pairs_build_and_verify(self):
        for pair in all_pairs(iterations=4, unroll=2):
            verify(pair.measured)
            verify(pair.baseline)

    def test_measured_executes_more_than_baseline(self):
        pair = build_pair("alu_add", iterations=8, unroll=4)
        measured = Interpreter(pair.measured).run().stats.executed
        baseline = Interpreter(pair.baseline).run().stats.executed
        assert measured - baseline == 8 * 4

    def test_labels_match_fig8(self):
        labels = [label for _k, label, _s in FIG8_INSTRUCTIONS]
        assert labels[0] == "ALU negate"
        assert labels[-1] == "Branch equal (continue)"
        assert len(labels) == 12

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            build_pair("alu_frobnicate")
