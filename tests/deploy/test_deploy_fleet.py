"""Fleet rollouts and cross-board image-cache sharing.

The process-wide IMAGE_CACHE is keyed by content hash only, so a fleet of
*different* board models attaching the same image must share one verify
report and one JIT template — while every board's own virtual clock is
still charged its full modelled verify+install cost (the cache is a host
wall-clock effect, never a device-semantics change).
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT, FC_HOOK_TIMER, HostingEngine
from repro.deploy import Fleet, fanout_spec
from repro.rtos import Kernel, esp32_wroom32, gd32vf103, nrf52840
from repro.vm import Program
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads import thread_counter_program


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def expected_jit_attach_cycles(engine: HostingEngine) -> int:
    """Full modelled verify+install cost of every attach on ``engine``."""
    board = engine.kernel.board
    total = 0
    for container in engine.containers():
        total += len(container.program.slots) * board.verify_cycles_per_slot
        total += (container.vm.install_instruction_count
                  * board.jit_install_cycles_per_slot)
    return total


class TestCrossBoardSharing:
    def test_two_boards_share_one_report_and_one_template(self):
        raw = thread_counter_program().to_bytes()
        engines = [
            HostingEngine(Kernel(nrf52840()), implementation="jit"),
            HostingEngine(Kernel(esp32_wroom32()), implementation="jit"),
        ]
        containers = []
        for engine in engines:
            program = Program.from_bytes(raw, name="counter")
            container = engine.load(program, name="counter")
            engine.attach(container, FC_HOOK_TIMER)
            containers.append(container)

        # One image -> one cached verdict, one compiled template, shared
        # across board models.
        stats = IMAGE_CACHE.stats()
        assert stats["report_entries"] == 1
        assert stats["template_entries"] == 1
        assert containers[0].vm.template is containers[1].vm.template

        # ...but each board's virtual clock paid its own full price.
        for engine in engines:
            assert engine.kernel.clock.cycles \
                == expected_jit_attach_cycles(engine)

    def test_second_board_attach_is_pure_cache_hits(self):
        raw = thread_counter_program().to_bytes()
        first = HostingEngine(Kernel(nrf52840()), implementation="jit")
        container = first.load(Program.from_bytes(raw), name="c0")
        first.attach(container, FC_HOOK_TIMER)

        misses_before = IMAGE_CACHE.misses
        second = HostingEngine(Kernel(gd32vf103()), implementation="jit")
        container = second.load(Program.from_bytes(raw), name="c1")
        second.attach(container, FC_HOOK_TIMER)
        assert IMAGE_CACHE.misses == misses_before
        assert second.kernel.clock.cycles \
            == expected_jit_attach_cycles(second)


class TestFleetRollout:
    def test_heterogeneous_fleet_converges_every_device(self):
        fleet = Fleet([nrf52840(), esp32_wroom32(), gd32vf103()],
                      implementation="jit")
        spec = fanout_spec(tenants=2, instances_per_tenant=3)
        rollout = fleet.apply(spec)

        for device in fleet.devices:
            assert len(device.engine.containers()) == 6
            assert sorted(device.engine.tenants) == ["tenant-0", "tenant-1"]
        # One image across three board models: one verdict, one template.
        stats = IMAGE_CACHE.stats()
        assert stats["report_entries"] == 1
        assert stats["template_entries"] == 1
        # Devices 2..N attach through pure cache hits.
        for device_rollout in rollout.devices[1:]:
            assert device_rollout.cache_misses == 0
            assert device_rollout.cache_hits > 0
        # Each device's clock carries its own full modelled install cost.
        for device in fleet.devices:
            assert device.kernel.clock.cycles \
                == expected_jit_attach_cycles(device.engine)

    def test_rollout_is_idempotent_fleet_wide(self):
        fleet = Fleet(2, implementation="jit")
        spec = fanout_spec(tenants=1, instances_per_tenant=2)
        fleet.apply(spec)
        again = fleet.apply(spec)
        assert all(r.actions == 0 for r in again.devices)
        assert again.cycles_per_device() == [0, 0]

    def test_identical_boards_charge_identical_cycles(self):
        fleet = Fleet(4, implementation="jit")
        rollout = fleet.apply(fanout_spec(tenants=2, instances_per_tenant=2))
        cycles = rollout.cycles_per_device()
        assert len(set(cycles)) == 1 and cycles[0] > 0

    def test_fleet_accounting(self):
        fleet = Fleet(3, implementation="jit")
        fleet.apply(fanout_spec(tenants=1, instances_per_tenant=2))
        assert len(fleet.containers()) == 6
        assert fleet.total_ram_bytes() == sum(
            device.engine.total_ram_bytes() for device in fleet.devices)
        runs = fleet.fire_all(FC_HOOK_FANOUT)
        assert runs == 6
        for container in fleet.containers():
            assert container.runs == 1

    def test_fire_all_leaves_identical_stores_per_device(self):
        fleet = Fleet(3, implementation="jit")
        fleet.apply(fanout_spec(tenants=1, instances_per_tenant=2))
        import struct

        context = struct.pack("<QQ", 0, 5)
        fleet.fire_all(FC_HOOK_FANOUT, context)
        snapshots = [dict(device.engine.global_store.snapshot())
                     for device in fleet.devices]
        assert snapshots[0] and all(s == snapshots[0] for s in snapshots)
