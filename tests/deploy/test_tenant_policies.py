"""Per-tenant hook policies in the spec: round-trip, diffing, re-grant."""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_TIMER
from repro.core.policy import HookPolicy
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    ImageSpec,
    SetTenantPolicy,
    SpecError,
    apply_spec,
    plan,
)
from repro.vm import assemble

RETURN_7 = "mov r0, 7\n    exit"

TIGHT = HookPolicy(max_instructions=64, branch_limit=100)
TIGHTER = HookPolicy(max_instructions=16, branch_limit=100)


def spec_with_policy(policy: HookPolicy | None, **overrides) -> DeploymentSpec:
    fields = dict(
        name="policied",
        tenants=("alice",),
        images={"seven": ImageSpec.from_program(
            assemble(RETURN_7, name="seven"))},
        attachments=(AttachmentSpec(
            image="seven", hook=FC_HOOK_TIMER, tenant="alice",
            name="sevener",
            tenant_policies=({"alice": policy} if policy is not None
                             else {}),
        ),),
    )
    fields.update(overrides)
    return DeploymentSpec(**fields)


class TestRoundTrip:
    def test_policies_survive_json(self):
        spec = spec_with_policy(TIGHT)
        rebuilt = DeploymentSpec.from_json(spec.to_json())
        attachment = rebuilt.attachments[0]
        assert attachment.tenant_policies == {"alice": TIGHT}
        assert rebuilt.to_json() == spec.to_json()

    def test_policies_survive_cbor(self):
        spec = spec_with_policy(TIGHT)
        rebuilt = DeploymentSpec.from_cbor(spec.to_cbor())
        assert rebuilt.attachments[0].tenant_policies == {"alice": TIGHT}

    def test_default_policy_fields_stay_compact(self):
        doc = spec_with_policy(HookPolicy()).to_json()
        assert doc["attachments"][0]["tenant_policies"] == {"alice": {}}

    def test_no_policies_no_key(self):
        doc = spec_with_policy(None).to_json()
        assert "tenant_policies" not in doc["attachments"][0]

    def test_memory_grants_round_trip(self):
        from repro.core.policy import MemoryGrant
        from repro.vm.memory import Permission

        policy = HookPolicy(memory_grants=(
            MemoryGrant("pkt", 0x2000, 128, Permission.READ_WRITE),
        ))
        spec = spec_with_policy(policy)
        rebuilt = DeploymentSpec.from_json(spec.to_json())
        assert rebuilt.attachments[0].tenant_policies["alice"] == policy


class TestValidation:
    def test_policy_for_unknown_tenant_rejected(self):
        spec = spec_with_policy(None)
        bad = DeploymentSpec(
            name=spec.name, tenants=spec.tenants, images=spec.images,
            attachments=(AttachmentSpec(
                image="seven", hook=FC_HOOK_TIMER, tenant="alice",
                name="sevener", tenant_policies={"mallory": TIGHT}),),
        )
        with pytest.raises(SpecError, match="unknown tenant"):
            bad.validate()

    def test_conflicting_policies_on_one_hook_rejected(self):
        images = {"seven": ImageSpec.from_program(
            assemble(RETURN_7, name="seven"))}
        bad = DeploymentSpec(
            name="conflict", tenants=("alice",), images=images,
            attachments=(
                AttachmentSpec(image="seven", hook=FC_HOOK_TIMER,
                               tenant="alice", name="a",
                               tenant_policies={"alice": TIGHT}),
                AttachmentSpec(image="seven", hook=FC_HOOK_TIMER,
                               tenant="alice", name="b",
                               tenant_policies={"alice": TIGHTER}),
            ),
        )
        with pytest.raises(SpecError, match="conflicting"):
            bad.validate()

    def test_agreeing_policies_merge(self):
        images = {"seven": ImageSpec.from_program(
            assemble(RETURN_7, name="seven"))}
        spec = DeploymentSpec(
            name="agree", tenants=("alice",), images=images,
            attachments=(
                AttachmentSpec(image="seven", hook=FC_HOOK_TIMER,
                               tenant="alice", name="a",
                               tenant_policies={"alice": TIGHT}),
                AttachmentSpec(image="seven", hook=FC_HOOK_TIMER,
                               tenant="alice", name="b",
                               tenant_policies={"alice": TIGHT}),
            ),
        )
        spec.validate()
        assert spec.hook_tenant_policies() \
            == {FC_HOOK_TIMER: {"alice": TIGHT}}


class TestPlanDiffing:
    def test_fresh_device_plans_policy_before_install(self, engine):
        deployment = plan(engine, spec_with_policy(TIGHT))
        kinds = [type(action).__name__ for action in deployment.actions]
        assert kinds == ["CreateTenant", "SetTenantPolicy", "Install"]
        policy_action = deployment.actions[1]
        assert policy_action.tenant == "alice"
        assert policy_action.policy == TIGHT

    def test_apply_sets_live_hook_policy(self, engine):
        apply_spec(engine, spec_with_policy(TIGHT))
        hook = engine.hook(FC_HOOK_TIMER)
        assert hook.tenant_policies == {"alice": TIGHT}
        assert hook.policy_for("alice") is TIGHT
        # The attached container was granted under the override.
        container = hook.containers[0]
        assert container.granted.max_instructions == 64

    def test_converged_policy_plans_nothing(self, engine):
        spec = spec_with_policy(TIGHT)
        apply_spec(engine, spec)
        assert plan(engine, spec).empty

    def test_policy_edit_reinstalls_tenant_slots(self, engine):
        apply_spec(engine, spec_with_policy(TIGHT))
        deployment = plan(engine, spec_with_policy(TIGHTER))
        kinds = [type(action).__name__ for action in deployment.actions]
        # Detach precedes the policy flip so a failing apply unwinds
        # back through the *old* ceiling.
        assert kinds == ["Detach", "SetTenantPolicy", "Install"]

    def test_policy_removal_clears_override_and_regrants(self, engine):
        apply_spec(engine, spec_with_policy(TIGHT))
        deployment = plan(engine, spec_with_policy(None))
        actions = deployment.actions
        assert isinstance(actions[1], SetTenantPolicy)
        assert actions[1].policy is None
        from repro.deploy import apply as apply_plan

        apply_plan(engine, deployment)
        hook = engine.hook(FC_HOOK_TIMER)
        assert hook.tenant_policies == {}
        assert hook.containers[0].granted.max_instructions \
            == HookPolicy().max_instructions

    def test_other_tenants_policies_never_touched(self, engine):
        hook = engine.hook(FC_HOOK_TIMER)
        foreign = HookPolicy(max_instructions=7)
        hook.tenant_policies["mallory"] = foreign
        apply_spec(engine, spec_with_policy(TIGHT))
        assert hook.tenant_policies["mallory"] is foreign
        deployment = plan(engine, spec_with_policy(None))
        assert all(
            not (isinstance(action, SetTenantPolicy)
                 and action.tenant == "mallory")
            for action in deployment.actions
        )

    def test_describe_mentions_policy_actions(self, engine):
        text = plan(engine, spec_with_policy(TIGHT)).describe()
        assert "tenant-policy" in text and "alice" in text


class TestTransactionality:
    def test_failed_apply_restores_previous_policy(self, engine):
        apply_spec(engine, spec_with_policy(TIGHT))
        # New policy is too tight for the image to verify: max 1
        # instruction but the program has two.
        impossible = HookPolicy(max_instructions=1)
        with pytest.raises(Exception):
            apply_spec(engine, spec_with_policy(impossible))
        hook = engine.hook(FC_HOOK_TIMER)
        assert hook.tenant_policies == {"alice": TIGHT}
        assert hook.containers[0].granted.max_instructions == 64
        assert plan(engine, spec_with_policy(TIGHT)).empty

    def test_policy_that_rejects_contract_rolls_back(self, engine):
        from repro.core.errors import AttachError
        from repro.core.policy import ContainerContract

        spec = spec_with_policy(None)
        greedy = DeploymentSpec(
            name=spec.name, tenants=spec.tenants, images=spec.images,
            attachments=(AttachmentSpec(
                image="seven", hook=FC_HOOK_TIMER, tenant="alice",
                name="sevener",
                contract=ContainerContract(stack_size=2048),
                tenant_policies={"alice": HookPolicy(max_stack_size=512)},
            ),),
        )
        with pytest.raises(AttachError, match="2048 B of stack"):
            apply_spec(engine, greedy)
        assert not engine.tenants
        assert engine.hook(FC_HOOK_TIMER).tenant_policies == {}
