"""Regression tests for the PR 5 canary-gate and fleet robustness fixes.

Three bugs let faults (or stray containers) slip through the fleet layer:

1. **Gate leak** — the bake drained THREAD-mode worker backlogs only when
   ``bake_fires`` was non-zero, so a periodic THREAD attachment whose
   firing landed at the very end of the ``kernel.run(bake_us)`` window
   left its fault undelivered and the canary was *promoted*.
2. **Heterogeneous rollback** — the synthesized rollback baseline looked
   at ``canaries[0]``'s firmware hooks only; a pad compiled only into a
   later canary was omitted from the baseline scope, so tenantless
   containers on it survived rollback.
3. **fire_all robustness** — firing a hook fleet-wide raised on the first
   device whose firmware lacks the pad instead of skipping it.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_TIMER
from repro.core.errors import UnknownHookError
from repro.core.hooks import Hook, HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    Fleet,
    ImageSpec,
    apply_spec,
    plan,
)
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"
#: Verifies clean, dereferences an unmapped address at runtime.
POISON = "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


class TestBakeDrainGate:
    """Satellite 1: the THREAD-backlog drain must not depend on bake_fires."""

    @staticmethod
    def _spec(name: str, victim_src: str) -> DeploymentSpec:
        """A healthy periodic slot plus a passive victim on the same
        THREAD hook: each periodic firing runs *both* containers, and
        the healthy one (first in attach order) is scheduled first."""
        return DeploymentSpec(
            name=name, tenants=("ops",),
            images={
                "ok": ImageSpec.from_program(assemble(GOOD, name="ok")),
                "app": ImageSpec.from_program(
                    assemble(victim_src, name="app")),
            },
            attachments=(
                AttachmentSpec(image="ok", hook=FC_HOOK_TIMER, tenant="ops",
                               name="healthy", period_us=100_000.0),
                AttachmentSpec(image="app", hook=FC_HOOK_TIMER, tenant="ops",
                               name="victim"),
            ),
        )

    def _offset_to_first_bake_firing(self) -> float:
        """Virtual microseconds from bake start to the first periodic
        firing, measured on a probe fleet that replays the exact staging
        sequence (the simulator is deterministic, so a fresh identical
        fleet reproduces the timing bit-for-bit)."""
        fleet = Fleet(2)
        fleet.apply(self._spec("base", GOOD))
        device = fleet.devices[0]
        fleet._converge(device, self._spec("v2", POISON))
        deadline_cycles = device.kernel.timers.next_deadline()
        return deadline_cycles / device.board.mhz - device.kernel.now_us

    @pytest.mark.parametrize("epsilon_us", [1.0, 2.0, 5.0])
    def test_tail_firing_fault_caught_with_zero_bake_fires(self, epsilon_us):
        """Regression: the bake window ends between the periodic firing
        and the poisoned worker's run.  The fault is only visible to the
        gate if the drain runs even with ``bake_fires=0`` — the old
        ``if bake_fires:`` guard promoted this faulting canary."""
        offset = self._offset_to_first_bake_firing()
        IMAGE_CACHE.clear()
        fleet = Fleet(2)
        base = self._spec("base", GOOD)
        fleet.apply(base)
        rollout = fleet.canary_rollout(
            self._spec("v2", POISON), canary_count=1,
            bake_us=offset + epsilon_us, bake_fires=0,
        )
        assert rollout.rolled_back and not rollout.promoted, (
            "a faulting canary was promoted: the tail firing's fault "
            "never reached the gate"
        )
        assert rollout.fault_deltas["dev0"] >= 1
        assert plan(fleet.devices[0].engine, base).empty

    def test_promotion_with_zero_fires_still_works_when_healthy(self):
        offset = self._offset_to_first_bake_firing()
        IMAGE_CACHE.clear()
        fleet = Fleet(2)
        fleet.apply(self._spec("base", GOOD))
        release = self._spec("v2", "mov r0, 8\n    exit")
        rollout = fleet.canary_rollout(release, canary_count=1,
                                       bake_us=offset + 2.0, bake_fires=0)
        assert rollout.promoted
        # The drain ran the tail firing's work before the gate read it.
        assert rollout.fault_deltas == {"dev0": 0}


class TestHeterogeneousRollbackBaseline:
    """Satellite 2: the synthesized baseline unions hooks of all canaries."""

    @staticmethod
    def _spec() -> DeploymentSpec:
        return DeploymentSpec(
            name="tenantless",
            images={"app": ImageSpec.from_program(
                assemble(POISON, name="app"))},
            attachments=(
                AttachmentSpec(image="app", hook="debug.pad", name="w"),
            ),
        )

    def test_baseline_includes_later_canaries_firmware_hooks(self):
        """Regression: ``debug.pad`` is compiled only into dev1's
        firmware.  The old synthesis read ``canaries[0].engine.hooks``
        only and dropped the pad from the baseline scope."""
        fleet = Fleet(2)
        fleet.devices[1].engine.register_hook(
            Hook("debug.pad", mode=HookMode.SYNC))
        baseline = fleet._rollback_baseline(self._spec(), fleet.devices)
        pads = {hook.name: hook for hook in baseline.hooks}
        assert "debug.pad" in pads
        assert pads["debug.pad"].mode is HookMode.SYNC

    def test_baseline_detaches_stray_container_on_later_canary(self):
        """The unioned baseline actually owns — and detaches — the
        tenantless container a heterogeneous canary hosts on its extra
        pad (the container that previously survived rollback)."""
        fleet = Fleet(2)
        device = fleet.devices[1]
        device.engine.register_hook(Hook("debug.pad", mode=HookMode.SYNC))
        spec = self._spec()
        apply_spec(device.engine, spec)
        assert [c.name for c in device.engine.containers()] == ["w"]
        baseline = fleet._rollback_baseline(spec, fleet.devices)
        apply_spec(device.engine, baseline)
        assert device.engine.containers() == []

    def test_declared_hooks_keep_their_spec_modes(self):
        fleet = Fleet(2)
        fleet.devices[0].engine.register_hook(
            Hook("debug.pad", mode=HookMode.THREAD))
        baseline = fleet._rollback_baseline(self._spec(), fleet.devices)
        pads = {hook.name: hook for hook in baseline.hooks}
        # dev0 has the pad, so its mode (THREAD) wins over dev1's absence.
        assert pads["debug.pad"].mode is HookMode.THREAD


class TestFireAllHeterogeneous:
    """Satellite 3: fire_all skips devices whose firmware lacks the pad."""

    def test_fire_all_skips_devices_without_the_hook(self):
        fleet = Fleet(3)
        image = assemble(GOOD, name="app")
        for index in (0, 2):
            engine = fleet.devices[index].engine
            engine.register_hook(Hook("debug.pad", mode=HookMode.SYNC))
            engine.attach(engine.load(image, name=f"w{index}"), "debug.pad")
        # dev1 has no debug.pad; previously this raised UnknownHookError.
        runs = fleet.fire_all("debug.pad", b"")
        assert runs == 2

    def test_fire_all_on_universal_hook_unchanged(self):
        fleet = Fleet(2)
        image = assemble(GOOD, name="app")
        for device in fleet.devices:
            device.engine.attach(device.engine.load(image, name="w"),
                                 FC_HOOK_TIMER)
        # THREAD hooks enqueue rather than run inline: zero sync runs,
        # but no error, and both devices' workers got the event.
        fleet.fire_all(FC_HOOK_TIMER, b"\x00" * 16)
        for device in fleet.devices:
            device.kernel.run(until_us=device.kernel.now_us + 50_000.0)
            assert device.engine.containers()[0].runs == 1

    def test_fire_all_nowhere_returns_zero(self):
        fleet = Fleet(2)
        assert fleet.fire_all("debug.pad") == 0
        with pytest.raises(UnknownHookError):
            # Direct single-engine fires still surface the error.
            fleet.devices[0].engine.fire_hook("debug.pad")
