"""Reconciler semantics: idempotent plans, minimal diffs, transactional
apply, and cycle-identity with hand-wired imperative deployment."""

from __future__ import annotations

import pytest

from repro.core import (
    AttachError,
    FC_HOOK_FANOUT,
    FC_HOOK_TIMER,
    Hook,
    HookMode,
    HostingEngine,
)
from repro.deploy import (
    AttachmentSpec,
    CreateTenant,
    Detach,
    DeploymentSpec,
    ImageSpec,
    Install,
    RegisterHook,
    Replace,
    SpecError,
    apply,
    apply_spec,
    fanout_spec,
    plan,
)
from repro.rtos import Kernel, nrf52840
from repro.vm import Program, assemble
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads import thread_counter_program

RETURN_7 = "mov r0, 7\n    exit"
RETURN_8 = "mov r0, 8\n    exit"
#: Writes to the read-only frame register — rejected by the verifier.
UNVERIFIABLE = "mov r10, 1\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def two_container_spec(second_source: str = RETURN_8) -> DeploymentSpec:
    return DeploymentSpec(
        name="pair",
        tenants=("alice", "bob"),
        images={
            "seven": ImageSpec.from_program(assemble(RETURN_7)),
            "eight": ImageSpec.from_program(assemble(second_source)),
        },
        attachments=(
            AttachmentSpec(image="seven", hook=FC_HOOK_TIMER,
                           tenant="alice", name="first"),
            AttachmentSpec(image="eight", hook=FC_HOOK_TIMER,
                           tenant="bob", name="second"),
        ),
    )


class TestPlanning:
    def test_plan_against_empty_engine(self, engine):
        deployment = plan(engine, two_container_spec())
        kinds = [type(action) for action in deployment.actions]
        assert kinds == [CreateTenant, CreateTenant, Install, Install]

    def test_plan_is_idempotent(self, engine):
        spec = two_container_spec()
        apply_spec(engine, spec)
        assert plan(engine, spec).empty
        # ... and a spec rebuilt from scratch (fresh Program objects,
        # fresh ImageSpec bytes) still converges: hashes, not identity.
        assert plan(engine, two_container_spec()).empty

    def test_apply_empty_plan_is_noop(self, engine):
        spec = two_container_spec()
        apply_spec(engine, spec)
        cycles = engine.kernel.clock.cycles
        result = apply_spec(engine, spec)
        assert result.plan.empty and not result.containers
        assert engine.kernel.clock.cycles == cycles

    def test_edited_image_plans_exactly_one_replace(self, engine):
        apply_spec(engine, two_container_spec())
        edited = two_container_spec(second_source="mov r0, 99\n    exit")
        deployment = plan(engine, edited)
        assert [type(a) for a in deployment.actions] == [Replace]
        action = deployment.actions[0]
        assert action.name == "second" and action.hook == FC_HOOK_TIMER

    def test_replace_applies_and_converges(self, engine):
        apply_spec(engine, two_container_spec())
        edited = two_container_spec(second_source="mov r0, 99\n    exit")
        result = apply_spec(engine, edited)
        swapped = result.containers[(FC_HOOK_TIMER, "second")]
        assert swapped.name == "second"  # the slot identity survives
        assert engine.execute(swapped).value == 99
        assert plan(engine, edited).empty

    def test_removed_attachment_plans_detach(self, engine):
        spec = two_container_spec()
        apply_spec(engine, spec)
        shrunk = DeploymentSpec(
            name=spec.name, tenants=spec.tenants, images=dict(spec.images),
            attachments=spec.attachments[:1],
        )
        deployment = plan(engine, shrunk)
        assert [type(a) for a in deployment.actions] == [Detach]
        apply(engine, deployment)
        assert [c.name for c in engine.containers()] == ["first"]
        assert plan(engine, shrunk).empty

    def test_unmanaged_containers_are_never_touched(self, engine):
        # A container under a tenant the spec does not declare is out of
        # scope: the reconciler must leave it alone.
        other = engine.create_tenant("carol")
        manual = engine.load(assemble(RETURN_7), tenant=other, name="manual")
        engine.attach(manual, FC_HOOK_TIMER)
        spec = two_container_spec()
        apply_spec(engine, spec)
        assert plan(engine, spec).empty
        assert manual.hook is not None

    def test_tenant_drift_replans_the_slot(self, engine):
        spec = two_container_spec()
        apply_spec(engine, spec)
        moved = DeploymentSpec(
            name=spec.name, tenants=spec.tenants, images=dict(spec.images),
            attachments=(
                spec.attachments[0],
                AttachmentSpec(image="eight", hook=FC_HOOK_TIMER,
                               tenant="alice", name="second"),
            ),
        )
        deployment = plan(engine, moved)
        assert [type(a) for a in deployment.actions] == [Detach, Install]
        apply(engine, deployment)
        second = next(c for c in engine.containers() if c.name == "second")
        assert second.tenant.name == "alice"
        assert plan(engine, moved).empty

    def test_missing_hook_is_a_spec_error(self, engine):
        spec = DeploymentSpec(
            images={"seven": ImageSpec.from_program(assemble(RETURN_7))},
            attachments=(AttachmentSpec(image="seven",
                                        hook="fc.hook.ghost"),),
        )
        with pytest.raises(SpecError, match="neither compiled"):
            plan(engine, spec)

    def test_hook_mode_conflict_is_a_spec_error(self, engine):
        engine.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.THREAD))
        with pytest.raises(SpecError, match="fixed in firmware"):
            plan(engine, fanout_spec(tenants=1, instances_per_tenant=1))

    def test_declared_hook_registered_once(self, engine):
        spec = fanout_spec(tenants=1, instances_per_tenant=2)
        deployment = plan(engine, spec)
        registers = [a for a in deployment.actions
                     if isinstance(a, RegisterHook)]
        assert len(registers) == 1
        apply(engine, deployment)
        assert engine.hooks[FC_HOOK_FANOUT].mode is HookMode.SYNC
        assert plan(engine, spec).empty


class TestTransactionalApply:
    def poisoned_spec(self, tenant: str = "alice") -> DeploymentSpec:
        """First install is fine; the second fails verification."""
        return DeploymentSpec(
            name="poisoned",
            tenants=(tenant,),
            images={
                "good": ImageSpec.from_program(assemble(RETURN_7)),
                "bad": ImageSpec.from_program(assemble(UNVERIFIABLE)),
            },
            attachments=(
                AttachmentSpec(image="good", hook=FC_HOOK_TIMER,
                               tenant=tenant, name="good"),
                AttachmentSpec(image="bad", hook=FC_HOOK_TIMER,
                               tenant=tenant, name="bad"),
            ),
        )

    def test_failed_apply_rolls_back_everything(self, engine):
        with pytest.raises(AttachError):
            apply_spec(engine, self.poisoned_spec())
        assert engine.containers() == []
        assert "alice" not in engine.tenants

    def test_failed_apply_preserves_preexisting_state(self, engine):
        base = two_container_spec()
        apply_spec(engine, base)
        before = [c.name for c in engine.containers()]
        with pytest.raises(AttachError):
            apply_spec(engine, self.poisoned_spec(tenant="mallory"))
        assert [c.name for c in engine.containers()] == before
        assert "mallory" not in engine.tenants  # rollback removed it
        # The device still converges on the original spec.
        assert plan(engine, base).empty

    def test_failed_apply_rolls_back_replace(self, engine):
        spec = two_container_spec()
        apply_spec(engine, spec)
        # One valid replace followed by a failing install: the replace
        # must be reverted to the original image.
        poisoned = DeploymentSpec(
            name=spec.name, tenants=spec.tenants,
            images={
                "seven": ImageSpec.from_program(assemble("mov r0, 70\n    exit")),
                "eight": dict(spec.images)["eight"],
                "bad": ImageSpec.from_program(assemble(UNVERIFIABLE)),
            },
            attachments=spec.attachments + (
                AttachmentSpec(image="bad", hook=FC_HOOK_TIMER,
                               tenant="bob", name="bad"),),
        )
        with pytest.raises(AttachError):
            apply_spec(engine, poisoned)
        first = next(c for c in engine.containers() if c.name == "first")
        assert engine.execute(first).value == 7
        assert plan(engine, spec).empty

    def periodic_spec(self, *ticker_names: str) -> DeploymentSpec:
        return DeploymentSpec(
            name="periodic",
            tenants=("alice",),
            images={"seven": ImageSpec.from_program(assemble(RETURN_7))},
            attachments=tuple(AttachmentSpec(
                image="seven", hook=FC_HOOK_TIMER, tenant="alice",
                name=name, period_us=1000.0) for name in ticker_names),
        )

    def test_periodic_attachment_arms_and_cancels(self, engine, kernel):
        result = apply_spec(engine, self.periodic_spec("ticker"))
        ticker = result.containers[(FC_HOOK_TIMER, "ticker")]
        kernel.run(until_us=5500)
        assert ticker.runs == 5
        result.timers[(FC_HOOK_TIMER, "ticker")]()
        kernel.run(until_us=10_000)
        assert ticker.runs == 5

    def test_detach_cancels_the_periodic_firing_it_owned(self, engine,
                                                        kernel):
        """Reconciling a periodic slot away also disarms its cadence —
        otherwise the hook would keep firing (and charging dispatch
        cycles) forever with nothing attached."""
        apply_spec(engine, self.periodic_spec("ticker"))
        fires_spec = self.periodic_spec()  # no attachments any more
        result = apply_spec(engine, fires_spec)
        assert result.detached == [(FC_HOOK_TIMER, "ticker")]
        before = engine.hooks[FC_HOOK_TIMER].fires
        kernel.run(until_us=10_000)
        assert engine.hooks[FC_HOOK_TIMER].fires == before

    def test_drift_reinstall_of_periodic_slot_swaps_the_cadence(
            self, engine, kernel):
        """Detach+Install of the same periodic slot in one plan (tenant
        drift) must cancel the *old* cadence and keep the new one — not
        the other way round, and with no ghost timer left behind."""
        apply_spec(engine, self.periodic_spec("ticker"))
        drifted = DeploymentSpec(
            name="periodic",
            tenants=("alice", "eve"),
            images={"seven": ImageSpec.from_program(assemble(RETURN_7))},
            attachments=(AttachmentSpec(
                image="seven", hook=FC_HOOK_TIMER, tenant="eve",
                name="ticker", period_us=1000.0),),
        )
        result = apply_spec(engine, drifted)
        assert [type(a) for a in result.plan.actions] \
            == [CreateTenant, Detach, Install]
        ticker = result.containers[(FC_HOOK_TIMER, "ticker")]
        kernel.run(until_us=kernel.now_us + 3500)
        assert ticker.runs == 3  # the new install's cadence is live

        # Reconciling the slot away (the spec still declares both
        # tenants, so it owns eve's container) silences the hook
        # completely: no ghost timer from any earlier apply keeps firing.
        removed = DeploymentSpec(name="periodic", tenants=("alice", "eve"),
                                 images=dict(drifted.images))
        result = apply_spec(engine, removed)
        assert result.detached == [(FC_HOOK_TIMER, "ticker")]
        fires = engine.hooks[FC_HOOK_TIMER].fires
        kernel.run(until_us=kernel.now_us + 10_000)
        assert engine.hooks[FC_HOOK_TIMER].fires == fires

    def test_undecodable_image_rolls_back_too(self, engine):
        """A failure that is not an EngineError (here: EncodingError from
        decoding a truncated image at install time) must also trigger the
        transactional rollback."""
        from repro.vm.errors import EncodingError

        spec = DeploymentSpec(
            name="truncated",
            tenants=("alice",),
            images={"torn": ImageSpec(name="torn", text=b"\x95\x00\x00")},
            attachments=(AttachmentSpec(image="torn", hook=FC_HOOK_TIMER,
                                        tenant="alice", name="torn"),),
        )
        with pytest.raises(EncodingError):
            apply_spec(engine, spec)
        assert "alice" not in engine.tenants
        assert engine.containers() == []

    def test_stale_plan_engine_error_still_rolls_back(self, engine):
        """A plan that goes stale between plan() and apply() (here: the
        tenant it wants to create appears in the meantime) raises an
        EngineError — and must roll back like any AttachError."""
        from repro.core import EngineError

        spec = two_container_spec()
        deployment = plan(engine, spec)
        engine.create_tenant("bob")  # overlapping actor wins the race
        with pytest.raises(EngineError):
            apply(engine, deployment)
        assert engine.containers() == []
        assert "alice" not in engine.tenants  # create-tenant rolled back
        # Re-planning against the now-current state converges cleanly.
        apply_spec(engine, spec)
        assert plan(engine, spec).empty


class TestImperativeEquivalence:
    """A spec-built device must be indistinguishable — virtual clock
    included — from the same device built by hand-wired engine calls."""

    def test_fanout_cycles_match_hand_wiring(self):
        spec = fanout_spec(tenants=2, instances_per_tenant=3)
        IMAGE_CACHE.clear()
        declarative = HostingEngine(Kernel(nrf52840()), implementation="jit")
        apply_spec(declarative, spec)

        IMAGE_CACHE.clear()
        imperative = HostingEngine(Kernel(nrf52840()), implementation="jit")
        imperative.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.SYNC))
        image = thread_counter_program()
        raw = image.to_bytes()
        for tenant_index in range(2):
            tenant = imperative.create_tenant(f"tenant-{tenant_index}")
            for instance_index in range(3):
                fresh = Program.from_bytes(raw, rodata=image.rodata,
                                           data=image.data)
                container = imperative.load(
                    fresh, tenant=tenant,
                    name=f"fc-{tenant_index}-{instance_index}")
                imperative.attach(container, FC_HOOK_FANOUT)

        assert declarative.kernel.clock.cycles \
            == imperative.kernel.clock.cycles
        assert [c.name for c in declarative.containers()] \
            == [c.name for c in imperative.containers()]

        for fire in range(4):
            declarative.fire_hook(FC_HOOK_FANOUT)
            imperative.fire_hook(FC_HOOK_FANOUT)
        assert declarative.kernel.clock.cycles \
            == imperative.kernel.clock.cycles
        assert declarative.global_store.snapshot() \
            == imperative.global_store.snapshot()
