"""Chaos publish: scripted crashes, loss bursts, stalls — and convergence.

The :class:`~repro.deploy.FaultInjector` drives faults at fixed virtual
timestamps during a :meth:`~repro.deploy.FleetPublisher.publish`; these
tests hold the self-healing contract: crashed devices reboot and
converge (resuming fetches from NVM), wedged devices are outlasted,
loss bursts end and restore the base loss, a device that never comes
back degrades the result to partial convergence instead of raising —
and the whole circus is deterministic, seed for seed.
"""

from __future__ import annotations

import os

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    CrashAt,
    DeploymentSpec,
    FaultInjector,
    HookSpec,
    ImageSpec,
    LinkLossBurst,
    StallAt,
)
from repro.scenarios import build_fleet_publisher
from repro.suit import UpdateStatus
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str = GOOD, name: str = "release") -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


SCRIPTED_PLAN = [
    CrashAt("dev1", at_us=1_000.0, down_us=300_000.0),
    LinkLossBurst(at_us=2_000.0, duration_us=100_000.0, loss=0.8),
    StallAt("dev3", at_us=1_000.0, duration_us=200_000.0),
    CrashAt("dev2", at_us=5_000.0, down_us=300_000.0),
]


def chaos_publish(plan, devices=4, loss=0.10, **publish_kwargs):
    publisher = build_fleet_publisher(devices=devices, loss=loss, seed=77)
    publisher.chaos = FaultInjector(plan)
    result = publisher.publish(make_spec(), **publish_kwargs)
    return publisher, result


class TestScriptedChaos:
    def test_crashes_bursts_and_stalls_still_converge(self):
        publisher, result = chaos_publish(SCRIPTED_PLAN)
        assert result.converged, result.reason
        assert len(result.devices) == 4
        by_name = {row.device.name: row for row in result.devices}
        assert by_name["dev1"].reboots == 1
        assert by_name["dev2"].reboots == 1
        assert by_name["dev0"].reboots == 0
        assert result.total_reboots == 2
        injector = publisher.chaos
        assert (injector.crashes, injector.reboots,
                injector.bursts, injector.stalls) == (2, 2, 1, 1)
        assert injector.quiescent

    def test_rebooted_devices_hold_the_published_sequence(self):
        publisher, result = chaos_publish(SCRIPTED_PLAN)
        for device in publisher.fleet.devices:
            assert device.radio.worker.storage.highest_sequence(
                publisher.slot) == result.sequence_number

    def test_loss_burst_restores_base_loss(self):
        publisher, result = chaos_publish(SCRIPTED_PLAN, loss=0.10)
        assert result.converged
        assert publisher.link.loss == 0.10

    def test_crashing_a_dead_device_is_a_noop(self):
        plan = [CrashAt("dev1", at_us=1_000.0, down_us=400_000.0),
                CrashAt("dev1", at_us=2_000.0, down_us=400_000.0)]
        publisher, result = chaos_publish(plan, loss=0.0)
        assert result.converged
        assert publisher.chaos.crashes == 1  # the second crash hit a corpse


class TestUnreachable:
    def test_device_that_never_reboots_degrades_gracefully(self):
        plan = [CrashAt("dev1", at_us=1_000.0, down_us=None)]
        publisher, result = chaos_publish(plan, devices=3, loss=0.0,
                                          max_windows=300)
        assert not result.converged
        assert [row.device.name for row in result.unreachable()] == ["dev1"]
        assert "unreachable: dev1" in result.reason
        row = result.unreachable()[0]
        assert row.result.status is UpdateStatus.UNREACHABLE
        assert "trigger attempts" in row.result.message
        # The reachable majority still converged.
        others = [r for r in result.devices if r.device.name != "dev1"]
        assert all(r.ok for r in others)

    def test_fleet_spec_not_marked_current_on_partial_convergence(self):
        plan = [CrashAt("dev1", at_us=1_000.0, down_us=None)]
        publisher, result = chaos_publish(plan, devices=2, loss=0.0,
                                          max_windows=300)
        assert publisher.fleet.current_spec is not result.spec


class TestStaleResults:
    def test_backlogged_trigger_from_prior_publish_is_not_this_verdict(self):
        """A duplicate re-trigger queued during publish #1 can drain
        during publish #2, appending a SEQUENCE_REPLAY about the *old*
        sequence — it must not be consumed as a device's new verdict."""
        publisher = build_fleet_publisher(devices=3, loss=0.10, seed=1234)
        publisher.chaos = FaultInjector([
            LinkLossBurst(at_us=242_784.0, duration_us=66_873.0, loss=0.68),
            CrashAt("dev1", at_us=279_722.0, down_us=500_000.0),
        ])
        first = publisher.publish(make_spec())
        assert first.converged, first.reason

        publisher.chaos = FaultInjector(
            [CrashAt("dev2", at_us=1_000.0, down_us=None)])
        second = publisher.publish(make_spec(), max_windows=300)
        assert [row.device.name
                for row in second.unreachable()] == ["dev2"]
        for row in second.devices:
            if row.device.name != "dev2":
                assert row.ok, (row.device.name, row.result.status)
                assert row.result.status is not UpdateStatus.SEQUENCE_REPLAY


class TestDeterminism:
    def _fingerprint(self, result):
        return [(row.device.name, row.result.status, row.retries,
                 row.reboots) for row in result.devices]

    def test_same_plan_and_seeds_reproduce_the_same_outcome(self):
        _, first = chaos_publish(SCRIPTED_PLAN)
        IMAGE_CACHE.clear()
        _, second = chaos_publish(SCRIPTED_PLAN)
        assert self._fingerprint(first) == self._fingerprint(second)
        assert first.sequence_number == second.sequence_number


class TestRandomPlan:
    def test_seeded_plan_is_reproducible(self):
        names = ["dev0", "dev1", "dev2"]
        first = FaultInjector.random_plan(names, seed=42,
                                          horizon_us=1_000_000.0)
        again = FaultInjector.random_plan(names, seed=42,
                                          horizon_us=1_000_000.0)
        assert first == again
        assert first != FaultInjector.random_plan(names, seed=43,
                                                  horizon_us=1_000_000.0)

    def test_plan_shape(self):
        names = ["dev0", "dev1"]
        plan = FaultInjector.random_plan(names, seed=7,
                                         horizon_us=2_000_000.0,
                                         crashes=3, bursts=2, stalls=1)
        assert len(plan) == 6
        assert [e.at_us for e in plan] == sorted(e.at_us for e in plan)
        assert all(e.device in names for e in plan
                   if isinstance(e, (CrashAt, StallAt)))
        assert sum(isinstance(e, CrashAt) for e in plan) == 3
        assert sum(isinstance(e, LinkLossBurst) for e in plan) == 2

    def test_random_plan_publish_converges(self):
        # CI sweeps this under several fixed seeds (see the chaos job in
        # .github/workflows/ci.yml); locally it runs one.
        seed = int(os.environ.get("CHAOS_SEED", "11"))
        names = [f"dev{i}" for i in range(4)]
        plan = FaultInjector.random_plan(names, seed=seed,
                                         horizon_us=400_000.0,
                                         crashes=2, bursts=1, stalls=1)
        publisher, result = chaos_publish(plan)
        assert result.converged, result.reason

    def test_default_draw_counts_preserve_pre_pr7_plans(self):
        # The storage-fault draws append after the classic three, so
        # legacy seeds keep producing byte-identical plans by default.
        names = ["dev0", "dev1"]
        plan = FaultInjector.random_plan(names, seed=11,
                                         horizon_us=1_000_000.0)
        widened = FaultInjector.random_plan(names, seed=11,
                                            horizon_us=1_000_000.0,
                                            torn_writes=2, bitflips=1,
                                            wearouts=1)
        assert widened[:len(plan)] != plan or plan == sorted(
            plan, key=lambda e: e.at_us)  # both sorted by time
        classic = [e for e in widened
                   if type(e).__name__ in ("CrashAt", "LinkLossBurst",
                                           "StallAt")]
        assert classic == plan

    def test_random_plan_with_storage_faults_converges(self):
        """The CI chaos job's widened sweep: torn writes, bit flips and
        a wear-out on top of the classic crash/burst/stall mix.  The
        publish must still converge with every device on the published
        sequence and no anti-rollback regression."""
        seed = int(os.environ.get("CHAOS_SEED", "11"))
        names = [f"dev{i}" for i in range(4)]
        plan = FaultInjector.random_plan(names, seed=seed,
                                         horizon_us=400_000.0,
                                         crashes=1, bursts=1, stalls=1,
                                         torn_writes=2, bitflips=2,
                                         wearouts=1)
        publisher, result = chaos_publish(plan)
        assert result.converged, result.reason
        for device in publisher.fleet.devices:
            storage = device.radio.worker.storage
            assert storage.highest_sequence(publisher.slot) \
                == result.sequence_number
            assert all(slot.occupied
                       for slot in storage.slots.values()), device.name
