"""Per-device rollback baselines: heterogeneous fleets unwind cleanly.

Regression tests for ROADMAP item 5: a fleet whose devices converged on
*different* specs (device modes — earlier publishes or direct applies)
must roll each canary back to **its own** prior spec, not one
fleet-wide guess.  Covered at both layers:

* :meth:`Fleet.canary_rollout` — the in-process rollout captures
  ``device.current_spec`` before any canary is touched and reverts each
  canary to that capture;
* :meth:`FleetPublisher.publish` — the OTA rollback groups devices by
  baseline identity and signs **one envelope per distinct baseline**,
  each under its own fresh sequence number (anti-rollback forbids
  re-announcing an old one).
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    Fleet,
    HookSpec,
    ImageSpec,
    plan,
)
from repro.core.hooks import HookMode
from repro.scenarios import build_fleet_publisher
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"
BETTER = "mov r0, 8\n    exit"
#: Verifies clean, dereferences an unmapped address at runtime.
POISON = "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str, name: str) -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


class TestFleetPerDeviceBaselines:
    def _heterogeneous_fleet(self):
        fleet = Fleet(3)
        spec_a = make_spec(GOOD, "mode-a")
        spec_b = make_spec(BETTER, "mode-b")
        fleet.apply(spec_a)
        # dev1 runs a second device mode, converged out of band.
        fleet._converge(fleet.devices[1], spec_b)
        return fleet, spec_a, spec_b

    def test_rollback_restores_each_canary_to_its_own_spec(self):
        fleet, spec_a, spec_b = self._heterogeneous_fleet()
        rollout = fleet.canary_rollout(make_spec(POISON, "v2"),
                                       canary_count=2,
                                       bake_us=200_000.0, bake_fires=2)
        assert rollout.rolled_back and not rollout.promoted
        # Each canary is back on *its* mode, not a fleet-wide guess.
        assert fleet.devices[0].current_spec is spec_a
        assert fleet.devices[1].current_spec is spec_b
        assert plan(fleet.devices[0].engine, spec_a).empty
        assert plan(fleet.devices[1].engine, spec_b).empty
        # The control device was never touched.
        assert fleet.devices[2].current_spec is spec_a
        assert plan(fleet.devices[2].engine, spec_a).empty

    def test_explicit_baseline_still_overrides_device_modes(self):
        fleet, spec_a, spec_b = self._heterogeneous_fleet()
        safe = make_spec(GOOD, "safe-mode")
        rollout = fleet.canary_rollout(make_spec(POISON, "v2"),
                                       canary_count=2, baseline=safe,
                                       bake_us=200_000.0, bake_fires=2)
        assert rollout.rolled_back
        # An operator-chosen baseline wins over the per-device capture.
        assert fleet.devices[0].current_spec is safe
        assert fleet.devices[1].current_spec is safe
        assert plan(fleet.devices[1].engine, safe).empty

    def test_homogeneous_fleet_keeps_the_classic_behavior(self):
        fleet = Fleet(3)
        base = make_spec(GOOD, "base")
        fleet.apply(base)
        rollout = fleet.canary_rollout(make_spec(POISON, "v2"),
                                       canary_count=1,
                                       bake_us=200_000.0, bake_fires=2)
        assert rollout.rolled_back
        assert all(device.current_spec is base for device in fleet.devices)


class TestPublisherPerDeviceBaselines:
    def _diverged_publisher(self):
        publisher = build_fleet_publisher(devices=3)
        spec_a = make_spec(GOOD, "mode-a")
        first = publisher.publish(spec_a)
        assert first.converged, first.reason
        # dev1 switches to a second mode out of band (a direct apply —
        # say, a field technician's local reconfiguration).
        spec_b = make_spec(BETTER, "mode-b")
        publisher.fleet._converge(publisher.fleet.devices[1], spec_b)
        return publisher, spec_a, spec_b, first

    def test_ota_rollback_signs_one_envelope_per_baseline(self):
        publisher, spec_a, spec_b, first = self._diverged_publisher()
        result = publisher.publish(make_spec(POISON, "v3"),
                                   canary_count=2,
                                   bake_us=100_000.0, bake_fires=2)
        assert result.rolled_back and not result.promoted
        rollback = result.by_role("rollback")
        assert len(rollback) == 2 and all(row.ok for row in rollback)
        devices = publisher.fleet.devices
        # Each canary converged back onto its own mode...
        assert devices[0].current_spec is spec_a
        assert devices[1].current_spec is spec_b
        # ...under its own fresh sequence: two baselines, two envelopes,
        # two distinct sequence numbers above the poisoned publish.
        seqs = [device.radio.worker.storage.highest_sequence(publisher.slot)
                for device in devices[:2]]
        assert seqs[0] != seqs[1]
        assert all(seq > result.sequence_number for seq in seqs)
        # The control device never saw the poison or the rollback.
        bystander = devices[2]
        assert bystander.radio.worker.storage.highest_sequence(
            publisher.slot) == first.sequence_number
        assert bystander.reboots == 0

    def test_shared_baseline_canaries_share_one_rollback_envelope(self):
        publisher = build_fleet_publisher(devices=3)
        first = publisher.publish(make_spec(GOOD, "mode-a"))
        assert first.converged, first.reason
        result = publisher.publish(make_spec(POISON, "v2"),
                                   canary_count=2,
                                   bake_us=100_000.0, bake_fires=2)
        assert result.rolled_back
        # One shared baseline: a single envelope, one sequence number.
        seqs = {device.radio.worker.storage.highest_sequence(publisher.slot)
                for device in publisher.fleet.devices[:2]}
        assert len(seqs) == 1
        assert seqs.pop() == result.sequence_number + 1
