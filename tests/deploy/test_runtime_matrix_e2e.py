"""End-to-end multi-runtime deploy plane: one spec mixing rBPF, Wasm and
script containers plans, applies, OTA-publishes (multicast profile),
canaries and rolls back — through the exact same stack a pure-rBPF spec
uses.

Also holds the wire-compat regression: seed-era tag-less specs decode as
rBPF and pure-rBPF specs still serialize without any runtime keys, so
their CBOR digests (and thus existing signatures) are unchanged.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
    PublishOptions,
    apply,
    plan,
    runtime_matrix_spec,
)
from repro.scenarios import build_fleet_publisher
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads import FLETCHER32_INPUT, fletcher32_reference

#: Mini-wasm program that verifies clean but OOB-faults on every run.
POISON_WASM = ("module pages=1\nfunc main params=1 locals=0\n"
               "    i32.const 999999\n    i32.load8_u 0\n"
               "    return\nend\n")

BAKE_CONTEXT = bytes(16)  # the rBPF counter reads {u64 prev, u64 next}


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def poisoned_matrix_spec() -> DeploymentSpec:
    """The runtime-matrix release with the Wasm tenant's image poisoned."""
    spec = runtime_matrix_spec()
    images = dict(spec.images)
    images["checksum-wasm"] = ImageSpec.from_wasm(POISON_WASM,
                                                  name="checksum-wasm")
    return DeploymentSpec(name="runtime-matrix-poisoned",
                          tenants=spec.tenants, hooks=spec.hooks,
                          images=images, attachments=spec.attachments)


def runtimes_hosted(device) -> set[str]:
    return {getattr(c.program, "runtime", "rbpf")
            for c in device.engine.containers()}


class TestSpecWireCompat:
    def test_tagless_seed_era_doc_decodes_as_rbpf(self):
        """A spec JSON doc written before the runtime tag existed (no
        'runtime' keys anywhere) must decode byte-for-byte like the seed
        decoded it: every image is an rBPF image."""
        program = assemble("mov r0, 7\n    exit", name="app")
        seed_era_doc = {
            "name": "legacy",
            "tenants": ["ops"],
            "hooks": [{"name": FC_HOOK_FANOUT, "mode": "sync"}],
            "images": {"app": {"hex": program.to_bytes().hex(),
                               "name": "app"}},
            "attachments": [{"image": "app", "hook": FC_HOOK_FANOUT,
                             "tenant": "ops", "name": "worker"}],
        }
        spec = DeploymentSpec.from_json(seed_era_doc)
        image = spec.images["app"]
        assert image.runtime == "rbpf"
        # The historical untagged content address is preserved.
        assert image.image_hash == program.image_hash

    def test_pure_rbpf_spec_serializes_without_runtime_keys(self):
        spec = DeploymentSpec(
            name="pure",
            tenants=("ops",),
            images={"app": ImageSpec.from_program(
                assemble("mov r0, 7\n    exit", name="app"))},
            attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                        tenant="ops"),),
            hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        )
        doc = spec.to_json()
        assert all("runtime" not in image_doc
                   for image_doc in doc["images"].values())
        assert b"runtime" not in spec.to_cbor()

    def test_tagged_spec_round_trips_through_cbor(self):
        spec = runtime_matrix_spec()
        again = DeploymentSpec.from_cbor(spec.to_cbor())
        assert {k: v.runtime for k, v in again.images.items()} == {
            "counter-rbpf": "rbpf",
            "checksum-wasm": "wasm",
            "checksum-script": "script",
        }
        assert {k: v.image_hash for k, v in again.images.items()} \
            == {k: v.image_hash for k, v in spec.images.items()}

    def test_unknown_runtime_rejected_at_validate(self):
        from repro.deploy import SpecError

        with pytest.raises(SpecError, match="unknown runtime"):
            DeploymentSpec.from_json({
                "name": "bad",
                "tenants": ["ops"],
                "images": {"app": {"hex": "", "runtime": "lua"}},
                "attachments": [],
            })


class TestMixedApply:
    def test_plan_apply_fire_reconverge(self, engine):
        spec = runtime_matrix_spec()
        deployment = plan(engine, spec)
        apply(engine, deployment)
        assert runtimes_hosted_engine(engine) == {"rbpf", "wasm", "script"}
        firing = engine.fire_hook(FC_HOOK_FANOUT,
                                  context=bytearray(FLETCHER32_INPUT))
        ref = fletcher32_reference(FLETCHER32_INPUT)
        by_name = {r.container.name: r for r in firing.runs}
        assert by_name["checksum-wasm"].value == ref
        assert by_name["checksum-script"].value == ref
        assert all(r.ok for r in firing.runs)
        assert plan(engine, spec).empty

    def test_editing_one_runtime_image_plans_one_replace(self, engine):
        from repro.deploy.plan import Replace

        apply(engine, plan(engine, runtime_matrix_spec()))
        edited = poisoned_matrix_spec()
        actions = plan(engine, edited).actions
        assert len(actions) == 1
        assert isinstance(actions[0], Replace)
        assert actions[0].name == "checksum-wasm"


def runtimes_hosted_engine(engine) -> set[str]:
    return {getattr(c.program, "runtime", "rbpf")
            for c in engine.containers()}


class TestOtaPublish:
    def test_multicast_publish_moves_all_three_runtimes(self):
        publisher = build_fleet_publisher(devices=5)
        result = publisher.publish(runtime_matrix_spec(),
                                   PublishOptions.scale())
        assert result.converged, result.reason
        assert result.multicast
        ref = fletcher32_reference(FLETCHER32_INPUT)
        for device in publisher.fleet.devices:
            assert runtimes_hosted(device) == {"rbpf", "wasm", "script"}
            firing = device.engine.fire_hook(
                FC_HOOK_FANOUT, context=bytearray(FLETCHER32_INPUT))
            values = {r.container.name: r.value for r in firing.runs}
            assert values["checksum-wasm"] == ref
            assert values["checksum-script"] == ref

    def test_anti_rollback_holds_for_tagged_specs(self):
        publisher = build_fleet_publisher(devices=2)
        spec = runtime_matrix_spec()
        first = publisher.publish(spec, PublishOptions(sequence_number=5))
        assert first.converged
        from repro.suit import UpdateStatus

        replay = publisher.publish(spec, PublishOptions(sequence_number=5))
        assert not replay.converged
        assert all(row.result.status is UpdateStatus.SEQUENCE_REPLAY
                   for row in replay.devices)

    def test_poisoned_wasm_canary_rolls_back_over_the_radio(self):
        publisher = build_fleet_publisher(devices=4)
        fleet = publisher.fleet
        base = runtime_matrix_spec()
        assert publisher.publish(base).converged
        result = publisher.publish(
            poisoned_matrix_spec(),
            PublishOptions(canary_count=1, bake_us=200_000.0, bake_fires=2,
                           bake_context=BAKE_CONTEXT))
        assert result.rolled_back and not result.promoted
        assert result.fault_deltas["dev0"] > 0
        rollback_rows = result.by_role("rollback")
        assert len(rollback_rows) == 1 and rollback_rows[0].ok
        # The canary reconverged on the mixed baseline: all three
        # runtimes back, and the wasm checksum is the healthy image.
        canary = fleet.devices[0]
        assert plan(canary.engine, base).empty
        assert runtimes_hosted(canary) == {"rbpf", "wasm", "script"}
        firing = canary.engine.fire_hook(
            FC_HOOK_FANOUT, context=bytearray(FLETCHER32_INPUT))
        assert all(r.ok for r in firing.runs)
        assert fleet.current_spec is base

    def test_healthy_mixed_canary_promotes(self):
        publisher = build_fleet_publisher(devices=3)
        base = runtime_matrix_spec()
        assert publisher.publish(base).converged
        release = runtime_matrix_spec()
        result = publisher.publish(
            release,
            PublishOptions(canary_count=1, bake_us=200_000.0, bake_fires=2,
                           bake_context=BAKE_CONTEXT))
        assert result.converged
        assert not result.rolled_back
