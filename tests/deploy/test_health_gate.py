"""Canary health beyond faults: cycle budgets and store divergence.

The :class:`~repro.deploy.HealthGate` extends the PR 4 fault-only gate:
a canary whose new image never faults can still be unhealthy — it may
burn far more modelled cycles per run than budgeted, or corrupt
device-wide state in the global key-value store.  Both must roll the
canaries back exactly like a fault; a canary that passes every check
must still promote.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    Fleet,
    HealthGate,
    HookSpec,
    ImageSpec,
    plan,
)
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

#: Writes value ``v`` under global key 42 each run (a device-wide
#: "status register" every device of the fleet must agree on).
STORE = """
    mov r1, 42
    mov r2, {value}
    call bpf_store_global
    mov r0, 0
    exit
"""

#: Burns ~{count} loop iterations of modelled cycles per run.
SPIN = """
    mov r6, {count}
loop:
    sub r6, 1
    jne r6, 0, loop
    mov r0, 0
    exit
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(name: str, source: str) -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker"),),
    )


def converge_fleet(fleet: Fleet, spec: DeploymentSpec, fires: int) -> None:
    """Apply ``spec`` everywhere and run it so every device has state."""
    fleet.apply(spec)
    for _ in range(fires):
        fleet.fire_all(FC_HOOK_FANOUT, b"")


class TestCycleBudget:
    def test_cycle_budget_breach_rolls_back(self):
        fleet = Fleet(3)
        base = make_spec("base", SPIN.format(count=4))
        fleet.apply(base)
        hungry = make_spec("v2", SPIN.format(count=400))
        rollout = fleet.canary_rollout(
            hungry, canary_count=1, bake_us=100_000.0, bake_fires=2,
            health_gate=HealthGate(cycle_budgets={"worker": 100}),
        )
        assert rollout.rolled_back and not rollout.promoted
        assert "cycles/run" in rollout.reason
        assert rollout.fault_deltas == {"dev0": 0}  # no fault, still bad
        assert plan(fleet.devices[0].engine, base).empty

    def test_generous_budget_promotes(self):
        fleet = Fleet(3)
        fleet.apply(make_spec("base", SPIN.format(count=4)))
        release = make_spec("v2", SPIN.format(count=400))
        rollout = fleet.canary_rollout(
            release, canary_count=1, bake_us=100_000.0, bake_fires=2,
            health_gate=HealthGate(cycle_budgets={"worker": 10_000_000}),
        )
        assert rollout.promoted
        assert all(plan(device.engine, release).empty
                   for device in fleet.devices)

    def test_budget_for_unknown_slot_is_ignored(self):
        fleet = Fleet(2)
        fleet.apply(make_spec("base", SPIN.format(count=4)))
        rollout = fleet.canary_rollout(
            make_spec("v2", SPIN.format(count=8)), canary_count=1,
            bake_us=50_000.0, bake_fires=1,
            health_gate=HealthGate(cycle_budgets={"no-such-slot": 1}),
        )
        assert rollout.promoted

    def test_slot_that_never_ran_passes(self):
        """A budgeted slot with zero bake runs has nothing to judge."""
        fleet = Fleet(2)
        fleet.apply(make_spec("base", SPIN.format(count=4)))
        rollout = fleet.canary_rollout(
            make_spec("v2", SPIN.format(count=400)), canary_count=1,
            bake_us=50_000.0, bake_fires=0,
            health_gate=HealthGate(cycle_budgets={"worker": 1}),
        )
        assert rollout.promoted


class TestStoreDivergence:
    def test_store_divergence_rolls_back(self):
        """The new image flips a device-wide status key the controls
        still hold at the baseline value: unhealthy without any fault."""
        fleet = Fleet(3)
        base = make_spec("base", STORE.format(value=7))
        converge_fleet(fleet, base, fires=1)
        rollout = fleet.canary_rollout(
            make_spec("v2", STORE.format(value=9)), canary_count=1,
            bake_us=50_000.0, bake_fires=1,
            health_gate=HealthGate(store_keys=(42,)),
        )
        assert rollout.rolled_back and not rollout.promoted
        assert "store key 42 diverged" in rollout.reason
        assert rollout.fault_deltas == {"dev0": 0}
        assert plan(fleet.devices[0].engine, base).empty
        # Control devices still hold the baseline value, untouched.
        for device in fleet.devices[1:]:
            assert device.engine.global_store.snapshot()[42] == 7

    def test_agreeing_stores_promote(self):
        """A rewrite that keeps the status key stable passes the gate."""
        fleet = Fleet(3)
        converge_fleet(fleet, make_spec("base", STORE.format(value=7)),
                       fires=1)
        same_value = make_spec(
            "v2", "    mov r3, 0\n" + STORE.format(value=7).lstrip("\n"))
        rollout = fleet.canary_rollout(
            same_value, canary_count=1, bake_us=50_000.0, bake_fires=1,
            health_gate=HealthGate(store_keys=(42,)),
        )
        assert rollout.promoted, rollout.reason

    def test_all_canary_fleet_skips_store_check(self):
        """With no control devices there is nothing to diverge from."""
        fleet = Fleet(2)
        converge_fleet(fleet, make_spec("base", STORE.format(value=7)),
                       fires=1)
        rollout = fleet.canary_rollout(
            make_spec("v2", STORE.format(value=9)), canary_count=2,
            bake_us=50_000.0, bake_fires=1,
            health_gate=HealthGate(store_keys=(42,)),
        )
        assert rollout.promoted


class TestGateComposition:
    def test_default_gate_still_faults_only(self):
        """No explicit gate: behavior identical to PR 4 (fault == bad)."""
        poison = "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"
        fleet = Fleet(2)
        base = make_spec("base", SPIN.format(count=4))
        fleet.apply(base)
        rollout = fleet.canary_rollout(make_spec("v2", poison),
                                       canary_count=1,
                                       bake_us=50_000.0, bake_fires=1)
        assert rollout.rolled_back
        assert "faults during bake" in rollout.reason

    def test_max_fault_delta_tolerance(self):
        """A gate may tolerate a bounded number of contained faults."""
        poison = "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"
        fleet = Fleet(2)
        fleet.apply(make_spec("base", SPIN.format(count=4)))
        rollout = fleet.canary_rollout(
            make_spec("v2", poison), canary_count=1,
            bake_us=50_000.0, bake_fires=2,
            health_gate=HealthGate(max_fault_delta=5),
        )
        assert rollout.promoted
        assert rollout.fault_deltas["dev0"] == 2

    def test_breaches_reported_per_canary(self):
        fleet = Fleet(3)
        converge_fleet(fleet, make_spec("base", STORE.format(value=7)),
                       fires=1)
        rollout = fleet.canary_rollout(
            make_spec("v2", STORE.format(value=9)), canary_count=2,
            bake_us=50_000.0, bake_fires=1,
            health_gate=HealthGate(store_keys=(42,)),
        )
        assert rollout.rolled_back
        assert set(rollout.health) == {"dev0", "dev1"}
        assert all(problems for problems in rollout.health.values())


#: First run pays a ~19k-cycle lazy init (global key 99 unset), steady
#: state is ~430 cycles: healthy, but the whole-bake average is not.
SPIKY_START = """
    mov r1, 99
    mov r2, r10
    add r2, 4
    call bpf_fetch_global
    ldxw r6, [r10+4]
    jne r6, 0, fast
    mov r6, 2000
warm:
    sub r6, 1
    jne r6, 0, warm
    mov r1, 99
    mov r2, 1
    call bpf_store_global
fast:
    mov r0, 0
    exit
"""

#: Every run spins 200 iterations *more* than the last (run counter in
#: global key 98): cheap early runs dilute the whole-bake average while
#: the steady state drifts past any sane budget.
DEGRADING = """
    mov r1, 98
    mov r2, r10
    add r2, 4
    call bpf_fetch_global
    ldxw r6, [r10+4]
    add r6, 1
    mov r1, 98
    mov r2, r6
    call bpf_store_global
    mov r7, r6
    mul r7, 200
spin:
    sub r7, 1
    jne r7, 0, spin
    mov r0, 0
    exit
"""


def periodic_spec(name: str, source: str) -> DeploymentSpec:
    """Like :func:`make_spec` but self-driving (period 20 ms), so bake
    runs spread across the sliding window's sample slices."""
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker",
                                    period_us=20_000.0),),
    )


class TestSlidingWindow:
    """``HealthGate.window_runs``: judge the trailing bake window, not
    the whole-bake average."""

    BASE = "mov r0, 0\n    exit"

    def _rollout(self, source: str, gate: HealthGate):
        fleet = Fleet(2)
        fleet.apply(periodic_spec("base", self.BASE))
        return fleet.canary_rollout(
            periodic_spec("v2", source), canary_count=1,
            bake_us=640_000.0, bake_fires=0, health_gate=gate,
        )

    def test_spiky_start_passes_the_window_gate(self):
        """Regression: an expensive first run (lazy init) must not fail
        a canary whose steady state is comfortably within budget."""
        rollout = self._rollout(
            SPIKY_START,
            HealthGate(cycle_budgets={"worker": 600}, window_runs=4))
        assert rollout.promoted, rollout.reason

    def test_same_spiky_start_fails_the_whole_bake_gate(self):
        """The scenario the window exists for: whole-bake averaging
        blames the steady state for the one-off init cost."""
        rollout = self._rollout(
            SPIKY_START, HealthGate(cycle_budgets={"worker": 600}))
        assert rollout.rolled_back
        assert "cycles/run" in rollout.reason

    def test_degrading_canary_caught_by_the_window(self):
        """The dual failure: cheap early runs dilute the whole-bake
        average below budget, but the trailing window sees the drift."""
        rollout = self._rollout(
            DEGRADING,
            HealthGate(cycle_budgets={"worker": 40_000}, window_runs=4))
        assert rollout.rolled_back
        assert "trailing 4-run window" in rollout.reason

    def test_same_degrading_canary_slips_past_whole_bake_totals(self):
        rollout = self._rollout(
            DEGRADING, HealthGate(cycle_budgets={"worker": 40_000}))
        assert rollout.promoted, rollout.reason


class TestWindowVerdictUnit:
    """``breaches`` with a synthetic sample history (no fleet needed)."""

    SLOT = ("fc.hook.fanout", "worker")

    def _container(self, runs: int, cycles: int):
        from types import SimpleNamespace

        return SimpleNamespace(runs=runs, total_cycles=cycles)

    def _history(self, *samples):
        return [{self.SLOT: sample} for sample in samples]

    def test_trailing_window_breach_reported(self):
        gate = HealthGate(cycle_budgets={"worker": 100}, window_runs=4)
        history = self._history(
            (0, 0), (4, 200), (8, 400), (12, 2400))  # last 4 runs: 500/run
        problems = gate.breaches(
            device=None,
            before={self.SLOT: (self._container(12, 2400), 0, 0)},
            fault_delta=0, controls=(), history=history)
        assert problems == ["worker burned 500 cycles/run over the "
                            "trailing 4-run window (budget 100)"]

    def test_early_spike_outside_the_window_is_forgiven(self):
        gate = HealthGate(cycle_budgets={"worker": 100}, window_runs=4)
        history = self._history(
            (0, 0), (1, 20_000), (5, 20_200), (9, 20_400))
        problems = gate.breaches(
            device=None,
            before={self.SLOT: (self._container(9, 20_400), 0, 0)},
            fault_delta=0, controls=(), history=history)
        assert problems == []

    def test_too_few_runs_falls_back_to_whole_bake_totals(self):
        gate = HealthGate(cycle_budgets={"worker": 100}, window_runs=50)
        container = self._container(2, 20_000)  # 10k/run: over budget
        problems = gate.breaches(
            device=None,
            before={self.SLOT: (container, 0, 0)},
            fault_delta=0, controls=(),
            history=self._history((0, 0), (1, 10_000), (2, 20_000)))
        assert problems == ["worker burned 10000 cycles/run (budget 100)"]

    def test_no_window_keeps_the_classic_rule(self):
        gate = HealthGate(cycle_budgets={"worker": 100})
        container = self._container(2, 20_000)
        problems = gate.breaches(
            device=None,
            before={self.SLOT: (container, 0, 0)},
            fault_delta=0, controls=(), history=None)
        assert problems == ["worker burned 10000 cycles/run (budget 100)"]
