"""Power failure at every pipeline boundary: the publish still converges.

The acceptance sweep of the chaos-hardening PR: a device is power-failed
at *each* of the update worker's :data:`~repro.suit.KILL_POINTS` in
turn, rebooted by the fault injector, and the publish must converge every
time — via re-trigger for crashes before the install hit flash, via
NVM recovery (a ``REBOOTED`` row) for crashes after.  No kill point may
lose anti-rollback state or strand a storage reservation.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    FaultInjector,
    HookSpec,
    ImageSpec,
)
from repro.rtos import PowerFailure
from repro.scenarios import build_fleet_publisher
from repro.suit import KILL_POINTS, UpdateStatus
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"

#: Steps whose crash is only recoverable by a fresh trigger (all state
#: up to there was RAM-only) versus steps where the install already hit
#: flash and the bootloader path finishes the job.
RETRIGGERED_STEPS = ("decoded", "verified", "resolved", "reserved",
                     "fetched", "checked")
RECOVERED_STEPS = ("installed", "activated")


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str = GOOD, name: str = "release") -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


def publish_with_kill(step: str):
    """One publish with device 1 power-failed exactly at ``step``."""
    publisher = build_fleet_publisher(devices=2)
    publisher.chaos = FaultInjector(auto_reboot_us=200_000.0)
    victim = publisher.fleet.devices[1]
    fired = {"done": False}

    def killer(crossed: str) -> None:
        if crossed == step and not fired["done"]:
            fired["done"] = True
            raise PowerFailure(f"killed at {step!r}")

    victim.radio.worker.on_step = killer
    result = publisher.publish(make_spec())
    assert fired["done"], f"kill point {step!r} never crossed"
    return publisher, victim, result


@pytest.mark.parametrize("step", KILL_POINTS)
class TestKillPointSweep:
    def test_publish_converges_despite_the_crash(self, step):
        publisher, victim, result = publish_with_kill(step)
        assert result.converged, result.reason
        row = next(r for r in result.devices if r.device is victim)
        assert row.reboots == 1
        if step in RETRIGGERED_STEPS:
            assert row.result.status is UpdateStatus.OK
            assert row.retries >= 1
        else:
            assert step in RECOVERED_STEPS
            assert row.result.status is UpdateStatus.REBOOTED
        assert publisher.chaos.crashes == 1
        assert publisher.chaos.reboots == 1

    def test_no_crash_point_loses_durable_state(self, step):
        publisher, victim, result = publish_with_kill(step)
        storage = victim.radio.worker.storage
        # Anti-rollback state: the published sequence is in NVM-backed
        # storage, and nothing else — no stranded reservation, no dead
        # slot left behind by the crash.
        assert storage.highest_sequence(publisher.slot) \
            == result.sequence_number
        assert len(storage.slots) == 1
        assert all(slot.occupied for slot in storage.slots.values())
        # The survivor device was never disturbed.
        bystander = publisher.fleet.devices[0]
        assert bystander.reboots == 0
        assert next(r for r in result.devices
                    if r.device is bystander).result.ok


class TestKillPointList:
    def test_kill_points_cover_the_whole_pipeline(self):
        assert KILL_POINTS == ("decoded", "verified", "resolved", "reserved",
                               "fetched", "checked", "installed", "activated")
        assert set(RETRIGGERED_STEPS) | set(RECOVERED_STEPS) \
            == set(KILL_POINTS)
