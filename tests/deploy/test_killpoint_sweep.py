"""Power failure at every pipeline boundary: the publish still converges.

The acceptance sweep of the chaos-hardening PR: a device is power-failed
at *each* of the update worker's :data:`~repro.suit.KILL_POINTS` in
turn, rebooted by the fault injector, and the publish must converge every
time — via re-trigger for crashes before the install hit flash, via
NVM recovery (a ``REBOOTED`` row) for crashes after.  No kill point may
lose anti-rollback state or strand a storage reservation.

PR 7 widens the sweep to **storage faults**: a torn flash write (power
dies mid-program, in either journal phase) armed at each pipeline step,
and bit flips in the persisted slot/sequence records.  Same acceptance
bar: the publish converges, no slot is left dead, and no case loses or
regresses an anti-rollback sequence.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    FaultInjector,
    HookSpec,
    ImageSpec,
)
from repro.rtos import PowerFailure
from repro.scenarios import build_fleet_publisher
from repro.suit import KILL_POINTS, UpdateStatus
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"

#: Steps whose crash is only recoverable by a fresh trigger (all state
#: up to there was RAM-only) versus steps where the install already hit
#: flash and the bootloader path finishes the job.
RETRIGGERED_STEPS = ("decoded", "verified", "resolved", "reserved",
                     "fetched", "checked")
RECOVERED_STEPS = ("installed", "activated")


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str = GOOD, name: str = "release") -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


def publish_with_kill(step: str):
    """One publish with device 1 power-failed exactly at ``step``."""
    publisher = build_fleet_publisher(devices=2)
    publisher.chaos = FaultInjector(auto_reboot_us=200_000.0)
    victim = publisher.fleet.devices[1]
    fired = {"done": False}

    def killer(crossed: str) -> None:
        if crossed == step and not fired["done"]:
            fired["done"] = True
            raise PowerFailure(f"killed at {step!r}")

    victim.radio.worker.on_step = killer
    result = publisher.publish(make_spec())
    assert fired["done"], f"kill point {step!r} never crossed"
    return publisher, victim, result


@pytest.mark.parametrize("step", KILL_POINTS)
class TestKillPointSweep:
    def test_publish_converges_despite_the_crash(self, step):
        publisher, victim, result = publish_with_kill(step)
        assert result.converged, result.reason
        row = next(r for r in result.devices if r.device is victim)
        assert row.reboots == 1
        if step in RETRIGGERED_STEPS:
            assert row.result.status is UpdateStatus.OK
            assert row.retries >= 1
        else:
            assert step in RECOVERED_STEPS
            assert row.result.status is UpdateStatus.REBOOTED
        assert publisher.chaos.crashes == 1
        assert publisher.chaos.reboots == 1

    def test_no_crash_point_loses_durable_state(self, step):
        publisher, victim, result = publish_with_kill(step)
        storage = victim.radio.worker.storage
        # Anti-rollback state: the published sequence is in NVM-backed
        # storage, and nothing else — no stranded reservation, no dead
        # slot left behind by the crash.
        assert storage.highest_sequence(publisher.slot) \
            == result.sequence_number
        assert len(storage.slots) == 1
        assert all(slot.occupied for slot in storage.slots.values())
        # The survivor device was never disturbed.
        bystander = publisher.fleet.devices[0]
        assert bystander.reboots == 0
        assert next(r for r in result.devices
                    if r.device is bystander).result.ok


class TestKillPointList:
    def test_kill_points_cover_the_whole_pipeline(self):
        assert KILL_POINTS == ("decoded", "verified", "resolved", "reserved",
                               "fetched", "checked", "installed", "activated")
        assert set(RETRIGGERED_STEPS) | set(RECOVERED_STEPS) \
            == set(KILL_POINTS)


#: Steps at which a torn write can be armed and still fire: each has at
#: least one later NVM program (a fetch checkpoint or the install
#: commit) in the same pipeline run.  "installed"/"activated" write
#: nothing afterwards, so a tear armed there would never trigger.
TEAR_STEPS = ("decoded", "verified", "resolved", "reserved",
              "fetched", "checked")


def publish_with_tear(step: str, phase: str):
    """One publish with device 1's next flash write torn at ``step``."""
    publisher = build_fleet_publisher(devices=2)
    publisher.chaos = FaultInjector(auto_reboot_us=200_000.0)
    victim = publisher.fleet.devices[1]
    armed = {"done": False}

    def arm(crossed: str) -> None:
        if crossed == step and not armed["done"]:
            armed["done"] = True
            victim.nvm.tear_next_write(phase)

    victim.radio.worker.on_step = arm
    result = publisher.publish(make_spec())
    assert armed["done"], f"tear point {step!r} never crossed"
    return publisher, victim, result


@pytest.mark.parametrize("phase", ["shadow", "commit"])
@pytest.mark.parametrize("step", TEAR_STEPS)
class TestTornWriteSweep:
    def test_converges_with_anti_rollback_intact(self, step, phase):
        publisher, victim, result = publish_with_tear(step, phase)
        assert victim.nvm.torn == 1
        assert result.converged, result.reason
        row = next(r for r in result.devices if r.device is victim)
        assert row.reboots >= 1
        # The torn record either repaired from its shadow or was
        # re-fetched; either way the device ends on the published
        # sequence with no dead slot behind.
        storage = victim.radio.worker.storage
        assert storage.highest_sequence(publisher.slot) \
            == result.sequence_number
        assert all(slot.occupied for slot in storage.slots.values())
        bystander = publisher.fleet.devices[0]
        assert bystander.reboots == 0
        assert next(r for r in result.devices
                    if r.device is bystander).result.ok


class TestBitFlipRecovery:
    def test_flipped_seq_record_cannot_regress_the_floor(self):
        from repro.suit.storage import NVM_SEQ_PREFIX

        publisher = build_fleet_publisher(devices=2)
        victim = publisher.fleet.devices[1]
        first = publisher.publish(make_spec())
        assert first.converged, first.reason
        # Radiation hits the anti-rollback record; the device then
        # power-cycles.  The standing replica repairs it on restore.
        assert victim.nvm.bit_flip(NVM_SEQ_PREFIX + publisher.slot)
        publisher.crash_device(victim)
        publisher.reboot_device(victim)
        storage = victim.radio.worker.storage
        assert storage.highest_sequence(publisher.slot) \
            == first.sequence_number

    def test_flipped_slot_record_drops_gracefully_and_reheals(self):
        from repro.suit.storage import NVM_SLOT_PREFIX

        publisher = build_fleet_publisher(devices=2)
        victim = publisher.fleet.devices[1]
        first = publisher.publish(make_spec())
        assert first.converged, first.reason
        # The (single-copy) slot record is lost outright: restore drops
        # it without raising, but the redundant seq record keeps the
        # replay floor.
        assert victim.nvm.bit_flip(NVM_SLOT_PREFIX + publisher.slot)
        publisher.crash_device(victim)
        publisher.reboot_device(victim)
        storage = victim.radio.worker.storage
        assert storage.corrupt_dropped == 1
        assert storage.highest_sequence(publisher.slot) \
            == first.sequence_number
        # The next release re-fetches the image: no dead slot remains.
        second = publisher.publish(make_spec("mov r0, 8\n    exit",
                                             name="release-2"))
        assert second.converged, second.reason
        assert all(slot.occupied for slot in storage.slots.values())
        assert storage.highest_sequence(publisher.slot) \
            == second.sequence_number
