"""Multicast publish: group trigger, suppressed acks, unicast fallback.

The fleet-scale publish path sends ONE broadcast trigger to a CoAP
group address instead of N unicast POSTs.  These tests hold its
contract: group membership on the shared link, the seeded suppression
lottery that bounds the maintainer's ack sample to ~K of N, the
self-healing unicast retry for devices that miss the broadcast, and
convergence through a mid-broadcast loss burst.
"""

from __future__ import annotations

import random

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    FaultInjector,
    HookSpec,
    ImageSpec,
    LinkLossBurst,
    PublishOptions,
)
from repro.deploy.publish import GROUP_ADDR
from repro.net import Interface, Link
from repro.rtos import Kernel
from repro.scenarios import build_fleet_publisher
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str, name: str = "release") -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


class TestLinkGroups:
    def make_rig(self, members: int = 3):
        kernel = Kernel()
        link = Link(kernel, seed=5)
        inboxes: dict[str, list[bytes]] = {}
        ifaces = []
        for i in range(members):
            addr = f"dev{i}"
            inboxes[addr] = []
            iface = Interface(addr)
            iface.receive = (
                lambda data, _src, box=inboxes[addr]: box.append(data))
            link.attach(iface)
            link.join("ff15::g", iface)
            ifaces.append(iface)
        return kernel, link, ifaces, inboxes

    def test_broadcast_reaches_every_other_member(self):
        kernel, link, ifaces, inboxes = self.make_rig(3)
        link.transmit(ifaces[0], "ff15::g", b"hello")
        kernel.run(until_us=kernel.now_us + 50_000)
        assert inboxes["dev0"] == []  # the sender does not hear itself
        assert inboxes["dev1"] == [b"hello"]
        assert inboxes["dev2"] == [b"hello"]

    def test_sender_charged_once_for_one_broadcast(self):
        kernel, link, ifaces, inboxes = self.make_rig(4)
        link.transmit(ifaces[0], "ff15::g", b"payload")
        kernel.run(until_us=kernel.now_us + 50_000)
        assert ifaces[0].stats.frames_sent == 1
        assert ifaces[0].stats.bytes_sent == len(b"payload")
        assert link.stats.frames_sent == 1

    def test_leave_stops_delivery_and_is_idempotent(self):
        kernel, link, ifaces, inboxes = self.make_rig(3)
        link.leave("ff15::g", "dev2")
        link.leave("ff15::g", "dev2")  # already gone: no-op
        link.transmit(ifaces[0], "ff15::g", b"x")
        kernel.run(until_us=kernel.now_us + 50_000)
        assert inboxes["dev1"] == [b"x"]
        assert inboxes["dev2"] == []
        assert link.group_members("ff15::g") == ["dev0", "dev1"]

    def test_joining_a_unicast_address_is_rejected(self):
        kernel, link, ifaces, _ = self.make_rig(2)
        with pytest.raises(ValueError, match="unicast"):
            link.join("dev1", ifaces[0])


class TestSuppressionSample:
    def test_ack_sample_is_the_pinned_k_of_n_lottery(self):
        """The maintainer hears exactly the devices whose seeded lottery
        draw clears p = ack_sample/N — replayable from (seed, sequence,
        name) alone, no network state needed."""
        publisher = build_fleet_publisher(devices=24, seed=11)
        options = PublishOptions.scale(ack_sample=6)
        result = publisher.publish(make_spec(GOOD, "v1"), options)
        assert result.ok and result.multicast

        n = len(publisher.fleet.devices)
        permille = min(1000, options.ack_sample * 1000 // n)
        expected = sorted(
            device.name for device in publisher.fleet.devices
            if random.Random(
                f"{publisher.seed}:{result.sequence_number}:{device.name}"
            ).random() * 1000 < permille)
        assert result.mcast_acks == expected
        assert 0 < len(result.mcast_acks) < n  # bounded, not silent

    def test_sample_is_stable_across_identical_runs(self):
        runs = []
        for _ in range(2):
            IMAGE_CACHE.clear()
            publisher = build_fleet_publisher(devices=16, seed=23)
            result = publisher.publish(make_spec(GOOD, "v1"),
                                       PublishOptions.scale(ack_sample=4))
            runs.append(result.mcast_acks)
        assert runs[0] == runs[1]

    def test_small_fleet_all_ack(self):
        """ack_sample >= N degenerates to everyone acking (p = 1000)."""
        publisher = build_fleet_publisher(devices=3, seed=7)
        result = publisher.publish(make_spec(GOOD, "v1"),
                                   PublishOptions.scale(ack_sample=8))
        assert result.mcast_acks == ["dev0", "dev1", "dev2"]

    def test_legacy_publish_never_multicasts(self):
        publisher = build_fleet_publisher(devices=3)
        result = publisher.publish(make_spec(GOOD, "v1"))
        assert not result.multicast
        assert result.mcast_acks == []

    def test_canary_subsets_stay_unicast(self):
        """A broadcast cannot address a subset: a canary-staged publish
        keeps the unicast trigger path even under the scale profile."""
        publisher = build_fleet_publisher(devices=4)
        result = publisher.publish(
            make_spec(GOOD, "v1"),
            PublishOptions.scale(canary_count=1, bake_us=200_000.0))
        assert result.ok
        assert not result.multicast


class TestUnicastFallback:
    def test_device_missing_the_broadcast_converges_by_retry(self):
        """A device off the group (radio rebooting during the trigger,
        stale membership) never hears the broadcast; after the grace
        period the PR 6 unicast backoff path picks it up."""
        publisher = build_fleet_publisher(devices=4, seed=11)
        deaf = publisher.fleet.devices[2]
        publisher.link.leave(GROUP_ADDR, deaf.radio.addr)
        result = publisher.publish(
            make_spec(GOOD, "v1"),
            PublishOptions.scale(mcast_grace_us=300_000.0))
        assert result.ok and result.multicast
        retries = {row.device.name: row.retries for row in result.rows()}
        assert retries[deaf.name] >= 1  # fell back to unicast trigger
        assert all(retries[name] == 0 for name in retries
                   if name != deaf.name)

    def test_loss_burst_during_broadcast_still_converges(self):
        """A LinkLossBurst straddling the trigger drops the broadcast
        for some members and mauls their fetches; grace-period retries
        heal all of it."""
        publisher = build_fleet_publisher(devices=5, seed=23)
        publisher.chaos = FaultInjector([
            LinkLossBurst(at_us=0.0, duration_us=120_000.0, loss=0.8),
        ])
        result = publisher.publish(
            make_spec(GOOD, "v1"),
            PublishOptions.scale(mcast_grace_us=300_000.0))
        assert result.ok and result.multicast
        assert all(row.ok for row in result.rows())

    def test_trigger_bytes_accounted(self):
        """One broadcast charges the maintainer one frame regardless of
        N — the measurable airtime edge over N unicast POSTs."""
        publisher = build_fleet_publisher(devices=8, seed=7)
        result = publisher.publish(make_spec(GOOD, "v1"),
                                   PublishOptions.scale())
        assert result.multicast
        assert 0 < result.trigger_tx_bytes < 2_000  # one frame, not 8

        IMAGE_CACHE.clear()
        unicast = build_fleet_publisher(devices=8, seed=7)
        baseline = unicast.publish(make_spec(GOOD, "v1"))
        assert not baseline.multicast
        assert baseline.trigger_tx_bytes > result.trigger_tx_bytes
