"""Control-plane facade: registry, releases, orchestration, status rows.

:class:`~repro.deploy.ControlPlane` is the long-lived maintainer
service: one :class:`~repro.deploy.DeviceRegistry` shared by fleet and
publisher, signed :class:`~repro.deploy.Release` records, publish and
canary orchestration with the fleet-scale profile, and streamed typed
per-device status rows.  These tests also pin the unified result
protocol (``ok``/``wall_s``/``speedups()``/iterable rows) across
``FleetRollout``, ``CanaryRollout`` and ``PublishResult``, and the
``PublishOptions`` migration path for legacy keyword callers.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    CanaryRollout,
    DeploymentSpec,
    FleetResult,
    FleetRollout,
    HookSpec,
    ImageSpec,
    PublishOptions,
    PublishResult,
    Release,
)
from repro.scenarios import build_control_plane, build_fleet_publisher
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"
BETTER = "mov r0, 8\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str, name: str = "release") -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


class TestRegistry:
    def test_fleet_and_publisher_share_one_registry(self):
        plane = build_control_plane(devices=3)
        assert plane.registry is plane.fleet.registry
        assert [d.name for d in plane.devices()] == ["dev0", "dev1", "dev2"]
        assert plane.device("dev1") is plane.fleet.devices[1]

    def test_register_at_runtime_joins_publishes(self):
        plane = build_control_plane(devices=2)
        late = plane.register()
        assert late.name == "dev2" and len(plane) == 3
        result = plane.publish(make_spec(GOOD, "v1"))
        assert result.ok
        assert {row.device.name for row in result.rows()} \
            == {"dev0", "dev1", "dev2"}

    def test_duplicate_name_is_rejected(self):
        plane = build_control_plane(devices=2)
        with pytest.raises(ValueError, match="already registered"):
            plane.register(name="dev1")

    def test_evicted_device_leaves_the_air(self):
        plane = build_control_plane(devices=3)
        gone = plane.evict("dev1")
        assert gone.name == "dev1" and len(plane) == 2
        with pytest.raises(KeyError, match="no fleet device"):
            plane.device("dev1")
        result = plane.publish(make_spec(GOOD, "v1"))
        assert result.ok
        assert {row.device.name for row in result.rows()} == {"dev0", "dev2"}

    def test_retired_indices_are_never_reused(self):
        """A device registered after an eviction must not inherit the
        dead device's radio address (in-flight frames!)."""
        plane = build_control_plane(devices=3)
        plane.evict("dev2")
        replacement = plane.register()
        assert replacement.name == "dev3"
        assert plane.registry.index_of("dev3") == 3

    def test_evict_unknown_device_raises(self):
        plane = build_control_plane(devices=2)
        with pytest.raises(KeyError, match="no fleet device"):
            plane.evict("dev9")


class TestReleases:
    def test_submit_signs_and_sequences(self):
        plane = build_control_plane(devices=2)
        one = plane.submit(make_spec(GOOD, "v1"))
        two = plane.submit(make_spec(BETTER, "v2"))
        assert isinstance(one, Release)
        assert (one.sequence_number, two.sequence_number) == (1, 2)
        assert one.name == "v1@1"
        assert one.envelope and one.payload
        assert plane.releases == [one, two]

    def test_publishing_a_release_uses_its_sequence(self):
        plane = build_control_plane(devices=3)
        release = plane.submit(make_spec(GOOD, "v1"))
        result = plane.publish(release)
        assert result.ok
        assert result.sequence_number == release.sequence_number
        assert all(row.sequence == release.sequence_number
                   for row in plane.status())

    def test_publishing_a_bare_spec_submits_implicitly(self):
        plane = build_control_plane(devices=2)
        result = plane.publish(make_spec(GOOD, "v1"))
        assert result.ok
        assert len(plane.releases) == 1
        assert plane.releases[0].sequence_number == result.sequence_number

    def test_plane_publish_defaults_to_the_scale_profile(self):
        plane = build_control_plane(devices=4)
        result = plane.publish(make_spec(GOOD, "v1"))
        assert result.multicast

    def test_canary_is_staged_and_health_gated(self):
        plane = build_control_plane(devices=4)
        plane.publish(make_spec(GOOD, "v1"))
        result = plane.canary(make_spec(BETTER, "v2"), canary_count=1,
                              options=PublishOptions.scale(
                                  bake_us=200_000.0))
        assert result.ok and result.promoted
        roles = [row.role for row in result.rows()]
        assert roles.count("canary") == 1
        assert roles.count("control") == 3


class TestStatusRows:
    def test_streams_one_typed_row_per_device(self):
        plane = build_control_plane(devices=3)
        release = plane.submit(make_spec(GOOD, "v1"))
        plane.publish(release)
        rows = list(plane.status())
        assert [row.name for row in rows] == ["dev0", "dev1", "dev2"]
        assert [row.index for row in rows] == [0, 1, 2]
        for row in rows:
            assert row.board == "nrf52840"
            assert row.sequence == release.sequence_number
            assert row.spec == "v1"
            assert row.reboots == 0 and not row.halted
            assert row.cycles > 0
            assert row.radio_uj > 0.0

    def test_unpublished_fleet_reports_zero_sequence(self):
        plane = build_control_plane(devices=2)
        for row in plane.status():
            assert row.sequence == 0 and row.spec is None


class TestResultProtocol:
    def test_all_three_results_share_the_protocol(self):
        plane = build_control_plane(devices=3)
        published = plane.publish(make_spec(GOOD, "v1"))
        applied = plane.fleet.apply(make_spec(GOOD, "v1"))
        staged = plane.fleet.canary_rollout(make_spec(BETTER, "v2"),
                                            canary_count=1,
                                            bake_us=200_000.0)
        for result in (published, applied, staged):
            assert isinstance(result, FleetResult)
            assert result.ok is True
            assert result.wall_s >= 0.0
            rows = list(result)  # iterable per-device rows
            assert rows == result.rows() and len(result) == len(rows)
            speedups = result.speedups()
            assert all(s > 0.0 for s in speedups)

    def test_old_attribute_names_still_work(self):
        plane = build_control_plane(devices=2)
        published = plane.publish(make_spec(GOOD, "v1"))
        assert isinstance(published, PublishResult)
        assert published.devices == published.rows()
        assert published.converged is published.ok

        applied = plane.fleet.apply(make_spec(GOOD, "v1"))
        assert isinstance(applied, FleetRollout)
        assert applied.devices == applied.rows()

        staged = plane.fleet.canary_rollout(make_spec(BETTER, "v2"),
                                            canary_count=1,
                                            bake_us=200_000.0)
        assert isinstance(staged, CanaryRollout)
        assert staged.devices == staged.rows()
        assert staged.promoted is staged.ok

    def test_results_are_always_truthy(self):
        """``if result:`` must not silently flip on empty row lists."""
        plane = build_control_plane(devices=2)
        result = plane.publish(make_spec(GOOD, "v1"))
        assert bool(result)


class TestPublishOptions:
    def test_defaults_are_the_legacy_behavior(self):
        options = PublishOptions()
        assert not options.multicast
        assert options.shards == 1
        assert not options.share_release
        assert options.legacy() == options

    def test_scale_profile_turns_the_knobs(self):
        options = PublishOptions.scale()
        assert options.multicast
        assert options.shards is None  # auto-sized
        assert options.share_release

    def test_legacy_kwargs_warn_but_work(self):
        publisher = build_fleet_publisher(devices=2)
        with pytest.warns(DeprecationWarning, match="PublishOptions"):
            result = publisher.publish(make_spec(GOOD, "v1"),
                                       max_windows=2000)
        assert result.ok

    def test_positional_sequence_number_still_accepted(self):
        publisher = build_fleet_publisher(devices=2)
        first = publisher.publish(make_spec(GOOD, "v1"))
        with pytest.warns(DeprecationWarning, match="PublishOptions"):
            replay = publisher.publish(make_spec(GOOD, "v1"),
                                       first.sequence_number)
        assert not replay.ok  # anti-rollback refuses the replay
        assert replay.sequence_number == first.sequence_number
