"""Fleet-wide OTA publish: one signed manifest, N device convergences.

:class:`~repro.deploy.FleetPublisher` signs one spec manifest and fans it
out over a shared radio link to every device's
:class:`~repro.suit.SpecUpdateWorker` trigger endpoint.  These tests hold
the wire-level invariants: per-device anti-rollback, idempotent
republish, per-device virtual-clock charging, and the health-gated
canary stage that never touches untriggered control devices.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HealthGate,
    HookSpec,
    ImageSpec,
    plan,
)
from repro.scenarios import build_fleet_publisher
from repro.suit import UpdateStatus
from repro.suit.worker import SIG_VERIFY_CYCLES
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"
BETTER = "mov r0, 8\n    exit"
#: Verifies clean, dereferences an unmapped address at runtime.
POISON = "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str, name: str = "release") -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


class TestPublishRoundTrip:
    def test_one_publish_converges_the_fleet(self):
        publisher = build_fleet_publisher(devices=3)
        spec = make_spec(GOOD, "v1")
        result = publisher.publish(spec)
        assert result.converged
        assert result.sequence_number == 1
        assert [row.result.status for row in result.devices] \
            == [UpdateStatus.OK] * 3
        assert all(plan(device.engine, spec).empty
                   for device in publisher.fleet.devices)
        assert publisher.fleet.current_spec is spec

    def test_virtual_clock_charged_per_device(self):
        """The radio path charges every device its own signature-check,
        digest and verify+install cycles — cache warmth is wall-clock
        only, exactly the fleet-apply invariant."""
        publisher = build_fleet_publisher(devices=3)
        result = publisher.publish(make_spec(GOOD, "v1"))
        for row in result.devices:
            assert row.cycles_charged >= SIG_VERIFY_CYCLES
        # Identical devices converging off one wire payload charge
        # identical modelled cycles, cold or cache-warm.
        assert len({row.cycles_charged for row in result.devices}) == 1

    def test_warm_devices_ride_the_image_cache(self):
        publisher = build_fleet_publisher(devices=3)
        result = publisher.publish(make_spec(GOOD, "v1"))
        first, *rest = result.devices
        assert first.cache_misses > 0
        assert all(row.cache_misses == 0 for row in rest)

    def test_replayed_sequence_refused_fleet_wide(self):
        publisher = build_fleet_publisher(devices=3)
        spec = make_spec(GOOD, "v1")
        publisher.publish(spec)
        replay = publisher.publish(make_spec(BETTER, "v2"),
                                   sequence_number=1)
        assert not replay.converged
        assert [row.result.status for row in replay.devices] \
            == [UpdateStatus.SEQUENCE_REPLAY] * 3
        # The refused spec changed nothing anywhere.
        assert all(plan(device.engine, spec).empty
                   for device in publisher.fleet.devices)
        assert publisher.fleet.current_spec is spec

    def test_idempotent_republish_converges_with_zero_actions(self):
        publisher = build_fleet_publisher(devices=3)
        spec = make_spec(GOOD, "v1")
        publisher.publish(spec)
        again = publisher.publish(spec)
        assert again.converged
        assert again.sequence_number == 2
        assert all(row.actions == 0 for row in again.devices)
        assert all("no actions" in row.result.message
                   for row in again.devices)

    def test_bad_signer_refused_without_device_changes(self):
        publisher = build_fleet_publisher(devices=2)
        spec = make_spec(GOOD, "v1")
        publisher.publish(spec)
        forged = publisher.publish(make_spec(BETTER, "v2"),
                                   signer_seed=bytes(32))
        assert not forged.converged
        assert [row.result.status for row in forged.devices] \
            == [UpdateStatus.SIGNATURE_INVALID] * 2
        assert all(plan(device.engine, spec).empty
                   for device in publisher.fleet.devices)

    def test_lossy_link_still_converges(self):
        """CoAP CON retransmission rides out frame loss on the shared
        medium; the publish just takes more virtual time."""
        publisher = build_fleet_publisher(devices=2, loss=0.05)
        result = publisher.publish(make_spec(GOOD, "v1"))
        assert result.converged


class TestCanaryPublish:
    def test_poisoned_publish_rolls_back_over_the_radio(self):
        publisher = build_fleet_publisher(devices=4)
        fleet = publisher.fleet
        base = make_spec(GOOD, "base")
        publisher.publish(base)
        control_results = [len(device.radio.worker.results)
                           for device in fleet.devices[1:]]
        result = publisher.publish(make_spec(POISON, "v2"), canary_count=1,
                                   bake_us=200_000.0, bake_fires=2)
        assert result.rolled_back and not result.promoted
        assert "faults during bake" in result.reason
        assert result.fault_deltas["dev0"] > 0
        # The rollback itself travelled over the radio as a *new*
        # sequence (anti-rollback forbids re-announcing the old one).
        rollback_rows = result.by_role("rollback")
        assert len(rollback_rows) == 1 and rollback_rows[0].ok
        assert publisher.sequence > result.sequence_number
        # Control devices were never even triggered.
        assert [len(device.radio.worker.results)
                for device in fleet.devices[1:]] == control_results
        # And the canary reconverged on the baseline.
        assert plan(fleet.devices[0].engine, base).empty
        assert fleet.current_spec is base

    def test_healthy_canary_publish_promotes(self):
        publisher = build_fleet_publisher(devices=4)
        fleet = publisher.fleet
        publisher.publish(make_spec(GOOD, "base"))
        release = make_spec(BETTER, "v2")
        result = publisher.publish(release, canary_count=1,
                                   bake_us=200_000.0, bake_fires=2)
        assert result.promoted and not result.rolled_back
        assert len(result.by_role("canary")) == 1
        assert len(result.by_role("control")) == 3
        assert all(plan(device.engine, release).empty
                   for device in fleet.devices)
        assert fleet.current_spec is release
        # Promotion rode the canary-warmed cache.
        assert all(row.cache_misses == 0
                   for row in result.by_role("control"))

    def test_health_gate_applies_to_canary_publish(self):
        publisher = build_fleet_publisher(devices=3)
        publisher.publish(make_spec(GOOD, "base"))
        result = publisher.publish(
            make_spec(BETTER, "v2"), canary_count=1,
            bake_us=100_000.0, bake_fires=2,
            health_gate=HealthGate(cycle_budgets={"worker-0": 1}),
        )
        assert result.rolled_back
        assert "cycles/run" in result.reason

    def test_partial_canary_refusal_rolls_back_accepted_canaries(self):
        """One canary's firmware cannot reconcile the spec (hook mode
        mismatch); the other accepted it.  The accepted canary must not
        be left running the unbaked spec — it gets the baseline back
        over the air."""
        from repro.core.hooks import Hook

        publisher = build_fleet_publisher(devices=3)
        fleet = publisher.fleet
        base = DeploymentSpec(
            name="base", tenants=("ops",),
            images={"app": ImageSpec.from_program(
                assemble(GOOD, name="app"))},
            attachments=(AttachmentSpec(image="app", hook="fc.hook.timer",
                                        tenant="ops", name="w"),),
        )
        publisher.publish(base)
        # dev1's firmware compiles the fan-out pad in THREAD mode: a
        # SYNC-declaring spec is irreconcilable there.
        fleet.devices[1].engine.register_hook(
            Hook(FC_HOOK_FANOUT, mode=HookMode.THREAD))
        result = publisher.publish(make_spec(BETTER, "v2"), canary_count=2)
        assert result.rolled_back
        assert "refused by canaries dev1" in result.reason
        rollback_rows = result.by_role("rollback")
        assert [row.device.name for row in rollback_rows] == ["dev0"]
        assert rollback_rows[0].ok
        # Both canaries are back on (or still on) the baseline.
        assert plan(fleet.devices[0].engine, base).empty
        assert plan(fleet.devices[1].engine, base).empty
        assert fleet.current_spec is base

    def test_replay_to_canaries_aborts_without_rollback_traffic(self):
        publisher = build_fleet_publisher(devices=3)
        base = make_spec(GOOD, "base")
        publisher.publish(base)
        result = publisher.publish(make_spec(BETTER, "v2"),
                                   sequence_number=1, canary_count=1)
        assert result.rolled_back
        assert "refused by canaries" in result.reason
        assert result.by_role("rollback") == []
        assert plan(publisher.fleet.devices[0].engine, base).empty


class TestRadioEnergy:
    """Publish wiring tracks every device radio in its energy meter."""

    def test_publish_charges_each_device_radio_energy(self):
        publisher = build_fleet_publisher(devices=3)
        result = publisher.publish(make_spec(GOOD, "v1"))
        assert result.converged
        for device in publisher.fleet.devices:
            assert device.meter.report().radio_uj > 0.0

    def test_lossy_fleet_pays_more_radio_energy(self):
        """CoAP retransmissions are real frames: the same publish over a
        lossy link costs measurably more radio energy per device."""
        clean = build_fleet_publisher(devices=2)
        clean.publish(make_spec(GOOD, "v1"))
        clean_uj = sum(d.meter.report().radio_uj
                       for d in clean.fleet.devices)
        IMAGE_CACHE.clear()
        lossy = build_fleet_publisher(devices=2, loss=0.15, seed=5)
        lossy.publish(make_spec(GOOD, "v1"))
        lossy_uj = sum(d.meter.report().radio_uj
                       for d in lossy.fleet.devices)
        assert lossy_uj > clean_uj

    def test_rebooted_device_keeps_one_energy_bill(self):
        """The reboot replaces the radio rig; the meter spans both
        incarnations without double counting."""
        from repro.deploy import CrashAt, FaultInjector

        publisher = build_fleet_publisher(devices=2)
        publisher.chaos = FaultInjector(
            [CrashAt("dev1", at_us=1_000.0, down_us=300_000.0)])
        result = publisher.publish(make_spec(GOOD, "v1"))
        assert result.converged
        victim = publisher.fleet.devices[1]
        assert victim.reboots == 1
        spent = victim.meter.report().radio_uj
        assert spent > 0.0
        assert victim.meter.report().radio_uj == spent  # stable re-read


class TestPerDeviceTelemetry:
    """Each publish row carries the device's own health and energy."""

    def test_rows_carry_fault_and_radio_telemetry(self):
        publisher = build_fleet_publisher(devices=3)
        result = publisher.publish(make_spec(GOOD, "v1"))
        assert result.converged
        for row in result.devices:
            assert row.radio_uj > 0.0
            assert row.fault_delta == 0 and row.quarantined == 0
        assert result.total_fault_delta == 0
        assert result.total_radio_uj == pytest.approx(
            sum(row.radio_uj for row in result.devices))

    def test_fault_delta_survives_a_mid_publish_reboot(self):
        """The accumulator banks the pre-crash engine's fault count when
        the reboot swaps in a fresh engine."""
        from repro.core import FC_HOOK_TIMER
        from repro.deploy import FaultInjector
        from repro.rtos import PowerFailure

        publisher = build_fleet_publisher(devices=2)
        publisher.chaos = FaultInjector(auto_reboot_us=200_000.0)
        victim = publisher.fleet.devices[1]
        sensor = victim.engine.attach(
            victim.engine.load(assemble(POISON, name="sensor")),
            FC_HOOK_TIMER)
        fired = {"done": False}

        def sabotage(crossed: str) -> None:
            # Mid-pipeline, the resident sensor container faults twice
            # (contained), then the lights go out.
            if crossed == "fetched" and not fired["done"]:
                fired["done"] = True
                for _ in range(2):
                    assert victim.engine.execute(sensor).fault is not None
                raise PowerFailure("crash after contained faults")

        victim.radio.worker.on_step = sabotage
        result = publisher.publish(make_spec(GOOD, "v1"))
        assert fired["done"]
        assert result.converged, result.reason
        row = next(r for r in result.devices if r.device is victim)
        assert row.reboots == 1
        # The reboot rebuilt the engine (fresh fault_total, no sensor);
        # the row still carries the pre-crash engine's faults.
        assert row.fault_delta == 2


class TestQuarantineAwarePublish:
    """Fleet quarantine-awareness: a device hosting a crash-looping
    container still converges on the publish — its row is upgraded to
    ``QUARANTINED`` (flagged, counted, not failed) so one sick workload
    never blocks or masks a fleet rollout."""

    def _poisoned_publisher(self):
        from repro.vm.supervisor import SupervisorConfig

        publisher = build_fleet_publisher(
            devices=3, supervisor=SupervisorConfig(fault_streak=4))
        sick = publisher.fleet.devices[1]
        # An out-of-spec resident workload (say, a sensor reader from an
        # earlier local install) that crash-loops on its timer hook.
        looper = sick.engine.load(assemble(POISON, name="sensor"))
        sick.engine.attach_periodic(looper, 1_000.0)
        return publisher, sick

    def test_quarantined_device_is_flagged_not_failed(self):
        publisher, sick = self._poisoned_publisher()
        result = publisher.publish(make_spec(GOOD, "v1"))
        assert result.converged, result.reason
        rows = {row.device.name: row for row in result.devices}
        assert rows["dev1"].result.status is UpdateStatus.QUARANTINED
        assert rows["dev1"].ok
        assert rows["dev1"].quarantined >= 1
        assert rows["dev1"].fault_delta > 0
        assert "sensor" in rows["dev1"].result.message
        assert rows["dev0"].result.status is UpdateStatus.OK
        assert result.quarantined_devices() == [rows["dev1"]]
        # The flagged device still converged onto the published sequence
        # — the spec's own workers are untouched by the quarantine.
        assert sick.radio.worker.storage.highest_sequence(
            publisher.slot) == result.sequence_number
        assert sick.current_spec is result.spec
