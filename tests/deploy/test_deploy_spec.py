"""DeploymentSpec model: validation, JSON round-trip, builtin specs."""

from __future__ import annotations

import json

import pytest

from repro.core import ContainerContract, FC_HOOK_FANOUT, FC_HOOK_TIMER
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
    SpecError,
    builtin_spec,
    fanout_spec,
    multi_tenant_spec,
)
from repro.vm import assemble
from repro.workloads import thread_counter_program

RETURN_7 = "mov r0, 7\n    exit"


def simple_spec(**overrides) -> DeploymentSpec:
    fields = dict(
        name="simple",
        tenants=("alice",),
        images={"seven": ImageSpec.from_program(assemble(RETURN_7))},
        attachments=(AttachmentSpec(image="seven", hook=FC_HOOK_TIMER,
                                    tenant="alice", name="sevener"),),
    )
    fields.update(overrides)
    return DeploymentSpec(**fields)


class TestImageSpec:
    def test_hash_matches_instantiated_program(self):
        program = thread_counter_program()
        image = ImageSpec.from_program(program)
        assert image.image_hash == program.image_hash

    def test_instantiate_returns_fresh_objects_same_hash(self):
        image = ImageSpec.from_program(assemble(RETURN_7))
        first, second = image.instantiate("a"), image.instantiate("b")
        assert first is not second
        assert first.image_hash == second.image_hash == image.image_hash
        assert first.name == "a" and second.name == "b"

    def test_equal_programs_produce_equal_hashes(self):
        # Content addressing: two separately assembled but identical
        # programs are the same image.
        one = ImageSpec.from_program(assemble(RETURN_7))
        two = ImageSpec.from_program(assemble(RETURN_7))
        assert one.image_hash == two.image_hash

    def test_from_json_variants(self):
        program = thread_counter_program()
        by_workload = ImageSpec.from_json("w", {"workload": "thread-counter"})
        by_hex = ImageSpec.from_json("h", {
            "hex": program.to_bytes().hex(),
            "rodata_hex": program.rodata.hex(),
            "data_hex": program.data.hex(),
        })
        by_asm = ImageSpec.from_json("a", {"asm": RETURN_7})
        assert by_workload.image_hash == by_hex.image_hash \
            == program.image_hash
        assert by_asm.image_hash == assemble(RETURN_7).image_hash

    def test_from_json_rejects_unknown_source(self):
        with pytest.raises(SpecError):
            ImageSpec.from_json("x", {"url": "coap://nope"})
        with pytest.raises(SpecError):
            ImageSpec.from_json("x", {"workload": "ghost"})


class TestValidation:
    def test_valid_spec_passes(self):
        simple_spec().validate()

    def test_unknown_image_rejected(self):
        spec = simple_spec(attachments=(AttachmentSpec(
            image="ghost", hook=FC_HOOK_TIMER, tenant="alice"),))
        with pytest.raises(SpecError, match="unknown image"):
            spec.validate()

    def test_unknown_tenant_rejected(self):
        spec = simple_spec(attachments=(AttachmentSpec(
            image="seven", hook=FC_HOOK_TIMER, tenant="bob"),))
        with pytest.raises(SpecError, match="unknown tenant"):
            spec.validate()

    def test_duplicate_instance_names_rejected(self):
        duplicate = AttachmentSpec(image="seven", hook=FC_HOOK_TIMER,
                                   tenant="alice", name="sevener")
        spec = simple_spec(attachments=(duplicate, duplicate))
        with pytest.raises(SpecError, match="two attachments"):
            spec.validate()

    def test_bad_count_rejected(self):
        spec = simple_spec(attachments=(AttachmentSpec(
            image="seven", hook=FC_HOOK_TIMER, tenant="alice", count=0),))
        with pytest.raises(SpecError, match="count"):
            spec.validate()

    def test_instance_naming(self):
        one = AttachmentSpec(image="img", hook="h", name="solo")
        many = AttachmentSpec(image="img", hook="h", name="worker", count=3)
        templated = AttachmentSpec(image="img", hook="h", name="fc-1-{i}",
                                   count=2)
        unnamed = AttachmentSpec(image="img", hook="h")
        assert one.instance_names() == ["solo"]
        assert many.instance_names() == ["worker-0", "worker-1", "worker-2"]
        assert templated.instance_names() == ["fc-1-0", "fc-1-1"]
        assert unnamed.instance_names() == ["img"]


class TestJsonRoundTrip:
    def test_round_trip_preserves_desired_state(self):
        spec = fanout_spec(tenants=2, instances_per_tenant=3)
        restored = DeploymentSpec.from_json(
            json.loads(json.dumps(spec.to_json())))
        assert restored.name == spec.name
        assert restored.tenants == spec.tenants
        assert restored.hooks == spec.hooks
        assert [i.image_hash for i in restored.images.values()] \
            == [i.image_hash for i in spec.images.values()]
        assert restored.desired_instances() == spec.desired_instances()

    def test_contract_round_trip(self):
        contract = ContainerContract(helpers=frozenset({0x01, 0x30}),
                                     max_instructions=128,
                                     stack_size=1024)
        attachment = AttachmentSpec(image="seven", hook=FC_HOOK_TIMER,
                                    tenant="alice", name="sevener",
                                    contract=contract, period_us=5e5)
        spec = simple_spec(attachments=(attachment,))
        restored = DeploymentSpec.from_json(spec.to_json())
        assert restored.attachments[0].contract == contract
        assert restored.attachments[0].period_us == 5e5

    def test_from_json_validates(self):
        doc = simple_spec().to_json()
        doc["attachments"][0]["image"] = "ghost"
        with pytest.raises(SpecError):
            DeploymentSpec.from_json(doc)


class TestBuiltins:
    def test_builtin_names(self):
        assert builtin_spec("multi-tenant").name == "multi-tenant"
        assert builtin_spec("fanout").name == "fanout"
        with pytest.raises(SpecError):
            builtin_spec("ghost")

    def test_multi_tenant_spec_shape(self):
        spec = multi_tenant_spec(sensor_period_us=250_000)
        spec.validate()
        assert spec.tenants == ("tenant-a", "tenant-b")
        assert len(spec.desired_instances()) == 3
        sensor = spec.desired_instances()[0]
        assert sensor.period_us == 250_000

    def test_fanout_spec_shape(self):
        spec = fanout_spec(tenants=3, instances_per_tenant=2)
        spec.validate()
        assert spec.hooks == (HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),)
        names = [i.name for i in spec.desired_instances()]
        assert names == ["fc-0-0", "fc-0-1", "fc-1-0", "fc-1-1",
                         "fc-2-0", "fc-2-1"]
