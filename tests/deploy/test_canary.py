"""Canary fleet rollout: bake, fault gating, rollback isolation."""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT, FC_HOOK_TIMER
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    Fleet,
    HookSpec,
    ImageSpec,
    plan,
)
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"
BETTER = "mov r0, 8\n    exit"
#: Verifies clean, dereferences an unmapped address at runtime.
POISON = "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str, name: str = "release",
              periodic: bool = True) -> DeploymentSpec:
    attachments = [AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                  tenant="ops", name="worker", count=2)]
    if periodic:
        attachments.append(AttachmentSpec(
            image="app", hook=FC_HOOK_TIMER, tenant="ops",
            name="periodic", period_us=200_000.0))
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=tuple(attachments),
    )


def fingerprint(device):
    """Observable state of one device: clock plus attached image hashes."""
    return (
        device.kernel.clock.cycles,
        sorted((container.hook.name, container.name,
                container.image_hash)
               for container in device.engine.containers()),
    )


class TestPromotion:
    def test_clean_spec_promotes_fleet_wide(self):
        fleet = Fleet(4)
        fleet.apply(make_spec(GOOD, "base"))
        release = make_spec(BETTER, "v2")
        rollout = fleet.canary_rollout(release, canary_count=1,
                                       bake_us=1_000_000.0, bake_fires=2)
        assert rollout.promoted and not rollout.rolled_back
        assert rollout.fault_deltas == {"dev0": 0}
        assert len(rollout.control) == 3
        assert all(plan(device.engine, release).empty
                   for device in fleet.devices)
        assert fleet.current_spec is release

    def test_promotion_rides_canary_warmed_cache(self):
        fleet = Fleet(4)
        fleet.apply(make_spec(GOOD, "base"))
        rollout = fleet.canary_rollout(make_spec(BETTER, "v2"),
                                       canary_count=1, bake_fires=1)
        # Promotion applies only replaces; the canary already compiled
        # the new image, so control devices never miss the cache.
        assert all(control.cache_misses == 0
                   for control in rollout.control)

    def test_canary_fraction_sizes_the_subset(self):
        fleet = Fleet(8)
        fleet.apply(make_spec(GOOD, "base"))
        rollout = fleet.canary_rollout(make_spec(BETTER, "v2"),
                                       canary_fraction=0.5, bake_fires=1)
        assert rollout.canary_names == ["dev0", "dev1", "dev2", "dev3"]
        assert rollout.promoted

    def test_invalid_parameters_rejected(self):
        fleet = Fleet(2)
        with pytest.raises(ValueError):
            fleet.canary_rollout(make_spec(GOOD), canary_fraction=0.0)
        with pytest.raises(ValueError):
            fleet.canary_rollout(make_spec(GOOD), canary_count=3)


class TestRollback:
    def test_runtime_faults_roll_canaries_back(self):
        fleet = Fleet(4)
        base = make_spec(GOOD, "base")
        fleet.apply(base)
        rollout = fleet.canary_rollout(make_spec(POISON, "v2"),
                                       canary_count=1,
                                       bake_us=1_000_000.0, bake_fires=2)
        assert rollout.rolled_back and not rollout.promoted
        assert rollout.fault_deltas["dev0"] > 0
        assert "faults during bake" in rollout.reason
        assert not rollout.control
        # Canary devices reconverged on the baseline.
        assert plan(fleet.devices[0].engine, base).empty
        assert fleet.current_spec is base

    def test_rollback_never_disturbs_control_devices(self):
        fleet = Fleet(5)
        fleet.apply(make_spec(GOOD, "base"))
        before = [fingerprint(device) for device in fleet.devices[2:]]
        rollout = fleet.canary_rollout(make_spec(POISON, "v2"),
                                       canary_count=2,
                                       bake_us=500_000.0, bake_fires=1)
        assert rollout.rolled_back
        assert [fingerprint(device)
                for device in fleet.devices[2:]] == before

    def test_faults_without_periodic_attachment_caught_by_fires(self):
        """A spec with only SYNC attachments still bakes: the rollout
        fires the spec's hooks explicitly."""
        fleet = Fleet(3)
        base = make_spec(GOOD, "base", periodic=False)
        fleet.apply(base)
        rollout = fleet.canary_rollout(
            make_spec(POISON, "v2", periodic=False),
            canary_count=1, bake_us=100_000.0, bake_fires=3)
        assert rollout.rolled_back
        # 2 poisoned workers x 3 fires on the fan-out pad.
        assert rollout.fault_deltas["dev0"] == 6

    def test_thread_mode_backlog_fully_drained_before_gate(self):
        """Regression: THREAD-mode hook firings only *enqueue* runs; the
        gate must not read the fault counters while a large backlog is
        still pending, or tail faults would escape to promotion."""
        fleet = Fleet(2)
        base = DeploymentSpec(
            name="base", tenants=("ops",),
            images={"app": ImageSpec.from_program(
                assemble(GOOD, name="app"))},
            attachments=(AttachmentSpec(
                image="app", hook=FC_HOOK_TIMER, tenant="ops",
                name="w", count=4),),
        )
        fleet.apply(base)
        poisoned = DeploymentSpec(
            name="v2", tenants=("ops",),
            images={"app": ImageSpec.from_program(
                assemble(POISON, name="app"))},
            attachments=(AttachmentSpec(
                image="app", hook=FC_HOOK_TIMER, tenant="ops",
                name="w", count=4),),
        )
        rollout = fleet.canary_rollout(poisoned, canary_count=1,
                                       bake_us=50_000.0, bake_fires=100)
        assert rollout.rolled_back, rollout.reason
        # Every enqueued run executed before the gate (faults stop at
        # the 16-fault detach threshold per slot, not at a drain cap).
        assert rollout.fault_deltas["dev0"] >= 16

    def test_verifier_rejected_spec_aborts_before_bake(self):
        """An image the pre-flight verifier rejects never needs a bake:
        the transactional apply already restored the canary."""
        fleet = Fleet(3)
        base = make_spec(GOOD, "base")
        fleet.apply(base)
        bad = make_spec("mov r10, 1\n    exit", "v2")
        rollout = fleet.canary_rollout(bad, canary_count=1)
        assert rollout.rolled_back and not rollout.promoted
        assert "apply failed on dev0" in rollout.reason
        assert rollout.fault_deltas == {}  # never reached the bake
        assert plan(fleet.devices[0].engine, base).empty

    def test_rollback_without_prior_spec_detaches_everything(self):
        fleet = Fleet(2)
        rollout = fleet.canary_rollout(make_spec(POISON, "v2"),
                                       canary_count=1,
                                       bake_us=300_000.0, bake_fires=1)
        assert rollout.rolled_back
        assert not fleet.devices[0].engine.containers()
        assert fleet.current_spec is None

    def test_tenantless_spec_on_firmware_hook_rolls_back_fully(self):
        """Regression: with no prior spec, the synthesized rollback
        baseline must also own the *firmware* hooks the spec attaches
        to — a tenantless poisoned container on fc.hook.timer must not
        keep running (and faulting) after rolled_back=True."""
        fleet = Fleet(2)
        spec = DeploymentSpec(
            name="tenantless",
            images={"app": ImageSpec.from_program(
                assemble(POISON, name="app"))},
            attachments=(AttachmentSpec(
                image="app", hook=FC_HOOK_TIMER, name="w",
                period_us=100_000.0),),
        )
        rollout = fleet.canary_rollout(spec, canary_count=1,
                                       bake_us=500_000.0)
        assert rollout.rolled_back
        device = fleet.devices[0]
        assert device.engine.containers() == []
        # The periodic cadence died with the slot: no further faults.
        faults_after = device.engine.fault_total
        device.kernel.run(until_us=device.kernel.now_us + 500_000.0)
        assert device.engine.fault_total == faults_after

    def test_promotion_failure_reverts_the_whole_fleet(self):
        """Regression: an apply failure on a *control* device during
        promotion must not escape canary_rollout or leave the fleet
        half-promoted."""
        from repro.core.hooks import Hook

        fleet = Fleet(3)
        base = make_spec(GOOD, "base", periodic=True)
        base = DeploymentSpec(
            name="base", tenants=("ops",), images=base.images,
            attachments=(base.attachments[1],),  # periodic only, no hooks
        )
        fleet.apply(base)
        # dev2's firmware compiles the fan-out pad in THREAD mode: the
        # promoted spec (SYNC) is irreconcilable there.
        fleet.devices[2].engine.register_hook(
            Hook(FC_HOOK_FANOUT, mode=HookMode.THREAD))
        release = make_spec(BETTER, "v2")
        rollout = fleet.canary_rollout(release, canary_count=1,
                                       bake_us=200_000.0, bake_fires=1)
        assert rollout.rolled_back and not rollout.promoted
        assert "promotion failed on dev2" in rollout.reason
        assert rollout.control == []
        assert fleet.current_spec is base
        for device in fleet.devices:
            assert plan(device.engine, base).empty

    def test_faulted_and_detached_container_restored_by_rollback(self):
        """A canary whose poisoned container hit the fault-detach
        threshold during the bake still reconverges on the baseline."""
        fleet = Fleet(2)
        base = make_spec(GOOD, "base")
        fleet.apply(base)
        # 16 faults trip HostingEngine.FAULT_DETACH_THRESHOLD.
        rollout = fleet.canary_rollout(make_spec(POISON, "v2"),
                                       canary_count=1,
                                       bake_us=100_000.0, bake_fires=20)
        assert rollout.rolled_back
        assert plan(fleet.devices[0].engine, base).empty
        device = fleet.devices[0]
        worker_names = sorted(
            container.name for container in device.engine.containers())
        assert worker_names == ["periodic", "worker-0", "worker-1"]


class TestBakeIsVirtual:
    def test_bake_advances_only_canary_clocks(self):
        fleet = Fleet(3)
        fleet.apply(make_spec(GOOD, "base"))
        fleet.canary_rollout(make_spec(BETTER, "v2"), canary_count=1,
                             bake_us=2_000_000.0, bake_fires=0)
        assert fleet.devices[0].kernel.now_us >= 2_000_000.0
        # Control devices pay their promotion apply, never the bake.
        assert all(device.kernel.now_us < 10_000.0
                   for device in fleet.devices[1:])

    def test_periodic_workload_runs_during_bake(self):
        fleet = Fleet(2)
        fleet.apply(make_spec(GOOD, "base"))
        runs_before = _periodic_runs(fleet.devices[0])
        fleet.canary_rollout(make_spec(BETTER, "v2"), canary_count=1,
                             bake_us=1_000_000.0, bake_fires=0)
        # 200 ms cadence over a 1 s bake: the slot ran several times.
        assert _periodic_runs(fleet.devices[0]) >= runs_before + 4


def _periodic_runs(device) -> int:
    for container in device.engine.containers():
        if container.name == "periodic":
            return container.runs
    return 0
