"""Sharded co-run invariants: wall-clock-only, bit-identical modelling.

The shard executor partitions device kernels across co-run shards for
wall-clock throughput.  Modelled state must not notice: per-device
virtual clocks and charged cycles are pinned identical between the
single-loop (``shards=1``) and sharded executions, shard assignment is
deterministic, and the publish-scoped release cache (a wall-clock-only
decode memo) never changes a device's cycle bill.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT
from repro.core.hooks import HookMode
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
    PublishOptions,
    ShardExecutor,
    auto_shard_count,
)
from repro.scenarios import build_fleet_publisher
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE

GOOD = "mov r0, 7\n    exit"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_spec(source: str, name: str = "release") -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("ops",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_FANOUT,
                                    tenant="ops", name="worker", count=2),),
    )


def modelled_state(options: PublishOptions, devices: int = 8,
                   seed: int = 11) -> tuple[dict, dict, bool]:
    """(per-device cycles charged, per-device final clock, ok)."""
    IMAGE_CACHE.clear()
    publisher = build_fleet_publisher(devices=devices, seed=seed)
    result = publisher.publish(make_spec(GOOD, "v1"), options)
    charged = {row.device.name: row.cycles_charged for row in result.rows()}
    clocks = {device.name: device.kernel.clock.cycles
              for device in publisher.fleet.devices}
    return charged, clocks, result.ok


def named(count: int) -> list:
    from types import SimpleNamespace

    return [SimpleNamespace(name=f"dev{i}") for i in range(count)]


class TestShardExecutor:
    def test_assignment_is_deterministic_round_robin(self):
        executor = ShardExecutor(named(10), shards=3)
        assert executor.assignment() == {
            "dev0": 0, "dev3": 0, "dev6": 0, "dev9": 0,
            "dev1": 1, "dev4": 1, "dev7": 1,
            "dev2": 2, "dev5": 2, "dev8": 2,
        }

    def test_one_shard_reproduces_the_flat_loop_order(self):
        devices = named(5)
        executor = ShardExecutor(devices, shards=1)
        assert list(executor.iter_pending()) == devices

    def test_converged_shards_are_skipped(self):
        executor = ShardExecutor(named(6), shards=3)
        for name in ("dev0", "dev3"):  # all of shard 0
            executor.discard(name)
        assert [device.name for device in executor.iter_pending()] \
            == ["dev1", "dev4", "dev2", "dev5"]

    def test_auto_sizing_scales_and_clamps(self):
        assert auto_shard_count(1) == 1
        assert auto_shard_count(64) == 1
        assert auto_shard_count(65) == 2
        assert auto_shard_count(1024) == 16
        assert auto_shard_count(100_000) == 16  # clamped
        # shards never exceed devices
        assert ShardExecutor(named(2), shards=None).shard_count <= 2


class TestModelledCyclesInvariant:
    def test_sharding_never_changes_cycles_or_clocks(self):
        """shards=1 vs shards=4 vs auto: same per-device cycle bill and
        final virtual clock — sharding is wall-clock-only."""
        flat = modelled_state(PublishOptions(shards=1))
        sharded = modelled_state(PublishOptions(shards=4))
        auto = modelled_state(PublishOptions(shards=None))
        assert flat[2] and sharded[2] and auto[2]
        assert flat[0] == sharded[0] == auto[0]
        assert flat[1] == sharded[1] == auto[1]

    def test_release_cache_is_wall_clock_only(self):
        """Sharing one decoded release across workers must not change
        any device's charged cycles: decode memoization is a host-side
        (wall-clock) effect, like the image cache."""
        cold = modelled_state(PublishOptions(share_release=False))
        shared = modelled_state(PublishOptions(share_release=True))
        assert cold[2] and shared[2]
        assert cold[0] == shared[0]
        assert cold[1] == shared[1]

    def test_multicast_cycles_are_shard_independent(self):
        """The scale profile changes the *protocol* (one broadcast, no
        per-device fetch), so its cycle bill differs from unicast — but
        it must still be identical across shard counts."""
        one = modelled_state(PublishOptions.scale(shards=1))
        many = modelled_state(PublishOptions.scale(shards=4))
        assert one[2] and many[2]
        assert one[0] == many[0]
        assert one[1] == many[1]

    def test_legacy_kwargs_and_options_agree(self):
        IMAGE_CACHE.clear()
        by_options = build_fleet_publisher(devices=4, seed=7)
        via_options = by_options.publish(make_spec(GOOD, "v1"),
                                         PublishOptions(bake_us=500_000.0))
        IMAGE_CACHE.clear()
        by_kwargs = build_fleet_publisher(devices=4, seed=7)
        with pytest.warns(DeprecationWarning):
            via_kwargs = by_kwargs.publish(make_spec(GOOD, "v1"),
                                           bake_us=500_000.0)
        assert via_options.ok and via_kwargs.ok
        assert {r.device.name: r.cycles_charged
                for r in via_options.rows()} \
            == {r.device.name: r.cycles_charged for r in via_kwargs.rows()}

    def test_identical_runs_are_bit_identical(self):
        """Same seed, same options, fresh rigs: the whole modelled
        outcome replays — the property seeded chaos sweeps rely on."""
        first = modelled_state(PublishOptions.scale(), devices=12, seed=23)
        second = modelled_state(PublishOptions.scale(), devices=12, seed=23)
        assert first == second
