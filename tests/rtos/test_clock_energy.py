"""Clock arithmetic and energy meter units."""

from __future__ import annotations

import pytest

from repro.rtos import Clock, EnergyMeter, nrf52840


class TestClock:
    def test_charge_accumulates(self):
        clock = Clock(64)
        clock.charge(64)
        clock.charge(64)
        assert clock.cycles == 128
        assert clock.time_us == 2.0

    def test_charge_us_rounds_to_cycles(self):
        clock = Clock(64)
        clock.charge_us(1.5)
        assert clock.cycles == 96

    def test_advance_to_forward_only(self):
        clock = Clock(64)
        clock.advance_to(100)
        with pytest.raises(ValueError):
            clock.advance_to(50)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Clock(64).charge(-1)

    def test_zero_mhz_rejected(self):
        with pytest.raises(ValueError):
            Clock(0)

    def test_conversions_roundtrip(self):
        clock = Clock(64)
        assert clock.cycles_to_us(clock.us_to_cycles(123.0)) == 123.0

    def test_time_ms(self):
        clock = Clock(64)
        clock.charge(64_000)
        assert clock.time_ms == 1.0


class TestEnergyMeter:
    def test_empty_meter_reports_zero(self):
        report = EnergyMeter(nrf52840()).report()
        assert report.total_uj == 0.0

    def test_sleep_energy_tiny_vs_active(self):
        meter = EnergyMeter(nrf52840())
        meter.add_active_cycles(64_000_000)   # 1 s active
        meter.add_sleep_us(1_000_000)         # 1 s sleeping
        report = meter.report()
        assert report.active_uj > 1000 * report.sleep_uj

    def test_radio_bytes_priced(self):
        meter = EnergyMeter(nrf52840())
        meter.add_radio_bytes(100)
        assert meter.report().radio_uj == pytest.approx(200.0)

    def test_total_is_sum(self):
        meter = EnergyMeter(nrf52840())
        meter.add_active_cycles(640)
        meter.add_sleep_us(100)
        meter.add_radio_bytes(1)
        report = meter.report()
        assert report.total_uj == pytest.approx(
            report.active_uj + report.sleep_uj + report.radio_uj)


class TestRadioTracking:
    """``EnergyMeter.track_interface``: link-layer counters feed the
    per-device radio energy, delta-based so re-tracking after a reboot
    never double-charges."""

    def _iface_stats(self, frames_sent=0, bytes_sent=0, bytes_received=0):
        from types import SimpleNamespace

        from repro.net.link import LinkStats

        stats = LinkStats(frames_sent=frames_sent, bytes_sent=bytes_sent,
                          bytes_received=bytes_received)
        return SimpleNamespace(stats=stats), stats

    def test_tracked_traffic_priced_per_byte_and_per_frame(self):
        from repro.rtos.energy import RADIO_UJ_PER_BYTE, RADIO_UJ_PER_FRAME

        meter = EnergyMeter(nrf52840())
        iface, stats = self._iface_stats()
        meter.track_interface(iface)
        stats.frames_sent += 3
        stats.bytes_sent += 100
        stats.bytes_received += 40
        assert meter.report().radio_uj == pytest.approx(
            140 * RADIO_UJ_PER_BYTE + 3 * RADIO_UJ_PER_FRAME)

    def test_traffic_before_tracking_is_not_charged(self):
        meter = EnergyMeter(nrf52840())
        iface, stats = self._iface_stats(frames_sent=10, bytes_sent=5_000)
        meter.track_interface(iface)
        assert meter.report().radio_uj == 0.0

    def test_repeated_reports_never_double_charge(self):
        meter = EnergyMeter(nrf52840())
        iface, stats = self._iface_stats()
        meter.track_interface(iface)
        stats.bytes_sent += 100
        first = meter.report().radio_uj
        assert meter.report().radio_uj == first  # no new traffic
        stats.bytes_sent += 100
        assert meter.report().radio_uj == pytest.approx(2 * first)

    def test_handover_to_a_new_interface_accumulates(self):
        """A reboot replaces the radio rig; the meter keeps the old
        interface's spend and adds the new one's — one device, one bill."""
        from repro.rtos.energy import RADIO_UJ_PER_BYTE

        meter = EnergyMeter(nrf52840())
        old, old_stats = self._iface_stats()
        meter.track_interface(old)
        old_stats.bytes_sent += 100
        meter.report()
        new, new_stats = self._iface_stats()
        meter.track_interface(new)
        new_stats.bytes_sent += 50
        assert meter.report().radio_uj == pytest.approx(
            150 * RADIO_UJ_PER_BYTE)
