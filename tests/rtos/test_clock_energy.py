"""Clock arithmetic and energy meter units."""

from __future__ import annotations

import pytest

from repro.rtos import Clock, EnergyMeter, nrf52840


class TestClock:
    def test_charge_accumulates(self):
        clock = Clock(64)
        clock.charge(64)
        clock.charge(64)
        assert clock.cycles == 128
        assert clock.time_us == 2.0

    def test_charge_us_rounds_to_cycles(self):
        clock = Clock(64)
        clock.charge_us(1.5)
        assert clock.cycles == 96

    def test_advance_to_forward_only(self):
        clock = Clock(64)
        clock.advance_to(100)
        with pytest.raises(ValueError):
            clock.advance_to(50)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Clock(64).charge(-1)

    def test_zero_mhz_rejected(self):
        with pytest.raises(ValueError):
            Clock(0)

    def test_conversions_roundtrip(self):
        clock = Clock(64)
        assert clock.cycles_to_us(clock.us_to_cycles(123.0)) == 123.0

    def test_time_ms(self):
        clock = Clock(64)
        clock.charge(64_000)
        assert clock.time_ms == 1.0


class TestEnergyMeter:
    def test_empty_meter_reports_zero(self):
        report = EnergyMeter(nrf52840()).report()
        assert report.total_uj == 0.0

    def test_sleep_energy_tiny_vs_active(self):
        meter = EnergyMeter(nrf52840())
        meter.add_active_cycles(64_000_000)   # 1 s active
        meter.add_sleep_us(1_000_000)         # 1 s sleeping
        report = meter.report()
        assert report.active_uj > 1000 * report.sleep_uj

    def test_radio_bytes_priced(self):
        meter = EnergyMeter(nrf52840())
        meter.add_radio_bytes(100)
        assert meter.report().radio_uj == pytest.approx(200.0)

    def test_total_is_sum(self):
        meter = EnergyMeter(nrf52840())
        meter.add_active_cycles(640)
        meter.add_sleep_us(100)
        meter.add_radio_bytes(1)
        report = meter.report()
        assert report.total_uj == pytest.approx(
            report.active_uj + report.sleep_uj + report.radio_uj)
