"""Timer-wheel edge cases."""

from __future__ import annotations


class TestTimerEdgeCases:
    def test_same_deadline_fires_in_arming_order(self, kernel):
        order = []
        kernel.timers.set(lambda: order.append("first"), 100)
        kernel.timers.set(lambda: order.append("second"), 100)
        kernel.run_until_idle()
        assert order == ["first", "second"]

    def test_zero_delay_fires_immediately_on_next_step(self, kernel):
        fired = []
        kernel.timers.set(lambda: fired.append(kernel.now_us), 0)
        kernel.step()
        assert fired == [0.0]

    def test_callback_arming_new_timer(self, kernel):
        """A timer callback may arm another timer (chained schedules)."""
        order = []

        def second():
            order.append(("second", kernel.now_us))

        def first():
            order.append(("first", kernel.now_us))
            kernel.timers.set(second, 50)

        kernel.timers.set(first, 100)
        kernel.run_until_idle()
        assert order == [("first", 100.0), ("second", 150.0)]

    def test_cancel_periodic_from_within_callback(self, kernel):
        ticks = []
        box = {}

        def tick():
            ticks.append(kernel.now_us)
            if len(ticks) == 3:
                box["cancel"]()

        box["cancel"] = kernel.timers.set_periodic(tick, 100)
        kernel.run_until_idle()
        assert len(ticks) == 3

    def test_pending_count_tracks_cancellations(self, kernel):
        entries = [kernel.timers.set(lambda: None, 100 + i) for i in range(5)]
        assert kernel.timers.pending == 5
        for entry in entries[:2]:
            kernel.timers.cancel(entry)
        assert kernel.timers.pending == 3

    def test_next_deadline_skips_cancelled(self, kernel):
        early = kernel.timers.set(lambda: None, 10)
        kernel.timers.set(lambda: None, 500)
        kernel.timers.cancel(early)
        deadline = kernel.timers.next_deadline()
        assert kernel.clock.cycles_to_us(deadline) == 500.0

    def test_timer_during_thread_work_fires_late(self, kernel):
        """Interrupt latency model: work charged by a running thread delays
        callbacks until the thread yields (deferred interrupts)."""
        from repro.rtos import Sleep

        fired = []
        kernel.timers.set(lambda: fired.append(kernel.now_us), 100)

        def hog(thread):
            thread.charge(64_000)  # 1000 us of uninterrupted work
            yield Sleep(1)

        kernel.create_thread("hog", hog, priority=1)
        kernel.run_until_idle()
        assert fired and fired[0] >= 1000.0
