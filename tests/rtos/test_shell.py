"""Device-shell tests."""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_SCHED, FC_HOOK_TIMER
from repro.rtos import Sleep, synthetic_temperature
from repro.rtos.shell import DeviceShell
from repro.vm import assemble


@pytest.fixture
def shell(engine, kernel):
    return DeviceShell(engine)


def populate(engine, kernel):
    tenant = engine.create_tenant("alice")
    container = engine.load(
        assemble("mov r0, 7\n    exit"), tenant=tenant, name="sevener")
    engine.attach(container, FC_HOOK_TIMER)
    engine.execute(container)
    engine.global_store.store(3, 99)
    tenant.store.store(1, 11)
    return container


class TestShell:
    def test_help_lists_commands(self, shell):
        text = shell.execute("help")
        for command in ("ps", "fc", "kv", "saul", "ram", "trace"):
            assert command in text

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute("reboot")

    def test_empty_line(self, shell):
        assert shell.execute("   ") == ""

    def test_ps_lists_threads(self, shell, kernel):
        def idle(thread):
            yield Sleep(10)

        kernel.create_thread("worker", idle, priority=3)
        text = shell.execute("ps")
        assert "worker" in text and "ready" in text

    def test_uptime(self, shell, kernel):
        kernel.clock.charge_us(1500)
        assert "1.500 ms" in shell.execute("uptime")

    def test_hooks_listing(self, shell, engine, kernel):
        populate(engine, kernel)
        text = shell.execute("hooks")
        assert FC_HOOK_SCHED in text
        assert "sevener" in text

    def test_fc_list_and_detach(self, shell, engine, kernel):
        populate(engine, kernel)
        text = shell.execute("fc list")
        assert "sevener" in text and "alice" in text
        assert shell.execute("fc detach sevener") == "detached sevener"
        assert "sevener" not in shell.execute("hooks").split("containers")[0] \
            or not engine.hook(FC_HOOK_TIMER).containers

    def test_fc_detach_unknown(self, shell):
        assert "no container" in shell.execute("fc detach ghost")

    def test_fc_list_shows_image_hash_prefix(self, shell, engine, kernel):
        """Operators can see instance/image sharing on-device: containers
        stamped from one image show the same content-hash prefix."""
        container = populate(engine, kernel)
        twin = engine.load(
            assemble("mov r0, 7\n    exit"), name="sevener-twin")
        engine.attach(twin, FC_HOOK_TIMER)
        other = engine.load(assemble("mov r0, 8\n    exit"), name="eighter")
        engine.attach(other, FC_HOOK_TIMER)

        text = shell.execute("fc list")
        assert "image" in text.splitlines()[0]
        rows = {line.split()[0]: line for line in text.splitlines()[1:]}
        prefix = container.image_hash[:12]
        assert prefix in rows["sevener"]
        assert prefix in rows["sevener-twin"]  # same image, same prefix
        assert other.image_hash[:12] in rows["eighter"]
        assert other.image_hash[:12] != prefix

    def test_fc_list_shows_supervisor_state(self, shell, engine, kernel):
        """Quarantined slots stay visible: the supervisor detached them,
        but operators still see the row with its strikes and state."""
        populate(engine, kernel)
        header = shell.execute("fc list").splitlines()[0]
        assert "strikes" in header and "state" in header
        bad = engine.load(assemble(
            "lddw r1, 0x1\n    ldxb r0, [r1]\n    exit"), name="crasher")
        engine.attach(bad, FC_HOOK_TIMER)
        for _ in range(engine.FAULT_DETACH_THRESHOLD):
            engine.execute(bad)
        text = shell.execute("fc list")
        rows = {line.split()[0]: line for line in text.splitlines()[1:]}
        assert "quarantined" in rows["crasher"]
        assert rows["sevener"].rstrip().endswith("ok")

    def test_fc_faults(self, shell, engine, kernel):
        bad = engine.load(assemble(
            "lddw r1, 0x1\n    ldxb r0, [r1]\n    exit"), name="crasher")
        engine.attach(bad, FC_HOOK_TIMER)
        engine.execute(bad)
        text = shell.execute("fc faults crasher")
        assert "MemoryFault" in text
        assert shell.execute("fc faults sevener") != ""

    def test_kv_dump_and_read(self, shell, engine, kernel):
        populate(engine, kernel)
        assert "0x00000003 = 99" in shell.execute("kv global")
        assert shell.execute("kv global 3") == "3 = 99"
        assert "0x00000001 = 11" in shell.execute("kv tenant alice")
        assert "no tenant" in shell.execute("kv tenant bob")

    def test_kv_empty(self, shell):
        assert shell.execute("kv global") == "(empty)"

    def test_saul(self, shell, engine, kernel):
        assert shell.execute("saul") == "(no devices)"
        engine.saul.register(synthetic_temperature(kernel))
        text = shell.execute("saul")
        assert "nrf_temp" in text and "class=0x82" in text

    def test_ram_accounting(self, shell, engine, kernel):
        populate(engine, kernel)
        text = shell.execute("ram")
        assert "sevener" in text and "total:" in text

    def test_trace_drains(self, shell, engine, kernel):
        engine.trace_log.append("hello from a container")
        assert "hello" in shell.execute("trace")
        assert shell.execute("trace") == "(no trace output)"

    def test_shell_never_raises(self, shell):
        for line in ("kv", "kv tenant", "fc bogus", "kv global notanint"):
            text = shell.execute(line)
            assert isinstance(text, str)
