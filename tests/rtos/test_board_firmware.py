"""Board models, firmware accounting, SAUL, energy."""

from __future__ import annotations

import pytest

from repro.rtos import (
    EnergyMeter,
    FirmwareImage,
    Kernel,
    all_boards,
    board_by_name,
    engine_flash_bytes,
    nrf52840,
    synthetic_temperature,
    update_energy_uj,
)
from repro.vm.interpreter import ExecutionStats


class TestBoards:
    def test_three_evaluation_platforms(self):
        names = [board.name for board in all_boards()]
        assert names == ["nrf52840", "esp32-wroom-32", "gd32vf103"]

    def test_all_run_at_64_mhz(self):
        assert all(board.mhz == 64 for board in all_boards())

    def test_board_by_name(self):
        assert board_by_name("cortex-m4").cpu.startswith("Arm")
        with pytest.raises(KeyError):
            board_by_name("z80")

    def test_us_conversion(self):
        board = nrf52840()
        assert board.us(64) == 1.0
        assert board.cycles(2.0) == 128

    def test_cost_tables_cover_all_implementations(self):
        from repro.rtos.board import IMPLEMENTATIONS

        for board in all_boards():
            for implementation in IMPLEMENTATIONS:
                table = board.cost_table(implementation)
                assert table.dispatch > 0

    def test_unknown_implementation_raises(self):
        with pytest.raises(KeyError):
            nrf52840().cost_table("v8")

    def test_execution_costing_is_linear(self):
        board = nrf52840()
        stats = ExecutionStats(executed=10, kind_counts={"alu": 10})
        single = board.vm_execution_cycles(stats, "femto-containers")
        stats2 = ExecutionStats(executed=20, kind_counts={"alu": 20})
        assert board.vm_execution_cycles(stats2, "femto-containers") == 2 * single

    def test_certfc_slower_than_femto_everywhere(self):
        stats = ExecutionStats(
            executed=100,
            kind_counts={"alu": 60, "load": 20, "store": 10, "branch": 10},
        )
        for board in all_boards():
            fast = board.vm_execution_cycles(stats, "femto-containers")
            slow = board.vm_execution_cycles(stats, "certfc")
            assert slow > 1.5 * fast

    def test_jit_faster_than_interpreter(self):
        stats = ExecutionStats(executed=100, kind_counts={"alu": 100})
        for board in all_boards():
            interp = board.vm_execution_cycles(stats, "femto-containers")
            jit = board.vm_execution_cycles(stats, "jit")
            assert jit < interp / 5


class TestFirmware:
    def test_riot_base_image_is_about_52_kb(self):
        image = FirmwareImage.riot_base(nrf52840())
        assert 50_000 <= image.flash_bytes <= 55_000

    def test_engine_flash_matches_table3_on_m4(self):
        board = nrf52840()
        assert engine_flash_bytes("femto-containers", board) == 2992
        assert engine_flash_bytes("rbpf", board) == 3032
        assert engine_flash_bytes("certfc", board) == 1378

    def test_certfc_smallest_on_every_arch(self):
        for board in all_boards():
            certfc = engine_flash_bytes("certfc", board)
            for other in ("rbpf", "femto-containers"):
                assert certfc < engine_flash_bytes(other, board)

    def test_flash_percentages_sum_to_100(self):
        image = FirmwareImage.riot_base(nrf52840()).add_engine("rbpf")
        assert sum(image.flash_percentages().values()) == pytest.approx(100.0)

    def test_overhead_percent(self):
        board = nrf52840()
        base = FirmwareImage.riot_base(board)
        with_engine = FirmwareImage.riot_base(board).add_engine("rbpf")
        overhead = with_engine.flash_overhead_percent(base)
        assert 4.0 <= overhead <= 8.0  # well under the 10 % headline

    def test_fits_flash(self):
        image = FirmwareImage.riot_base(nrf52840()).add_runtime("Mega", 10**7)
        assert not image.fits()


class TestSaul:
    def test_synthetic_temperature_deterministic(self):
        k1, k2 = Kernel(), Kernel()
        d1 = synthetic_temperature(k1, seed=9)
        d2 = synthetic_temperature(k2, seed=9)
        assert [d1.read().value for _ in range(5)] == \
               [d2.read().value for _ in range(5)]

    def test_temperature_follows_time(self):
        kernel = Kernel()
        device = synthetic_temperature(kernel, seed=1, noise_centi_c=0)
        cold = device.read().value
        kernel.clock.charge_us(30_000_000)  # quarter period: peak of sine
        warm = device.read().value
        assert warm > cold

    def test_registry_find_type_and_nth(self, kernel):
        from repro.rtos import SENSE_TEMP, SaulRegistry

        registry = SaulRegistry()
        registry.register(synthetic_temperature(kernel))
        index, device = registry.find_type(SENSE_TEMP)
        assert index == 0 and device.name == "nrf_temp"
        assert registry.find_nth(0) is device
        assert registry.find_nth(5) is None
        assert registry.find_type(0x99) is None


class TestEnergy:
    def test_active_energy_scales_with_cycles(self):
        board = nrf52840()
        meter = EnergyMeter(board)
        meter.add_active_cycles(64_000_000)  # one second
        report = meter.report()
        # 6.4 mA * 3.3 V * 1 s ~ 21 mJ
        assert report.active_uj == pytest.approx(21_120, rel=0.01)

    def test_update_energy_favors_container_updates(self):
        """§11: updating a 500 B container beats a 50 kB firmware image."""
        board = nrf52840()
        container_update = update_energy_uj(board, 500)
        firmware_update = update_energy_uj(board, 50_000)
        assert firmware_update > 50 * container_update
