"""Scheduler invariants under generated workloads, plus determinism."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.rtos import Kernel, Sleep, ThreadState, YieldCPU, nrf52840


@st.composite
def workload(draw):
    """A set of threads with random priorities and sleep/yield patterns."""
    threads = []
    for _ in range(draw(st.integers(1, 5))):
        priority = draw(st.integers(1, 10))
        actions = draw(st.lists(
            st.one_of(
                st.tuples(st.just("sleep"), st.integers(0, 2000)),
                st.tuples(st.just("yield"), st.just(0)),
                st.tuples(st.just("work"), st.integers(1, 5000)),
            ),
            min_size=1, max_size=6,
        ))
        threads.append((priority, actions))
    return threads


def build_body(actions, log, name):
    def body(thread):
        for kind, amount in actions:
            log.append((name, kind))
            if kind == "sleep":
                yield Sleep(amount)
            elif kind == "yield":
                yield YieldCPU()
            else:
                thread.charge(amount)
                yield YieldCPU()
    return body


@settings(max_examples=40, deadline=None)
@given(spec=workload())
def test_priority_invariant(spec):
    """Whenever a thread is dispatched, no strictly-higher-priority thread
    was READY at that moment (strict priority scheduling)."""
    kernel = Kernel(nrf52840())
    log: list = []
    violations: list = []
    threads = [
        kernel.create_thread(f"t{index}", build_body(actions, log, f"t{index}"),
                             priority=priority)
        for index, (priority, actions) in enumerate(spec)
    ]

    original_dispatch = kernel.scheduler.dispatch

    def checked_dispatch(thread):
        ready = [
            t for t in threads
            if t.state is ThreadState.READY and t is not thread
        ]
        if any(t.priority < thread.priority for t in ready):
            violations.append((thread.name, thread.priority,
                               [(t.name, t.priority) for t in ready]))
        original_dispatch(thread)

    kernel.scheduler.dispatch = checked_dispatch  # type: ignore[method-assign]
    kernel.run_until_idle(max_steps=10_000)
    assert not violations, violations
    assert all(t.state is ThreadState.ENDED for t in threads)


@settings(max_examples=25, deadline=None)
@given(spec=workload())
def test_all_threads_complete(spec):
    """No starvation under any generated workload (threads always finish
    because every action eventually blocks or ends)."""
    kernel = Kernel(nrf52840())
    log: list = []
    threads = [
        kernel.create_thread(f"t{index}", build_body(actions, log, f"t{index}"),
                             priority=priority)
        for index, (priority, actions) in enumerate(spec)
    ]
    kernel.run_until_idle(max_steps=10_000)
    assert all(t.state is ThreadState.ENDED for t in threads)
    # Every action was logged exactly once.
    assert len(log) == sum(len(actions) for _p, actions in spec)


class TestDeterminism:
    def test_identical_devices_produce_identical_timelines(self):
        """Bit-for-bit reproducibility: the whole multi-tenant scenario is
        deterministic given the seed."""
        from repro.scenarios import build_multi_tenant_device

        snapshots = []
        for _ in range(2):
            device = build_multi_tenant_device(sensor_period_us=300_000,
                                               link_loss=0.1, seed=5)
            device.kernel.run(until_us=2_000_000)
            snapshots.append((
                device.kernel.clock.cycles,
                device.kernel.scheduler.switch_count,
                device.tenant_a.store.snapshot(),
                device.engine.global_store.snapshot(),
                device.link.stats.frames_sent,
                device.link.stats.frames_dropped,
            ))
        assert snapshots[0] == snapshots[1]

    def test_different_seeds_diverge(self):
        from repro.scenarios import build_multi_tenant_device

        values = []
        for seed in (1, 2):
            device = build_multi_tenant_device(sensor_period_us=300_000,
                                               seed=seed)
            device.kernel.run(until_us=2_000_000)
            values.append(device.tenant_a.store.snapshot())
        assert values[0] != values[1]  # different sensor noise
