"""The NVM flash model: persistence across power failure, cycle costs, wear.

:class:`~repro.rtos.NvmStore` is what makes the chaos-hardened OTA
pipeline possible: it is owned by the *device*, not the kernel, so a
power failure that drops every RAM structure leaves the store's records
intact, while every write charges modelled erase+program cycles to the
bound kernel's virtual clock.

Since PR 7 the store is a CRC-framed journal with two-phase shadow
commits: a write programs the frame twice (shadow, then primary), reads
it back, and retires the shadow with one page erase — the cycle pins
below spell out that exact cost model.  The corruption paths (torn
writes, bit flips, wear-out) are covered in ``test_nvm_journal.py``.
"""

from __future__ import annotations

from repro.rtos import Kernel, NvmStore
from repro.rtos.board import nrf52840
from repro.rtos.nvm import (
    NVM_CRC_CYCLES_PER_BYTE,
    NVM_ERASE_CYCLES_PER_PAGE,
    NVM_FRAME_HEADER_BYTES,
    NVM_READ_CYCLES_PER_BYTE,
    NVM_WRITE_CYCLES_PER_BYTE,
)


def write_cost(payload_bytes: int, pages: int = 1) -> int:
    """Modelled cycles of one healthy non-redundant record commit."""
    frame = payload_bytes + NVM_FRAME_HEADER_BYTES
    return (payload_bytes * NVM_CRC_CYCLES_PER_BYTE
            + 2 * (pages * NVM_ERASE_CYCLES_PER_PAGE
                   + frame * NVM_WRITE_CYCLES_PER_BYTE)
            + frame * NVM_READ_CYCLES_PER_BYTE
            + NVM_ERASE_CYCLES_PER_PAGE)


class TestBlobStore:
    def test_write_read_roundtrip(self):
        nvm = NvmStore()
        nvm.write("suit/slot/a", b"image-bytes")
        assert nvm.read("suit/slot/a") == b"image-bytes"
        assert "suit/slot/a" in nvm
        assert len(nvm) == 1

    def test_missing_key_reads_none(self):
        nvm = NvmStore()
        assert nvm.read("nope") is None

    def test_overwrite_replaces_atomically(self):
        nvm = NvmStore()
        nvm.write("k", b"old")
        nvm.write("k", b"new")
        assert nvm.read("k") == b"new"
        assert len(nvm) == 1

    def test_delete_drops_record(self):
        nvm = NvmStore()
        nvm.write("k", b"v")
        nvm.delete("k")
        assert nvm.read("k") is None
        nvm.delete("k")  # idempotent

    def test_keys_filter_by_prefix_sorted(self):
        nvm = NvmStore()
        for key in ("suit/slot/b", "suit/fetch/x/000001", "suit/slot/a"):
            nvm.write(key, b"v")
        assert nvm.keys("suit/slot/") == ["suit/slot/a", "suit/slot/b"]
        assert [k for k, _ in nvm.items("suit/fetch/")] \
            == ["suit/fetch/x/000001"]

    def test_used_bytes_tracks_live_records(self):
        nvm = NvmStore()
        nvm.write("a", b"x" * 100)
        nvm.write("b", b"y" * 50)
        assert nvm.used_bytes == 150
        nvm.delete("a")
        assert nvm.used_bytes == 50


class TestCycleCharging:
    def test_write_charges_erase_plus_program(self):
        kernel = Kernel(nrf52840())
        nvm = NvmStore(kernel)
        before = kernel.clock.cycles
        nvm.write("k", b"x" * 100)
        charged = kernel.clock.cycles - before
        assert charged == write_cost(100)

    def test_multi_page_write_charges_per_page(self):
        kernel = Kernel(nrf52840())
        nvm = NvmStore(kernel)
        before = kernel.clock.cycles
        nvm.write("k", b"x" * (nvm.page_bytes + 1))
        charged = kernel.clock.cycles - before
        assert charged >= 2 * NVM_ERASE_CYCLES_PER_PAGE

    def test_read_charges_per_byte(self):
        kernel = Kernel(nrf52840())
        nvm = NvmStore(kernel)
        nvm.write("k", b"x" * 64)
        before = kernel.clock.cycles
        nvm.read("k")
        # Validated reads scan the whole frame (header + payload).
        assert kernel.clock.cycles - before \
            == (64 + NVM_FRAME_HEADER_BYTES) * NVM_READ_CYCLES_PER_BYTE

    def test_unbound_store_charges_nothing(self):
        nvm = NvmStore()
        nvm.write("k", b"payload")  # must not raise
        assert nvm.read("k") == b"payload"

    def test_wear_counters(self):
        nvm = NvmStore()
        nvm.write("a", b"x" * 10)
        nvm.write("a", b"y" * 10)
        nvm.delete("a")
        frame = 10 + NVM_FRAME_HEADER_BYTES
        assert nvm.writes == 2
        # Each commit erases shadow + primary + the shadow retire; the
        # delete erases the journal entry once more.
        assert nvm.erases == 2 * 3 + 1
        assert nvm.bytes_written == 2 * 2 * frame


class TestPowerFailureSurvival:
    def test_records_survive_power_fail_and_rebind(self):
        board = nrf52840()
        kernel = Kernel(board)
        nvm = board.nvm(kernel)
        nvm.write("suit/slot/app", b"installed-image")
        kernel.power_fail()
        assert kernel.halted
        assert not kernel.threads

        # The replacement kernel continues the same monotonic clock.
        reborn = Kernel(board, clock=kernel.clock)
        nvm.bind(reborn)
        assert nvm.read("suit/slot/app") == b"installed-image"

    def test_rebind_charges_the_new_kernel(self):
        board = nrf52840()
        first = Kernel(board)
        nvm = board.nvm(first)
        first.power_fail()
        reborn = Kernel(board, clock=first.clock)
        nvm.bind(reborn)
        before = reborn.clock.cycles
        nvm.write("k", b"v")
        assert reborn.clock.cycles > before

    def test_halted_kernel_refuses_to_step(self):
        kernel = Kernel(nrf52840())
        kernel.power_fail()
        assert kernel.step() is False
        assert kernel.run_until_idle() == 0


class TestBoardFactory:
    def test_board_nvm_uses_board_geometry(self):
        board = nrf52840()
        nvm = board.nvm()
        assert nvm.page_bytes == board.nvm_page_bytes
        assert nvm.erase_cycles_per_page == board.nvm_erase_cycles_per_page

    def test_reboot_cost_is_positive(self):
        assert nrf52840().reboot_cycles > 0
