"""The NVM journal under fire: torn writes, bit flips, flash wear-out.

PR 7 turned :class:`~repro.rtos.NvmStore` into a CRC-framed journal
with two-phase shadow commits.  These tests drive every corruption
path the chaos layer can inject and pin the recovery semantics:

* a tear during **phase 1** (shadow program) leaves the primary — and
  therefore the old value — untouched;
* a tear during **phase 2** (commit) leaves an intact shadow that
  *repairs* the primary on the next validated read;
* a bit flip is survivable exactly when a second copy exists (standing
  replica of a ``redundant=True`` record, or an un-retired shadow);
* a worn-out primary region keeps being served from its shadow;
* ``delete`` is idempotent, including for keys GC already dropped.
"""

from __future__ import annotations

import pytest

from repro.rtos import Kernel, NvmStore
from repro.rtos.board import nrf52840
from repro.rtos.errors import PowerFailure
from repro.rtos.nvm import TornWrite


class TestTornWrites:
    def test_shadow_tear_preserves_old_value(self):
        nvm = NvmStore()
        nvm.write("k", b"old")
        nvm.tear_next_write(phase="shadow")
        with pytest.raises(TornWrite):
            nvm.write("k", b"new")
        assert nvm.torn == 1
        assert not nvm.tear_armed
        # Phase 1 died before the primary was touched: the committed
        # old value survives.
        assert nvm.read("k") == b"old"

    def test_commit_tear_repairs_from_shadow(self):
        nvm = NvmStore()
        nvm.write("k", b"old")
        nvm.tear_next_write(phase="commit")
        with pytest.raises(TornWrite):
            nvm.write("k", b"new")
        # Phase 2 died mid-program: the primary frame is torn, but the
        # shadow holds the complete new value — the next read serves it
        # and re-commits the primary.
        assert nvm.read("k") == b"new"
        assert nvm.repairs == 1
        # The repair retired the shadow; subsequent reads hit a healthy
        # primary without further repair work.
        assert nvm.read("k") == b"new"
        assert nvm.repairs == 1

    def test_shadow_tear_on_virgin_key_loses_record_cleanly(self):
        nvm = NvmStore()
        nvm.tear_next_write(phase="shadow")
        with pytest.raises(TornWrite):
            nvm.write("k", b"first")
        # Nothing was ever committed: the half-programmed shadow fails
        # CRC and the record reads as absent, not garbage.
        assert nvm.read("k") is None
        assert nvm.lost == 1
        assert "k" not in nvm

    def test_tear_match_filter_targets_one_key(self):
        nvm = NvmStore()
        nvm.tear_next_write(phase="commit", match="suit/")
        nvm.write("other/key", b"untouched")  # does not match: no tear
        assert nvm.tear_armed
        with pytest.raises(TornWrite):
            nvm.write("suit/slot/app", b"payload")
        assert nvm.read("other/key") == b"untouched"

    def test_torn_write_is_a_power_failure(self):
        # The kernel's step loop treats TornWrite as the power loss it
        # models — same halt path as a scheduled PowerFailure.
        assert issubclass(TornWrite, PowerFailure)

    def test_unknown_tear_phase_rejected(self):
        with pytest.raises(ValueError, match="phase"):
            NvmStore().tear_next_write(phase="sideways")

    def test_torn_write_still_charges_partial_cost(self):
        kernel = Kernel(nrf52840())
        nvm = NvmStore(kernel)
        nvm.tear_next_write(phase="shadow")
        before = kernel.clock.cycles
        with pytest.raises(TornWrite):
            nvm.write("k", b"x" * 100)
        # The torn program burned real erase + partial program cycles.
        assert kernel.clock.cycles > before


class TestBitFlips:
    def test_flip_on_plain_record_loses_it(self):
        nvm = NvmStore()
        nvm.write("k", b"payload")  # healthy commit retires the shadow
        assert nvm.bit_flip("k")
        assert nvm.read("k") is None
        assert nvm.lost == 1 and nvm.bitflips == 1

    def test_flip_on_redundant_record_repairs(self):
        nvm = NvmStore()
        nvm.write("seq", b"42", redundant=True)
        assert nvm.bit_flip("seq")  # corrupts the primary copy
        # The standing replica repairs it: redundancy is exactly what
        # anti-rollback state buys with its second copy.
        assert nvm.read("seq") == b"42"
        assert nvm.repairs == 1
        # The replica is *kept* (still redundant): flip again, still ok.
        assert nvm.bit_flip("seq")
        assert nvm.read("seq") == b"42"

    def test_flip_on_missing_key_reports_false(self):
        nvm = NvmStore()
        assert not nvm.bit_flip("ghost")
        assert nvm.bitflips == 0

    def test_items_skips_corrupt_without_mutating(self):
        nvm = NvmStore()
        nvm.write("a", b"1")
        nvm.write("b", b"2")
        nvm.bit_flip("a")
        assert dict(nvm.items()) == {"b": b"2"}
        # Iteration neither repaired nor dropped the corrupt record.
        assert nvm.lost == 0 and nvm.repairs == 0


class TestWearOut:
    def test_worn_primary_served_from_shadow(self):
        nvm = NvmStore()
        nvm.erase_budget = 3
        for generation in range(6):
            nvm.write("hot", b"gen%d" % generation)
        assert nvm.worn_writes > 0
        # Every write past the budget corrupts the primary region, but
        # the journal detects it at commit, keeps the shadow, and reads
        # keep returning the latest value.
        assert nvm.read("hot") == b"gen5"
        # The worn region is never "repaired" into — the shadow remains
        # the serving copy across reads.
        assert nvm.read("hot") == b"gen5"

    def test_fresh_regions_unaffected_by_budget(self):
        nvm = NvmStore()
        nvm.erase_budget = 64
        nvm.write("cold", b"value")
        assert nvm.worn_writes == 0
        assert nvm.read("cold") == b"value"


class TestDeleteIdempotence:
    def test_delete_missing_key_charges_nothing(self):
        kernel = Kernel(nrf52840())
        nvm = NvmStore(kernel)
        before = (kernel.clock.cycles, nvm.erases)
        nvm.delete("never-written")
        assert (kernel.clock.cycles, nvm.erases) == before

    def test_double_delete_is_single_erase(self):
        nvm = NvmStore()
        nvm.write("k", b"v")
        erases_after_write = nvm.erases
        nvm.delete("k")
        assert nvm.erases == erases_after_write + 1
        nvm.delete("k")  # GC'd already: no-op, no extra wear
        assert nvm.erases == erases_after_write + 1
        assert nvm.read("k") is None

    def test_delete_drops_both_copies_of_redundant_record(self):
        nvm = NvmStore()
        nvm.write("seq", b"9", redundant=True)
        nvm.delete("seq")
        assert "seq" not in nvm
        assert nvm.read("seq") is None
