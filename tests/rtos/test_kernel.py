"""Kernel, scheduler, threads, timers and event queues."""

from __future__ import annotations

import pytest

from repro.rtos import (
    Sleep,
    ThreadState,
    Wait,
    YieldCPU,
)
from repro.rtos.errors import TimerError


class TestClockAndTimers:
    def test_clock_starts_at_zero(self, kernel):
        assert kernel.now_us == 0

    def test_idle_advances_to_next_timer(self, kernel):
        fired = []
        kernel.timers.set(lambda: fired.append(kernel.now_us), 1000)
        kernel.run_until_idle()
        assert fired == [1000.0]

    def test_timer_ordering(self, kernel):
        order = []
        kernel.timers.set(lambda: order.append("b"), 200)
        kernel.timers.set(lambda: order.append("a"), 100)
        kernel.timers.set(lambda: order.append("c"), 300)
        kernel.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_cancelled_timer_does_not_fire(self, kernel):
        fired = []
        entry = kernel.timers.set(lambda: fired.append(1), 100)
        kernel.timers.cancel(entry)
        kernel.run_until_idle()
        assert not fired

    def test_periodic_timer_and_cancel(self, kernel):
        ticks = []
        cancel = kernel.timers.set_periodic(lambda: ticks.append(kernel.now_us), 100)
        kernel.run(until_us=450)
        cancel()
        kernel.run(until_us=1000)
        assert ticks == [100.0, 200.0, 300.0, 400.0]

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(TimerError):
            kernel.timers.set(lambda: None, -1)

    def test_zero_period_rejected(self, kernel):
        with pytest.raises(TimerError):
            kernel.timers.set_periodic(lambda: None, 0)


class TestThreads:
    def test_thread_runs_to_completion(self, kernel):
        log = []

        def body(thread):
            log.append("start")
            yield Sleep(100)
            log.append("end")

        thread = kernel.create_thread("t", body)
        kernel.run_until_idle()
        assert log == ["start", "end"]
        assert thread.state is ThreadState.ENDED

    def test_priority_order(self, kernel):
        order = []

        def make(name):
            def body(thread):
                order.append(name)
                yield Sleep(0)
            return body

        kernel.create_thread("low", make("low"), priority=10)
        kernel.create_thread("high", make("high"), priority=1)
        kernel.run_until_idle()
        assert order[0] == "high"

    def test_round_robin_within_priority(self, kernel):
        order = []

        def make(name):
            def body(thread):
                for _ in range(2):
                    order.append(name)
                    yield YieldCPU()
            return body

        kernel.create_thread("a", make("a"), priority=5)
        kernel.create_thread("b", make("b"), priority=5)
        kernel.run_until_idle()
        assert order == ["a", "b", "a", "b"]

    def test_sleep_durations_respected(self, kernel):
        wakes = []

        def body(thread):
            yield Sleep(500)
            wakes.append(kernel.now_us)
            yield Sleep(250)
            wakes.append(kernel.now_us)

        kernel.create_thread("sleeper", body)
        kernel.run_until_idle()
        assert wakes[0] >= 500
        assert wakes[1] >= 750

    def test_charge_advances_clock(self, kernel):
        def body(thread):
            thread.charge(6400)
            yield Sleep(0)

        kernel.create_thread("worker", body)
        kernel.run_until_idle()
        assert kernel.now_us >= 100  # 6400 cycles at 64 MHz

    def test_activations_counted_per_switch_in(self, kernel):
        def body(thread):
            for _ in range(3):
                yield Sleep(10)

        thread = kernel.create_thread("t", body)
        kernel.run_until_idle()
        # initial dispatch + 3 wakeups (each sleep causes a switch out/in)
        assert thread.activations == 4

    def test_pid_assignment_starts_at_one(self, kernel):
        t1 = kernel.create_thread("a", None, start=False)
        t2 = kernel.create_thread("b", None, start=False)
        assert (t1.pid, t2.pid) == (1, 2)

    def test_thread_by_name(self, kernel):
        kernel.create_thread("finder", None, start=False)
        assert kernel.thread_by_name("finder").pid == 1
        with pytest.raises(Exception):
            kernel.thread_by_name("missing")


class TestEventQueues:
    def test_post_wakes_waiter(self, kernel):
        queue = kernel.new_event_queue()
        received = []

        def consumer(thread):
            event = yield Wait(queue)
            received.append(event.payload)

        kernel.create_thread("consumer", consumer)
        kernel.run(max_steps=5)
        queue.post_new("data", payload=42)
        kernel.run_until_idle()
        assert received == [42]

    def test_pending_event_consumed_without_blocking(self, kernel):
        queue = kernel.new_event_queue()
        queue.post_new("early", payload=1)
        received = []

        def consumer(thread):
            event = yield Wait(queue)
            received.append(event.payload)

        kernel.create_thread("consumer", consumer)
        kernel.run_until_idle()
        assert received == [1]

    def test_fifo_delivery_to_multiple_waiters(self, kernel):
        queue = kernel.new_event_queue()
        received = []

        def make(name):
            def body(thread):
                event = yield Wait(queue)
                received.append((name, event.payload))
            return body

        kernel.create_thread("first", make("first"), priority=5)
        kernel.create_thread("second", make("second"), priority=5)
        kernel.run(max_steps=10)
        queue.post_new("e", payload=1)
        queue.post_new("e", payload=2)
        kernel.run_until_idle()
        assert sorted(received) == [("first", 1), ("second", 2)]


class TestSchedulerAccounting:
    def test_switch_count_includes_idle_transitions(self, kernel):
        def body(thread):
            yield Sleep(100)

        kernel.create_thread("t", body)
        kernel.run_until_idle()
        # in -> idle -> in -> end: at least 3 switches
        assert kernel.scheduler.switch_count >= 3

    def test_context_switch_cost_charged(self, kernel):
        def body(thread):
            yield Sleep(0)

        kernel.create_thread("t", body)
        before = kernel.clock.cycles
        kernel.step()
        assert kernel.clock.cycles - before >= kernel.board.context_switch_cycles

    def test_run_returns_false_when_no_work(self, kernel):
        assert kernel.run_until_idle() == 0
