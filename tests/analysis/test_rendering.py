"""Table/figure rendering helpers."""

from __future__ import annotations

from repro.analysis import bar_chart, format_bytes, format_table, format_us, pie_breakdown


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].startswith("a")
        # numeric column right-aligned
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_title_prepended(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatters:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2 KiB"
        assert format_bytes(65_536) == "64 KiB"
        assert format_bytes(103_424) == "101 KiB"

    def test_format_us(self):
        assert format_us(5.5) == "5.50 us"
        assert format_us(250) == "250 us"
        assert format_us(2_133) == "2.13 ms"


class TestCharts:
    def test_bar_chart_scales_to_peak(self):
        text = bar_chart("T", ["a", "b"],
                         {"s": [10.0, 100.0]}, unit="us", width=10)
        lines = text.splitlines()
        assert lines[0] == "T"
        short = next(line for line in lines if "10.00 us" in line)
        long = next(line for line in lines if "100.00 us" in line)
        assert short.count("#") == 1
        assert long.count("#") == 10

    def test_bar_chart_zero_values(self):
        text = bar_chart("T", ["a"], {"s": [0.0]})
        assert "0.00" in text

    def test_pie_percentages_sum(self):
        text = pie_breakdown("P", {"x": 30, "y": 70})
        assert "30.0%" in text and "70.0%" in text

    def test_pie_empty_safe(self):
        assert pie_breakdown("P", {}) == "P"
