"""Every shipped example must run cleanly end to end."""

from __future__ import annotations

import importlib.util
import io
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    module = load_example(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert output.strip(), f"example {name} printed nothing"
    assert "Traceback" not in output


def test_at_least_five_examples_ship():
    assert len(EXAMPLES) >= 5
