"""CLI toolchain tests (``python -m repro``)."""

from __future__ import annotations

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import main

SOURCE = """
    mov r0, 40
    add r0, 2
    exit
"""

BAD_SOURCE = "mov r10, 1\n    exit\n"


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(SOURCE)
    return path


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    return code, buffer.getvalue()


class TestCli:
    def test_asm_to_file_and_run(self, asm_file, tmp_path):
        out = tmp_path / "prog.bin"
        code, text = run_cli("asm", str(asm_file), "-o", str(out))
        assert code == 0 and out.exists()
        code, text = run_cli("run", str(out))
        assert code == 0
        assert "r0 = 42" in text

    def test_asm_hex_output(self, asm_file):
        code, text = run_cli("asm", str(asm_file))
        assert code == 0
        assert text.strip().startswith("b700000028000000")

    def test_run_directly_from_source(self, asm_file):
        code, text = run_cli("run", str(asm_file), "--board", "risc-v",
                             "--impl", "certfc")
        assert code == 0
        assert "r0 = 42" in text and "gd32vf103" in text

    def test_run_jit(self, asm_file):
        code, text = run_cli("run", str(asm_file), "--impl", "jit")
        assert code == 0 and "r0 = 42" in text

    def test_run_with_context(self, tmp_path):
        path = tmp_path / "ctx.s"
        path.write_text("ldxw r0, [r1+0]\n    exit\n")
        code, text = run_cli("run", str(path), "--ctx", "2a000000deadbeef")
        assert code == 0 and "r0 = 42" in text

    def test_run_reports_fault(self, tmp_path):
        path = tmp_path / "bad.s"
        path.write_text("lddw r1, 0x1\n    ldxb r0, [r1]\n    exit\n")
        code, text = run_cli("run", str(path))
        assert code == 1 and "FAULT" in text

    def test_verify_accepts_and_rejects(self, asm_file, tmp_path):
        code, text = run_cli("verify", str(asm_file))
        assert code == 0 and text.startswith("OK")
        bad = tmp_path / "bad.s"
        bad.write_text(BAD_SOURCE)
        code, text = run_cli("verify", str(bad))
        assert code == 1 and "REJECTED" in text

    def test_disasm_roundtrip(self, asm_file, tmp_path):
        out = tmp_path / "prog.bin"
        run_cli("asm", str(asm_file), "-o", str(out))
        code, text = run_cli("disasm", str(out))
        assert code == 0
        assert "mov r0, 40" in text and "exit" in text

    def test_boards_listing(self):
        code, text = run_cli("boards")
        assert code == 0
        for name in ("cortex-m4", "esp32", "risc-v"):
            assert name in text

    def test_demo_runs(self):
        code, text = run_cli("demo")
        assert code == 0
        assert "sensor average over CoAP" in text

    def test_fanout_scenario(self):
        code, text = run_cli("fanout", "--tenants", "2", "--instances", "3",
                             "--fires", "10")
        assert code == 0
        assert "attached 6 instances (2 tenants x 3)" in text
        assert "compiled templates shared: 1 (for 6 instances)" in text
        assert "-> 60 container runs" in text

    def test_fanout_interpreter_impl(self):
        code, text = run_cli("fanout", "--tenants", "1", "--instances", "2",
                             "--fires", "1", "--impl", "femto-containers")
        assert code == 0
        assert "attached 2 instances" in text
        assert "image cache:" in text

    def test_deploy_builtin_spec(self):
        code, text = run_cli("deploy", "multi-tenant")
        assert code == 0
        assert "create-tenant tenant-a" in text
        assert "install" in text and "sensor" in text
        assert "re-plan: 0 actions (converged)" in text

    def test_deploy_spec_file(self, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "file-spec",
            "tenants": ["alice"],
            "images": {"seven": {"asm": "mov r0, 7\n    exit"}},
            "attachments": [{"image": "seven", "hook": "fc.hook.timer",
                             "tenant": "alice", "name": "sevener"}],
        }))
        code, text = run_cli("deploy", str(spec_path), "--impl", "jit")
        assert code == 0
        assert "spec 'file-spec' -> 2 actions" in text
        assert "sevener" in text and "converged" in text

    def test_deploy_unknown_spec(self):
        code, text = run_cli("deploy", "no-such-spec")
        assert code == 1 and "deploy error" in text

    def test_fleet_rejects_bad_sizes(self):
        code, text = run_cli("fleet", "--devices", "0")
        assert code == 1 and "fleet error" in text
        code, text = run_cli("fleet", "--instances", "0")
        assert code == 1 and "fleet error" in text

    def test_fleet_rollout(self):
        code, text = run_cli("fleet", "--devices", "3", "--tenants", "2",
                             "--instances", "2")
        assert code == 0
        assert "dev0" in text and "dev2" in text
        assert "warm-rollout speedup over dev0:" in text
        assert "modelled cycles identical across devices: True" in text
        assert "12 containers on 3 devices" in text

    def test_canary_demo(self):
        code, text = run_cli("canary", "--devices", "4", "--canaries", "1",
                             "--bake-us", "600000", "--fires", "2")
        assert code == 0
        assert "ROLLED BACK" in text and "faults during bake" in text
        assert "non-canary devices untouched: True" in text
        assert "canaries reconverged on 'canary-base': True" in text

    def test_publish_demo(self):
        code, text = run_cli("publish", "--devices", "3", "--canaries", "1",
                             "--bake-us", "400000", "--fires", "2")
        assert code == 0
        assert "fleet converged off one publish: True" in text
        assert "refused fleet-wide: True" in text
        assert "idempotent (zero actions everywhere): True" in text
        assert "ROLLED BACK" in text
        assert "control devices never saw the poisoned manifest: True" in text
        assert "fleet converged on 'canary-fix': True" in text

    def test_chaos_demo(self):
        code, text = run_cli("chaos", "--devices", "3", "--seed", "11",
                             "--loss", "0.10", "--crashes", "1",
                             "--bursts", "1", "--stalls", "0")
        assert code == 0
        assert "seeded fault plan" in text
        assert "converged: True" in text
        assert "quiescent=True" in text
        assert "converged: False (unreachable: dev2)" in text
        assert "degraded gracefully instead of raising: True" in text

    def test_chaos_rejects_bad_device_count(self):
        code, text = run_cli("chaos", "--devices", "0")
        assert code == 1 and "chaos error" in text

    def test_publish_rejects_bad_canary_count(self):
        code, text = run_cli("publish", "--devices", "2", "--canaries", "3")
        assert code == 1 and "publish error" in text

    def test_canary_rejects_bad_sizes(self):
        code, text = run_cli("canary", "--devices", "2", "--canaries", "5")
        assert code == 1 and "canary error" in text

    def test_compile_and_run_femtoc(self, tmp_path):
        source = tmp_path / "app.fc"
        source.write_text("var a = 6;\nreturn a * 7;\n")
        out = tmp_path / "app.bin"
        code, text = run_cli("compile", str(source), "-o", str(out))
        assert code == 0 and out.exists()
        code, text = run_cli("run", str(out))
        assert code == 0 and "r0 = 42" in text

    def test_compile_emit_asm(self, tmp_path):
        source = tmp_path / "app.fc"
        source.write_text("return 1 + 2;\n")
        code, text = run_cli("compile", str(source), "-S")
        assert code == 0
        assert "exit" in text

    def test_compile_error_reported(self, tmp_path):
        source = tmp_path / "bad.fc"
        source.write_text("return ghost;\n")
        code, text = run_cli("compile", str(source))
        assert code == 1 and "compile error" in text

    def test_shell_default_tour(self):
        code, text = run_cli("shell")
        assert code == 0
        for marker in ("> uptime", "> ps", "> fc list", "total:"):
            assert marker in text

    def test_shell_custom_commands(self):
        code, text = run_cli("shell", "hooks", "kv tenant tenant-a")
        assert code == 0
        assert "fc.hook.sched" in text
        assert "0x00000010" in text
