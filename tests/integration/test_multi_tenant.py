"""End-to-end integration: the full §8.3 / Fig 5 multi-tenant device."""

from __future__ import annotations

import pytest

from repro.net import CoapMessage, coap
from repro.scenarios import COAP_PORT, DEVICE_ADDR, build_multi_tenant_device
from repro.workloads import KEY_SENSOR_AVG, KEY_SENSOR_RAW


@pytest.fixture
def device():
    return build_multi_tenant_device(sensor_period_us=250_000)


def poll_temperature(device) -> CoapMessage:
    replies = []
    request = CoapMessage(mtype=coap.CON, code=coap.GET)
    request.add_uri_path("/sensor/temp")
    device.client.request(DEVICE_ADDR, COAP_PORT, request, replies.append)
    device.kernel.run(until_us=device.kernel.now_us + 1_000_000)
    assert replies, "no CoAP reply"
    return replies[0]


class TestScenario:
    def test_three_containers_two_tenants(self, device):
        assert device.container_count() == 3
        assert len(device.engine.tenants) == 2

    def test_sensor_populates_tenant_store(self, device):
        device.kernel.run(until_us=2_000_000)
        store = device.tenant_a.store
        assert 1500 <= store.fetch(KEY_SENSOR_AVG) <= 2800
        assert 1500 <= store.fetch(KEY_SENSOR_RAW) <= 2800
        assert device.sensor.runs >= 7

    def test_coap_roundtrip_returns_live_average(self, device):
        device.kernel.run(until_us=2_000_000)
        device.cancel_sensor_timer()  # freeze the average for the check
        reply = poll_temperature(device)
        assert reply.code == coap.CONTENT
        value = int(reply.payload.decode())
        assert value == device.tenant_a.store.fetch(KEY_SENSOR_AVG)

    def test_tenant_isolation_holds_under_load(self, device):
        device.kernel.run(until_us=3_000_000)
        # Tenant B's store never sees tenant A's sensor keys.
        assert KEY_SENSOR_AVG not in device.tenant_b.store
        # The global store only holds thread-counter entries (pids).
        pids = set(device.kernel.threads)
        for key in device.engine.global_store.keys():
            assert key in pids

    def test_thread_counter_matches_kernel_truth(self, device):
        device.kernel.run(until_us=3_000_000)
        counters = device.engine.global_store.snapshot()
        for pid, thread in device.kernel.threads.items():
            assert counters.get(pid, 0) == thread.activations, thread.name

    def test_no_faults_anywhere(self, device):
        device.kernel.run(until_us=3_000_000)
        poll_temperature(device)
        for container in device.engine.containers():
            assert container.fault_count == 0, container.name

    def test_ram_budget_matches_sec10_3(self, device):
        device.kernel.run(until_us=3_000_000)
        total = device.engine.total_ram_bytes()
        assert 2_300 <= total <= 3_600  # paper: ~3.2 KiB

    def test_sensor_cancel_stops_only_the_sensor(self, device):
        device.kernel.run(until_us=1_000_000)
        runs_before = device.sensor.runs
        device.cancel_sensor_timer()
        device.kernel.run(until_us=2_000_000)
        assert device.sensor.runs == runs_before
        # CoAP responder still serves (from the last stored average).
        reply = poll_temperature(device)
        assert reply.code == coap.CONTENT

    def test_hot_swap_responder_while_running(self, device):
        """Replace tenant A's CoAP formatter mid-flight (the update story
        without the network): the next poll is served by the new code."""
        from repro.vm import assemble

        device.kernel.run(until_us=1_000_000)
        constant = assemble("""
    mov   r9, r1
    mov   r1, r9
    mov   r2, 0x45
    call  bpf_gcoap_resp_init
    mov   r1, r9
    mov   r2, 1
    call  bpf_coap_opt_finish
    mov   r7, r0
    mov   r1, r9
    call  bpf_coap_get_pdu
    mov   r1, r0
    stb   [r1+0], 0x58        ; 'X'
    mov   r0, r7
    add   r0, 1
    exit
""", name="v2")
        new = device.engine.replace(device.coap_responder, constant)
        device.server.register_container("/sensor/temp", device.engine, new)
        reply = poll_temperature(device)
        assert reply.payload == b"X"


class TestLossyOperation:
    def test_scenario_survives_heavy_loss(self):
        device = build_multi_tenant_device(sensor_period_us=250_000,
                                           link_loss=0.3, seed=77)
        device.kernel.run(until_us=2_000_000)
        replies = []
        for _ in range(3):
            request = CoapMessage(mtype=coap.CON, code=coap.GET)
            request.add_uri_path("/sensor/temp")
            device.client.request(DEVICE_ADDR, COAP_PORT, request,
                                  replies.append)
            device.kernel.run(until_us=device.kernel.now_us + 40_000_000)
        assert replies  # retransmission got at least one through
        assert device.link.stats.frames_dropped > 0
