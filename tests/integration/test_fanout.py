"""Multi-instance fan-out: one image, K tenants x M instances, one hook."""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT, Hook, HookMode, HostingEngine
from repro.rtos import Kernel, nrf52840
from repro.scenarios import build_fanout_device
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


class TestFanoutScenario:
    def test_all_instances_attach_and_run(self):
        device = build_fanout_device(tenants=3, instances_per_tenant=4)
        assert len(device.containers) == 12
        assert device.engine.hooks[FC_HOOK_FANOUT].occupied
        runs = device.fire(fires=5, next_pid=2)
        assert runs == 5 * 12
        assert all(c.runs == 5 for c in device.containers)

    def test_one_template_serves_every_instance(self):
        device = build_fanout_device(tenants=2, instances_per_tenant=5,
                                     implementation="jit")
        assert device.shared_templates() == 1
        # One compile + one verify, then pure hits for 9 more instances.
        stats = IMAGE_CACHE.stats()
        assert stats["template_entries"] == 1
        assert stats["report_entries"] == 1

    def test_fanout_differential_across_engines(self):
        """The same fan-out drive must leave identical global-store state
        and per-container accounting on every engine build."""
        snapshots = {}
        for implementation in ("femto-containers", "certfc", "jit"):
            device = build_fanout_device(
                tenants=2, instances_per_tenant=3,
                implementation=implementation,
            )
            device.fire(fires=4, next_pid=7)
            snapshots[implementation] = (
                dict(device.engine.global_store.snapshot()),
                [c.lifetime_stats.kind_counts for c in device.containers],
                [c.lifetime_stats.executed for c in device.containers],
            )
        reference = snapshots["femto-containers"]
        for implementation, observed in snapshots.items():
            assert observed == reference, implementation


class TestSyncFireMutationSafety:
    """fire_hook iterates the attach list in place; a fault-detach of the
    running container mid-fire must not skip or double-run neighbours."""

    def test_fault_detach_mid_fire_runs_every_container(self, monkeypatch):
        monkeypatch.setattr(HostingEngine, "FAULT_DETACH_THRESHOLD", 1)
        engine = HostingEngine(Kernel(nrf52840()))
        engine.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.SYNC))
        crasher = assemble(
            "lddw r1, 0xbad0000\n    ldxdw r0, [r1]\n    exit"
        )
        good = assemble("mov r0, 7\n    exit")
        layout = []
        for index, program in enumerate((good, crasher, good, crasher, good)):
            container = engine.load(program, name=f"c{index}")
            engine.attach(container, FC_HOOK_FANOUT)
            layout.append(container)

        firing = engine.fire_hook(FC_HOOK_FANOUT)
        # Every attached container ran exactly once, in attach order,
        # even though both crashers were detached mid-iteration.
        assert [run.container for run in firing.runs] == layout
        assert [run.ok for run in firing.runs] == [True, False, True, False,
                                                   True]
        survivors = engine.hooks[FC_HOOK_FANOUT].containers
        assert [c.name for c in survivors] == ["c0", "c2", "c4"]
        # Fig 3 semantics: faulted runs contribute the default result.
        assert firing.effective_results == [7, 0, 7, 0, 7]

        # The next fire only reaches the survivors.
        second = engine.fire_hook(FC_HOOK_FANOUT)
        assert [run.container.name for run in second.runs] == ["c0", "c2",
                                                               "c4"]
