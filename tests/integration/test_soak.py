"""Soak test: the multi-tenant device stays consistent over a long run."""

from __future__ import annotations

from repro.net import CoapMessage, coap
from repro.scenarios import COAP_PORT, DEVICE_ADDR, build_multi_tenant_device


class TestSoak:
    def test_thirty_virtual_seconds(self):
        device = build_multi_tenant_device(sensor_period_us=200_000,
                                           link_loss=0.05, seed=31)
        kernel = device.kernel

        ram_samples = []
        reply_count = 0
        for second in range(1, 31):
            kernel.run(until_us=second * 1_000_000)
            ram_samples.append(device.engine.total_ram_bytes())
            if second % 5 == 0:
                replies = []
                request = CoapMessage(mtype=coap.CON, code=coap.GET)
                request.add_uri_path("/sensor/temp")
                device.client.request(DEVICE_ADDR, COAP_PORT, request,
                                      replies.append)
                kernel.run(until_us=kernel.now_us + 500_000)
                reply_count += len(replies)

        # The sensor ran roughly five times per second the whole time.
        assert 130 <= device.sensor.runs <= 160

        # No faults accumulated anywhere.
        for container in device.engine.containers():
            assert container.fault_count == 0, container.name

        # RAM accounting is stable: stores reach steady state and the
        # spread stays within one store entry growth per tenant counter.
        assert max(ram_samples) - min(ram_samples) < 200

        # The thread counter still matches the scheduler exactly after
        # thousands of context switches.
        counters = device.engine.global_store.snapshot()
        for pid, thread in kernel.threads.items():
            assert counters.get(pid, 0) == thread.activations
        assert kernel.scheduler.switch_count > 300

        # CoAP stayed responsive throughout.
        assert reply_count >= 5

    def test_sustained_hostile_load_contained(self):
        """A malicious container hammered for minutes never destabilizes
        the device (resource-exhaustion containment, §3)."""
        from repro.core import FC_HOOK_TIMER
        from repro.vm import assemble

        device = build_multi_tenant_device(sensor_period_us=500_000)
        engine = device.engine
        hostile = engine.load(assemble("""
burn:
    add r1, 1
    ja burn
"""), tenant=device.tenant_b, name="burner")
        engine.attach(hostile, FC_HOOK_TIMER)
        cancel = engine.attach_periodic(hostile, period_us=100_000)

        device.kernel.run(until_us=3_000_000)
        cancel()

        assert hostile.fault_count > 0            # it kept faulting...
        assert hostile.runs <= engine.FAULT_DETACH_THRESHOLD
        # ...until the engine cut it off, well before 3 s of spam.
        assert hostile.hook is None
        # The honest sensor pipeline never noticed.
        assert device.sensor.fault_count == 0
        assert device.sensor.runs >= 4
