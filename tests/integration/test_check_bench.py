"""The CI bench-record checker must accept the repo and catch tampering."""

from __future__ import annotations

import json
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_bench  # noqa: E402  (path set up above)

BENCH_FILES = sorted(check_bench.CHECKS)


@pytest.fixture
def bench_dir(tmp_path):
    """A copy of the repo's bench records, safe to tamper with."""
    for name in BENCH_FILES:
        shutil.copy(REPO_ROOT / name, tmp_path / name)
    return tmp_path


def test_repo_records_pass(capsys):
    assert check_bench.main([str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") >= len(BENCH_FILES)
    assert "FAIL" not in out


def test_all_expected_files_are_covered():
    stray = sorted(path.name for path in REPO_ROOT.glob("BENCH_*.json")
                   if path.name not in check_bench.CHECKS)
    assert stray == [], f"bench records without a schema: {stray}"


def test_missing_file_fails(bench_dir, capsys):
    (bench_dir / "BENCH_canary.json").unlink()
    assert check_bench.main([str(bench_dir)]) == 1
    assert "file missing" in capsys.readouterr().out


def test_malformed_json_fails(bench_dir, capsys):
    (bench_dir / "BENCH_attach.json").write_text("{not json")
    assert check_bench.main([str(bench_dir)]) == 1
    assert "invalid JSON" in capsys.readouterr().out


def test_missing_key_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_deploy.json").read_text())
    del record["warm_speedup_bar"]
    (bench_dir / "BENCH_deploy.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "missing required keys" in capsys.readouterr().out


def test_regressed_ratio_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_canary.json").read_text())
    slow = record["devices"][0]["rollout_us"] * 0.9  # barely faster now
    for row in record["devices"][1:]:
        row["rollout_us"] = slow
        row["speedup_vs_canary"] = round(
            record["devices"][0]["rollout_us"] / slow, 2)
    (bench_dir / "BENCH_canary.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "bar" in capsys.readouterr().out


def test_disturbed_control_devices_fail(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_canary.json").read_text())
    record["rollback"]["control_devices_disturbed"] = 1
    (bench_dir / "BENCH_canary.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "disturbed" in capsys.readouterr().out


def test_inconsistent_speedup_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_throughput.json").read_text())
    record["jit_speedup_vs_interpreter"] = 99.0  # lies about the ratio
    (bench_dir / "BENCH_throughput.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "does not match" in capsys.readouterr().out


def test_accepted_replay_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_publish.json").read_text())
    record["replay_refused"] = False
    (bench_dir / "BENCH_publish.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "not refused" in capsys.readouterr().out


def test_non_idempotent_republish_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_publish.json").read_text())
    record["republish_actions"] = 3
    (bench_dir / "BENCH_publish.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "republish" in capsys.readouterr().out


def test_regressed_publish_speedup_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_publish.json").read_text())
    slow = record["devices"][0]["rollout_us"] * 0.9
    for row in record["devices"][1:]:
        row["rollout_us"] = slow
        row["speedup_vs_dev0"] = round(
            record["devices"][0]["rollout_us"] / slow, 2)
    (bench_dir / "BENCH_publish.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "bar" in capsys.readouterr().out


def test_malformed_first_device_row_fails_cleanly(bench_dir, capsys):
    """A broken first row must produce a FAIL report, not a traceback."""
    record = json.loads((bench_dir / "BENCH_publish.json").read_text())
    del record["devices"][0]["rollout_us"]
    (bench_dir / "BENCH_publish.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "missing required keys" in capsys.readouterr().out


def test_empty_device_list_fails_cleanly(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_canary.json").read_text())
    record["devices"] = []
    (bench_dir / "BENCH_canary.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "at least two device rows" in capsys.readouterr().out


def test_partial_chaos_convergence_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_chaos.json").read_text())
    record["devices_converged"] = record["devices_total"] - 1
    (bench_dir / "BENCH_chaos.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "devices converged" in capsys.readouterr().out


def test_chaos_crash_without_reboot_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_chaos.json").read_text())
    record["reboots"] = record["scripted_crashes"] - 1
    (bench_dir / "BENCH_chaos.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "never came back" in capsys.readouterr().out


def test_chaos_unreachable_demo_must_degrade(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_chaos.json").read_text())
    record["unreachable_demo"]["raised"] = True
    (bench_dir / "BENCH_chaos.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "raised" in capsys.readouterr().out


def test_supervisor_ratio_above_bar_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_supervisor.json").read_text())
    record["supervised_cycles"] = int(
        record["unsupervised_cycles"] * 0.9)  # quarantine stopped working
    record["waste_ratio"] = 0.9
    (bench_dir / "BENCH_supervisor.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "bar" in capsys.readouterr().out


def test_supervisor_inconsistent_ratio_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_supervisor.json").read_text())
    record["waste_ratio"] = 0.0001  # lies about the cycles ratio
    (bench_dir / "BENCH_supervisor.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "does not match" in capsys.readouterr().out


def test_supervisor_unconverged_publish_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_supervisor.json").read_text())
    record["publish"]["devices_converged"] = (
        record["publish"]["devices_total"] - 1)
    (bench_dir / "BENCH_supervisor.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "converged" in capsys.readouterr().out


def test_supervisor_without_quarantine_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_supervisor.json").read_text())
    record["publish"]["quarantined_devices"] = 0
    (bench_dir / "BENCH_supervisor.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "quarantined_devices" in capsys.readouterr().out


def test_fleet_scale_below_speedup_bar_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_fleet_scale.json").read_text())
    slower = record["unicast"]["devices_per_s"] * 1.5  # barely faster now
    record["multicast"]["devices_per_s"] = slower
    record["scale_speedup"] = round(
        slower / record["unicast"]["devices_per_s"], 2)
    (bench_dir / "BENCH_fleet_scale.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "bar" in capsys.readouterr().out


def test_fleet_scale_inconsistent_speedup_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_fleet_scale.json").read_text())
    record["scale_speedup"] = 99.0  # lies about the devices/s ratio
    (bench_dir / "BENCH_fleet_scale.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "does not match" in capsys.readouterr().out


def test_fleet_scale_small_fleet_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_fleet_scale.json").read_text())
    record["devices_total"] = 64  # not a scale-out measurement
    (bench_dir / "BENCH_fleet_scale.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "1000" in capsys.readouterr().out


def test_fleet_scale_chatty_trigger_fails(bench_dir, capsys):
    record = json.loads((bench_dir / "BENCH_fleet_scale.json").read_text())
    chatty = record["unicast"]["trigger_bytes_per_device"]  # no savings
    record["multicast"]["trigger_bytes_per_device"] = chatty
    record["trigger_bytes_ratio"] = 1.0
    (bench_dir / "BENCH_fleet_scale.json").write_text(json.dumps(record))
    assert check_bench.main([str(bench_dir)]) == 1
    assert "airtime" in capsys.readouterr().out


def test_stray_record_fails(bench_dir, capsys):
    (bench_dir / "BENCH_mystery.json").write_text("{}")
    assert check_bench.main([str(bench_dir)]) == 1
    assert "without a schema" in capsys.readouterr().out
