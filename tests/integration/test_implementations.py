"""The full multi-tenant scenario under every engine build.

The paper's equivalence claim at system level: swapping the interpreter
for CertFC (or the §11 JIT) changes timing, never behaviour.
"""

from __future__ import annotations

import pytest

from repro.net import CoapMessage, coap
from repro.scenarios import COAP_PORT, DEVICE_ADDR, build_multi_tenant_device

IMPLEMENTATIONS = ("femto-containers", "rbpf", "certfc", "jit")


def run_scenario(implementation: str):
    device = build_multi_tenant_device(sensor_period_us=300_000,
                                       implementation=implementation)
    kernel = device.kernel
    kernel.run(until_us=2_000_000)
    device.cancel_sensor_timer()
    replies = []
    request = CoapMessage(mtype=coap.CON, code=coap.GET)
    request.add_uri_path("/sensor/temp")
    device.client.request(DEVICE_ADDR, COAP_PORT, request, replies.append)
    kernel.run(until_us=kernel.now_us + 1_000_000)
    return device, replies


@pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
def test_scenario_works_under_every_build(implementation):
    device, replies = run_scenario(implementation)
    assert replies and replies[0].code == coap.CONTENT
    assert int(replies[0].payload.decode()) > 0
    for container in device.engine.containers():
        assert container.fault_count == 0, (implementation, container.name)
    # Thread counter agrees with the scheduler under every build.
    counters = device.engine.global_store.snapshot()
    for pid, thread in device.kernel.threads.items():
        assert counters.get(pid, 0) == thread.activations


def test_functional_state_identical_across_builds():
    """Same seed, same workload: the device's *functional* end state (the
    tenant store contents) is identical under every build — the system-
    level form of the paper's semantic-equivalence result.  (Timing
    differs; the next test checks its direction.)"""
    snapshots = {}
    for implementation in IMPLEMENTATIONS:
        device, _replies = run_scenario(implementation)
        snapshots[implementation] = device.tenant_a.store.snapshot()
    baseline = snapshots["femto-containers"]
    for implementation, snapshot in snapshots.items():
        assert snapshot == baseline, implementation


def test_jit_scenario_faster_certfc_slower():
    durations = {}
    for implementation in ("femto-containers", "certfc", "jit"):
        device, _ = run_scenario(implementation)
        total = sum(c.total_cycles for c in device.engine.containers())
        durations[implementation] = total
    assert durations["certfc"] > durations["femto-containers"]
    assert durations["jit"] < durations["femto-containers"]
