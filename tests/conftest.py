"""Shared fixtures for the Femto-Containers reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import HostingEngine
from repro.rtos import Kernel, esp32_wroom32, gd32vf103, nrf52840


@pytest.fixture
def board_m4():
    return nrf52840()


@pytest.fixture
def board_esp32():
    return esp32_wroom32()


@pytest.fixture
def board_riscv():
    return gd32vf103()


@pytest.fixture(params=["cortex-m4", "esp32", "risc-v"])
def any_board(request):
    from repro.rtos import board_by_name

    return board_by_name(request.param)


@pytest.fixture
def kernel(board_m4):
    return Kernel(board_m4)


@pytest.fixture
def engine(kernel):
    return HostingEngine(kernel)


def run_program(source: str, context: bytes | None = None, **kwargs):
    """Assemble + verify + run a snippet on a bare interpreter."""
    from repro.vm import Interpreter, assemble, verify

    program = assemble(source)
    verify(program)
    vm = Interpreter(program, **kwargs)
    return vm.run(context=context)
