"""femtoC-compiled containers vs the hand-written assembly workloads.

The compiled sensor container must behave exactly like the hand-assembled
§8.3 original — same store effects, same results — proving the compiler
produces semantically faithful device code.
"""

from __future__ import annotations

import struct

from repro.core import FC_HOOK_TIMER, HostingEngine
from repro.femtoc import compile_source
from repro.rtos import Kernel, nrf52840, synthetic_temperature
from repro.workloads import KEY_SENSOR_AVG, sensor_program

SENSOR_FEMTOC = """
var handle = saul_find(0x82);
if (handle == 0) { return 1; }
var sample = saul_read(handle);
var avg = fetch_tenant(0x10);
if (avg == 0) { avg = sample; }
avg = (3 * avg + sample) / 4;
store_tenant(0x10, avg);
store_tenant(0x11, sample);
return 0;
"""

COUNTER_FEMTOC = """
var next = ctx_u64(8);
if (next == 0) { return 0; }
var count = fetch_global(next);
store_global(next, count + 1);
return 0;
"""


def fresh_engine(seed: int):
    kernel = Kernel(nrf52840())
    engine = HostingEngine(kernel)
    engine.saul.register(synthetic_temperature(kernel, seed=seed))
    return kernel, engine


class TestSensorEquivalence:
    def run_variant(self, program, rounds: int = 6):
        kernel, engine = fresh_engine(seed=4)
        tenant = engine.create_tenant("A")
        container = engine.load(program, tenant=tenant)
        engine.attach(container, FC_HOOK_TIMER)
        for _ in range(rounds):
            run = engine.execute(container, struct.pack("<QQ", 0, 0))
            assert run.ok and run.value == 0
            kernel.clock.charge_us(250_000)
        return tenant.store.snapshot()

    def test_compiled_sensor_equals_assembly_sensor(self):
        assembly = self.run_variant(sensor_program())
        compiled = self.run_variant(compile_source(SENSOR_FEMTOC))
        assert assembly == compiled
        assert KEY_SENSOR_AVG in {k for k in assembly}

    def test_compiled_sensor_missing_device_path(self):
        kernel = Kernel(nrf52840())
        engine = HostingEngine(kernel)  # no SAUL device
        tenant = engine.create_tenant("A")
        container = engine.load(compile_source(SENSOR_FEMTOC), tenant=tenant)
        engine.attach(container, FC_HOOK_TIMER)
        run = engine.execute(container, struct.pack("<QQ", 0, 0))
        assert run.ok and run.value == 1


class TestCounterEquivalence:
    def test_compiled_counter_counts_like_listing2(self):
        from repro.core import FC_HOOK_SCHED
        from repro.workloads import thread_counter_program

        outcomes = []
        for program in (thread_counter_program(),
                        compile_source(COUNTER_FEMTOC)):
            kernel = Kernel(nrf52840())
            engine = HostingEngine(kernel)
            container = engine.load(program)
            engine.attach(container, FC_HOOK_SCHED)
            for prev, nxt in [(0, 1), (1, 2), (2, 1), (1, 0), (0, 1)]:
                engine.fire_hook(FC_HOOK_SCHED, struct.pack("<QQ", prev, nxt))
            outcomes.append(engine.global_store.snapshot())
        assert outcomes[0] == outcomes[1] == {1: 3, 2: 1}

    def test_compiled_counter_code_size_comparable(self):
        """The compiler's output stays in the same size class as the
        hand-written assembly (no pathological blowup)."""
        from repro.workloads import thread_counter_program

        hand = thread_counter_program().code_size
        compiled = compile_source(COUNTER_FEMTOC).code_size
        assert compiled <= 3 * hand
