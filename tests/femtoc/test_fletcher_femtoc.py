"""fletcher32 written in femtoC — the compiler's integration workout.

The §6 benchmark workload, authored in the high-level language and
compiled to eBPF: it must compute the same checksum as the reference, and
the generated code must stay within a sane factor of the hand-written
assembly (the "compiler overhead" the paper's C→LLVM flow also pays).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.femtoc import compile_source
from repro.vm import Interpreter, verify
from repro.vm.memory import CONTEXT_BASE, Permission
from repro.workloads.fletcher32 import (
    FLETCHER32_INPUT,
    fletcher32_program,
    fletcher32_reference,
)

# The whole input buffer is the context; ctx_u8(i) walks it.
FLETCHER32_FEMTOC = """
var nbytes = {nbytes};
var sum1 = 65535;
var sum2 = 65535;
var words = nbytes / 2;
var i = 0;
while (words > 0) {{
  var tlen = words;
  if (tlen > 359) {{ tlen = 359; }}
  words = words - tlen;
  while (tlen > 0) {{
    sum1 = sum1 + (ctx_u8(i) | (ctx_u8(i + 1) << 8));
    sum2 = sum2 + sum1;
    i = i + 2;
    tlen = tlen - 1;
  }}
  sum1 = (sum1 & 65535) + (sum1 >> 16);
  sum2 = (sum2 & 65535) + (sum2 >> 16);
}}
sum1 = (sum1 & 65535) + (sum1 >> 16);
sum2 = (sum2 & 65535) + (sum2 >> 16);
return (sum2 << 16) | sum1;
"""


def run_femtoc_fletcher(data: bytes) -> int:
    program = compile_source(FLETCHER32_FEMTOC.format(nbytes=len(data)),
                             name="fletcher32-femtoc")
    verify(program)
    vm = Interpreter(program)
    result = vm.run(context=data, context_perms=Permission.READ)
    return result.value


class TestFletcherFemtoC:
    def test_canonical_input(self):
        assert run_femtoc_fletcher(FLETCHER32_INPUT) == \
            fletcher32_reference(FLETCHER32_INPUT)

    @settings(max_examples=10, deadline=None)
    @given(data=st.binary(min_size=2, max_size=200).filter(
        lambda b: len(b) % 2 == 0))
    def test_random_inputs(self, data):
        assert run_femtoc_fletcher(data) == fletcher32_reference(data)

    def test_multi_block_input(self):
        data = bytes(range(250)) * 4  # 1000 B > 359 words
        assert run_femtoc_fletcher(data) == fletcher32_reference(data)

    def test_compiled_size_vs_handwritten(self):
        compiled = compile_source(
            FLETCHER32_FEMTOC.format(nbytes=360)).code_size
        handwritten = fletcher32_program().code_size
        # Naive codegen (stack slots, no regalloc across statements) costs
        # a few x; anything beyond ~6x would signal a lowering bug.
        assert compiled <= 6 * handwritten

    def test_computed_ctx_offset_is_bounds_checked(self):
        """ctx_u8 with a hostile computed offset faults, never escapes."""
        import pytest

        from repro.vm import VMFault

        program = compile_source("return ctx_u8(100000);")
        vm = Interpreter(program)
        with pytest.raises(VMFault):
            vm.run(context=b"\x01\x02", context_perms=Permission.READ)

    def test_read_only_context_unmodified(self):
        data = bytes(FLETCHER32_INPUT)
        program = compile_source(FLETCHER32_FEMTOC.format(nbytes=len(data)))
        vm = Interpreter(program)
        vm.run(context=data, context_perms=Permission.READ)
        region = next(r for r in vm.access_list.regions
                      if r.start == CONTEXT_BASE)
        assert bytes(region.data) == data
