"""femtoC compiler: lowering correctness, intrinsics, diagnostics.

The strongest check is differential: the same source executed by the
script tree-walker and by the compiled eBPF program must agree.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FC_HOOK_TIMER
from repro.femtoc import CompileError, compile_source
from repro.runtimes.script import run_source
from repro.vm import Interpreter, verify


def run_compiled(source: str, context: bytes | None = None, **vm_kwargs) -> int:
    program = compile_source(source)
    verify(program)
    return Interpreter(program, **vm_kwargs).run(context=context).value


class TestBasics:
    def test_return_literal(self):
        assert run_compiled("return 42;") == 42

    def test_implicit_return_zero(self):
        assert run_compiled("var x = 5;") == 0

    def test_variables_and_arithmetic(self):
        assert run_compiled("var a = 6; var b = 7; return a * b;") == 42

    def test_reassignment(self):
        assert run_compiled("var a = 1; a = a + 41; return a;") == 42

    def test_large_literal_uses_lddw(self):
        assert run_compiled("return 0x123456789;") == 0x123456789

    def test_unary_minus_wraps_unsigned(self):
        assert run_compiled("return -(1);") == (1 << 64) - 1

    def test_not_operator(self):
        assert run_compiled("return !0;") == 1
        assert run_compiled("return !7;") == 0

    def test_division_and_modulo(self):
        assert run_compiled("return 100 / 7;") == 14
        assert run_compiled("return 100 % 7;") == 2

    def test_shifts_and_bitops(self):
        assert run_compiled("return (1 << 10) | 3;") == 1027
        assert run_compiled("return (0xff & 0x0f) ^ 1;") == 14


class TestControlFlow:
    def test_if_else(self):
        source = "var x = {v}; if (x > 5) {{ return 1; }} else {{ return 2; }}"
        assert run_compiled(source.format(v=9)) == 1
        assert run_compiled(source.format(v=3)) == 2

    def test_if_without_else(self):
        assert run_compiled(
            "var x = 0; if (1) { x = 7; } return x;") == 7

    def test_nested_if(self):
        source = """
var a = 2; var b = 3;
if (a == 2) { if (b == 3) { return 23; } return 20; }
return 0;
"""
        assert run_compiled(source) == 23

    def test_while_sum(self):
        source = """
var total = 0; var i = 1;
while (i <= 10) { total = total + i; i = i + 1; }
return total;
"""
        assert run_compiled(source) == 55

    def test_comparisons_produce_01(self):
        assert run_compiled("return (3 < 4) + (4 <= 4) + (5 > 9);") == 2

    def test_short_circuit_and(self):
        # Division by zero on the right is never evaluated.
        assert run_compiled("return 0 && (1 / 0);") == 0

    def test_short_circuit_or(self):
        assert run_compiled("return 1 || (1 / 0);") == 1

    def test_logical_normalizes(self):
        assert run_compiled("return 7 && 9;") == 1
        assert run_compiled("return 0 || 5;") == 1


class TestIntrinsics:
    def test_kv_roundtrip(self, engine):
        program = compile_source("""
var old = fetch_global(5);
store_global(5, old + 1);
return fetch_global(5);
""")
        container = engine.load(program)
        engine.attach(container, FC_HOOK_TIMER)
        assert engine.execute(container).value == 1
        assert engine.execute(container).value == 2

    def test_ctx_accessors(self):
        context = (0x11).to_bytes(1, "little") + bytes(7) \
            + (0xAABB).to_bytes(8, "little")
        assert run_compiled("return ctx_u8(0);", context) == 0x11
        assert run_compiled("return ctx_u16(8);", context) == 0xAABB

    def test_ctx_pointer_survives_helper_calls(self, engine):
        program = compile_source("""
store_global(1, 99);
return ctx_u32(0);
""")
        container = engine.load(program)
        engine.attach(container, FC_HOOK_TIMER)
        run = engine.execute(container, (1234).to_bytes(8, "little"))
        assert run.ok and run.value == 1234

    def test_saul_pipeline(self, engine, kernel):
        from repro.rtos import synthetic_temperature

        engine.saul.register(synthetic_temperature(
            kernel, swing_centi_c=0, noise_centi_c=0, base_centi_c=2100))
        program = compile_source("""
var handle = saul_find(0x82);
if (handle == 0) { return 0; }
return saul_read(handle);
""")
        container = engine.load(program)
        engine.attach(container, FC_HOOK_TIMER)
        assert engine.execute(container).value == 2100

    def test_now_ms(self, engine, kernel):
        program = compile_source("return now_ms();")
        container = engine.load(program)
        engine.attach(container, FC_HOOK_TIMER)
        kernel.clock.charge_us(7_000)
        assert engine.execute(container).value == 7

    def test_trace_emits_and_passes_value_through(self, engine):
        program = compile_source("return trace(41) + 1;")
        container = engine.load(program)
        engine.attach(container, FC_HOOK_TIMER)
        assert engine.execute(container).value == 42
        assert engine.trace_log == ["trace: 41"]


class TestDiagnostics:
    def test_unknown_variable(self):
        with pytest.raises(CompileError, match="unknown variable"):
            compile_source("return ghost;")

    def test_duplicate_declaration(self):
        with pytest.raises(CompileError, match="already declared"):
            compile_source("var a = 1; var a = 2;")

    def test_user_functions_rejected(self):
        with pytest.raises(CompileError, match="functions"):
            compile_source("func f() { return 1; } return f();")

    def test_string_literal_rejected(self):
        with pytest.raises(CompileError, match="integer literals"):
            compile_source('return "nope";')

    def test_unknown_intrinsic(self):
        with pytest.raises(CompileError, match="unknown function"):
            compile_source("return launch_missiles();")

    def test_wrong_intrinsic_arity(self):
        with pytest.raises(CompileError, match="argument"):
            compile_source("return now_ms(1);")

    def test_indexing_rejected(self):
        with pytest.raises(CompileError, match="ctx_"):
            compile_source("var a = 1; return a[0];")

    def test_too_many_variables(self):
        body = "".join(f"var v{i} = {i}; " for i in range(80))
        with pytest.raises(CompileError, match="too many variables"):
            compile_source(body + "return 0;")

    def test_deep_nesting_diagnosed(self):
        deep = "1 + (2 + (3 + (4 + (5 + (6 + 7)))))"
        with pytest.raises(CompileError, match="register allocator"):
            compile_source(f"return {deep};")


# -- differential property: compiled vs interpreted ---------------------------

@st.composite
def arithmetic_source(draw) -> str:
    """Random arithmetic/control programs valid in both worlds.

    Values are kept small and non-negative so Python's unbounded ints and
    the VM's u64 wraparound agree; division is by non-zero constants.
    """
    n_vars = draw(st.integers(1, 4))
    lines = [f"var v{i} = {draw(st.integers(0, 50))};" for i in range(n_vars)]
    variables = [f"v{i}" for i in range(n_vars)]

    def expr(depth=0) -> str:
        choices = ["literal", "name"]
        if depth < 2:
            choices.append("binop")
        kind = draw(st.sampled_from(choices))
        if kind == "literal":
            return str(draw(st.integers(0, 30)))
        if kind == "name":
            return draw(st.sampled_from(variables))
        op = draw(st.sampled_from(["+", "*", "&", "|", "^"]))
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    for index in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["assign", "if", "while"]))
        target = draw(st.sampled_from(variables))
        if kind == "assign":
            lines.append(f"{target} = {expr()};")
        elif kind == "if":
            lines.append(
                f"if ({expr()} > {draw(st.integers(0, 40))}) "
                f"{{ {target} = {expr()}; }} "
                f"else {{ {target} = {expr()}; }}")
        else:
            # A dedicated counter that nothing else writes: guaranteed
            # monotone, so both executions terminate quickly.
            counter = f"w{index}"
            lines.append(f"var {counter} = {draw(st.integers(1, 6))};")
            lines.append(
                f"while ({counter} > 0) {{ "
                f"{target} = {target} + {expr()}; "
                f"{counter} = {counter} - 1; }}")
    lines.append(f"return {draw(st.sampled_from(variables))};")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(source=arithmetic_source())
def test_compiled_matches_interpreted(source):
    interpreted, _stats = run_source(source)
    program = compile_source(source)
    verify(program)
    compiled = Interpreter(program).run().value
    assert compiled == interpreted % (1 << 64)
