"""Failed updates leave the storage registry exactly as they found it.

Satellite of the chaos-hardening PR: every rejection path of the update
pipeline — fetch timeout, digest mismatch, storage budget exhausted —
must leave (a) no dead slots (a reservation that will never install but
still counts against ``max_slots``) and (b) the anti-rollback state
bit-for-bit unchanged.  Both invariants are checked *before and after a
power cycle*: the NVM-backed registry restores only installed state, so
a reboot can neither resurrect a reservation nor lose a sequence number.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_SCHED, FC_HOOK_TIMER, HostingEngine
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.rtos import Kernel
from repro.suit import (
    StorageRegistry,
    SuitEnvelope,
    SuitUpdateWorker,
    UpdateStatus,
    ed25519,
    payload_digest,
    SuitManifest,
)
from repro.vm import assemble

SEED = bytes(range(32))
PUBLIC = ed25519.public_key(SEED)


def make_rig(kernel, engine, nvm=None, **worker_kwargs):
    link = Link(kernel, loss=0.0, seed=21)
    dev = link.attach(Interface("dev"))
    host = link.attach(Interface("host"))
    repo = CoapServer(kernel, UdpStack(host).socket(5683), threaded=False)
    client = CoapClient(kernel, UdpStack(dev).socket(40000))
    worker = SuitUpdateWorker(engine, client, trust_anchor=PUBLIC,
                              repo_addr="host", nvm=nvm, **worker_kwargs)
    return repo, worker


def image_manifest(engine, payload, seq=1, hook=FC_HOOK_TIMER, uri="/fw/app"):
    return SuitManifest(
        sequence_number=seq,
        storage_location=str(engine.hook(hook).uuid),
        digest=payload_digest(payload),
        size=len(payload),
        uri=uri,
    )


def run_update(kernel, worker, manifest):
    worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
    kernel.run(until_us=kernel.now_us + 400_000_000)
    return worker.results[-1]


def registry_fingerprint(storage: StorageRegistry) -> dict:
    """Everything a failed update must not perturb."""
    return {
        location: (slot.occupied, slot.sequence_number, slot.image)
        for location, slot in storage.slots.items()
    }


PAYLOAD = assemble("mov r0, 1\n    exit").to_bytes()

# (id, max_slots, manifest builder, blob registrations, expected status)
FAILURE_MODES = [
    pytest.param(
        2,
        lambda engine: image_manifest(engine, PAYLOAD, seq=2,
                                      hook=FC_HOOK_SCHED, uri="/fw/ghost"),
        {},  # /fw/ghost is never served: the fetch times out
        UpdateStatus.FETCH_FAILED,
        id="fetch-failed",
    ),
    pytest.param(
        2,
        lambda engine: image_manifest(engine, PAYLOAD, seq=2,
                                      hook=FC_HOOK_SCHED, uri="/fw/b"),
        {"/fw/b": lambda: PAYLOAD[:-4]},  # truncated on the wire
        UpdateStatus.DIGEST_MISMATCH,
        id="digest-mismatch",
    ),
    pytest.param(
        1,  # budget already consumed by the baseline install
        lambda engine: image_manifest(engine, PAYLOAD, seq=2,
                                      hook=FC_HOOK_SCHED, uri="/fw/b"),
        {"/fw/b": lambda: PAYLOAD},
        UpdateStatus.STORAGE_FULL,
        id="storage-full",
    ),
]


@pytest.mark.parametrize(
    "max_slots, build_manifest, blobs, expected", FAILURE_MODES)
class TestFailedUpdatesAreInert:
    def _baseline(self, kernel, engine, nvm, max_slots):
        repo, worker = make_rig(kernel, engine, nvm=nvm,
                                max_storage_slots=max_slots)
        repo.register_blob("/fw/a", lambda: PAYLOAD)
        good = image_manifest(engine, PAYLOAD, seq=1, uri="/fw/a")
        assert run_update(kernel, worker, good).ok
        return repo, worker

    def test_no_dead_slots_and_rollback_state_untouched(
            self, kernel, engine, max_slots, build_manifest, blobs, expected):
        nvm = kernel.board.nvm(kernel)
        repo, worker = self._baseline(kernel, engine, nvm, max_slots)
        before = registry_fingerprint(worker.storage)

        for uri, blob in blobs.items():
            repo.register_blob(uri, blob)
        result = run_update(kernel, worker, build_manifest(engine))

        assert result.status is expected
        assert registry_fingerprint(worker.storage) == before
        # No dead slots: everything left in the registry is installed
        # state, never a reservation stranded by the failure.
        assert all(s.occupied for s in worker.storage.slots.values())

    def test_reboot_after_failure_restores_only_installed_state(
            self, kernel, engine, max_slots, build_manifest, blobs, expected):
        nvm = kernel.board.nvm(kernel)
        repo, worker = self._baseline(kernel, engine, nvm, max_slots)
        before = registry_fingerprint(worker.storage)
        for uri, blob in blobs.items():
            repo.register_blob(uri, blob)
        assert run_update(kernel, worker,
                          build_manifest(engine)).status is expected

        kernel.power_fail()
        reborn = Kernel(kernel.board, clock=kernel.clock)
        nvm.bind(reborn)
        engine2 = HostingEngine(reborn)
        repo2, worker2 = make_rig(reborn, engine2, nvm=nvm,
                                  max_storage_slots=max_slots)
        recovered = worker2.recover()

        assert registry_fingerprint(worker2.storage) == before
        assert all(r.ok for r in recovered)
        assert engine2.hook(FC_HOOK_TIMER).occupied

        # Anti-rollback survived the cycle: replaying the baseline
        # sequence is refused, a genuinely newer one is accepted.
        repo2.register_blob("/fw/a", lambda: PAYLOAD)
        replay = image_manifest(engine2, PAYLOAD, seq=1, uri="/fw/a")
        assert run_update(reborn, worker2, replay).status \
            is UpdateStatus.SEQUENCE_REPLAY
        newer = image_manifest(engine2, PAYLOAD, seq=3, uri="/fw/a")
        assert run_update(reborn, worker2, newer).ok


class TestGcEvictedSlotsKeepAntiRollback:
    """Regression: ``release_if_empty`` must only drop *virgin*
    reservations — a GC-evicted slot is unoccupied yet still carries the
    sequence of the install it once held."""

    def test_release_if_empty_spares_evicted_slots(self):
        registry = StorageRegistry()
        registry.install("old", b"v1", 1)
        registry.install("new", b"v2", 9)
        assert registry.gc(horizon=5) == ["old"]
        assert not registry.slots["old"].occupied

        registry.release_if_empty("old")
        assert registry.highest_sequence("old") == 1  # still refused later

    def test_release_if_empty_still_drops_virgin_reservations(self):
        registry = StorageRegistry(max_slots=1)
        registry.slot("fresh")  # reservation, never installed
        registry.release_if_empty("fresh")
        assert registry.slots == {}

    def test_evicted_slot_survives_reboot_without_image(self):
        from repro.rtos import NvmStore

        nvm = NvmStore()
        registry = StorageRegistry(nvm=nvm)
        registry.install("old", b"v1", 1)
        registry.install("new", b"v2", 9)
        registry.gc(horizon=5)

        restored = StorageRegistry(nvm=nvm)
        restored.restore()
        assert restored.highest_sequence("old") == 1
        assert not restored.slots["old"].occupied
        assert restored.slots["new"].image == b"v2"
