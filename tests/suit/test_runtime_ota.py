"""Runtime-tagged SUIT image updates: Wasm and script payloads OTA.

The image-manifest path (one container, one hook) learns the ``runtime``
dimension: manifests carry the tag (map key 9 — encoded only when the
payload is not rBPF, so every pre-existing manifest stays byte-identical
and its signature keeps verifying), the device's update worker decodes
the payload through the tagged runtime, the storage slot persists the
tag to NVM, and a power-cycled device re-activates a Wasm container from
flash exactly like an rBPF one.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_TIMER, HostingEngine
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.rtos import Kernel, NvmStore
from repro.suit import (
    StorageRegistry,
    SuitEnvelope,
    SuitManifest,
    SuitUpdateWorker,
    UpdateStatus,
    ed25519,
    payload_digest,
)
from repro.suit import cbor
from repro.suit.manifest import KEY_RUNTIME
from repro.vm.imagecache import IMAGE_CACHE

SEED = bytes(range(32))
PUBLIC = ed25519.public_key(SEED)

WASM_FORTYTWO = ("module pages=1\nfunc main params=1 locals=0\n"
                 "    i32.const 42\n    return\nend\n")
SCRIPT_SEVEN = "return 7;"


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def wasm_payload() -> bytes:
    from repro.runtimes.wasm.asm import assemble as wasm_assemble

    return wasm_assemble(WASM_FORTYTWO).encode()


def make_rig(kernel, engine, nvm=None, **worker_kwargs):
    link = Link(kernel, loss=0.0, seed=17)
    dev = link.attach(Interface("dev"))
    host = link.attach(Interface("host"))
    repo = CoapServer(kernel, UdpStack(host).socket(5683), threaded=False)
    client = CoapClient(kernel, UdpStack(dev).socket(40000))
    worker = SuitUpdateWorker(engine, client, trust_anchor=PUBLIC,
                              repo_addr="host", nvm=nvm, **worker_kwargs)
    return repo, worker


def manifest_for(engine, payload, runtime, seq=1, uri="/fw/app",
                 name="app"):
    return SuitManifest(
        sequence_number=seq,
        storage_location=str(engine.hook(FC_HOOK_TIMER).uuid),
        digest=payload_digest(payload),
        size=len(payload),
        uri=uri,
        name=name,
        runtime=runtime,
    )


def run_update(kernel, worker, manifest):
    worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
    kernel.run(until_us=kernel.now_us + 400_000_000)
    return worker.results[-1]


class TestManifestWire:
    def test_rbpf_manifest_bytes_unchanged(self):
        """No KEY_RUNTIME in an rBPF manifest: seed-era wire bytes (and
        signatures over them) are untouched."""
        manifest = SuitManifest(sequence_number=1, storage_location="loc",
                                digest=bytes(32), size=4, uri="/fw/a")
        assert manifest.runtime == "rbpf"
        assert KEY_RUNTIME not in cbor.decode(manifest.to_cbor())

    def test_tagged_manifest_round_trips(self):
        manifest = SuitManifest(sequence_number=2, storage_location="loc",
                                digest=bytes(32), size=4, uri="/fw/a",
                                runtime="wasm")
        again = SuitManifest.from_cbor(manifest.to_cbor())
        assert again == manifest
        assert again.runtime == "wasm"

    def test_tagless_cbor_decodes_as_rbpf(self):
        doc = cbor.decode(SuitManifest(
            sequence_number=1, storage_location="loc", digest=bytes(32),
            size=4, uri="/fw/a").to_cbor())
        assert SuitManifest.from_cbor(cbor.encode(doc)).runtime == "rbpf"


class TestStorageSlots:
    def test_slot_persists_runtime_tag(self):
        nvm = NvmStore()
        registry = StorageRegistry(nvm=nvm)
        registry.install("loc", b"payload", 3, name="app", runtime="wasm")

        restored = StorageRegistry(nvm=nvm)
        restored.restore()
        assert restored.slots["loc"].runtime == "wasm"

    def test_pre_runtime_slot_record_restores_as_rbpf(self):
        """Flash written by the seed had no 'runtime' key; restoring it
        must yield an rBPF slot, not a KeyError."""
        from repro.suit.storage import NVM_SLOT_PREFIX

        nvm = NvmStore()
        nvm.write(NVM_SLOT_PREFIX + "loc", cbor.encode({
            "location": "loc", "image": b"img", "sequence": 2,
            "installs": 1, "name": "app",
        }))
        registry = StorageRegistry(nvm=nvm)
        registry.restore()
        assert registry.slots["loc"].runtime == "rbpf"


class TestWasmImageOta:
    def test_wasm_update_attaches_and_runs(self, kernel, engine):
        repo, worker = make_rig(kernel, engine)
        payload = wasm_payload()
        repo.register_blob("/fw/app", lambda: payload)
        result = run_update(kernel, worker,
                            manifest_for(engine, payload, "wasm"))
        assert result.ok, result.message
        container = engine.hook(FC_HOOK_TIMER).containers[0]
        assert container.program.runtime == "wasm"
        assert engine.execute(container).value == 42

    def test_script_update_attaches_and_runs(self, kernel, engine):
        repo, worker = make_rig(kernel, engine)
        payload = SCRIPT_SEVEN.encode()
        repo.register_blob("/fw/app", lambda: payload)
        result = run_update(kernel, worker,
                            manifest_for(engine, payload, "script"))
        assert result.ok, result.message
        container = engine.hook(FC_HOOK_TIMER).containers[0]
        assert container.program.runtime == "script"
        assert engine.execute(container).value == 7

    def test_runtime_mismatch_rejected_cleanly(self):
        """A wasm payload announced as rBPF must be refused at decode
        (REJECTED), leaving the hook empty — never crash the worker."""
        kernel = Kernel()
        engine = HostingEngine(kernel)
        repo, worker = make_rig(kernel, engine)
        payload = wasm_payload()
        repo.register_blob("/fw/app", lambda: payload)
        result = run_update(kernel, worker,
                            manifest_for(engine, payload, "rbpf"))
        assert result.status is UpdateStatus.REJECTED
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_unknown_runtime_rejected_cleanly(self):
        kernel = Kernel()
        engine = HostingEngine(kernel)
        repo, worker = make_rig(kernel, engine)
        payload = SCRIPT_SEVEN.encode()
        repo.register_blob("/fw/app", lambda: payload)
        result = run_update(kernel, worker,
                            manifest_for(engine, payload, "lua"))
        assert result.status is UpdateStatus.REJECTED
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_wasm_replaces_rbpf_on_the_same_hook(self, kernel, engine):
        from repro.vm import assemble

        repo, worker = make_rig(kernel, engine)
        v1 = assemble("mov r0, 1\n    exit").to_bytes()
        repo.register_blob("/fw/v1", lambda: v1)
        assert run_update(kernel, worker, manifest_for(
            engine, v1, "rbpf", seq=1, uri="/fw/v1")).ok
        v2 = wasm_payload()
        repo.register_blob("/fw/v2", lambda: v2)
        assert run_update(kernel, worker, manifest_for(
            engine, v2, "wasm", seq=2, uri="/fw/v2")).ok
        container = engine.hook(FC_HOOK_TIMER).containers[0]
        assert container.program.runtime == "wasm"
        assert engine.execute(container).value == 42

    def test_reboot_reactivates_wasm_from_flash(self):
        kernel = Kernel()
        engine = HostingEngine(kernel)
        nvm = kernel.board.nvm(kernel)
        repo, worker = make_rig(kernel, engine, nvm=nvm)
        payload = wasm_payload()
        repo.register_blob("/fw/app", lambda: payload)
        assert run_update(kernel, worker,
                          manifest_for(engine, payload, "wasm")).ok

        kernel.power_fail()
        reborn = Kernel(kernel.board, clock=kernel.clock)
        nvm.bind(reborn)
        engine2 = HostingEngine(reborn)
        _repo2, worker2 = make_rig(reborn, engine2, nvm=nvm)
        recovered = worker2.recover()
        assert [r.ok for r in recovered] == [True]
        container = engine2.hook(FC_HOOK_TIMER).containers[0]
        assert container.program.runtime == "wasm"
        assert engine2.execute(container).value == 42
