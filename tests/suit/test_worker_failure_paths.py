"""Failure paths shared by both update workers (image and spec flavour).

The spec worker reuses the image worker's authentication, anti-rollback,
storage-budget and block-transfer pipeline; these tests drive the failure
modes of that shared machinery through *both* flavours: truncated block
transfers, payloads swapped mid-fetch, repositories that lie about the
size, and devices whose storage budget is exhausted.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_SCHED, FC_HOOK_TIMER
from repro.deploy import AttachmentSpec, DeploymentSpec, ImageSpec
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.suit import (
    SpecUpdateWorker,
    SuitEnvelope,
    SuitManifest,
    SuitUpdateWorker,
    UpdateStatus,
    ed25519,
    payload_digest,
    sign_spec,
)
from repro.vm import assemble

SEED = bytes(range(32))
PUBLIC = ed25519.public_key(SEED)


def make_rig(kernel, engine, worker_class, **worker_kwargs):
    link = Link(kernel, loss=0.0, seed=21)
    dev = link.attach(Interface("dev"))
    host = link.attach(Interface("host"))
    repo = CoapServer(kernel, UdpStack(host).socket(5683), threaded=False)
    client = CoapClient(kernel, UdpStack(dev).socket(40000))
    worker = worker_class(engine, client, trust_anchor=PUBLIC,
                          repo_addr="host", **worker_kwargs)
    return repo, worker


def image_manifest(engine, payload, seq=1, hook=FC_HOOK_TIMER,
                   uri="/fw/app", size=None):
    return SuitManifest(
        sequence_number=seq,
        storage_location=str(engine.hook(hook).uuid),
        digest=payload_digest(payload),
        size=size if size is not None else len(payload),
        uri=uri,
    )


def spec_bytes(source="mov r0, 7\n    exit", name="ota"):
    spec = DeploymentSpec(
        name=name,
        tenants=("alice",),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_TIMER,
                                    tenant="alice", name="app"),),
    )
    return spec


def run_update(kernel, worker, envelope_bytes):
    worker.trigger(envelope_bytes)
    kernel.run(until_us=kernel.now_us + 400_000_000)
    return worker.results[-1]


class TestTruncatedTransfer:
    """The repository serves fewer bytes than the manifest promised."""

    def test_image_worker_detects_truncated_payload(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker)
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        manifest = image_manifest(engine, payload)
        repo.register_blob(manifest.uri, lambda: payload[:-4])  # truncated
        result = run_update(kernel, worker,
                            SuitEnvelope.create(manifest, SEED).encode())
        assert result.status is UpdateStatus.DIGEST_MISMATCH
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_spec_worker_detects_truncated_payload(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SpecUpdateWorker)
        envelope, payload = sign_spec(spec_bytes(), 1, "/specs/dev", SEED)
        repo.register_blob("/specs/dev", lambda: payload[:-7])
        result = run_update(kernel, worker, envelope)
        assert result.status is UpdateStatus.DIGEST_MISMATCH
        assert not engine.tenants


class TestMidFetchSwap:
    """The payload changes under the device between blocks — the digest
    over the reassembly must catch it (signature mismatch mid-fetch)."""

    def _swapping_blob(self, honest: bytes, evil: bytes):
        served = {"count": 0}

        def get_blob() -> bytes:
            served["count"] += 1
            return honest if served["count"] == 1 else evil

        return get_blob

    def test_image_swapped_between_blocks_rejected(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker)
        # szx=5 blocks carry 512 B: 70 instructions (560 B) need two
        # blocks, and the repo's blob getter runs once per block request.
        source = "\n".join(["mov r0, 1"] * 69 + ["exit"])
        honest = assemble(source).to_bytes()
        evil = assemble("mov r0, 666\n" + source).to_bytes()[:len(honest)]
        assert len(honest) > 512
        manifest = image_manifest(engine, honest)
        repo.register_blob(manifest.uri, self._swapping_blob(honest, evil))
        result = run_update(kernel, worker,
                            SuitEnvelope.create(manifest, SEED).encode())
        assert result.status is UpdateStatus.DIGEST_MISMATCH
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_spec_swapped_between_blocks_rejected(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SpecUpdateWorker)
        big = "\n".join(["mov r0, 1"] * 69 + ["exit"])
        envelope, honest = sign_spec(spec_bytes(big), 1, "/specs/dev", SEED)
        _, evil = sign_spec(spec_bytes("mov r0, 666\n" + big), 1,
                            "/specs/dev", SEED)
        assert len(honest) > 512
        repo.register_blob("/specs/dev",
                           self._swapping_blob(honest, evil[:len(honest)]))
        result = run_update(kernel, worker, envelope)
        assert result.status is UpdateStatus.DIGEST_MISMATCH
        assert not engine.tenants


class TestOversizeTransfer:
    """A repository serving more than the signed size is cut off mid-air
    (the reassembly buffer is bounded by the manifest)."""

    def test_image_worker_aborts_oversize_fetch(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker)
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        manifest = image_manifest(engine, payload, size=8)  # lies: 8 < 16
        repo.register_blob(manifest.uri, lambda: payload + b"\x00" * 512)
        result = run_update(kernel, worker,
                            SuitEnvelope.create(manifest, SEED).encode())
        assert result.status in (UpdateStatus.FETCH_FAILED,
                                 UpdateStatus.DIGEST_MISMATCH)
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_fetch_error_message_names_the_bound(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker)
        blob = bytes(range(256)) * 4  # 1 KiB served
        digest_source = blob[:100]
        manifest = image_manifest(engine, digest_source, size=100)
        repo.register_blob(manifest.uri, lambda: blob)
        result = run_update(kernel, worker,
                            SuitEnvelope.create(manifest, SEED).encode())
        assert result.status is UpdateStatus.FETCH_FAILED
        assert "exceeds" in result.message


class TestStorageExhaustion:
    """A bounded StorageRegistry refuses new locations before any radio
    budget is spent on the payload."""

    def test_image_worker_rejects_when_slots_full(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker,
                                max_storage_slots=1)
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        first = image_manifest(engine, payload, hook=FC_HOOK_TIMER,
                               uri="/fw/a")
        repo.register_blob("/fw/a", lambda: payload)
        assert run_update(kernel, worker,
                          SuitEnvelope.create(first, SEED).encode()).ok

        frames_before = worker.client.socket.sent
        second = image_manifest(engine, payload, hook=FC_HOOK_SCHED,
                                uri="/fw/b")
        repo.register_blob("/fw/b", lambda: payload)
        result = run_update(kernel, worker,
                            SuitEnvelope.create(second, SEED).encode())
        assert result.status is UpdateStatus.STORAGE_FULL
        # Refused before the fetch: no extra frames on air.
        assert worker.client.socket.sent == frames_before
        assert not engine.hook(FC_HOOK_SCHED).occupied

    def test_update_to_existing_slot_still_works_when_full(self, kernel,
                                                           engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker,
                                max_storage_slots=1)
        v1 = assemble("mov r0, 1\n    exit").to_bytes()
        v2 = assemble("mov r0, 2\n    exit").to_bytes()
        repo.register_blob("/fw/a", lambda: v1)
        assert run_update(
            kernel, worker,
            SuitEnvelope.create(
                image_manifest(engine, v1, seq=1, uri="/fw/a"),
                SEED).encode()).ok
        repo.register_blob("/fw/a", lambda: v2)
        assert run_update(
            kernel, worker,
            SuitEnvelope.create(
                image_manifest(engine, v2, seq=2, uri="/fw/a"),
                SEED).encode()).ok
        container = engine.hook(FC_HOOK_TIMER).containers[0]
        assert engine.execute(container).value == 2

    def test_spec_worker_honours_storage_budget(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SpecUpdateWorker,
                                max_storage_slots=1)
        envelope, payload = sign_spec(spec_bytes(), 1, "/specs/a", SEED,
                                      slot="spec:a")
        repo.register_blob("/specs/a", lambda: payload)
        assert run_update(kernel, worker, envelope).ok

        envelope_b, payload_b = sign_spec(spec_bytes(name="other"), 1,
                                          "/specs/b", SEED, slot="spec:b")
        repo.register_blob("/specs/b", lambda: payload_b)
        result = run_update(kernel, worker, envelope_b)
        assert result.status is UpdateStatus.STORAGE_FULL


class TestReservationRelease:
    """A failed fetch or digest check returns its slot reservation —
    transient failures must not eat the bounded storage budget."""

    def test_failed_fetch_releases_the_reserved_slot(self, kernel, engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker,
                                max_storage_slots=2)
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        repo.register_blob("/fw/a", lambda: payload)
        assert run_update(
            kernel, worker,
            SuitEnvelope.create(
                image_manifest(engine, payload, uri="/fw/a"),
                SEED).encode()).ok

        # /fw/b is never served: the fetch times out.
        ghost = image_manifest(engine, payload, hook=FC_HOOK_SCHED,
                               uri="/fw/not-served")
        result = run_update(kernel, worker,
                            SuitEnvelope.create(ghost, SEED).encode())
        assert result.status is UpdateStatus.FETCH_FAILED
        assert len(worker.storage.slots) == 1  # reservation returned

        # The budget is still usable for a third location.
        repo.register_blob("/fw/c", lambda: payload)
        third = image_manifest(engine, payload, hook=FC_HOOK_SCHED,
                               uri="/fw/c")
        assert run_update(kernel, worker,
                          SuitEnvelope.create(third, SEED).encode()).ok

    def test_digest_mismatch_releases_the_reserved_slot(self, kernel,
                                                        engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker,
                                max_storage_slots=1)
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        manifest = image_manifest(engine, payload)
        repo.register_blob(manifest.uri, lambda: payload[:-4])
        result = run_update(kernel, worker,
                            SuitEnvelope.create(manifest, SEED).encode())
        assert result.status is UpdateStatus.DIGEST_MISMATCH
        assert worker.storage.slots == {}

    def test_failure_on_occupied_slot_keeps_the_old_image(self, kernel,
                                                          engine):
        repo, worker = make_rig(kernel, engine, SuitUpdateWorker,
                                max_storage_slots=1)
        v1 = assemble("mov r0, 1\n    exit").to_bytes()
        repo.register_blob("/fw/a", lambda: v1)
        location = image_manifest(engine, v1, uri="/fw/a").storage_location
        assert run_update(
            kernel, worker,
            SuitEnvelope.create(
                image_manifest(engine, v1, seq=1, uri="/fw/a"),
                SEED).encode()).ok
        # v2 update to the same slot fails its fetch: v1 stays stored.
        v2 = assemble("mov r0, 2\n    exit").to_bytes()
        result = run_update(
            kernel, worker,
            SuitEnvelope.create(
                image_manifest(engine, v2, seq=2, uri="/fw/gone"),
                SEED).encode())
        assert result.status is UpdateStatus.FETCH_FAILED
        assert worker.storage.slot(location).image == v1


class TestRegistryBehaviour:
    def test_peek_never_creates_slots(self):
        from repro.suit import StorageRegistry

        registry = StorageRegistry(max_slots=1)
        assert registry.peek("a") is None
        assert registry.highest_sequence("a") == -1
        assert not registry.slots  # probing costs nothing

    def test_slot_raises_beyond_budget(self):
        from repro.suit import StorageFullError, StorageRegistry

        registry = StorageRegistry(max_slots=2)
        registry.install("a", b"x", 1)
        registry.install("b", b"y", 1)
        with pytest.raises(StorageFullError, match="2/2"):
            registry.slot("c")
        # Existing slots stay reachable.
        assert registry.slot("a").sequence_number == 1
