"""Interrupted block-wise fetches resume from the last persisted block.

The worker checkpoints every received block to NVM
(``suit/fetch/<location>/<num>``) plus a meta record naming the digest
being fetched.  After a power cycle mid-transfer, a fresh trigger for
the *same* payload resumes from the checkpoint — only the missing tail
crosses the radio again.  A checkpoint for a *different* digest is
purged, and a completed install clears the whole checkpoint.
"""

from __future__ import annotations

from repro.core import FC_HOOK_TIMER, HostingEngine
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.rtos import Kernel
from repro.suit import (
    SuitEnvelope,
    SuitManifest,
    SuitUpdateWorker,
    ed25519,
    payload_digest,
)
from repro.suit.worker import FETCH_BLOCK_BYTES, NVM_FETCH_PREFIX
from repro.vm import assemble

SEED = bytes(range(32))
PUBLIC = ed25519.public_key(SEED)

#: 70 instructions = 560 B = two szx=5 blocks; triple it for three+.
MULTIBLOCK_SOURCE = "\n".join(["mov r0, 1"] * 149 + ["exit"])


def make_rig(kernel, engine, nvm, blob_calls):
    link = Link(kernel, loss=0.0, seed=21)
    dev = link.attach(Interface("dev"))
    host = link.attach(Interface("host"))
    repo = CoapServer(kernel, UdpStack(host).socket(5683), threaded=False)
    client = CoapClient(kernel, UdpStack(dev).socket(40000))
    worker = SuitUpdateWorker(engine, client, trust_anchor=PUBLIC,
                              repo_addr="host", nvm=nvm)

    payload = assemble(MULTIBLOCK_SOURCE).to_bytes()

    def get_blob() -> bytes:
        blob_calls["n"] += 1  # one call per block request on the wire
        return payload

    repo.register_blob("/fw/app", get_blob)
    manifest = SuitManifest(
        sequence_number=1,
        storage_location=str(engine.hook(FC_HOOK_TIMER).uuid),
        digest=payload_digest(payload),
        size=len(payload),
        uri="/fw/app",
    )
    return worker, manifest, payload


def crash_mid_fetch(kernel, worker, manifest, nvm, min_blocks=2):
    """Run the update until ``min_blocks`` blocks hit NVM, then cut power."""
    worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
    block_prefix = NVM_FETCH_PREFIX + manifest.storage_location + "/"
    deadline = kernel.now_us + 400_000_000
    while kernel.now_us < deadline:
        kernel.run(until_us=kernel.now_us + 2_000)
        blocks = [k for k in nvm.keys(block_prefix)
                  if not k.endswith("/meta")]
        if len(blocks) >= min_blocks:
            kernel.power_fail()
            return len(blocks)
        if worker.results:
            raise AssertionError("update finished before the crash point")
    raise AssertionError("never reached the crash point")


class TestFetchResume:
    def test_resume_refetches_only_the_missing_tail(self, kernel, engine):
        nvm = kernel.board.nvm(kernel)
        blob_calls = {"n": 0}
        worker, manifest, payload = make_rig(kernel, engine, nvm, blob_calls)
        total_blocks = -(-len(payload) // FETCH_BLOCK_BYTES)
        assert total_blocks >= 3

        checkpointed = crash_mid_fetch(kernel, worker, manifest, nvm,
                                       min_blocks=2)
        calls_first = blob_calls["n"]

        reborn = Kernel(kernel.board, clock=kernel.clock)
        nvm.bind(reborn)
        engine2 = HostingEngine(reborn)
        worker2, manifest2, _ = make_rig(reborn, engine2, nvm, blob_calls)
        worker2.recover()  # nothing installed yet: no-op
        worker2.trigger(SuitEnvelope.create(manifest2, SEED).encode())
        reborn.run(until_us=reborn.now_us + 400_000_000)

        assert worker2.results[-1].ok
        assert engine2.hook(FC_HOOK_TIMER).occupied
        # The resumed fetch served only the blocks the checkpoint was
        # missing — not the whole payload over again.
        calls_second = blob_calls["n"] - calls_first
        assert calls_second <= total_blocks - checkpointed
        assert calls_second < total_blocks

    def test_checkpoint_cleared_after_install(self, kernel, engine):
        nvm = kernel.board.nvm(kernel)
        worker, manifest, _ = make_rig(kernel, engine, nvm, {"n": 0})
        worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
        kernel.run(until_us=kernel.now_us + 400_000_000)
        assert worker.results[-1].ok
        assert nvm.keys(NVM_FETCH_PREFIX) == []

    def test_stale_checkpoint_for_other_digest_is_purged(self, kernel,
                                                         engine):
        nvm = kernel.board.nvm(kernel)
        blob_calls = {"n": 0}
        worker, manifest, payload = make_rig(kernel, engine, nvm, blob_calls)
        # Plant a checkpoint claiming a *different* payload was in
        # flight for this location: it must not poison the fetch.
        from repro.suit import cbor

        location = manifest.storage_location
        nvm.write(NVM_FETCH_PREFIX + location + "/meta",
                  cbor.encode({"digest": b"\x00" * 32}))
        nvm.write(NVM_FETCH_PREFIX + location + "/000000",
                  b"\xff" * FETCH_BLOCK_BYTES)

        worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
        kernel.run(until_us=kernel.now_us + 400_000_000)
        result = worker.results[-1]
        assert result.ok
        assert worker.storage.slot(location).image == payload
