"""Canonical-encoding properties CBOR signatures depend on."""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.suit.cbor import decode, encode


@given(
    entries=st.dictionaries(
        st.one_of(st.integers(-1000, 1000), st.text(max_size=8)),
        st.integers(0, 1 << 32),
        max_size=8,
    ),
    seed=st.integers(0, 1000),
)
def test_map_encoding_is_insertion_order_independent(entries, seed):
    """Signatures over manifests require this: the same logical map must
    encode identically no matter how it was built."""
    items = list(entries.items())
    random.Random(seed).shuffle(items)
    shuffled = dict(items)
    assert encode(shuffled) == encode(entries)


@given(value=st.integers(0, (1 << 64) - 1))
def test_integer_heads_are_minimal(value):
    """Canonical CBOR forbids over-long integer encodings."""
    encoded = encode(value)
    if value < 24:
        assert len(encoded) == 1
    elif value < 256:
        assert len(encoded) == 2
    elif value < 65536:
        assert len(encoded) == 3
    elif value < (1 << 32):
        assert len(encoded) == 5
    else:
        assert len(encoded) == 9


@given(payload=st.binary(max_size=64))
def test_nested_envelope_stability(payload):
    """Encode-decode-encode is a fixpoint (needed for re-serialization of
    received envelopes)."""
    first = encode({"auth": payload, 1: [payload, {"k": 2}]})
    assert encode(decode(first)) == first
