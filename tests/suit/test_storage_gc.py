"""Spec GC: aging out stored images without touching anti-rollback state.

Detached-but-stored payloads pin :attr:`StorageRegistry.ram_bytes`
forever on a bounded device.  ``gc_horizon`` drops the image *bytes* of
slots whose install sequence fell far behind the registry's newest —
but never the slot itself: the anti-rollback sequence survives eviction
(a replayed old manifest is still refused) and the newest sequence's
slot, the live one, is never evicted.
"""

from __future__ import annotations

import pytest

from repro.suit.storage import StorageRegistry


def filled(gc_horizon=None, max_slots=None) -> StorageRegistry:
    registry = StorageRegistry(max_slots=max_slots, gc_horizon=gc_horizon)
    for sequence in range(1, 5):
        registry.install(f"slot{sequence}", b"x" * 100, sequence)
    return registry


class TestManualGc:
    def test_gc_ages_out_far_behind_slots(self):
        registry = filled()
        before = registry.ram_bytes
        evicted = registry.gc(horizon=2)
        assert evicted == ["slot1", "slot2"]
        assert registry.ram_bytes == before - 200
        assert registry.gc_evictions == 2

    def test_gc_preserves_sequences(self):
        """GC frees RAM, never replay protection: the evicted slot's
        sequence stays, so the old manifest is still refused."""
        registry = filled()
        registry.gc(horizon=1)
        for sequence in range(1, 5):
            assert registry.highest_sequence(f"slot{sequence}") == sequence
        assert not registry.peek("slot1").occupied

    def test_gc_never_evicts_the_live_sequence(self):
        registry = filled()
        registry.gc(horizon=1)
        assert registry.peek("slot4").occupied  # newest survives any horizon

    def test_gc_without_horizon_is_a_no_op(self):
        registry = filled()
        assert registry.gc() == []
        assert registry.ram_bytes == 400

    def test_non_positive_horizon_rejected(self):
        registry = filled()
        with pytest.raises(ValueError):
            registry.gc(horizon=0)

    def test_empty_registry_gc(self):
        assert StorageRegistry(gc_horizon=3).gc() == []


class TestAutoGc:
    def test_install_triggers_gc(self):
        registry = StorageRegistry(gc_horizon=2)
        registry.install("a", b"x" * 100, 1)
        registry.install("b", b"x" * 100, 2)
        assert registry.ram_bytes == 200
        registry.install("c", b"x" * 100, 3)  # 1 <= 3 - 2: "a" ages out
        assert not registry.peek("a").occupied
        assert registry.peek("b").occupied and registry.peek("c").occupied
        assert registry.ram_bytes == 200

    def test_reinstall_under_newer_sequence_refills_the_slot(self):
        """An evicted location is not dead — a *newer* manifest for it
        installs normally (only replays are refused, by the worker)."""
        registry = StorageRegistry(gc_horizon=2)
        for sequence, location in enumerate(("a", "b", "c"), start=1):
            registry.install(location, b"x" * 100, sequence)
        assert not registry.peek("a").occupied
        registry.install("a", b"y" * 50, 4)
        assert registry.peek("a").occupied
        assert registry.highest_sequence("a") == 4
        # ...and by then "b" (sequence 2 <= 4 - 2) has aged out instead.
        assert not registry.peek("b").occupied

    def test_gcd_slot_still_counts_against_the_budget(self):
        """Eviction frees RAM, not the slot-count budget: the location
        must survive for anti-rollback, so it still occupies one of
        ``max_slots`` (unlike ``release_if_empty`` after a failed
        fetch, which undoes a reservation that never installed)."""
        registry = StorageRegistry(max_slots=3, gc_horizon=1)
        for sequence, location in enumerate(("a", "b", "c"), start=1):
            registry.install(location, b"x" * 10, sequence)
        from repro.suit.storage import StorageFullError

        with pytest.raises(StorageFullError):
            registry.slot("d")

    def test_worker_wires_the_horizon_through(self):
        from repro.core import HostingEngine
        from repro.rtos import Kernel
        from repro.scenarios import build_spec_ota_rig

        rig = build_spec_ota_rig()
        assert rig.worker.storage.gc_horizon is None  # default: disabled

        from repro.net import CoapClient, Interface, Link, UdpStack
        from repro.suit import SpecUpdateWorker, ed25519

        kernel = Kernel()
        engine = HostingEngine(kernel)
        link = Link(kernel)
        iface = link.attach(Interface("2001:db8::x"))
        client = CoapClient(kernel, UdpStack(iface).socket(49001))
        worker = SpecUpdateWorker(
            engine, client, trust_anchor=ed25519.public_key(bytes(range(32))),
            repo_addr="2001:db8::y", storage_gc_horizon=5,
        )
        assert worker.storage.gc_horizon == 5
