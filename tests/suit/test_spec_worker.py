"""Over-the-air spec reconciliation: the SpecUpdateWorker end to end."""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_TIMER
from repro.deploy import (
    AttachmentSpec,
    DeploymentSpec,
    ImageSpec,
    plan,
)
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.suit import (
    SpecUpdateWorker,
    SuitEnvelope,
    UpdateStatus,
    ed25519,
    make_spec_manifest,
    payload_digest,
    sign_spec,
)
from repro.suit.manifest import KIND_SPEC, SuitManifest
from repro.vm import assemble

SEED = bytes(range(32))
PUBLIC = ed25519.public_key(SEED)
ATTACKER_SEED = bytes(range(100, 132))

RETURN_7 = "mov r0, 7\n    exit"
RETURN_9 = "mov r0, 9\n    exit"


def simple_spec(source: str = RETURN_7, name: str = "ota") -> DeploymentSpec:
    return DeploymentSpec(
        name=name,
        tenants=("alice",),
        images={"app": ImageSpec.from_program(assemble(source, name="app"))},
        attachments=(AttachmentSpec(image="app", hook=FC_HOOK_TIMER,
                                    tenant="alice", name="app"),),
    )


@pytest.fixture
def rig(kernel, engine):
    link = Link(kernel, loss=0.0, seed=3)
    dev = link.attach(Interface("dev"))
    host = link.attach(Interface("host"))
    repo = CoapServer(kernel, UdpStack(host).socket(5683), threaded=False)
    client = CoapClient(kernel, UdpStack(dev).socket(40000))
    worker = SpecUpdateWorker(engine, client, trust_anchor=PUBLIC,
                              repo_addr="host")
    return kernel, engine, repo, worker


def publish(kernel, repo, worker, spec, seq, uri="/specs/dev",
            seed=SEED, slot=None):
    envelope, payload = sign_spec(spec, seq, uri, seed, slot=slot)
    repo.register_blob(uri, lambda: payload)
    worker.trigger(envelope)
    kernel.run(until_us=kernel.now_us + 400_000_000)
    return worker.results[-1]


class TestSpecReconciliation:
    def test_device_converges_on_published_spec(self, rig):
        kernel, engine, repo, worker = rig
        spec = simple_spec()
        result = publish(kernel, repo, worker, spec, 1)
        assert result.ok, result.message
        assert result.applied is not None
        assert len(result.applied.plan.actions) == 2
        assert sorted(engine.tenants) == ["alice"]
        assert engine.hook(FC_HOOK_TIMER).occupied
        assert plan(engine, spec).empty

    def test_republish_is_idempotent(self, rig):
        kernel, engine, repo, worker = rig
        spec = simple_spec()
        assert publish(kernel, repo, worker, spec, 1).ok
        result = publish(kernel, repo, worker, spec, 2)
        assert result.ok
        assert "converged" in result.message
        assert result.applied.plan.empty

    def test_edited_spec_hot_swaps_by_content_hash(self, rig):
        kernel, engine, repo, worker = rig
        assert publish(kernel, repo, worker, simple_spec(RETURN_7), 1).ok
        result = publish(kernel, repo, worker, simple_spec(RETURN_9), 2)
        assert result.ok
        actions = result.applied.plan.actions
        assert [type(a).__name__ for a in actions] == ["Replace"]
        container = engine.hook(FC_HOOK_TIMER).containers[0]
        assert engine.execute(container).value == 9

    def test_sequence_replay_rejected(self, rig):
        kernel, engine, repo, worker = rig
        assert publish(kernel, repo, worker, simple_spec(), 1).ok
        result = publish(kernel, repo, worker, simple_spec(RETURN_9), 1)
        assert result.status is UpdateStatus.SEQUENCE_REPLAY
        # Replayed spec never ran: the device still serves version 1.
        container = engine.hook(FC_HOOK_TIMER).containers[0]
        assert engine.execute(container).value == 7

    def test_forged_spec_rejected(self, rig):
        kernel, engine, repo, worker = rig
        result = publish(kernel, repo, worker, simple_spec(), 1,
                         seed=ATTACKER_SEED)
        assert result.status is UpdateStatus.SIGNATURE_INVALID
        assert not engine.tenants

    def test_image_manifest_refused_by_spec_worker(self, rig):
        kernel, engine, repo, worker = rig
        payload = assemble(RETURN_7).to_bytes()
        manifest = SuitManifest(
            sequence_number=1,
            storage_location=str(engine.hook(FC_HOOK_TIMER).uuid),
            digest=payload_digest(payload),
            size=len(payload),
            uri="/fw/app",
        )
        worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
        kernel.run(until_us=10_000_000)
        result = worker.results[-1]
        assert result.status is UpdateStatus.WRONG_KIND
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_spec_slot_location_enforced(self, rig):
        kernel, engine, repo, worker = rig
        spec = simple_spec()
        result = publish(kernel, repo, worker, spec, 1, slot="not-a-spec-slot")
        assert result.status is UpdateStatus.UNKNOWN_HOOK

    def test_garbage_payload_is_spec_invalid(self, rig):
        """A signed manifest whose (digest-matching) payload is not a
        decodable spec must fail cleanly after the fetch."""
        kernel, engine, repo, worker = rig
        payload = b"\xffnot-cbor-at-all"
        manifest = SuitManifest(
            sequence_number=1,
            storage_location="spec:device",
            digest=payload_digest(payload),
            size=len(payload),
            uri="/specs/garbage",
            kind=KIND_SPEC,
        )
        repo.register_blob("/specs/garbage", lambda: payload)
        worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
        kernel.run(until_us=400_000_000)
        result = worker.results[-1]
        assert result.status is UpdateStatus.SPEC_INVALID
        assert not engine.tenants

    def test_rejected_spec_rolls_back_whole_apply(self, rig):
        """One bad image in an otherwise-good spec: transactional apply
        reverts the good half too, and the device stays on its old state."""
        kernel, engine, repo, worker = rig
        assert publish(kernel, repo, worker, simple_spec(), 1).ok
        bad_spec = DeploymentSpec(
            name="ota",
            tenants=("alice",),
            images={
                "app": ImageSpec.from_program(
                    assemble(RETURN_9, name="app")),
                # Writing r10 is rejected by the pre-flight verifier.
                "bad": ImageSpec.from_program(
                    assemble("mov r10, 1\n    exit", name="bad")),
            },
            attachments=(
                AttachmentSpec(image="app", hook=FC_HOOK_TIMER,
                               tenant="alice", name="app"),
                AttachmentSpec(image="bad", hook=FC_HOOK_TIMER,
                               tenant="alice", name="bad"),
            ),
        )
        result = publish(kernel, repo, worker, bad_spec, 2)
        assert result.status is UpdateStatus.REJECTED
        # The device still runs version 1 of the good slot.
        container = engine.hook(FC_HOOK_TIMER).containers[0]
        assert engine.execute(container).value == 7
        assert plan(engine, simple_spec()).empty

    def test_spec_payload_stored_in_slot(self, rig):
        kernel, engine, repo, worker = rig
        spec = simple_spec()
        manifest, payload = make_spec_manifest(spec, 1, "/specs/dev")
        assert manifest.storage_location == "spec:ota"
        assert publish(kernel, repo, worker, spec, 1,
                       slot="spec:ota").ok
        slot = worker.storage.slot("spec:ota")
        assert slot.image == payload
        assert slot.sequence_number == 1

    def test_spec_cbor_roundtrip(self):
        spec = simple_spec()
        decoded = DeploymentSpec.from_cbor(spec.to_cbor())
        assert decoded.to_json() == spec.to_json()
        assert decoded.images["app"].image_hash \
            == spec.images["app"].image_hash
