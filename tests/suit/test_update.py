"""Manifest model, storage slots, and the device-side update worker —
including every threat-model attack (§3 "Install and update time attacks").
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_SCHED, FC_HOOK_TIMER
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.suit import (
    SuitEnvelope,
    SuitManifest,
    SuitUpdateWorker,
    UpdateStatus,
    ed25519,
    payload_digest,
)
from repro.suit.manifest import ManifestError
from repro.suit.storage import StorageRegistry
from repro.vm import assemble
from repro.workloads import thread_counter_program

SEED = bytes(range(32))
PUBLIC = ed25519.public_key(SEED)
ATTACKER_SEED = bytes(range(100, 132))


class TestManifest:
    def make(self, **overrides) -> SuitManifest:
        payload = b"\x95" + bytes(7)
        defaults = dict(
            sequence_number=3,
            storage_location="uuid-here",
            digest=payload_digest(payload),
            size=len(payload),
            uri="/fw/app",
            name="app",
        )
        defaults.update(overrides)
        return SuitManifest(**defaults)

    def test_cbor_roundtrip(self):
        manifest = self.make()
        assert SuitManifest.from_cbor(manifest.to_cbor()) == manifest

    def test_matches_payload(self):
        payload = b"\x95" + bytes(7)
        assert self.make().matches_payload(payload)
        assert not self.make().matches_payload(payload + b"x")
        assert not self.make().matches_payload(b"\x00" * 8)

    def test_bad_version_rejected(self):
        raw = self.make().to_cbor()
        from repro.suit import cbor

        decoded = cbor.decode(raw)
        decoded[1] = 99
        with pytest.raises(ManifestError, match="version"):
            SuitManifest.from_cbor(cbor.encode(decoded))

    def test_missing_key_rejected(self):
        from repro.suit import cbor

        with pytest.raises(ManifestError):
            SuitManifest.from_cbor(cbor.encode({1: 1}))

    def test_envelope_sign_verify(self):
        envelope = SuitEnvelope.create(self.make(), SEED)
        assert envelope.verify(PUBLIC)
        assert envelope.manifest() == self.make()

    def test_envelope_decode_roundtrip(self):
        envelope = SuitEnvelope.create(self.make(), SEED)
        decoded = SuitEnvelope.decode(envelope.encode())
        assert decoded.verify(PUBLIC)


class TestStorage:
    def test_slots_created_on_demand(self):
        registry = StorageRegistry()
        assert not registry.slot("loc").occupied
        assert registry.highest_sequence("loc") == -1

    def test_install_tracks_sequence(self):
        registry = StorageRegistry()
        registry.install("loc", b"img", 5)
        assert registry.slot("loc").occupied
        assert registry.highest_sequence("loc") == 5
        assert registry.ram_bytes == 3


@pytest.fixture
def deployment(kernel, engine):
    """Device + firmware-repo host wired over a link, worker ready."""
    link = Link(kernel, loss=0.0, seed=5)
    dev_if = link.attach(Interface("dev"))
    host_if = link.attach(Interface("host"))
    dev_udp, host_udp = UdpStack(dev_if), UdpStack(host_if)
    repo = CoapServer(kernel, host_udp.socket(5683), threaded=False)
    client = CoapClient(kernel, dev_udp.socket(40000))
    worker = SuitUpdateWorker(engine, client, trust_anchor=PUBLIC,
                              repo_addr="host")
    return kernel, engine, repo, worker


def deploy(kernel, repo, worker, payload: bytes, manifest: SuitManifest,
           seed: bytes = SEED):
    repo.register_blob(manifest.uri, lambda: payload)
    worker.trigger(SuitEnvelope.create(manifest, seed).encode())
    kernel.run(until_us=120_000_000)
    return worker.results[-1]


def manifest_for(engine, payload: bytes, seq: int = 1,
                 hook: str = FC_HOOK_TIMER, uri: str = "/fw/app",
                 name: str = "app") -> SuitManifest:
    return SuitManifest(
        sequence_number=seq,
        storage_location=str(engine.hook(hook).uuid),
        digest=payload_digest(payload),
        size=len(payload),
        uri=uri,
        name=name,
    )


class TestWorker:
    def test_successful_update_attaches(self, deployment):
        kernel, engine, repo, worker = deployment
        payload = thread_counter_program().to_bytes()
        result = deploy(kernel, repo, worker, payload,
                        manifest_for(engine, payload, hook=FC_HOOK_SCHED))
        assert result.ok, result.message
        assert engine.hook(FC_HOOK_SCHED).occupied
        assert worker.storage.slot(
            str(engine.hook(FC_HOOK_SCHED).uuid)).sequence_number == 1

    def test_update_replaces_previous_version(self, deployment):
        kernel, engine, repo, worker = deployment
        v1 = assemble("mov r0, 1\n    exit").to_bytes()
        v2 = assemble("mov r0, 2\n    exit").to_bytes()
        assert deploy(kernel, repo, worker, v1,
                      manifest_for(engine, v1, seq=1, uri="/fw/v1")).ok
        assert deploy(kernel, repo, worker, v2,
                      manifest_for(engine, v2, seq=2, uri="/fw/v2")).ok
        container = engine.hook(FC_HOOK_TIMER).containers[0]
        assert engine.execute(container).value == 2

    def test_forged_signature_rejected(self, deployment):
        kernel, engine, repo, worker = deployment
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        result = deploy(kernel, repo, worker, payload,
                        manifest_for(engine, payload), seed=ATTACKER_SEED)
        assert result.status is UpdateStatus.SIGNATURE_INVALID
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_sequence_replay_rejected(self, deployment):
        kernel, engine, repo, worker = deployment
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        manifest = manifest_for(engine, payload)
        assert deploy(kernel, repo, worker, payload, manifest).ok
        result = deploy(kernel, repo, worker, payload, manifest)
        assert result.status is UpdateStatus.SEQUENCE_REPLAY

    def test_payload_swap_detected_by_digest(self, deployment):
        """Man-in-the-middle swaps the payload on the repo after signing."""
        kernel, engine, repo, worker = deployment
        good = assemble("mov r0, 1\n    exit").to_bytes()
        evil = assemble("mov r0, 666\n    exit").to_bytes()
        manifest = manifest_for(engine, good)
        repo.register_blob(manifest.uri, lambda: evil)  # the swap
        worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
        kernel.run(until_us=120_000_000)
        assert worker.results[-1].status is UpdateStatus.DIGEST_MISMATCH
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_unknown_storage_location_rejected(self, deployment):
        kernel, engine, repo, worker = deployment
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        manifest = SuitManifest(
            sequence_number=1,
            storage_location="11111111-2222-3333-4444-555555555555",
            digest=payload_digest(payload), size=len(payload), uri="/fw/app",
        )
        result = deploy(kernel, repo, worker, payload, manifest)
        assert result.status is UpdateStatus.UNKNOWN_HOOK

    def test_malformed_envelope_rejected(self, deployment):
        kernel, _engine, _repo, worker = deployment
        worker.trigger(b"\x00garbage")
        kernel.run(until_us=1_000_000)
        assert worker.results[-1].status is UpdateStatus.MALFORMED

    def test_unverifiable_bytecode_rejected_preflight(self, deployment):
        """Signed, authentic, but fails the pre-flight check: REJECTED."""
        kernel, engine, repo, worker = deployment
        payload = b"\xff" * 16  # invalid opcodes
        result = deploy(kernel, repo, worker, payload,
                        manifest_for(engine, payload))
        assert result.status is UpdateStatus.REJECTED
        assert not engine.hook(FC_HOOK_TIMER).occupied

    def test_fetch_failure_reported(self, deployment):
        kernel, engine, _repo, worker = deployment
        payload = assemble("mov r0, 1\n    exit").to_bytes()
        manifest = manifest_for(engine, payload, uri="/fw/not-served")
        worker.trigger(SuitEnvelope.create(manifest, SEED).encode())
        kernel.run(until_us=400_000_000)
        assert worker.results[-1].status is UpdateStatus.FETCH_FAILED

    def test_update_survives_lossy_link(self, kernel, engine):
        link = Link(kernel, loss=0.25, seed=11)
        dev_if = link.attach(Interface("dev"))
        host_if = link.attach(Interface("host"))
        dev_udp, host_udp = UdpStack(dev_if), UdpStack(host_if)
        repo = CoapServer(kernel, host_udp.socket(5683), threaded=False)
        client = CoapClient(kernel, dev_udp.socket(40000))
        worker = SuitUpdateWorker(engine, client, trust_anchor=PUBLIC,
                                  repo_addr="host")
        payload = thread_counter_program().to_bytes()
        result = deploy(kernel, repo, worker, payload,
                        manifest_for(engine, payload))
        assert result.ok, result.message
