"""Ed25519 (RFC 8032 vectors) and COSE_Sign1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.suit import ed25519
from repro.suit.cose import CoseError, CoseSign1

# RFC 8032 §7.1 test vectors (seed, public key, message, signature).
RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


class TestRFC8032:
    @pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex",
                             RFC8032_VECTORS, ids=["empty", "1byte", "2bytes"])
    def test_public_key_derivation(self, seed_hex, pub_hex, msg_hex, sig_hex):
        assert ed25519.public_key(bytes.fromhex(seed_hex)).hex() == pub_hex

    @pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex",
                             RFC8032_VECTORS, ids=["empty", "1byte", "2bytes"])
    def test_signature_matches_vector(self, seed_hex, pub_hex, msg_hex, sig_hex):
        signature = ed25519.sign(bytes.fromhex(msg_hex),
                                 bytes.fromhex(seed_hex))
        assert signature.hex() == sig_hex

    @pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex",
                             RFC8032_VECTORS, ids=["empty", "1byte", "2bytes"])
    def test_vector_verifies(self, seed_hex, pub_hex, msg_hex, sig_hex):
        assert ed25519.verify(bytes.fromhex(msg_hex),
                              bytes.fromhex(sig_hex),
                              bytes.fromhex(pub_hex))


class TestSignVerify:
    SEED = bytes(range(32))

    def test_sign_verify_roundtrip(self):
        public = ed25519.public_key(self.SEED)
        signature = ed25519.sign(b"femto-containers", self.SEED)
        assert ed25519.verify(b"femto-containers", signature, public)

    def test_tampered_message_fails(self):
        public = ed25519.public_key(self.SEED)
        signature = ed25519.sign(b"original", self.SEED)
        assert not ed25519.verify(b"tampered", signature, public)

    def test_tampered_signature_fails(self):
        public = ed25519.public_key(self.SEED)
        signature = bytearray(ed25519.sign(b"msg", self.SEED))
        signature[0] ^= 1
        assert not ed25519.verify(b"msg", bytes(signature), public)

    def test_wrong_key_fails(self):
        other = ed25519.public_key(bytes(range(1, 33)))
        signature = ed25519.sign(b"msg", self.SEED)
        assert not ed25519.verify(b"msg", signature, other)

    def test_malformed_inputs_return_false(self):
        public = ed25519.public_key(self.SEED)
        assert not ed25519.verify(b"m", b"short", public)
        assert not ed25519.verify(b"m", bytes(64), b"badkey")
        # s >= L is rejected.
        bad = ed25519.sign(b"m", self.SEED)[:32] + b"\xff" * 32
        assert not ed25519.verify(b"m", bad, public)

    def test_bad_seed_length_raises(self):
        with pytest.raises(ValueError):
            ed25519.sign(b"m", b"short")
        with pytest.raises(ValueError):
            ed25519.public_key(b"short")

    @settings(max_examples=10, deadline=None)
    @given(message=st.binary(max_size=64), seed=st.binary(min_size=32, max_size=32))
    def test_roundtrip_property(self, message, seed):
        assert ed25519.verify(message, ed25519.sign(message, seed),
                              ed25519.public_key(seed))


class TestCose:
    SEED = bytes(range(32))

    def test_sign1_roundtrip(self):
        public = ed25519.public_key(self.SEED)
        signed = CoseSign1.sign(b"payload", self.SEED)
        assert signed.verify(public)
        decoded = CoseSign1.decode(signed.encode())
        assert decoded.payload == b"payload"
        assert decoded.verify(public)

    def test_payload_tamper_detected(self):
        public = ed25519.public_key(self.SEED)
        signed = CoseSign1.sign(b"payload", self.SEED)
        forged = CoseSign1(protected=signed.protected, payload=b"other",
                           signature=signed.signature)
        assert not forged.verify(public)

    def test_wrong_algorithm_header_rejected(self):
        from repro.suit import cbor

        public = ed25519.public_key(self.SEED)
        signed = CoseSign1.sign(b"payload", self.SEED)
        hacked = CoseSign1(protected=cbor.encode({1: -7}),  # ES256, not EdDSA
                           payload=signed.payload,
                           signature=signed.signature)
        assert not hacked.verify(public)

    def test_malformed_structures_rejected(self):
        from repro.suit import cbor

        with pytest.raises(CoseError):
            CoseSign1.decode(cbor.encode([1, 2, 3]))
        with pytest.raises(CoseError):
            CoseSign1.decode(cbor.encode(cbor.Tag(99, [b"", {}, b"", b""])))
        with pytest.raises(CoseError):
            CoseSign1.decode(cbor.encode(cbor.Tag(18, ["not-bytes", {}, b"", b""])))
