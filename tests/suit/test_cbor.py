"""CBOR codec: RFC 8949 appendix-A vectors plus round-trip properties."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st
from hypothesis.strategies import recursive

from repro.suit.cbor import CBORError, Tag, decode, encode

# (value, hex encoding) pairs straight from RFC 8949 Appendix A.
RFC8949_VECTORS = [
    (0, "00"),
    (1, "01"),
    (10, "0a"),
    (23, "17"),
    (24, "1818"),
    (25, "1819"),
    (100, "1864"),
    (1000, "1903e8"),
    (1000000, "1a000f4240"),
    (1000000000000, "1b000000e8d4a51000"),
    (18446744073709551615, "1bffffffffffffffff"),
    (-1, "20"),
    (-10, "29"),
    (-100, "3863"),
    (-1000, "3903e7"),
    (False, "f4"),
    (True, "f5"),
    (None, "f6"),
    (b"", "40"),
    (bytes.fromhex("01020304"), "4401020304"),
    ("", "60"),
    ("a", "6161"),
    ("IETF", "6449455446"),
    ("ü", "62c3bc"),
    ("水", "63e6b0b4"),
    ([], "80"),
    ([1, 2, 3], "83010203"),
    ([1, [2, 3], [4, 5]], "8301820203820405"),
    ({}, "a0"),
    ({1: 2, 3: 4}, "a201020304"),
    ({"a": 1, "b": [2, 3]}, "a26161016162820203"),
    (Tag(1, 1363896240), "c11a514b67b0"),
    (1.1, "fb3ff199999999999a"),
]


class TestRFCVectors:
    @pytest.mark.parametrize("value,expected_hex", RFC8949_VECTORS,
                             ids=[h for _v, h in RFC8949_VECTORS])
    def test_encode_matches_rfc(self, value, expected_hex):
        assert encode(value).hex() == expected_hex

    @pytest.mark.parametrize("value,encoded_hex", RFC8949_VECTORS,
                             ids=[h for _v, h in RFC8949_VECTORS])
    def test_decode_matches_rfc(self, value, encoded_hex):
        assert decode(bytes.fromhex(encoded_hex)) == value

    def test_decode_float16(self):
        assert decode(bytes.fromhex("f93c00")) == 1.0
        assert decode(bytes.fromhex("f97bff")) == 65504.0

    def test_decode_float32(self):
        assert decode(bytes.fromhex("fa47c35000")) == 100000.0

    def test_decode_infinity_and_nan(self):
        assert decode(bytes.fromhex("f97c00")) == math.inf
        assert math.isnan(decode(bytes.fromhex("f97e00")))


class TestCanonical:
    def test_map_keys_sorted_bytewise(self):
        # Canonical order sorts by encoded key bytes: 10 < 100 < "z".
        encoded = encode({"z": 0, 100: 0, 10: 0})
        assert encoded.hex().startswith("a30a")

    def test_shortest_int_heads(self):
        assert len(encode(23)) == 1
        assert len(encode(24)) == 2
        assert len(encode(256)) == 3


class TestErrors:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(CBORError, match="trailing"):
            decode(encode(1) + b"\x00")

    def test_truncated_input_rejected(self):
        with pytest.raises(CBORError):
            decode(bytes.fromhex("1903"))

    def test_empty_input_rejected(self):
        with pytest.raises(CBORError):
            decode(b"")

    def test_indefinite_length_unsupported(self):
        with pytest.raises(CBORError):
            decode(bytes.fromhex("9fff"))

    def test_unencodable_type_rejected(self):
        with pytest.raises(CBORError):
            encode(object())

    @given(raw=st.binary(max_size=64))
    def test_decoder_never_crashes(self, raw):
        try:
            decode(raw)
        except CBORError:
            pass
        except UnicodeDecodeError:
            pass  # invalid UTF-8 inside a text string


_scalars = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    st.booleans(),
    st.none(),
    st.binary(max_size=24),
    st.text(max_size=24),
)
_values = recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.one_of(st.integers(-100, 100), st.text(max_size=8)),
                        children, max_size=4),
    ),
    max_leaves=16,
)


@given(value=_values)
def test_roundtrip_property(value):
    assert decode(encode(value)) == value


@given(value=_values)
def test_encoding_deterministic(value):
    assert encode(value) == encode(value)
