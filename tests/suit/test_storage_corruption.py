"""Corruption-safe restore: torn/flipped flash records degrade gracefully.

:meth:`StorageRegistry.restore` must never raise on a corrupt record:
a torn slot record repairs from its shadow, an unrecoverable one is
dropped (the image is re-fetchable) — but the anti-rollback sequence
is written **twice** (redundant ``suit/seq/`` record), so no single
corruption can regress a device's replay floor.
"""

from __future__ import annotations

from repro.rtos import NvmStore
from repro.rtos.nvm import TornWrite
from repro.suit.storage import (
    NVM_SEQ_PREFIX,
    NVM_SLOT_PREFIX,
    StorageRegistry,
    StorageSlot,
)

import pytest


def installed_registry(nvm: NvmStore) -> StorageRegistry:
    registry = StorageRegistry(nvm=nvm)
    registry.install("loc-a", b"image-a", 5, name="app-a")
    registry.install("loc-b", b"image-b", 6, name="app-b")
    return registry


class TestRestoreRepairs:
    def test_commit_tear_of_slot_record_repairs_on_restore(self):
        nvm = NvmStore()
        registry = installed_registry(nvm)
        nvm.tear_next_write(phase="commit", match=NVM_SLOT_PREFIX)
        with pytest.raises(TornWrite):
            registry.install("loc-a", b"image-a2", 7, name="app-a")
        reborn = StorageRegistry(nvm=nvm)
        restored = reborn.restore()
        # The shadow held the complete new record: repaired, not lost.
        assert sorted(s.location for s in restored) == ["loc-a", "loc-b"]
        assert reborn.slots["loc-a"].image == b"image-a2"
        assert reborn.highest_sequence("loc-a") == 7
        assert reborn.corrupt_dropped == 0
        assert nvm.repairs >= 1

    def test_shadow_tear_keeps_old_slot_record(self):
        nvm = NvmStore()
        registry = installed_registry(nvm)
        nvm.tear_next_write(phase="shadow", match=NVM_SLOT_PREFIX)
        with pytest.raises(TornWrite):
            registry.install("loc-a", b"image-a2", 7, name="app-a")
        reborn = StorageRegistry(nvm=nvm)
        reborn.restore()
        # Phase 1 died before the committed record was touched: the
        # device still runs the old image under the old sequence.
        assert reborn.slots["loc-a"].image == b"image-a"
        assert reborn.highest_sequence("loc-a") == 5


class TestRestoreDegrades:
    def test_lost_slot_record_dropped_but_floor_survives(self):
        nvm = NvmStore()
        installed_registry(nvm)
        # A bit flip in the (single-copy) slot record loses it outright.
        assert nvm.bit_flip(NVM_SLOT_PREFIX + "loc-a")
        reborn = StorageRegistry(nvm=nvm)
        restored = reborn.restore()
        assert [s.location for s in restored] == ["loc-b"]
        assert reborn.corrupt_dropped == 1
        # The redundant suit/seq/ record resurrected a skeleton slot:
        # the image is gone (re-fetchable), the replay floor is not.
        skeleton = reborn.peek("loc-a")
        assert skeleton is not None and not skeleton.occupied
        assert reborn.highest_sequence("loc-a") == 5

    def test_flipped_seq_record_repaired_by_standing_replica(self):
        nvm = NvmStore()
        installed_registry(nvm)
        # The seq record is redundant: its shadow is a standing replica.
        assert nvm.bit_flip(NVM_SEQ_PREFIX + "loc-b")
        reborn = StorageRegistry(nvm=nvm)
        reborn.restore()
        assert reborn.highest_sequence("loc-b") == 6

    def test_seq_record_never_lowers_a_healthy_slot(self):
        nvm = NvmStore()
        registry = StorageRegistry(nvm=nvm)
        registry.install("loc", b"v1", 3)
        # Stale seq record (say, from a torn multi-record update) must
        # not drop the floor below what the slot record carries.
        nvm.write(NVM_SEQ_PREFIX + "loc",
                  _encode({"location": "loc", "sequence": 1}),
                  redundant=True)
        reborn = StorageRegistry(nvm=nvm)
        reborn.restore()
        assert reborn.highest_sequence("loc") == 3

    def test_restore_skips_garbage_seq_records(self):
        nvm = NvmStore()
        installed_registry(nvm)
        nvm.write(NVM_SEQ_PREFIX + "junk", b"\xff\xff not cbor")
        reborn = StorageRegistry(nvm=nvm)
        reborn.restore()  # must not raise
        assert reborn.peek("junk") is None


class TestReleaseIdempotence:
    def test_release_if_empty_idempotent_and_unknown_safe(self):
        registry = StorageRegistry()
        registry.slot("fresh")  # virgin reservation
        registry.release_if_empty("fresh")
        assert registry.peek("fresh") is None
        registry.release_if_empty("fresh")   # already released: no-op
        registry.release_if_empty("never-existed")  # unknown: no-op

    def test_release_if_empty_keeps_gc_evicted_floor(self):
        registry = StorageRegistry()
        registry.slots["old"] = StorageSlot(location="old",
                                            sequence_number=4)
        for _ in range(2):  # idempotent on the GC'd slot too
            registry.release_if_empty("old")
            assert registry.highest_sequence("old") == 4


def _encode(record: dict) -> bytes:
    from repro.suit import cbor

    return cbor.encode(record)
