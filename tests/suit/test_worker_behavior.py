"""Update-worker behaviour details: backlog, ordering, crypto cost."""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_TIMER, FC_HOOK_SENSOR_READ
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.suit import (
    SuitEnvelope,
    SuitManifest,
    SuitUpdateWorker,
    UpdateStatus,
    ed25519,
    payload_digest,
)
from repro.suit.worker import SIG_VERIFY_CYCLES
from repro.vm import assemble

SEED = bytes(range(32))
PUBLIC = ed25519.public_key(SEED)


@pytest.fixture
def rig(kernel, engine):
    link = Link(kernel, loss=0.0, seed=9)
    dev = link.attach(Interface("dev"))
    host = link.attach(Interface("host"))
    repo = CoapServer(kernel, UdpStack(host).socket(5683), threaded=False)
    client = CoapClient(kernel, UdpStack(dev).socket(40000))
    worker = SuitUpdateWorker(engine, client, trust_anchor=PUBLIC,
                              repo_addr="host")
    return kernel, engine, repo, worker


def manifest_for(engine, payload, seq, hook, uri):
    return SuitManifest(
        sequence_number=seq,
        storage_location=str(engine.hook(hook).uuid),
        digest=payload_digest(payload),
        size=len(payload),
        uri=uri,
        name=uri.rsplit("/", 1)[-1],
    )


class TestBacklog:
    def test_triggers_arriving_mid_fetch_are_queued_not_lost(self, rig):
        """A second trigger lands while the first fetch is in flight; both
        updates must complete, in order."""
        kernel, engine, repo, worker = rig
        app_a = assemble("mov r0, 1\n    exit").to_bytes()
        app_b = assemble("mov r0, 2\n    exit").to_bytes()
        repo.register_blob("/fw/a", lambda: app_a)
        repo.register_blob("/fw/b", lambda: app_b)
        env_a = SuitEnvelope.create(
            manifest_for(engine, app_a, 1, FC_HOOK_TIMER, "/fw/a"), SEED)
        env_b = SuitEnvelope.create(
            manifest_for(engine, app_b, 1, FC_HOOK_SENSOR_READ, "/fw/b"), SEED)
        # Both triggers posted back to back: the second arrives while the
        # worker is still verifying/fetching the first.
        worker.trigger(env_a.encode())
        worker.trigger(env_b.encode())
        kernel.run(until_us=400_000_000)
        assert [r.status for r in worker.results] == [UpdateStatus.OK,
                                                      UpdateStatus.OK]
        assert engine.hook(FC_HOOK_TIMER).occupied
        assert engine.hook(FC_HOOK_SENSOR_READ).occupied

    def test_per_hook_sequence_numbers_independent(self, rig):
        kernel, engine, repo, worker = rig
        app = assemble("mov r0, 1\n    exit").to_bytes()
        repo.register_blob("/fw/x", lambda: app)
        for hook in (FC_HOOK_TIMER, FC_HOOK_SENSOR_READ):
            worker.trigger(SuitEnvelope.create(
                manifest_for(engine, app, 1, hook, "/fw/x"), SEED).encode())
        kernel.run(until_us=400_000_000)
        # Same sequence number on *different* storage locations is fine.
        assert all(r.ok for r in worker.results)


class TestCosts:
    def test_signature_verification_cost_charged(self, rig):
        kernel, engine, repo, worker = rig
        app = assemble("mov r0, 1\n    exit").to_bytes()
        repo.register_blob("/fw/x", lambda: app)
        worker.trigger(SuitEnvelope.create(
            manifest_for(engine, app, 1, FC_HOOK_TIMER, "/fw/x"),
            SEED).encode())
        kernel.run(until_us=400_000_000)
        result = worker.results[-1]
        # The verify alone is ~91 ms at 64 MHz; total must exceed it.
        assert result.duration_us >= SIG_VERIFY_CYCLES / 64

    def test_rejected_update_cheaper_than_accepted(self, rig):
        """A replayed manifest never fetches the payload: less airtime."""
        kernel, engine, repo, worker = rig
        app = assemble("mov r0, 1\n    exit").to_bytes()
        repo.register_blob("/fw/x", lambda: app)
        envelope = SuitEnvelope.create(
            manifest_for(engine, app, 1, FC_HOOK_TIMER, "/fw/x"), SEED)
        worker.trigger(envelope.encode())
        kernel.run(until_us=400_000_000)
        frames_after_ok = worker.client.socket.sent
        worker.trigger(envelope.encode())  # replay
        kernel.run(until_us=800_000_000)
        assert worker.results[-1].status is UpdateStatus.SEQUENCE_REPLAY
        assert worker.client.socket.sent == frames_after_ok  # no fetch


class TestStrayEvents:
    """The fetch wait-loop must tolerate event kinds it does not know.

    Regression: the loop used to treat *any* non-trigger event as the
    fetch outcome, so a stray event posted to the worker's queue — e.g.
    by a future subsystem sharing it — corrupted the pipeline.  Unknown
    kinds are now skipped; only ``payload``/``fetch-error`` end the wait.
    """

    def test_stray_events_mid_fetch_are_ignored(self, rig):
        kernel, engine, repo, worker = rig
        app = assemble("mov r0, 7\n    exit").to_bytes()
        repo.register_blob("/fw/x", lambda: app)

        def inject(step):
            # "reserved" is crossed right before the fetch wait begins,
            # so these land in the queue ahead of the payload event.
            if step == "reserved":
                worker._queue.post_new("telemetry", b"\x01")
                worker._queue.post_new("battery-low", b"")

        worker.on_step = inject
        worker.trigger(SuitEnvelope.create(
            manifest_for(engine, app, 1, FC_HOOK_TIMER, "/fw/x"),
            SEED).encode())
        kernel.run(until_us=400_000_000)
        assert [r.status for r in worker.results] == [UpdateStatus.OK]
        assert engine.hook(FC_HOOK_TIMER).occupied

    def test_stray_event_not_misread_as_fetch_error(self, rig):
        kernel, engine, repo, worker = rig
        app = assemble("mov r0, 7\n    exit").to_bytes()
        repo.register_blob("/fw/x", lambda: app)
        worker.on_step = lambda step: (
            worker._queue.post_new("fetch-errorish", b"not an error")
            if step == "reserved" else None)
        worker.trigger(SuitEnvelope.create(
            manifest_for(engine, app, 1, FC_HOOK_TIMER, "/fw/x"),
            SEED).encode())
        kernel.run(until_us=400_000_000)
        assert worker.results[-1].ok

    def test_stray_events_while_idle_do_not_wedge_the_worker(self, rig):
        kernel, engine, repo, worker = rig
        worker._queue.post_new("alien", b"")
        kernel.run(until_us=kernel.now_us + 1_000_000)
        app = assemble("mov r0, 7\n    exit").to_bytes()
        repo.register_blob("/fw/x", lambda: app)
        worker.trigger(SuitEnvelope.create(
            manifest_for(engine, app, 1, FC_HOOK_TIMER, "/fw/x"),
            SEED).encode())
        kernel.run(until_us=400_000_000)
        assert worker.results[-1].ok
