"""Contract intersection (§11 privilege granting)."""

from __future__ import annotations

import pytest

from repro.core import ContainerContract, HookPolicy, MemoryGrant, PolicyError, grant
from repro.vm.memory import Permission


class TestHelperIntersection:
    def test_open_hook_open_contract(self):
        granted = grant(HookPolicy(), ContainerContract())
        assert granted.allowed_helpers is None

    def test_hook_ceiling_applies_when_contract_open(self):
        policy = HookPolicy(allowed_helpers=frozenset({1, 2}))
        granted = grant(policy, ContainerContract())
        assert granted.allowed_helpers == frozenset({1, 2})

    def test_contract_narrows_open_hook(self):
        granted = grant(HookPolicy(),
                        ContainerContract(helpers=frozenset({7})))
        assert granted.allowed_helpers == frozenset({7})

    def test_intersection_of_both(self):
        policy = HookPolicy(allowed_helpers=frozenset({1, 2, 3}))
        contract = ContainerContract(helpers=frozenset({2, 3}))
        assert grant(policy, contract).allowed_helpers == frozenset({2, 3})

    def test_requesting_forbidden_helper_is_rejected(self):
        policy = HookPolicy(allowed_helpers=frozenset({1}))
        contract = ContainerContract(helpers=frozenset({1, 9}))
        with pytest.raises(PolicyError, match="0x09"):
            grant(policy, contract)


class TestBudgets:
    def test_minimum_of_instruction_budgets(self):
        policy = HookPolicy(max_instructions=100, branch_limit=50)
        contract = ContainerContract(max_instructions=500, branch_limit=20)
        granted = grant(policy, contract)
        assert granted.max_instructions == 100
        assert granted.branch_limit == 20

    def test_context_writability_is_os_decided(self):
        assert grant(HookPolicy(context_writable=False)).context_writable is False


class TestMemoryGrants:
    PACKET = MemoryGrant("packet", 0x6000_0000, 128, Permission.READ)
    SCRATCH = MemoryGrant("scratch", 0x6100_0000, 64, Permission.READ_WRITE)

    def test_all_grants_by_default(self):
        policy = HookPolicy(memory_grants=(self.PACKET, self.SCRATCH))
        assert len(grant(policy).memory_grants) == 2

    def test_contract_selects_subset(self):
        policy = HookPolicy(memory_grants=(self.PACKET, self.SCRATCH))
        contract = ContainerContract(memory_regions=("packet",))
        granted = grant(policy, contract)
        assert [g.name for g in granted.memory_grants] == ["packet"]

    def test_unknown_region_rejected(self):
        policy = HookPolicy(memory_grants=(self.PACKET,))
        contract = ContainerContract(memory_regions=("secrets",))
        with pytest.raises(PolicyError, match="secrets"):
            grant(policy, contract)
