"""Worker-thread lifecycle for THREAD-mode hooks: no zombie threads."""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_TIMER, ContainerState, HostingEngine
from repro.rtos import ThreadState
from repro.vm import Program, assemble
from repro.vm.imagecache import IMAGE_CACHE


class TestWorkerLifecycle:
    def test_attach_spawns_worker(self, engine, kernel):
        container = engine.load(assemble("mov r0, 1\n    exit"))
        engine.attach(container, FC_HOOK_TIMER)
        assert container.worker is not None
        assert container.worker.name == f"fc/{container.name}"

    def test_detach_ends_worker(self, engine, kernel):
        container = engine.load(assemble("mov r0, 1\n    exit"))
        engine.attach(container, FC_HOOK_TIMER)
        worker = container.worker
        kernel.run(max_steps=5)  # let the worker block on its queue
        engine.detach(container)
        kernel.run_until_idle()
        assert worker.state is ThreadState.ENDED
        assert container.state is ContainerState.DETACHED

    def test_replace_ends_old_worker_spawns_new(self, engine, kernel):
        old = engine.load(assemble("mov r0, 1\n    exit"))
        engine.attach(old, FC_HOOK_TIMER)
        old_worker = old.worker
        kernel.run(max_steps=5)
        new = engine.replace(old, assemble("mov r0, 2\n    exit"))
        kernel.run_until_idle()
        assert old_worker.state is ThreadState.ENDED
        assert new.worker is not None and new.worker is not old_worker

    def test_queued_fire_before_detach_still_runs(self, engine, kernel):
        """An event already queued when detach arrives is processed first
        (FIFO), so in-flight work is not silently dropped."""
        container = engine.load(assemble("mov r0, 9\n    exit"))
        engine.attach(container, FC_HOOK_TIMER)
        kernel.run(max_steps=5)
        results = []
        engine.fire_hook(FC_HOOK_TIMER, b"\x00" * 8,
                         done=lambda run: results.append(run.value))
        engine.detach(container)
        kernel.run_until_idle()
        assert results == [9]
        assert container.worker.state is ThreadState.ENDED

    def test_repeated_attach_detach_does_not_accumulate_threads(self, engine,
                                                                kernel):
        for round_index in range(5):
            container = engine.load(
                assemble("mov r0, 1\n    exit"), name=f"c{round_index}")
            engine.attach(container, FC_HOOK_TIMER)
            kernel.run(max_steps=5)
            engine.detach(container)
            kernel.run_until_idle()
        alive = [t for t in kernel.threads.values() if t.alive]
        assert not alive


class TestThreadModeHotReplace:
    """`engine.replace` of THREAD-mode containers under the image cache."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        IMAGE_CACHE.clear()
        yield
        IMAGE_CACHE.clear()

    @pytest.fixture
    def jit_engine(self, kernel):
        return HostingEngine(kernel, implementation="jit")

    def test_replace_shares_cached_template_and_kills_worker(self, jit_engine,
                                                             kernel):
        raw = assemble("mov r0, 1\n    exit").to_bytes()
        old = jit_engine.load(Program.from_bytes(raw), name="v1")
        jit_engine.attach(old, FC_HOOK_TIMER)
        old_worker, old_queue = old.worker, old.event_queue
        kernel.run(max_steps=5)  # let the worker block on its queue

        new = jit_engine.replace(old, Program.from_bytes(raw))
        kernel.run_until_idle()

        # The old worker exited; the replacement got a fresh thread+queue.
        assert old_worker.state is ThreadState.ENDED
        assert old.state is ContainerState.DETACHED
        assert new.worker is not old_worker
        assert new.event_queue is not old_queue
        # No zombie queue: nothing is left blocked on the old queue and
        # exactly one fc worker thread remains alive.
        assert not old_queue._waiters and not old_queue._events
        alive = [t for t in kernel.threads.values()
                 if t.alive and t.name.startswith("fc/")]
        assert len(alive) == 1
        # Same image bytes -> the new instance reuses the cached template.
        assert new.vm._entry is old.vm._entry
        assert new.vm is not old.vm  # but the VM state is private

        # The replacement still executes events end to end.
        results = []
        jit_engine.fire_hook(FC_HOOK_TIMER, b"\x00" * 8,
                             done=lambda run: results.append(run.value))
        kernel.run_until_idle()
        assert results == [1]

    def test_replace_resets_fault_counters(self, jit_engine, kernel):
        crasher = assemble(
            "lddw r1, 0xbad0000\n    ldxdw r0, [r1]\n    exit"
        ).to_bytes()
        old = jit_engine.load(Program.from_bytes(crasher), name="crashy")
        jit_engine.attach(old, FC_HOOK_TIMER)
        kernel.run(max_steps=5)
        for _ in range(3):
            run = jit_engine.execute(old)
            assert not run.ok
        assert old.fault_count == 3

        new = jit_engine.replace(old, Program.from_bytes(crasher))
        kernel.run_until_idle()
        # Fresh instance: fault history starts at zero even though the
        # (still-faulty) image came straight from the cache.
        assert new.fault_count == 0
        assert new.runs == 0
        assert new.vm._entry is old.vm._entry
        assert old.fault_count == 3  # history stays with the old instance
