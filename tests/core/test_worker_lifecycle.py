"""Worker-thread lifecycle for THREAD-mode hooks: no zombie threads."""

from __future__ import annotations

from repro.core import FC_HOOK_TIMER, ContainerState
from repro.rtos import ThreadState
from repro.vm import assemble


class TestWorkerLifecycle:
    def test_attach_spawns_worker(self, engine, kernel):
        container = engine.load(assemble("mov r0, 1\n    exit"))
        engine.attach(container, FC_HOOK_TIMER)
        assert container.worker is not None
        assert container.worker.name == f"fc/{container.name}"

    def test_detach_ends_worker(self, engine, kernel):
        container = engine.load(assemble("mov r0, 1\n    exit"))
        engine.attach(container, FC_HOOK_TIMER)
        worker = container.worker
        kernel.run(max_steps=5)  # let the worker block on its queue
        engine.detach(container)
        kernel.run_until_idle()
        assert worker.state is ThreadState.ENDED
        assert container.state is ContainerState.DETACHED

    def test_replace_ends_old_worker_spawns_new(self, engine, kernel):
        old = engine.load(assemble("mov r0, 1\n    exit"))
        engine.attach(old, FC_HOOK_TIMER)
        old_worker = old.worker
        kernel.run(max_steps=5)
        new = engine.replace(old, assemble("mov r0, 2\n    exit"))
        kernel.run_until_idle()
        assert old_worker.state is ThreadState.ENDED
        assert new.worker is not None and new.worker is not old_worker

    def test_queued_fire_before_detach_still_runs(self, engine, kernel):
        """An event already queued when detach arrives is processed first
        (FIFO), so in-flight work is not silently dropped."""
        container = engine.load(assemble("mov r0, 9\n    exit"))
        engine.attach(container, FC_HOOK_TIMER)
        kernel.run(max_steps=5)
        results = []
        engine.fire_hook(FC_HOOK_TIMER, b"\x00" * 8,
                         done=lambda run: results.append(run.value))
        engine.detach(container)
        kernel.run_until_idle()
        assert results == [9]
        assert container.worker.state is ThreadState.ENDED

    def test_repeated_attach_detach_does_not_accumulate_threads(self, engine,
                                                                kernel):
        for round_index in range(5):
            container = engine.load(
                assemble("mov r0, 1\n    exit"), name=f"c{round_index}")
            engine.attach(container, FC_HOOK_TIMER)
            kernel.run(max_steps=5)
            engine.detach(container)
            kernel.run_until_idle()
        alive = [t for t in kernel.threads.values() if t.alive]
        assert not alive
