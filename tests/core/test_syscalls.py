"""Helper (system call) implementations: kv, time, SAUL, CoAP, formatting."""

from __future__ import annotations

import struct

import pytest

from repro.core import (
    CoapResponseContext,
    FC_HOOK_COAP,
    FC_HOOK_TIMER,
    format_s16_dfp,
)
from repro.core.syscalls import PDU_PAYLOAD_BASE
from repro.rtos import synthetic_switch, synthetic_temperature
from repro.vm import assemble


def attach(engine, source, tenant=None, rodata=b""):
    container = engine.load(assemble(source, rodata=rodata), tenant=tenant)
    engine.attach(container, FC_HOOK_TIMER)
    return container


class TestKvHelpers:
    FETCH_ADD_STORE = """
    mov r1, 5
    mov r2, r10
    call {fetch}
    ldxw r3, [r10+0]
    add r3, 1
    mov r1, 5
    mov r2, r3
    call {store}
    mov r0, r3
    exit
"""

    @pytest.mark.parametrize("scope,fetch,store", [
        ("local", "bpf_fetch_local", "bpf_store_local"),
        ("global", "bpf_fetch_global", "bpf_store_global"),
        ("tenant", "bpf_fetch_tenant", "bpf_store_tenant"),
    ])
    def test_fetch_increment_store(self, engine, scope, fetch, store):
        tenant = engine.create_tenant("T") if scope == "tenant" else None
        source = self.FETCH_ADD_STORE.format(fetch=fetch, store=store)
        container = attach(engine, source, tenant=tenant)
        assert engine.execute(container).value == 1
        assert engine.execute(container).value == 2
        store_obj = {
            "local": container.local_store,
            "global": engine.global_store,
            "tenant": tenant.store if tenant else None,
        }[scope]
        assert store_obj.fetch(5) == 2

    def test_local_stores_are_per_container(self, engine):
        source = self.FETCH_ADD_STORE.format(
            fetch="bpf_fetch_local", store="bpf_store_local")
        one = attach(engine, source)
        two = attach(engine, source)
        engine.execute(one)
        engine.execute(one)
        assert engine.execute(two).value == 1  # not 3

    def test_tenant_store_requires_tenant(self, engine):
        source = "mov r1, 1\n    mov r2, 2\n    call bpf_store_tenant\n    exit"
        orphan = attach(engine, source)
        run = engine.execute(orphan)
        assert not run.ok and run.fault.kind == "HelperFault"


class TestTimeHelpers:
    def test_now_ms_tracks_clock(self, engine, kernel):
        container = attach(engine, "call bpf_now_ms\n    exit")
        kernel.clock.charge_us(5_000)
        assert engine.execute(container).value == 5

    def test_ztimer_now_microseconds(self, engine, kernel):
        container = attach(engine, "call bpf_ztimer_now\n    exit")
        kernel.clock.charge_us(1234)
        assert engine.execute(container).value >= 1234


class TestSaulHelpers:
    READ_TEMP = """
    mov r1, 0x82
    call bpf_saul_reg_find_type
    jne r0, 0, ok
    mov r0, 0
    exit
ok:
    mov r1, r0
    mov r2, r10
    add r2, 8
    call bpf_saul_reg_read
    ldxh r0, [r10+8]
    exit
"""

    def test_find_and_read_temperature(self, engine, kernel):
        engine.saul.register(synthetic_temperature(kernel, seed=1))
        container = attach(engine, self.READ_TEMP)
        value = engine.execute(container).value
        assert 1700 <= value <= 2600  # centi-degrees, plausible range

    def test_find_type_missing_returns_zero(self, engine):
        container = attach(engine, self.READ_TEMP)
        assert engine.execute(container).value == 0

    def test_write_actuator(self, engine):
        device = synthetic_switch()
        engine.saul.register(device)
        source = """
    mov r1, 0x01
    call bpf_saul_reg_find_type
    mov r1, r0
    mov r2, 1
    call bpf_saul_reg_write
    exit
"""
        container = attach(engine, source)
        engine.execute(container)
        assert device.read().value == 1

    def test_bad_handle_faults_contained(self, engine):
        source = "mov r1, 99\n    mov r2, r10\n    call bpf_saul_reg_read\n    exit"
        container = attach(engine, source)
        run = engine.execute(container)
        assert not run.ok


class TestFormatHelpers:
    def test_fmt_u32_dec(self, engine):
        source = """
    mov r1, r10
    mov r2, 12345
    call bpf_fmt_u32_dec
    exit
"""
        container = attach(engine, source)
        run = engine.execute(container)
        assert run.value == 5
        assert bytes(container.vm.stack.data[:5]) == b"12345"

    def test_fmt_s16_dfp_positive(self):
        assert format_s16_dfp(2150, -2) == "21.50"

    def test_fmt_s16_dfp_negative_value(self):
        assert format_s16_dfp((-525) & 0xFFFF, -2) == "-5.25"

    def test_fmt_s16_dfp_zero_digits(self):
        assert format_s16_dfp(42, 0) == "42"

    def test_fmt_s16_dfp_positive_exponent(self):
        assert format_s16_dfp(42, 2) == "4200"

    def test_memcpy_between_regions(self, engine):
        source = """
    mov r1, r10          ; dst: stack
    lddwr r2, 0          ; src: rodata
    mov r3, 5            ; length
    call bpf_memcpy
    ldxb r0, [r10+0]
    exit
"""
        container = attach(engine, source, rodata=b"hello")
        run = engine.execute(container)
        assert run.ok
        assert run.value == ord("h")
        assert bytes(container.vm.stack.data[:5]) == b"hello"


class TestCoapHelpers:
    def test_full_response_construction(self, engine):
        from repro.workloads import coap_handler_program

        tenant = engine.create_tenant("A")
        tenant.store.store(0x10, 777)
        container = engine.load(coap_handler_program(), tenant=tenant)
        engine.attach(container, FC_HOOK_COAP)
        pdu = CoapResponseContext(token_length=2)
        run = engine.execute(container, struct.pack("<Q", 1), pdu=pdu)
        assert run.ok
        assert pdu.code == 0x45
        assert pdu.content_format == 0
        assert pdu.payload_bytes() == b"777"
        assert run.value == pdu.header_length + 3

    def test_coap_helper_outside_coap_run_faults(self, engine):
        source = "mov r1, 1\n    mov r2, 0x45\n    call bpf_gcoap_resp_init\n    exit"
        container = attach(engine, source)
        run = engine.execute(container)  # no pdu passed
        assert not run.ok

    def test_pdu_region_unmapped_after_run(self, engine):
        source = """
    mov r1, 1
    call bpf_coap_get_pdu
    mov r0, r0
    exit
"""
        container = engine.load(assemble(source))
        engine.attach(container, FC_HOOK_COAP)
        pdu = CoapResponseContext()
        run = engine.execute(container, struct.pack("<Q", 1), pdu=pdu)
        assert run.ok and run.value == PDU_PAYLOAD_BASE
        # A later non-CoAP run must not still see the PDU buffer.
        probe = engine.load(assemble(
            f"lddw r1, 0x{PDU_PAYLOAD_BASE:x}\n    ldxb r0, [r1]\n    exit"
        ))
        engine.attach(probe, FC_HOOK_COAP)
        run2 = engine.execute(probe)
        assert not run2.ok
