"""Container dataclass accounting and lifecycle bookkeeping."""

from __future__ import annotations

from repro.core import ContainerState, FC_HOOK_TIMER, Tenant
from repro.core.container import VM_CLASSES, FemtoContainer
from repro.vm import assemble


class TestContainerModel:
    def test_vm_classes_cover_all_implementations(self):
        from repro.rtos.board import IMPLEMENTATIONS

        assert set(VM_CLASSES) == set(IMPLEMENTATIONS)

    def test_initial_state(self):
        container = FemtoContainer(name="c", program=assemble("exit"))
        assert container.state is ContainerState.LOADED
        assert container.vm is None
        assert container.local_store.name == "c-local"

    def test_tenant_adoption(self):
        tenant = Tenant(name="t")
        container = FemtoContainer(name="c", program=assemble("exit"),
                                   tenant=tenant)
        assert container in tenant.containers
        # Adopting twice is idempotent.
        tenant.adopt(container)
        assert tenant.containers.count(container) == 1

    def test_ram_without_vm_counts_image_and_store(self):
        program = assemble("mov r0, 1\n    exit")
        container = FemtoContainer(name="c", program=program)
        assert container.ram_bytes == (
            program.image_size + container.local_store.ram_bytes
        )

    def test_lifetime_accounting_accumulates(self, engine):
        container = engine.load(assemble("""
    mov r1, 3
loop:
    sub r1, 1
    jne r1, 0, loop
    mov r0, 0
    exit
"""))
        engine.attach(container, FC_HOOK_TIMER)
        first = engine.execute(container)
        second = engine.execute(container)
        assert container.runs == 2
        assert container.total_cycles == first.cycles + second.cycles
        assert container.lifetime_stats.executed == \
            first.stats.executed + second.stats.executed
        assert container.lifetime_stats.branches_taken == 4

    def test_helper_call_accounting_merged(self, engine):
        container = engine.load(assemble(
            "mov r1, 1\n    mov r2, 2\n    call bpf_store_global\n    exit"))
        engine.attach(container, FC_HOOK_TIMER)
        engine.execute(container)
        engine.execute(container)
        from repro.vm.helpers import BPF_STORE_GLOBAL

        assert container.lifetime_stats.helper_calls[BPF_STORE_GLOBAL] == 2
