"""Key-value store semantics and RAM accounting."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core import KeyValueStore
from repro.core.kvstore import ENTRY_BYTES, STORE_HEADER_BYTES


class TestSemantics:
    def test_missing_key_reads_zero(self):
        store = KeyValueStore("s")
        assert store.fetch(42) == 0

    def test_store_fetch_roundtrip(self):
        store = KeyValueStore("s")
        store.store(1, 99)
        assert store.fetch(1) == 99

    def test_values_truncate_to_32_bits(self):
        store = KeyValueStore("s")
        store.store(1, 1 << 40)
        assert store.fetch(1) == 0

    def test_keys_truncate_to_32_bits(self):
        store = KeyValueStore("s")
        store.store(1 << 32, 7)  # aliases key 0
        assert store.fetch(0) == 7

    def test_overwrite(self):
        store = KeyValueStore("s")
        store.store(5, 1)
        store.store(5, 2)
        assert store.fetch(5) == 2
        assert store.entry_count == 1

    def test_delete(self):
        store = KeyValueStore("s")
        store.store(5, 1)
        assert store.delete(5)
        assert not store.delete(5)
        assert store.fetch(5) == 0

    def test_statistics(self):
        store = KeyValueStore("s")
        store.store(1, 1)
        store.fetch(1)
        store.fetch(2)
        assert store.stores == 1
        assert store.fetches == 2

    @given(st.dictionaries(st.integers(0, 2**32 - 1),
                           st.integers(0, 2**32 - 1), max_size=32))
    def test_model_equivalence(self, entries):
        store = KeyValueStore("s")
        for key, value in entries.items():
            store.store(key, value)
        assert store.snapshot() == entries
        for key, value in entries.items():
            assert store.fetch(key) == value


class TestRamAccounting:
    def test_empty_store_is_header_only(self):
        assert KeyValueStore("s").ram_bytes == STORE_HEADER_BYTES

    def test_ram_grows_per_entry(self):
        store = KeyValueStore("s")
        for key in range(5):
            store.store(key, key)
        assert store.ram_bytes == STORE_HEADER_BYTES + 5 * ENTRY_BYTES

    def test_overwrite_does_not_grow(self):
        store = KeyValueStore("s")
        store.store(1, 1)
        before = store.ram_bytes
        store.store(1, 2)
        assert store.ram_bytes == before
