"""Multi-tenant isolation: the §3 threat model, exercised.

A malicious tenant "seeks to gain elevated permissions... might want to
break free from the sandbox to either the host system or a different
sandbox it doesn't have permissions for."
"""

from __future__ import annotations

import pytest

from repro.core import ContainerContract, FC_HOOK_TIMER, HookPolicy, Hook, HookMode
from repro.vm import assemble
from repro.vm.helpers import (
    BPF_FETCH_TENANT,
    BPF_PRINTF,
    BPF_STORE_TENANT,
)

STORE_SECRET = """
    mov r1, 0x77
    mov r2, 0x5ec2e7
    call bpf_store_tenant
    mov r0, 0
    exit
"""

READ_TENANT_KEY = """
    mov r1, 0x77
    mov r2, r10
    call bpf_fetch_tenant
    ldxw r0, [r10+0]
    exit
"""


class TestTenantStores:
    def test_tenants_do_not_see_each_others_values(self, engine):
        alice = engine.create_tenant("alice")
        bob = engine.create_tenant("bob")
        writer = engine.load(assemble(STORE_SECRET), tenant=alice)
        reader = engine.load(assemble(READ_TENANT_KEY), tenant=bob)
        engine.attach(writer, FC_HOOK_TIMER)
        engine.attach(reader, FC_HOOK_TIMER)
        engine.execute(writer)
        assert alice.store.fetch(0x77) == 0x5EC2E7
        # Bob's container reads its *own* tenant store: empty.
        assert engine.execute(reader).value == 0

    def test_same_tenant_containers_share(self, engine):
        alice = engine.create_tenant("alice")
        writer = engine.load(assemble(STORE_SECRET), tenant=alice, name="w")
        reader = engine.load(assemble(READ_TENANT_KEY), tenant=alice, name="r")
        engine.attach(writer, FC_HOOK_TIMER)
        engine.attach(reader, FC_HOOK_TIMER)
        engine.execute(writer)
        assert engine.execute(reader).value == 0x5EC2E7

    def test_tenant_ram_accounting(self, engine):
        alice = engine.create_tenant("alice")
        container = engine.load(assemble(STORE_SECRET), tenant=alice)
        engine.attach(container, FC_HOOK_TIMER)
        engine.execute(container)
        assert alice.ram_bytes >= container.ram_bytes + alice.store.ram_bytes


class TestSandboxEscapes:
    def test_vm_memory_is_not_shared_between_containers(self, engine):
        """Each instance gets its own stack region; writing a marker in one
        must not be visible in the other."""
        marker = engine.load(assemble(
            "stdw [r10+0], 0x41414141\n    mov r0, 0\n    exit"), name="m")
        probe = engine.load(assemble(
            "ldxdw r0, [r10+0]\n    exit"), name="p")
        engine.attach(marker, FC_HOOK_TIMER)
        engine.attach(probe, FC_HOOK_TIMER)
        engine.execute(marker)
        assert engine.execute(probe).value == 0

    def test_helper_whitelist_blocks_capability_abuse(self, engine):
        """A tenant whose contract only grants printf cannot reach the
        tenant store, even though the helper exists on the device."""
        contract = ContainerContract(helpers=frozenset({BPF_PRINTF}))
        sneaky = engine.load(assemble(STORE_SECRET), contract=contract)
        with pytest.raises(Exception):
            engine.attach(sneaky, FC_HOOK_TIMER)

    def test_restrictive_hook_policy_wins_over_contract(self, engine):
        locked = engine.register_hook(Hook(
            "fc.hook.locked", mode=HookMode.SYNC,
            policy=HookPolicy(allowed_helpers=frozenset({BPF_PRINTF})),
        ))
        greedy = engine.load(
            assemble(STORE_SECRET),
            contract=ContainerContract(
                helpers=frozenset({BPF_STORE_TENANT, BPF_FETCH_TENANT})
            ),
        )
        with pytest.raises(Exception):
            engine.attach(greedy, locked.name)

    def test_branch_budget_from_hook_policy_applies(self, engine):
        tight = engine.register_hook(Hook(
            "fc.hook.tight", mode=HookMode.SYNC,
            policy=HookPolicy(branch_limit=5),
        ))
        spinner = engine.load(assemble("""
    mov r1, 100
again:
    sub r1, 1
    jne r1, 0, again
    mov r0, 0
    exit
"""))
        engine.attach(spinner, tight.name)
        run = engine.execute(spinner)
        assert not run.ok
        assert run.fault.kind == "BranchLimitFault"

    def test_host_keeps_running_after_each_escape_attempt(self, engine, kernel):
        """The integration form of the §9 guarantee: a battery of hostile
        containers leaves the kernel scheduling normally."""
        attacks = [
            "lddw r1, 0x0\n    ldxdw r0, [r1]\n    exit",          # NULL deref
            "mov r1, r10\n    add r1, 4096\n    stb [r1+0], 1\n    exit",
            "mov r1, 0\n    mov r0, 1\n    div r0, r1\n    exit",  # div 0
            "x:\n    ja x",                                        # spin
        ]
        for index, source in enumerate(attacks):
            hostile = engine.load(assemble(source), name=f"attack{index}")
            engine.attach(hostile, FC_HOOK_TIMER)
            run = engine.execute(hostile)
            assert not run.ok
        # Kernel still functional: a normal thread completes.
        from repro.rtos import Sleep

        done = []

        def worker(thread):
            yield Sleep(10)
            done.append(True)

        kernel.create_thread("survivor", worker)
        kernel.run_until_idle()
        assert done == [True]
