"""§10.2/§11 extension features: stack negotiation, per-tenant privileges."""

from __future__ import annotations

import pytest

from repro.core import (
    AttachError,
    ContainerContract,
    FC_HOOK_TIMER,
    Hook,
    HookMode,
    HookPolicy,
    PolicyError,
    grant,
)
from repro.vm import assemble
from repro.vm.helpers import BPF_PRINTF, BPF_STORE_GLOBAL

DEEP_STACK_USER = """
    mov r1, r10
    add r1, 1000          ; touch byte 1000 of the stack
    stb [r1+0], 0x42
    ldxb r0, [r1+0]
    exit
"""


class TestStackNegotiation:
    def test_default_stack_is_512(self, engine):
        container = engine.load(assemble("mov r0, 0\n    exit"))
        engine.attach(container, FC_HOOK_TIMER)
        assert container.vm.config.stack_size == 512
        assert container.vm.ram_bytes == 624

    def test_contract_can_request_more_stack(self, engine):
        container = engine.load(
            assemble(DEEP_STACK_USER),
            contract=ContainerContract(stack_size=1024),
        )
        engine.attach(container, FC_HOOK_TIMER)
        run = engine.execute(container)
        assert run.ok and run.value == 0x42
        assert container.vm.ram_bytes == 624 + 512  # 512 extra stack bytes

    def test_default_stack_faults_on_deep_access(self, engine):
        container = engine.load(assemble(DEEP_STACK_USER))
        engine.attach(container, FC_HOOK_TIMER)
        run = engine.execute(container)
        assert not run.ok and run.fault.kind == "MemoryFault"

    def test_hook_ceiling_caps_stack(self, engine):
        capped = engine.register_hook(Hook(
            "fc.hook.capped", mode=HookMode.SYNC,
            policy=HookPolicy(max_stack_size=512),
        ))
        greedy = engine.load(
            assemble("mov r0, 0\n    exit"),
            contract=ContainerContract(stack_size=4096),
        )
        with pytest.raises(AttachError, match="stack"):
            engine.attach(greedy, capped.name)

    def test_sub_minimum_request_rejected(self):
        with pytest.raises(PolicyError, match="minimum"):
            grant(HookPolicy(), ContainerContract(stack_size=128))


class TestPerTenantPrivileges:
    """§11: 'In case 2 tenants have different privileges, a second hook
    must be made available' — the per-tenant policy map removes that."""

    STORE = "mov r1, 1\n    mov r2, 2\n    call bpf_store_global\n    exit"

    def make_hook(self, engine):
        return engine.register_hook(Hook(
            "fc.hook.shared", mode=HookMode.SYNC,
            policy=HookPolicy(allowed_helpers=frozenset({BPF_PRINTF})),
            tenant_policies={
                "trusted": HookPolicy(
                    allowed_helpers=frozenset({BPF_PRINTF, BPF_STORE_GLOBAL})
                ),
            },
        ))

    def test_privileged_tenant_gets_wider_grant(self, engine):
        hook = self.make_hook(engine)
        trusted = engine.create_tenant("trusted")
        container = engine.load(assemble(self.STORE), tenant=trusted)
        engine.attach(container, hook.name)
        run = engine.execute(container)
        assert run.ok
        assert engine.global_store.fetch(1) == 2

    def test_default_tenant_stays_restricted(self, engine):
        hook = self.make_hook(engine)
        other = engine.create_tenant("other")
        container = engine.load(assemble(self.STORE), tenant=other)
        with pytest.raises(AttachError):
            engine.attach(container, hook.name)

    def test_tenantless_container_uses_base_policy(self, engine):
        hook = self.make_hook(engine)
        container = engine.load(assemble(self.STORE))
        with pytest.raises(AttachError):
            engine.attach(container, hook.name)

    def test_policy_for_lookup(self):
        base = HookPolicy()
        special = HookPolicy(branch_limit=1)
        hook = Hook("h", tenant_policies={"a": special}, policy=base)
        assert hook.policy_for("a") is special
        assert hook.policy_for("b") is base
        assert hook.policy_for(None) is base
