"""Fig 3 "Bypass with Default Result" semantics."""

from __future__ import annotations

from repro.core import Hook, HookMode
from repro.vm import assemble


def make_hook(engine, default):
    return engine.register_hook(
        Hook("fc.hook.flow", mode=HookMode.SYNC, default_result=default))


class TestDefaultResult:
    def test_empty_hook_yields_default(self, engine):
        make_hook(engine, default=7)
        firing = engine.fire_hook("fc.hook.flow")
        assert firing.results == []
        assert firing.effective_results == [7]

    def test_healthy_container_result_used(self, engine):
        hook = make_hook(engine, default=7)
        container = engine.load(assemble("mov r0, 1\n    exit"))
        engine.attach(container, hook.name)
        firing = engine.fire_hook(hook.name)
        assert firing.effective_results == [1]

    def test_faulted_container_bypassed_with_default(self, engine):
        hook = make_hook(engine, default=9)
        bad = engine.load(assemble(
            "lddw r1, 0x1\n    ldxb r0, [r1]\n    exit"))
        engine.attach(bad, hook.name)
        firing = engine.fire_hook(hook.name)
        assert firing.results == [None]
        assert firing.effective_results == [9]

    def test_mixed_containers(self, engine):
        hook = make_hook(engine, default=5)
        good = engine.load(assemble("mov r0, 1\n    exit"), name="good")
        bad = engine.load(assemble(
            "lddw r1, 0x1\n    ldxb r0, [r1]\n    exit"), name="bad")
        engine.attach(good, hook.name)
        engine.attach(bad, hook.name)
        firing = engine.fire_hook(hook.name)
        assert firing.effective_results == [1, 5]

    def test_firewall_fails_open_by_default(self, engine):
        """A fault in a packet filter must not brick the network path: the
        default ACCEPT verdict keeps traffic flowing (fail-open), which is
        the launchpad designer's choice via default_result."""
        hook = engine.register_hook(Hook(
            "fc.hook.rx", mode=HookMode.SYNC, default_result=0))  # ACCEPT
        crashy_filter = engine.load(assemble(
            "mov r1, 0\n    ldxb r0, [r1]\n    exit"))
        engine.attach(crashy_filter, hook.name)
        firing = engine.fire_hook(hook.name, context=b"\x00" * 4)
        assert all(v == 0 for v in firing.effective_results)  # packets pass
