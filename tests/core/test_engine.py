"""Hosting-engine behaviour: lifecycle, hooks, fault containment, accounting."""

from __future__ import annotations

import struct

import pytest

from repro.core import (
    AttachError,
    ContainerContract,
    ContainerState,
    FC_HOOK_SCHED,
    FC_HOOK_TIMER,
    Hook,
    HookMode,
    HookPolicy,
    HostingEngine,
    UnknownHookError,
)
from repro.core.container import VM_CLASSES
from repro.rtos import Kernel, Sleep
from repro.vm import assemble
from repro.vm.helpers import BPF_FETCH_GLOBAL
from repro.workloads import thread_counter_program

RETURN_7 = "mov r0, 7\n    exit"
CRASHER = "lddw r1, 0xbad0000\n    ldxdw r0, [r1]\n    exit"


class TestLifecycle:
    def test_load_attach_execute(self, engine):
        container = engine.load(assemble(RETURN_7))
        engine.attach(container, FC_HOOK_TIMER)
        assert container.state is ContainerState.ATTACHED
        run = engine.execute(container)
        assert run.ok and run.value == 7

    def test_detach(self, engine):
        container = engine.load(assemble(RETURN_7))
        engine.attach(container, FC_HOOK_TIMER)
        engine.detach(container)
        assert container.state is ContainerState.DETACHED
        assert not engine.hook(FC_HOOK_TIMER).containers

    def test_double_attach_rejected(self, engine):
        container = engine.load(assemble(RETURN_7))
        engine.attach(container, FC_HOOK_TIMER)
        with pytest.raises(AttachError, match="already attached"):
            engine.attach(container, FC_HOOK_SCHED)

    def test_unknown_hook_rejected(self, engine):
        container = engine.load(assemble(RETURN_7))
        with pytest.raises(UnknownHookError):
            engine.attach(container, "fc.hook.nonexistent")

    def test_attach_runs_preflight(self, engine):
        bad = engine.load(assemble("ja +2\n    exit\n    exit"))
        with pytest.raises(AttachError, match="rejected"):
            engine.attach(bad, FC_HOOK_TIMER)

    def test_helper_contract_enforced_at_attach(self, engine):
        uses_kv = engine.load(
            assemble("mov r1, 1\n    mov r2, 2\n    call bpf_store_global\n    exit"),
            contract=ContainerContract(helpers=frozenset({BPF_FETCH_GLOBAL})),
        )
        with pytest.raises(AttachError):
            engine.attach(uses_kv, FC_HOOK_TIMER)

    def test_replace_hot_swaps(self, engine):
        old = engine.load(assemble(RETURN_7))
        engine.attach(old, FC_HOOK_TIMER)
        new = engine.replace(old, assemble("mov r0, 8\n    exit"))
        assert old.state is ContainerState.DETACHED
        assert engine.execute(new).value == 8
        assert engine.hook(FC_HOOK_TIMER).containers == [new]

    def test_replace_preserves_container_name(self, engine):
        """Hot swap keeps the deployed slot's name: the container is the
        stable identity operators track; only the image content changes.
        (Regression: replace used to silently rename the container to the
        new program's name.)"""
        old = engine.load(assemble(RETURN_7), name="slot-a")
        engine.attach(old, FC_HOOK_TIMER)
        new_program = assemble("mov r0, 8\n    exit")
        new_program.name = "v2-image"
        new = engine.replace(old, new_program)
        assert new.name == "slot-a"
        assert new.program is new_program
        assert [c.name for c in engine.hook(FC_HOOK_TIMER).containers] \
            == ["slot-a"]

    def test_replace_with_rejected_image_restores_old_container(self, engine):
        """Replace is failure-atomic: a new image the verifier rejects
        must not leave the slot empty (regression: the old container
        stayed detached)."""
        old = engine.load(assemble(RETURN_7), name="slot-a")
        engine.attach(old, FC_HOOK_TIMER)
        with pytest.raises(AttachError, match="rejected"):
            engine.replace(old, assemble("mov r10, 1\n    exit"))
        assert engine.hook(FC_HOOK_TIMER).containers == [old]
        assert old.state is ContainerState.ATTACHED
        assert engine.execute(old).value == 7

    def test_fault_total_survives_detach_and_replace(self, engine):
        """The device-lifetime fault counter outlives the containers that
        faulted — the signal canary gating reads."""
        faulty = engine.load(
            assemble("lddw r1, 0x10\n    ldxb r0, [r1]\n    exit"))
        engine.attach(faulty, FC_HOOK_TIMER)
        assert engine.fault_total == 0
        engine.execute(faulty)
        engine.execute(faulty)
        assert engine.fault_total == 2
        assert engine.fault_counts() == {(FC_HOOK_TIMER, "app"): 2}
        engine.replace(faulty, assemble(RETURN_7))
        assert engine.fault_total == 2  # survives the hot swap

    def test_all_implementations_attach_and_run(self, kernel):
        for implementation in VM_CLASSES:
            engine = HostingEngine(Kernel(kernel.board), implementation=implementation)
            container = engine.load(assemble(RETURN_7))
            engine.attach(container, FC_HOOK_TIMER)
            assert engine.execute(container).value == 7


class TestFaultContainment:
    def test_fault_is_recorded_not_raised(self, engine):
        container = engine.load(assemble(CRASHER))
        engine.attach(container, FC_HOOK_TIMER)
        run = engine.execute(container)
        assert not run.ok
        assert run.fault.kind == "MemoryFault"
        assert container.fault_count == 1

    def test_faulting_container_detached_after_threshold(self, engine):
        container = engine.load(assemble(CRASHER))
        engine.attach(container, FC_HOOK_TIMER)
        for _ in range(HostingEngine.FAULT_DETACH_THRESHOLD):
            engine.execute(container)
        assert container.state is ContainerState.DETACHED

    def test_other_containers_unaffected_by_fault(self, engine):
        bad = engine.load(assemble(CRASHER), name="bad")
        good = engine.load(assemble(RETURN_7), name="good")
        engine.attach(bad, FC_HOOK_SCHED)
        engine.attach(good, FC_HOOK_SCHED)
        firing = engine.fire_hook(FC_HOOK_SCHED, struct.pack("<QQ", 0, 1))
        assert [run.ok for run in firing.runs] == [False, True]
        assert firing.runs[1].value == 7

    def test_faulted_run_still_charges_cycles(self, engine):
        container = engine.load(assemble(CRASHER))
        engine.attach(container, FC_HOOK_TIMER)
        run = engine.execute(container)
        assert run.cycles > 0


class TestHooks:
    def test_fire_empty_hook_charges_dispatch_only(self, engine, kernel):
        before = kernel.clock.cycles
        firing = engine.fire_hook(FC_HOOK_SCHED, struct.pack("<QQ", 0, 0))
        assert not firing.runs
        assert kernel.clock.cycles - before == kernel.board.hook_dispatch_cycles

    def test_multiple_containers_same_hook_run_in_order(self, engine):
        first = engine.load(assemble("mov r0, 1\n    exit"), name="one")
        second = engine.load(assemble("mov r0, 2\n    exit"), name="two")
        engine.attach(first, FC_HOOK_SCHED)
        engine.attach(second, FC_HOOK_SCHED)
        firing = engine.fire_hook(FC_HOOK_SCHED, struct.pack("<QQ", 0, 1))
        assert firing.results == [1, 2]

    def test_hook_uuid_lookup(self, engine):
        hook = engine.hook(FC_HOOK_SCHED)
        assert engine.hook_by_uuid(str(hook.uuid)) is hook
        with pytest.raises(UnknownHookError):
            engine.hook_by_uuid("00000000-0000-0000-0000-000000000000")

    def test_custom_hook_registration(self, engine):
        hook = engine.register_hook(Hook("fc.hook.custom", mode=HookMode.SYNC,
                                         policy=HookPolicy()))
        container = engine.load(assemble(RETURN_7))
        engine.attach(container, "fc.hook.custom")
        assert engine.fire_hook("fc.hook.custom").results == [7]
        assert hook.fires == 1

    def test_sched_hook_fires_on_real_context_switches(self, engine, kernel):
        container = engine.load(thread_counter_program())
        engine.attach(container, FC_HOOK_SCHED)

        def worker(thread):
            for _ in range(3):
                thread.charge(500)
                yield Sleep(100)

        t1 = kernel.create_thread("w1", worker, priority=5)
        t2 = kernel.create_thread("w2", worker, priority=5)
        kernel.run_until_idle()
        counters = engine.global_store.snapshot()
        assert counters[t1.pid] == t1.activations
        assert counters[t2.pid] == t2.activations

    def test_thread_mode_hook_runs_in_worker(self, engine, kernel):
        container = engine.load(assemble(RETURN_7))
        engine.attach(container, FC_HOOK_TIMER)
        assert container.worker is not None
        results = []
        engine.fire_hook(FC_HOOK_TIMER, b"\x00" * 8,
                         done=lambda run: results.append(run.value))
        kernel.run_until_idle()
        assert results == [7]

    def test_attach_periodic_runs_repeatedly(self, engine, kernel):
        container = engine.load(assemble(RETURN_7))
        cancel = engine.attach_periodic(container, period_us=1000)
        kernel.run(until_us=5500)
        cancel()
        first_batch = container.runs
        assert first_batch >= 4
        kernel.run(until_us=10_000)
        assert container.runs == first_batch  # cancelled


class TestAccounting:
    def test_container_ram_includes_image_and_store(self, engine):
        container = engine.load(assemble(RETURN_7))
        engine.attach(container, FC_HOOK_TIMER)
        expected = (container.vm.ram_bytes + container.program.image_size
                    + container.local_store.ram_bytes)
        assert container.ram_bytes == expected

    def test_engine_ram_aggregates(self, engine):
        tenant = engine.create_tenant("A")
        one = engine.load(assemble(RETURN_7), tenant=tenant, name="c1")
        two = engine.load(assemble(RETURN_7), tenant=tenant, name="c2")
        engine.attach(one, FC_HOOK_TIMER)
        engine.attach(two, FC_HOOK_SCHED)
        total = engine.total_ram_bytes()
        assert total > 2 * 624

    def test_trace_helper_collects_output(self, engine):
        program = assemble(
            "lddwr r1, 0\n    mov r2, 42\n    call bpf_printf\n    exit",
            rodata=b"value=%d\x00",
        )
        container = engine.load(program)
        engine.attach(container, FC_HOOK_TIMER)
        engine.execute(container)
        assert engine.trace_log == ["value=42"]
