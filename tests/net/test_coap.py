"""CoAP codec, options, block option, and error handling."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net import coap
from repro.net.block import BlockOption, slice_block
from repro.net.coap import CoapError, CoapMessage


class TestCodec:
    def test_minimal_message_roundtrip(self):
        msg = CoapMessage(mtype=coap.CON, code=coap.GET, message_id=0x1234)
        decoded = CoapMessage.decode(msg.encode())
        assert decoded.mtype == coap.CON
        assert decoded.code == coap.GET
        assert decoded.message_id == 0x1234

    def test_token_roundtrip(self):
        msg = CoapMessage(token=b"\xde\xad")
        assert CoapMessage.decode(msg.encode()).token == b"\xde\xad"

    def test_payload_roundtrip(self):
        msg = CoapMessage(payload=b"hello sensor")
        assert CoapMessage.decode(msg.encode()).payload == b"hello sensor"

    def test_uri_path_options(self):
        msg = CoapMessage()
        msg.add_uri_path("/fw/slot0")
        decoded = CoapMessage.decode(msg.encode())
        assert decoded.uri_path == "/fw/slot0"

    def test_option_delta_extended_13(self):
        msg = CoapMessage()
        msg.add_option(30, b"x")  # delta 30 needs the 13+ext form
        decoded = CoapMessage.decode(msg.encode())
        assert decoded.option(30) == b"x"

    def test_option_delta_extended_14(self):
        msg = CoapMessage()
        msg.add_option(2000, b"y")  # needs the 14+2-byte form
        decoded = CoapMessage.decode(msg.encode())
        assert decoded.option(2000) == b"y"

    def test_options_sorted_on_encode(self):
        msg = CoapMessage()
        msg.add_option(27, b"b")
        msg.add_option(11, b"a")
        decoded = CoapMessage.decode(msg.encode())
        assert [num for num, _ in decoded.options] == [11, 27]

    def test_long_option_value(self):
        msg = CoapMessage()
        msg.add_option(11, b"s" * 300)
        assert CoapMessage.decode(msg.encode()).option(11) == b"s" * 300

    def test_code_string(self):
        assert coap.code_string(0x45) == "2.05"
        assert coap.code_string(coap.NOT_FOUND) == "4.04"

    def test_reply_echoes_mid_and_token(self):
        request = CoapMessage(mtype=coap.CON, code=coap.GET,
                              message_id=7, token=b"\x01")
        reply = request.reply(coap.CONTENT, b"ok")
        assert reply.mtype == coap.ACK
        assert reply.message_id == 7
        assert reply.token == b"\x01"


class TestMalformed:
    def test_short_header(self):
        with pytest.raises(CoapError):
            CoapMessage.decode(b"\x40\x01")

    def test_bad_version(self):
        with pytest.raises(CoapError):
            CoapMessage.decode(b"\x80\x01\x00\x01")

    def test_reserved_token_length(self):
        with pytest.raises(CoapError):
            CoapMessage.decode(b"\x4f\x01\x00\x01" + b"\x00" * 15)

    def test_empty_payload_after_marker(self):
        base = CoapMessage().encode()
        with pytest.raises(CoapError):
            CoapMessage.decode(base + b"\xff")

    def test_oversized_token_rejected_on_encode(self):
        with pytest.raises(CoapError):
            CoapMessage(token=b"x" * 9).encode()

    @given(raw=st.binary(max_size=64))
    def test_decoder_never_crashes(self, raw):
        try:
            CoapMessage.decode(raw)
        except CoapError:
            pass

    @given(
        mtype=st.sampled_from([coap.CON, coap.NON, coap.ACK, coap.RST]),
        code=st.integers(0, 255),
        mid=st.integers(0, 0xFFFF),
        token=st.binary(max_size=8),
        payload=st.binary(max_size=64),
        options=st.lists(
            st.tuples(st.integers(1, 2000), st.binary(max_size=20)),
            max_size=4,
        ),
    )
    def test_roundtrip_property(self, mtype, code, mid, token, payload, options):
        msg = CoapMessage(mtype=mtype, code=code, message_id=mid, token=token,
                          payload=payload)
        for number, value in options:
            msg.add_option(number, value)
        decoded = CoapMessage.decode(msg.encode())
        assert decoded.mtype == mtype
        assert decoded.code == code
        assert decoded.message_id == mid
        assert decoded.token == token
        assert decoded.payload == payload
        assert sorted(decoded.options) == sorted(options)


class TestBlockOption:
    def test_encode_decode_roundtrip(self):
        for num, more, szx in [(0, False, 0), (1, True, 5), (1000, False, 6)]:
            option = BlockOption(num, more, szx)
            assert BlockOption.decode(option.encode()) == option

    def test_zero_block_encodes_empty(self):
        assert BlockOption(0, False, 0).encode() == b""
        assert BlockOption.decode(b"") == BlockOption(0, False, 0)

    def test_size_derivation(self):
        assert BlockOption(0, False, 0).size == 16
        assert BlockOption(0, False, 6).size == 1024

    def test_slice_block(self):
        blob = bytes(range(100))
        chunk, more = slice_block(blob, BlockOption(0, False, 1))  # 32 B
        assert chunk == blob[:32] and more
        chunk, more = slice_block(blob, BlockOption(3, False, 1))
        assert chunk == blob[96:] and not more

    def test_slice_past_end_raises(self):
        with pytest.raises(CoapError):
            slice_block(b"abc", BlockOption(5, False, 1))

    def test_reserved_szx_rejected(self):
        with pytest.raises(CoapError):
            BlockOption.decode(b"\x0f")
