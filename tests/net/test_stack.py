"""Link, UDP, gcoap server/client: loss, retransmission, blockwise, bridge."""

from __future__ import annotations

import pytest

from repro.net import (
    CoapClient,
    CoapServer,
    CoapMessage,
    Interface,
    Link,
    UdpStack,
    coap,
)


@pytest.fixture
def network(kernel):
    link = Link(kernel, loss=0.0, seed=1)
    a = link.attach(Interface("node-a"))
    b = link.attach(Interface("node-b"))
    return link, UdpStack(a), UdpStack(b)


class TestLink:
    def test_delivery_with_latency(self, kernel, network):
        link, stack_a, stack_b = network
        received = []
        sock_b = stack_b.socket(1000)
        sock_b.on_datagram = lambda dg: received.append(
            (dg.payload, kernel.now_us))
        stack_a.socket(2000).send_to("node-b", 1000, b"ping")
        kernel.run_until_idle()
        assert received[0][0] == b"ping"
        assert received[0][1] > 0  # airtime elapsed

    def test_large_datagram_fragments(self, kernel, network):
        link, stack_a, stack_b = network
        received = []
        stack_b.socket(1).on_datagram = lambda dg: received.append(dg.payload)
        payload = bytes(500)
        stack_a.socket(2).send_to("node-b", 1, payload)
        kernel.run_until_idle()
        assert received == [payload]
        assert link.stats.frames_sent >= 6  # fragmented

    def test_lossy_link_drops_deterministically(self, kernel):
        link = Link(kernel, loss=0.5, seed=99)
        a = link.attach(Interface("a"))
        b = link.attach(Interface("b"))
        stack_a, stack_b = UdpStack(a), UdpStack(b)
        received = []
        stack_b.socket(1).on_datagram = lambda dg: received.append(dg.payload)
        sender = stack_a.socket(2)
        for i in range(50):
            sender.send_to("b", 1, bytes([i]))
        kernel.run_until_idle()
        assert 0 < len(received) < 50  # some loss, not total

    def test_unknown_destination_vanishes(self, kernel, network):
        link, stack_a, _stack_b = network
        stack_a.socket(2).send_to("nowhere", 1, b"x")
        kernel.run_until_idle()
        assert link.stats.datagrams_delivered == 0

    def test_duplicate_address_rejected(self, kernel, network):
        link, _a, _b = network
        with pytest.raises(ValueError):
            link.attach(Interface("node-a"))

    def test_unbound_port_dropped(self, kernel, network):
        link, stack_a, _stack_b = network
        stack_a.socket(2).send_to("node-b", 4242, b"x")
        kernel.run_until_idle()  # no listener: no crash


class TestCoapServerClient:
    def test_request_response(self, kernel, network):
        _link, stack_a, stack_b = network
        server = CoapServer(kernel, stack_b.socket(5683))
        server.register("/hello",
                        lambda req, dg: req.reply(coap.CONTENT, b"world"))
        client = CoapClient(kernel, stack_a.socket(40000))
        replies = []
        request = CoapMessage(mtype=coap.CON, code=coap.GET)
        request.add_uri_path("/hello")
        client.request("node-b", 5683, request, replies.append)
        kernel.run_until_idle()
        assert replies[0].payload == b"world"

    def test_not_found(self, kernel, network):
        _link, stack_a, stack_b = network
        CoapServer(kernel, stack_b.socket(5683))
        client = CoapClient(kernel, stack_a.socket(40000))
        replies = []
        request = CoapMessage(mtype=coap.CON, code=coap.GET)
        request.add_uri_path("/missing")
        client.request("node-b", 5683, request, replies.append)
        kernel.run_until_idle()
        assert replies[0].code == coap.NOT_FOUND

    def test_retransmission_recovers_from_loss(self, kernel):
        link = Link(kernel, loss=0.4, seed=3)
        a = link.attach(Interface("a"))
        b = link.attach(Interface("b"))
        stack_a, stack_b = UdpStack(a), UdpStack(b)
        server = CoapServer(kernel, stack_b.socket(5683))
        server.register("/r", lambda req, dg: req.reply(coap.CONTENT, b"ok"))
        client = CoapClient(kernel, stack_a.socket(40000))
        replies = []
        request = CoapMessage(mtype=coap.CON, code=coap.GET)
        request.add_uri_path("/r")
        client.request("b", 5683, request, replies.append)
        kernel.run(until_us=120_000_000)
        assert replies and replies[0].payload == b"ok"

    def test_timeout_after_max_retransmits(self, kernel):
        link = Link(kernel, loss=0.0, seed=1)
        a = link.attach(Interface("a"))
        link.attach(Interface("void"))  # exists but no server
        stack_a = UdpStack(a)
        client = CoapClient(kernel, stack_a.socket(40000))
        outcomes = []
        request = CoapMessage(mtype=coap.CON, code=coap.GET)
        request.add_uri_path("/r")
        client.request("void", 5683, request,
                       on_response=lambda r: outcomes.append("response"),
                       on_timeout=lambda: outcomes.append("timeout"))
        kernel.run(until_us=300_000_000)
        assert outcomes == ["timeout"]
        assert client.timeouts == 1

    def test_duplicate_con_replayed_from_cache(self, kernel, network):
        _link, stack_a, stack_b = network
        hits = []
        server = CoapServer(kernel, stack_b.socket(5683), threaded=False)

        def handler(req, dg):
            hits.append(1)
            return req.reply(coap.CONTENT, b"once")

        server.register("/once", handler)
        raw_replies = []
        sock = stack_a.socket(40000)
        sock.on_datagram = lambda dg: raw_replies.append(dg.payload)
        request = CoapMessage(mtype=coap.CON, code=coap.GET, message_id=5,
                              token=b"\x09")
        request.add_uri_path("/once")
        sock.send_to("node-b", 5683, request.encode())
        kernel.run_until_idle()
        sock.send_to("node-b", 5683, request.encode())  # retransmit
        kernel.run_until_idle()
        assert len(hits) == 1  # handler ran once
        assert len(raw_replies) == 2  # but both requests were answered

    def test_blockwise_get_reassembles(self, kernel, network):
        _link, stack_a, stack_b = network
        blob = bytes(range(256)) * 3  # 768 B
        server = CoapServer(kernel, stack_b.socket(5683))
        server.register_blob("/fw/img", lambda: blob)
        client = CoapClient(kernel, stack_a.socket(40000))
        results = []
        client.get_blockwise("node-b", 5683, "/fw/img", results.append)
        kernel.run_until_idle()
        assert results == [blob]

    def test_container_resource_bridge(self, kernel, engine, network):
        from repro.core import FC_HOOK_COAP
        from repro.workloads import coap_handler_program

        _link, stack_a, stack_b = network
        tenant = engine.create_tenant("A")
        tenant.store.store(0x10, 2155)
        container = engine.load(coap_handler_program(), tenant=tenant)
        engine.attach(container, FC_HOOK_COAP)
        server = CoapServer(kernel, stack_b.socket(5683))
        server.register_container("/sensor/temp", engine, container)
        client = CoapClient(kernel, stack_a.socket(40000))
        replies = []
        request = CoapMessage(mtype=coap.CON, code=coap.GET, token=b"\x01\x02")
        request.add_uri_path("/sensor/temp")
        client.request("node-b", 5683, request, replies.append)
        kernel.run_until_idle()
        assert replies[0].code == coap.CONTENT
        assert replies[0].payload == b"2155"

    def test_faulting_container_resource_returns_500(self, kernel, engine, network):
        from repro.core import FC_HOOK_COAP
        from repro.vm import assemble

        _link, stack_a, stack_b = network
        bad = engine.load(assemble(
            "lddw r1, 0xbad\n    ldxdw r0, [r1]\n    exit"))
        engine.attach(bad, FC_HOOK_COAP)
        server = CoapServer(kernel, stack_b.socket(5683))
        server.register_container("/bad", engine, bad)
        client = CoapClient(kernel, stack_a.socket(40000))
        replies = []
        request = CoapMessage(mtype=coap.CON, code=coap.GET)
        request.add_uri_path("/bad")
        client.request("node-b", 5683, request, replies.append)
        kernel.run_until_idle()
        assert replies[0].code == coap.INTERNAL_SERVER_ERROR
