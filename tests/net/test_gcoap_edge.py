"""gcoap server edge cases: dedup bounds, NON requests, malformed input."""

from __future__ import annotations

import pytest

from repro.net import CoapMessage, CoapServer, Interface, Link, UdpStack, coap


@pytest.fixture
def rig(kernel):
    link = Link(kernel, loss=0.0, seed=1)
    a = link.attach(Interface("a"))
    b = link.attach(Interface("b"))
    sa, sb = UdpStack(a), UdpStack(b)
    server = CoapServer(kernel, sb.socket(5683), threaded=False)
    server.register("/echo", lambda req, dg: req.reply(coap.CONTENT,
                                                       req.payload))
    return kernel, sa, server


class TestServerEdgeCases:
    def test_non_requests_are_answered_but_not_cached(self, rig):
        kernel, sa, server = rig
        hits = []
        server.register("/count", lambda req, dg: (
            hits.append(1), req.reply(coap.CONTENT, bytes([len(hits)]))
        )[1])
        sock = sa.socket(40000)
        replies = []
        sock.on_datagram = lambda dg: replies.append(dg.payload)
        request = CoapMessage(mtype=coap.NON, code=coap.GET, message_id=9,
                              token=b"\x01")
        request.add_uri_path("/count")
        sock.send_to("b", 5683, request.encode())
        kernel.run_until_idle()
        sock.send_to("b", 5683, request.encode())
        kernel.run_until_idle()
        # NON has no exchange cache: the handler runs twice.
        assert len(hits) == 2

    def test_dedup_cache_bounded(self, rig):
        kernel, sa, server = rig
        sock = sa.socket(40000)
        for mid in range(80):
            request = CoapMessage(mtype=coap.CON, code=coap.GET,
                                  message_id=mid, token=bytes([mid & 0xFF]))
            request.add_uri_path("/echo")
            sock.send_to("b", 5683, request.encode())
            kernel.run_until_idle()
        assert len(server._dedup) <= 64

    def test_malformed_datagram_ignored(self, rig):
        kernel, sa, server = rig
        sock = sa.socket(40000)
        sock.send_to("b", 5683, b"\xff\xff")
        kernel.run_until_idle()  # must not raise

    def test_ack_and_rst_ignored_by_server(self, rig):
        kernel, sa, server = rig
        sock = sa.socket(40000)
        replies = []
        sock.on_datagram = lambda dg: replies.append(dg.payload)
        for mtype in (coap.ACK, coap.RST):
            message = CoapMessage(mtype=mtype, code=coap.GET, message_id=3)
            message.add_uri_path("/echo")
            sock.send_to("b", 5683, message.encode())
        kernel.run_until_idle()
        assert replies == []

    def test_resource_request_counter(self, rig):
        kernel, sa, server = rig
        resource = server.resources["/echo"]
        sock = sa.socket(40000)
        request = CoapMessage(mtype=coap.CON, code=coap.GET, message_id=1,
                              token=b"\x02")
        request.add_uri_path("/echo")
        sock.send_to("b", 5683, request.encode())
        kernel.run_until_idle()
        assert resource.requests == 1

    def test_trailing_slash_normalized_on_register(self, kernel):
        link = Link(kernel)
        iface = link.attach(Interface("x"))
        server = CoapServer(kernel, UdpStack(iface).socket(5683),
                            threaded=False)
        server.register("/a/b/", lambda req, dg: req.reply(coap.CONTENT))
        assert "/a/b" in server.resources
