"""Link-layer edge cases: fragmentation loss semantics, airtime, accounting."""

from __future__ import annotations

import pytest

from repro.net import Interface, Link, UdpStack
from repro.net.link import FRAME_PAYLOAD


@pytest.fixture
def wire(kernel):
    link = Link(kernel, loss=0.0, seed=1)
    a = link.attach(Interface("a"))
    b = link.attach(Interface("b"))
    return link, UdpStack(a), UdpStack(b)


class TestFragmentation:
    def test_single_frame_below_mtu(self, kernel, wire):
        link, sa, sb = wire
        sb.socket(1)
        sa.socket(2).send_to("b", 1, bytes(FRAME_PAYLOAD - 10))
        kernel.run_until_idle()
        assert link.stats.frames_sent == 1

    def test_fragment_count_scales(self, kernel, wire):
        link, sa, sb = wire
        sb.socket(1)
        sa.socket(2).send_to("b", 1, bytes(FRAME_PAYLOAD * 3))
        kernel.run_until_idle()
        assert link.stats.frames_sent == 4  # 3 full + UDP header spill

    def test_airtime_grows_with_size(self, kernel, wire):
        link, sa, sb = wire
        arrivals = []
        sb.socket(1).on_datagram = lambda dg: arrivals.append(kernel.now_us)
        sa.socket(2).send_to("b", 1, bytes(10))
        kernel.run_until_idle()
        small = arrivals[-1]
        sa.socket(3).send_to("b", 1, bytes(400))
        kernel.run_until_idle()
        large = arrivals[-1] - small
        assert large > small

    def test_any_fragment_loss_kills_the_datagram(self, kernel):
        """Link-layer reassembly has no ARQ: with loss high enough that a
        multi-fragment datagram nearly always loses one frame, almost
        nothing is delivered while single-frame datagrams mostly survive."""
        link = Link(kernel, loss=0.45, seed=13)
        a = link.attach(Interface("a"))
        b = link.attach(Interface("b"))
        sa, sb = UdpStack(a), UdpStack(b)
        got_small, got_big = [], []
        sb.socket(1).on_datagram = lambda dg: got_small.append(1)
        sb.socket(2).on_datagram = lambda dg: got_big.append(1)
        sender_small = sa.socket(3)
        sender_big = sa.socket(4)
        for _ in range(40):
            sender_small.send_to("b", 1, bytes(10))       # 1 fragment
            sender_big.send_to("b", 2, bytes(600))        # 7 fragments
        kernel.run_until_idle()
        assert len(got_small) > len(got_big)
        assert len(got_small) >= 10

    def test_stats_account_bytes(self, kernel, wire):
        link, sa, sb = wire
        sb.socket(1)
        sa.socket(2).send_to("b", 1, bytes(100))
        kernel.run_until_idle()
        assert link.stats.bytes_sent == 104  # payload + UDP header
        assert link.stats.datagrams_delivered == 1


class TestPerInterfaceStats:
    """Each endpoint carries its own traffic counters — the radio-energy
    model charges a *device* for what its own radio did, not a share of
    the whole broadcast domain."""

    def test_sender_and_receiver_count_their_own_sides(self, kernel, wire):
        link, sa, sb = wire
        sb.socket(1)
        sa.socket(2).send_to("b", 1, bytes(50))
        kernel.run_until_idle()
        tx, rx = link.interface("a").stats, link.interface("b").stats
        assert tx.frames_sent == 1
        assert tx.bytes_sent > 50  # payload + UDP header
        assert tx.bytes_received == 0
        assert rx.frames_sent == 0
        assert rx.datagrams_delivered == 1
        assert rx.bytes_received == tx.bytes_sent

    def test_lost_frames_still_charged_to_the_sender(self, kernel):
        link = Link(kernel, loss=0.999, seed=3)
        a = link.attach(Interface("a"))
        link.attach(Interface("b"))
        sa = UdpStack(a)
        sender = sa.socket(2)
        for _ in range(5):
            sender.send_to("b", 1, bytes(10))
        kernel.run_until_idle()
        stats = link.interface("a").stats
        assert stats.frames_sent == 5  # airtime spent whether heard or not
        assert stats.frames_dropped == 5
        assert link.interface("b").stats.bytes_received == 0

    def test_detached_radio_receives_nothing(self, kernel, wire):
        """A frame in flight when the destination powers off lands on the
        dead radio — neither delivered nor counted for the reborn one."""
        link, sa, sb = wire
        sb.socket(1)
        dead = link.interface("b")
        sa.socket(2).send_to("b", 1, bytes(20))
        link.detach("b")  # power-fail while the frame is in the air
        reborn = link.attach(Interface("b"))
        UdpStack(reborn).socket(1)
        kernel.run_until_idle()
        assert dead.stats.datagrams_delivered == 0
        assert reborn.stats.datagrams_delivered == 0
        assert link.stats.datagrams_delivered == 0
