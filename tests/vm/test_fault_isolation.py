"""The paper's headline security property, tested adversarially.

"We want to prove it impossible for [the VM] to access a memory location
out of its app's [granted] memory or to execute an instruction leading to
an undefined behavior, and consequently heading the VM and/or its host to
crash." (§9)

Here: arbitrary bytes are thrown at the loader.  Every program must either
be rejected by the pre-flight checker, or execute to completion / abort
with a *contained* VMFault — never any other exception, never a write
outside the granted regions, never an unterminated execution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm import (
    Interpreter,
    Program,
    VerificationError,
    VMConfig,
    VMFault,
    assemble,
    verify,
)
from repro.vm.memory import MemoryRegion, Permission


def run_adversarial(raw: bytes) -> None:
    """Load arbitrary bytecode the way the hosting engine would."""
    try:
        program = Program.from_bytes(raw, name="adversarial")
    except Exception:
        return  # ragged images are rejected at load: fine
    try:
        verify(program)
    except VerificationError:
        return  # pre-flight rejection: fine
    vm = Interpreter(program, config=VMConfig(branch_limit=200))
    sentinel = MemoryRegion.from_bytes(
        "os-memory", 0x9000_0000, b"\xa5" * 64, Permission.READ
    )
    vm.access_list.add(sentinel)
    try:
        vm.run(context=b"\x00" * 16)
    except VMFault:
        pass  # contained fault: fine
    # The read-only OS region must be byte-identical afterwards.
    assert bytes(sentinel.data) == b"\xa5" * 64


@settings(max_examples=300, deadline=None)
@given(raw=st.binary(min_size=0, max_size=40 * 8))
def test_random_bytes_never_escape(raw):
    run_adversarial(raw)


@settings(max_examples=150, deadline=None)
@given(
    raw=st.lists(
        st.tuples(
            st.sampled_from(sorted(
                __import__("repro.vm.isa", fromlist=["VALID_OPCODES"])
                .VALID_OPCODES)),
            st.integers(0, 255),
            st.integers(0, 65535),
            st.integers(0, (1 << 32) - 1),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_valid_opcodes_random_operands_never_escape(raw):
    """Harder adversary: always-valid opcodes with random operand fields."""
    import struct

    image = b"".join(
        struct.pack("<BBHI", opcode, regs, offset, imm)
        for opcode, regs, offset, imm in raw
    )
    run_adversarial(image)


class TestTargetedEscapes:
    """Hand-written attacks from the threat model (§3)."""

    def test_jump_out_of_sandbox(self):
        """'jumping execution to application code outside of the sandbox'."""
        with pytest.raises(VerificationError):
            verify(assemble("ja +100\n    exit"))

    def test_pointer_forgery_is_caught_at_runtime(self):
        """Computed addresses cannot be checked statically; Fig 4's runtime
        check must stop them."""
        program = assemble("""
    mov r1, r10
    lsh r1, 1          ; forge an address from the stack pointer
    ldxdw r0, [r1+0]
    exit
""")
        verify(program)
        with pytest.raises(VMFault):
            Interpreter(program).run()

    def test_stack_pointer_arithmetic_probe(self):
        """Scanning outward from the stack must fault at the boundary."""
        program = assemble("""
    mov r1, r10
    add r1, 512
    ldxb r0, [r1+0]
    exit
""")
        with pytest.raises(VMFault):
            Interpreter(program).run()

    def test_resource_exhaustion_is_bounded(self):
        """Threat model: 'Resource exhaustion attacks' — the N_b budget
        bounds CPU theft by a malicious tenant."""
        program = assemble("""
busy:
    add r1, 1
    ja busy
""")
        vm = Interpreter(program, config=VMConfig(branch_limit=1000))
        with pytest.raises(VMFault):
            vm.run()

    def test_helper_pointer_abuse_is_checked(self):
        """Helper calls resolve VM pointers through the same access list;
        passing a forged pointer to a store helper must fault, not leak."""
        from repro.vm.helpers import HelperRegistry, BPF_FETCH_GLOBAL

        registry = HelperRegistry()

        def fetch(vm, key, ptr, *_):
            vm.access_list.store(ptr, 4, 0xDEAD)
            return 0

        registry.register(BPF_FETCH_GLOBAL, fetch, cost_key="kv")
        program = assemble("""
    mov r1, 0
    lddw r2, 0x9000000000
    call bpf_fetch_global
    exit
""")
        vm = Interpreter(program, helpers=registry)
        with pytest.raises(VMFault):
            vm.run()
