"""Branch semantics and the finite-execution (N_b) enforcement."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.vm import BranchLimitFault, Interpreter, VMConfig, assemble

from tests.conftest import run_program

U64 = (1 << 64) - 1


def branch_result(op: str, a: int, b: int) -> int:
    """1 when the branch was taken, 0 otherwise."""
    source = f"""
    lddw r1, 0x{a & U64:x}
    lddw r2, 0x{b & U64:x}
    mov r0, 0
    {op} r1, r2, taken
    exit
taken:
    mov r0, 1
    exit
"""
    return run_program(source).value


class TestConditions:
    def test_jeq(self):
        assert branch_result("jeq", 5, 5) == 1
        assert branch_result("jeq", 5, 6) == 0

    def test_jne(self):
        assert branch_result("jne", 5, 6) == 1
        assert branch_result("jne", 5, 5) == 0

    def test_unsigned_comparisons(self):
        assert branch_result("jgt", 6, 5) == 1
        assert branch_result("jgt", 5, 5) == 0
        assert branch_result("jge", 5, 5) == 1
        assert branch_result("jlt", 4, 5) == 1
        assert branch_result("jle", 5, 5) == 1
        # -1 as unsigned is the maximum value.
        assert branch_result("jgt", -1, 1) == 1

    def test_signed_comparisons(self):
        assert branch_result("jsgt", 1, -1) == 1
        assert branch_result("jslt", -2, -1) == 1
        assert branch_result("jsge", -1, -1) == 1
        assert branch_result("jsle", -5, -1) == 1

    def test_jset_tests_bits(self):
        assert branch_result("jset", 0b1010, 0b0010) == 1
        assert branch_result("jset", 0b1010, 0b0101) == 0

    def test_ja_unconditional(self):
        source = """
    mov r0, 0
    ja done
    mov r0, 99
done:
    exit
"""
        assert run_program(source).value == 0

    def test_jump32_truncates_operands(self):
        # In 32 bits, 0x1_00000005 == 5.
        source = """
    lddw r1, 0x100000005
    mov r0, 0
    jeq32 r1, 5, yes
    exit
yes:
    mov r0, 1
    exit
"""
        assert run_program(source).value == 1

    def test_immediate_sign_extended_for_64bit_compare(self):
        assert branch_result("jeq", -1, -1) == 1

    def test_backward_jump_loop(self):
        source = """
    mov r0, 0
    mov r1, 5
loop:
    add r0, 10
    sub r1, 1
    jne r1, 0, loop
    exit
"""
        assert run_program(source).value == 50


class TestFiniteExecution:
    def test_infinite_loop_hits_branch_budget(self):
        program = assemble("""
forever:
    ja forever
""")
        vm = Interpreter(program, config=VMConfig(branch_limit=100))
        with pytest.raises(BranchLimitFault):
            vm.run()
        # The budget bounds the executed instructions too.
        assert vm_last_executed(vm) <= 102

    def test_budget_counts_only_taken_branches(self):
        # 50 not-taken branches cost no budget.
        body = "\n".join("    jeq r1, 1, never" for _ in range(50))
        program = assemble(f"""
    mov r1, 0
{body}
    mov r0, 7
    ja done
never:
    mov r0, 8
done:
    exit
""")
        vm = Interpreter(program, config=VMConfig(branch_limit=2))
        assert vm.run().value == 7

    def test_total_limit_defense_in_depth(self):
        program = assemble("""
    mov r0, 0
loop:
    add r0, 1
    jne r0, 100000, loop
    exit
""")
        vm = Interpreter(program, config=VMConfig(total_limit=1000))
        with pytest.raises(BranchLimitFault):
            vm.run()

    @given(limit=st.integers(1, 50))
    def test_execution_bounded_by_ni_times_nb(self, limit):
        """The paper's bound: executed <= N_i * N_b (+ the final window)."""
        program = assemble("""
loop:
    add r1, 1
    ja loop
""")
        vm = Interpreter(program, config=VMConfig(branch_limit=limit))
        with pytest.raises(BranchLimitFault):
            vm.run()
        n_i = len(program.slots)
        assert vm_last_executed(vm) <= n_i * (limit + 1)


def vm_last_executed(vm: Interpreter) -> int:
    """Executed-instruction count of the last (possibly faulted) run."""
    # run() creates fresh stats per call; re-run capturing them.
    stats_holder = {}
    original = vm._dispatch_loop

    def capture(regs, stats):
        stats_holder["stats"] = stats
        return original(regs, stats)

    vm._dispatch_loop = capture  # type: ignore[method-assign]
    try:
        vm.run()
    except Exception:
        pass
    finally:
        vm._dispatch_loop = original  # type: ignore[method-assign]
    return stats_holder["stats"].executed
