"""Builder, program container, helper registry, compression, JIT install."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm import (
    HelperFault,
    HelperRegistry,
    Instruction,
    Interpreter,
    Program,
    ProgramBuilder,
    R,
    assemble,
    compile_program,
    isa,
)
from repro.vm.compress import analyze, compress, decompress
from repro.vm.instruction import make_wide


class TestBuilder:
    def test_builder_matches_assembler(self):
        source = """
    mov r1, 5
    mov r2, 0
loop:
    add r2, r1
    sub r1, 1
    jne r1, 0, loop
    mov r0, r2
    exit
"""
        built = (
            ProgramBuilder()
            .mov(R(1), 5)
            .mov(R(2), 0)
            .label("loop")
            .add(R(2), R(1))
            .sub(R(1), 1)
            .branch("jne", R(1), 0, "loop")
            .mov(R(0), R(2))
            .exit_()
            .build()
        )
        assert built.to_bytes() == assemble(source).to_bytes()

    def test_builder_program_runs(self):
        program = (
            ProgramBuilder()
            .lddw(R(1), 1 << 40)
            .mov(R(0), R(1))
            .exit_()
            .build()
        )
        assert Interpreter(program).run().value == 1 << 40

    def test_undefined_label_raises(self):
        builder = ProgramBuilder().jump("missing").exit_()
        with pytest.raises(Exception, match="undefined label"):
            builder.build()

    def test_stores_and_loads(self):
        program = (
            ProgramBuilder()
            .mov(R(1), 0x42)
            .stxw(R(10), 8, R(1))
            .ldxw(R(0), R(10), 8)
            .exit_()
            .build()
        )
        assert Interpreter(program).run().value == 0x42


class TestProgram:
    def test_code_and_image_size(self):
        program = Program(
            slots=[Instruction(isa.EXIT)], rodata=b"abc", data=b"xy"
        )
        assert program.code_size == 8
        assert program.image_size == 13

    def test_iter_logical_skips_continuations(self):
        slots = [*make_wide(isa.LDDW, dst=0, imm64=1), Instruction(isa.EXIT)]
        program = Program(slots=slots)
        names = [ins.name for _pc, ins in program.iter_logical()]
        assert names == ["lddw", "exit"]

    def test_opcode_histogram(self):
        program = assemble("mov r0, 1\n    mov r1, 2\n    exit")
        assert program.opcode_histogram() == {"mov": 2, "exit": 1}


class TestHelperRegistry:
    def test_unknown_helper_faults(self):
        registry = HelperRegistry()
        program = assemble("call 0x7f\n    exit")
        with pytest.raises(HelperFault):
            Interpreter(program, helpers=registry).run()

    def test_helper_return_masked_to_64_bits(self):
        registry = HelperRegistry()
        registry.register(0x30, lambda vm, *args: -1)
        program = assemble("call 0x30\n    exit")
        assert Interpreter(program, helpers=registry).run().value == (1 << 64) - 1

    def test_helper_none_return_becomes_zero(self):
        registry = HelperRegistry()
        registry.register(0x30, lambda vm, *args: None)
        program = assemble("mov r0, 9\n    call 0x30\n    exit")
        assert Interpreter(program, helpers=registry).run().value == 0

    def test_helper_receives_r1_to_r5(self):
        captured = {}

        def spy(vm, r1, r2, r3, r4, r5):
            captured.update(dict(r1=r1, r2=r2, r3=r3, r4=r4, r5=r5))
            return 0

        registry = HelperRegistry()
        registry.register(0x30, spy)
        source = "\n".join(f"    mov r{i}, {i * 10}" for i in range(1, 6))
        Interpreter(assemble(source + "\n    call 0x30\n    exit"),
                    helpers=registry).run()
        assert captured == dict(r1=10, r2=20, r3=30, r4=40, r5=50)

    def test_helper_exception_contained_as_fault(self):
        registry = HelperRegistry()
        registry.register(0x30, lambda vm, *args: 1 // 0)
        program = assemble("call 0x30\n    exit")
        with pytest.raises(HelperFault):
            Interpreter(program, helpers=registry).run()


class TestCompression:
    def test_known_sizes(self):
        # `exit` carries no fields: 3 bytes compressed vs 8 fixed.
        program = Program(slots=[Instruction(isa.EXIT)])
        assert len(compress(program)) == 3

    def test_imm8_and_offset8_forms(self):
        program = assemble("add r1, 5\n    exit")  # imm fits a byte
        stats = analyze(program)
        assert stats.compressed_bytes < stats.original_bytes

    def test_paper_expectation_half_of_instructions_shrink(self):
        """§11: dropping unused fields should save on the order of 40-60 %."""
        from repro.workloads import fletcher32_program

        stats = analyze(fletcher32_program())
        assert 30.0 <= stats.saving_percent <= 70.0

    @settings(max_examples=100)
    @given(
        slots=st.lists(
            st.builds(
                Instruction,
                opcode=st.sampled_from(sorted(isa.VALID_OPCODES - isa.WIDE_OPCODES)),
                dst=st.integers(0, 15),
                src=st.integers(0, 15),
                offset=st.integers(-(1 << 15), (1 << 15) - 1),
                imm=st.integers(-(1 << 31), (1 << 31) - 1),
            ),
            max_size=30,
        )
    )
    def test_lossless_roundtrip_property(self, slots):
        program = Program(slots=slots)
        assert decompress(compress(program)) == slots

    def test_wide_instruction_roundtrip(self):
        program = assemble("lddw r1, 0xdeadbeefcafebabe\n    exit")
        assert decompress(compress(program)) == program.slots


class TestJITInstall:
    def test_install_count_equals_slots(self):
        program = assemble("mov r0, 1\n    lddw r1, 5\n    exit")
        compiled = compile_program(program)
        assert compiled.install_instruction_count == len(program.slots)

    def test_jit_verifies_at_install(self):
        bad = Program(slots=[Instruction(isa.MOV64_IMM, dst=12),
                             Instruction(isa.EXIT)])
        with pytest.raises(Exception):
            compile_program(bad)

    def test_jit_respects_branch_budget(self):
        from repro.vm import BranchLimitFault, VMConfig

        program = assemble("x:\n    ja x")
        compiled = compile_program(program, config=VMConfig(branch_limit=10))
        with pytest.raises(BranchLimitFault):
            compiled.run()
