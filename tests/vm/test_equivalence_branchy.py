"""Equivalence of interpreter / CertFC / JIT on *branchy* generated code.

Straight-line equivalence lives in test_equivalence.py; this file generates
programs with bounded loops and forward branches — the control-flow shapes
the JIT's precomputed targets and the interpreter's pc arithmetic must
agree on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.vm import (
    CertFCInterpreter,
    Interpreter,
    VMConfig,
    assemble,
    compile_program,
    verify,
)

_COND = st.sampled_from(["jeq", "jne", "jgt", "jge", "jlt", "jle",
                         "jsgt", "jslt", "jset"])


@st.composite
def branchy_source(draw) -> str:
    """A loop with a conditional lattice inside, always terminating."""
    iterations = draw(st.integers(1, 12))
    cond1, cond2 = draw(_COND), draw(_COND)
    k1 = draw(st.integers(-4, 4))
    k2 = draw(st.integers(0, 7))
    use32 = draw(st.booleans())
    suffix = "32" if use32 else ""
    return f"""
    mov r6, {iterations}
    mov r0, 0
    mov r7, 0
loop:
    add r7, 3
    {cond1}{suffix} r7, {k1}, take_a
    add r0, 1
    ja merge
take_a:
    add r0, 100
    {cond2} r7, {k2}, merge
    add r0, 1000
merge:
    sub r6, 1
    jne r6, 0, loop
    exit
"""


@settings(max_examples=80, deadline=None)
@given(source=branchy_source())
def test_branchy_equivalence(source):
    program = assemble(source)
    verify(program)
    config = VMConfig(branch_limit=1000)
    outcomes = set()
    for factory in (
        lambda: Interpreter(program, config=config),
        lambda: CertFCInterpreter(program, config=config),
        lambda: compile_program(program, config=config),
    ):
        result = factory().run()
        outcomes.add((result.value, result.stats.executed,
                      result.stats.branches_taken))
    assert len(outcomes) == 1, outcomes


@settings(max_examples=30, deadline=None)
@given(
    data=st.binary(min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0)
)
def test_fletcher_jit_equivalence_on_random_inputs(data):
    from repro.vm.memory import Permission
    from repro.workloads.fletcher32 import (
        INPUT_BASE,
        fletcher32_program,
        make_context,
    )

    program = fletcher32_program()
    results = []
    for factory in (Interpreter, compile_program):
        vm = factory(program)
        vm.access_list.grant_bytes("in", INPUT_BASE, data, Permission.READ)
        results.append(vm.run(context=make_context(len(data))).value)
    assert results[0] == results[1]
