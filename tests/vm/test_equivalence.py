"""Semantic equivalence of the three engine builds + the JIT (paper §9).

CertFC is proved equivalent to the optimized interpreter in the paper; here
we check the same property dynamically: for arbitrary generated programs,
all four implementations produce identical results and identical
instruction accounting.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm import (
    CertFCInterpreter,
    Interpreter,
    RbpfInterpreter,
    VMFault,
    assemble,
    compile_program,
    verify,
)

_REG = st.integers(2, 9)  # avoid r0/r1 so results stay interesting
_SMALL = st.integers(-128, 127)


@st.composite
def straightline_source(draw) -> str:
    """Random straight-line arithmetic program ending in exit."""
    lines = [f"    mov r{r}, {draw(_SMALL)}" for r in range(2, 6)]
    for _ in range(draw(st.integers(1, 25))):
        kind = draw(st.sampled_from(["imm", "reg", "stack", "swap"]))
        r1, r2 = draw(_REG), draw(_REG)
        if kind == "imm":
            op = draw(st.sampled_from(
                ["add", "sub", "mul", "or", "and", "xor", "lsh", "rsh",
                 "arsh", "add32", "sub32", "mul32"]))
            operand = draw(st.integers(0, 31)) \
                if op in ("lsh", "rsh", "arsh") else draw(_SMALL)
            lines.append(f"    {op} r{r1}, {operand}")
        elif kind == "reg":
            op = draw(st.sampled_from(["add", "sub", "mul", "or", "and",
                                       "xor", "mov"]))
            lines.append(f"    {op} r{r1}, r{r2}")
        elif kind == "stack":
            offset = draw(st.integers(0, 63)) * 8
            lines.append(f"    stxdw [r10+{offset}], r{r1}")
            lines.append(f"    ldxdw r{r2}, [r10+{offset}]")
        else:
            lines.append(f"    be r{r1}, {draw(st.sampled_from([16, 32, 64]))}")
    lines.append(f"    mov r0, r{draw(_REG)}")
    lines.append("    exit")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(source=straightline_source())
def test_all_implementations_agree(source):
    program = assemble(source)
    verify(program)
    results = {}
    for name, factory in (
        ("femto", lambda: Interpreter(program)),
        ("rbpf", lambda: RbpfInterpreter(program)),
        ("certfc", lambda: CertFCInterpreter(program)),
        ("jit", lambda: compile_program(program)),
    ):
        outcome = factory().run()
        results[name] = (outcome.value, outcome.stats.executed)
    assert len(set(results.values())) == 1, results


@settings(max_examples=20, deadline=None)
@given(source=straightline_source())
def test_kind_counts_identical_across_builds(source):
    program = assemble(source)
    verify(program)
    reference = Interpreter(program).run().stats.kind_counts
    for factory in (lambda: RbpfInterpreter(program),
                    lambda: CertFCInterpreter(program),
                    lambda: compile_program(program)):
        assert factory().run().stats.kind_counts == reference


class TestLoopEquivalence:
    SOURCE = """
    mov r0, 0
    mov r1, 25
loop:
    add r0, r1
    sub r1, 1
    jne r1, 0, loop
    exit
"""

    def test_loop_same_result_everywhere(self):
        program = assemble(self.SOURCE)
        expected = sum(range(1, 26))
        assert Interpreter(program).run().value == expected
        assert CertFCInterpreter(program).run().value == expected
        assert compile_program(program).run().value == expected

    def test_branch_accounting_matches(self):
        program = assemble(self.SOURCE)
        interp = Interpreter(program).run()
        jit = compile_program(program).run()
        assert interp.stats.branches_taken == jit.stats.branches_taken == 24


class TestFaultEquivalence:
    def test_memory_fault_in_both(self):
        program = assemble("lddw r1, 0x123456\n    ldxb r0, [r1]\n    exit")
        for vm in (Interpreter(program), CertFCInterpreter(program),
                   compile_program(program)):
            with pytest.raises(VMFault):
                vm.run()

    def test_division_fault_in_both(self):
        program = assemble("mov r1, 0\n    mov r0, 4\n    div r0, r1\n    exit")
        for vm in (Interpreter(program), CertFCInterpreter(program),
                   compile_program(program)):
            with pytest.raises(VMFault):
                vm.run()


class TestCertFCProfile:
    def test_certfc_needs_more_instance_ram(self):
        """Table 3: CertFC stores extra VM state (~50 B more)."""
        program = assemble("mov r0, 0\n    exit")
        base = Interpreter(program).ram_bytes
        certfc = CertFCInterpreter(program).ram_bytes
        assert 40 <= certfc - base <= 64

    def test_rbpf_slightly_smaller_than_femto(self):
        program = assemble("mov r0, 0\n    exit")
        assert RbpfInterpreter(program).ram_bytes < Interpreter(program).ram_bytes

    def test_per_instance_ram_is_624_bytes(self):
        """The paper's headline per-instance figure (Table 3, §10.3)."""
        program = assemble("mov r0, 0\n    exit")
        assert Interpreter(program).ram_bytes == 624
