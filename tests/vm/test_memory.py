"""MemoryRegion / AccessList unit tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.vm import MemoryFault
from repro.vm.memory import AccessList, MemoryRegion, Permission


@pytest.fixture
def access():
    acl = AccessList()
    acl.grant_bytes("rw", 0x1000, bytes(64), Permission.READ_WRITE)
    acl.grant_bytes("ro", 0x2000, b"\x11" * 32, Permission.READ)
    return acl


class TestRegion:
    def test_contains_boundaries(self):
        region = MemoryRegion.zeroed("r", 100, 10, Permission.READ)
        assert region.contains(100, 1)
        assert region.contains(109, 1)
        assert region.contains(100, 10)
        assert not region.contains(99, 1)
        assert not region.contains(109, 2)
        assert not region.contains(110, 1)

    def test_little_endian_load_store(self):
        region = MemoryRegion.zeroed("r", 0, 8, Permission.READ_WRITE)
        region.store(0, 4, 0x11223344)
        assert region.data[0] == 0x44
        assert region.load(0, 4) == 0x11223344

    def test_store_truncates_to_width(self):
        region = MemoryRegion.zeroed("r", 0, 8, Permission.READ_WRITE)
        region.store(0, 1, 0x1FF)
        assert region.load(0, 1) == 0xFF


class TestAccessList:
    def test_read_write_in_rw_region(self, access):
        access.store(0x1000, 8, 0xABCD)
        assert access.load(0x1000, 8) == 0xABCD

    def test_read_in_ro_region(self, access):
        assert access.load(0x2000, 1) == 0x11

    def test_write_in_ro_region_denied(self, access):
        with pytest.raises(MemoryFault, match="lacks WRITE"):
            access.store(0x2000, 1, 0)

    def test_unmapped_address_denied(self, access):
        with pytest.raises(MemoryFault, match="outside all granted"):
            access.load(0x3000, 1)

    def test_access_straddling_regions_denied(self, access):
        with pytest.raises(MemoryFault):
            access.load(0x1000 + 60, 8)

    def test_overlapping_grant_rejected(self, access):
        with pytest.raises(ValueError, match="overlaps"):
            access.grant_bytes("bad", 0x1010, bytes(4), Permission.READ)

    def test_adjacent_grant_allowed(self, access):
        access.grant_bytes("next", 0x1040, bytes(4), Permission.READ)

    def test_bulk_read_write(self, access):
        access.write_bytes(0x1000, b"hello")
        assert access.read_bytes(0x1000, 5) == b"hello"

    def test_bulk_write_to_ro_denied(self, access):
        with pytest.raises(MemoryFault):
            access.write_bytes(0x2000, b"x")

    def test_empty_bulk_ops_are_noops(self, access):
        assert access.read_bytes(0x1000, 0) == b""
        access.write_bytes(0x1000, b"")

    def test_read_cstring_stops_at_nul(self, access):
        access.write_bytes(0x1000, b"hi\x00there")
        assert access.read_cstring(0x1000) == b"hi"

    def test_read_cstring_faults_at_region_end(self, access):
        # Fill the RO region with no terminator: the walk must fault at
        # the boundary rather than read adjacent memory.
        with pytest.raises(MemoryFault):
            access.read_cstring(0x2000, max_len=64)

    def test_ram_accounting(self, access):
        assert access.ram_bytes() == 96

    @given(addr=st.integers(0, 0x4000), size=st.sampled_from([1, 2, 4, 8]))
    def test_find_partitions_address_space(self, addr, size):
        """Every (addr, size) either resolves to exactly one region that
        fully contains it, or faults — no partial grants."""
        acl = AccessList()
        acl.grant_bytes("rw", 0x1000, bytes(64), Permission.READ_WRITE)
        acl.grant_bytes("ro", 0x2000, b"\x11" * 32, Permission.READ)
        try:
            region = acl.find(addr, size, write=False)
        except MemoryFault:
            inside = [r for r in acl.regions if r.contains(addr, size)]
            assert not inside
        else:
            assert region.contains(addr, size)
