"""Memory instruction semantics and the runtime access-list checks (Fig 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.vm import Interpreter, MemoryFault, Permission, assemble
from repro.vm.memory import CONTEXT_BASE, STACK_BASE

from tests.conftest import run_program


class TestStackAccess:
    def test_store_load_roundtrip_all_widths(self):
        source = """
    mov r1, 0x12345678
    stxw [r10+0], r1
    ldxw r0, [r10+0]
    exit
"""
        assert run_program(source).value == 0x12345678

    def test_byte_and_half_widths_truncate(self):
        source = """
    mov r1, 0x1234
    stxb [r10+0], r1
    ldxb r0, [r10+0]
    exit
"""
        assert run_program(source).value == 0x34

    def test_store_immediate(self):
        assert run_program("stdw [r10+8], 99\n    ldxdw r0, [r10+8]\n    exit").value == 99

    def test_double_word_roundtrip(self):
        source = """
    lddw r1, 0x1122334455667788
    stxdw [r10+16], r1
    ldxdw r0, [r10+16]
    exit
"""
        assert run_program(source).value == 0x1122334455667788

    def test_loads_zero_extend(self):
        source = """
    mov r1, -1
    stxdw [r10+0], r1
    ldxw r0, [r10+0]
    exit
"""
        assert run_program(source).value == 0xFFFFFFFF

    def test_stack_is_zeroed_between_runs(self):
        program = assemble("""
    ldxdw r0, [r10+32]
    stdw [r10+32], 77
    exit
""")
        vm = Interpreter(program)
        assert vm.run().value == 0
        # The previous run wrote 77; a fresh run must see zeroes again.
        assert vm.run().value == 0

    def test_r10_points_at_stack_base(self):
        assert run_program("mov r0, r10\n    exit").value == STACK_BASE


class TestIsolation:
    def test_read_below_stack_faults(self):
        with pytest.raises(MemoryFault):
            run_program("ldxdw r0, [r10-8]\n    exit")

    def test_read_past_stack_end_faults(self):
        with pytest.raises(MemoryFault):
            run_program("ldxw r0, [r10+512]\n    exit")

    def test_partial_overlap_at_boundary_faults(self):
        # 8-byte read starting 4 bytes before the end crosses the boundary.
        with pytest.raises(MemoryFault):
            run_program("ldxdw r0, [r10+508]\n    exit")

    def test_arbitrary_address_faults(self):
        with pytest.raises(MemoryFault):
            run_program("lddw r1, 0xdeadbeef\n    ldxb r0, [r1]\n    exit")

    def test_null_dereference_faults(self):
        with pytest.raises(MemoryFault):
            run_program("mov r1, 0\n    ldxw r0, [r1]\n    exit")

    def test_write_to_read_only_region_faults(self):
        program = assemble("ldxdw r0, [r1+0]\n    stxdw [r1+0], r0\n    exit")
        vm = Interpreter(program)
        vm.bind_context(b"\x01" * 16, perms=Permission.READ)
        with pytest.raises(MemoryFault):
            vm.run()

    def test_read_only_context_still_readable(self):
        program = assemble("ldxw r0, [r1+0]\n    exit")
        vm = Interpreter(program)
        vm.bind_context((42).to_bytes(8, "little"), perms=Permission.READ)
        assert vm.run().value == 42

    def test_firewall_pattern_read_allowed_write_denied(self):
        """The paper's example: read-only access to a network packet."""
        program_read = assemble("ldxb r0, [r1+0]\n    exit")
        vm = Interpreter(program_read)
        vm.bind_context(b"\x99" + bytes(7), perms=Permission.READ)
        assert vm.run().value == 0x99

    @given(offset=st.integers(-(1 << 15), (1 << 15) - 1))
    def test_no_stack_relative_access_escapes(self, offset):
        """Property: any [r10+offset] access either stays in the 512-byte
        stack or faults — never touches another region."""
        program = assemble(f"ldxb r0, [r10{'+' if offset >= 0 else '-'}{abs(offset)}]\n    exit")
        vm = Interpreter(program)
        vm.bind_context(b"\xaa" * 64)
        if 0 <= offset < 512:
            assert vm.run().value == 0
        else:
            with pytest.raises(MemoryFault):
                vm.run()


class TestContext:
    def test_context_arrives_in_r1(self):
        result = run_program("mov r0, r1\n    exit", context=b"\x00" * 8)
        assert result.value == CONTEXT_BASE

    def test_context_writable_by_default(self):
        program = assemble("""
    ldxw r2, [r1+0]
    add r2, 1
    stxw [r1+0], r2
    mov r0, r2
    exit
""")
        vm = Interpreter(program)
        result = vm.run(context=(7).to_bytes(8, "little"))
        assert result.value == 8
        assert int.from_bytes(vm.context_bytes()[:4], "little") == 8

    def test_no_context_leaves_r1_zero(self):
        assert run_program("mov r0, r1\n    exit").value == 0


class TestDataSections:
    def test_lddwr_reads_rodata(self):
        program = assemble(
            "lddwr r1, 4\n    ldxb r0, [r1+0]\n    exit",
            rodata=b"abcdEfgh",
        )
        assert Interpreter(program).run().value == ord("E")

    def test_rodata_not_writable(self):
        program = assemble(
            "lddwr r1, 0\n    stb [r1+0], 1\n    exit", rodata=b"abcd"
        )
        with pytest.raises(MemoryFault):
            Interpreter(program).run()

    def test_lddwd_data_read_write(self):
        program = assemble(
            """
    lddwd r1, 0
    ldxb r2, [r1+0]
    add r2, 1
    stxb [r1+0], r2
    ldxb r0, [r1+0]
    exit
""",
            data=b"\x10\x20",
        )
        assert Interpreter(program).run().value == 0x11
