"""Differential execution: every workload on every engine build.

The cycle models are engine-independent by construction — the same
program must yield identical return values, identical context bytes and
identical per-kind instruction counts whether it runs on the optimized
interpreter, the defensive CertFC build, or the template JIT.  This test
runs **every** program shipped in :mod:`repro.workloads` (including the
twelve Fig. 8 microbenchmark pairs) through all three engines and
compares the full observable surface.
"""

from __future__ import annotations

import struct

import pytest

from repro.core import FC_HOOK_COAP, FC_HOOK_SCHED, FC_HOOK_TIMER, HostingEngine
from repro.core.syscalls import CoapResponseContext
from repro.rtos import Kernel, nrf52840, synthetic_temperature
from repro.vm import CertFCInterpreter, Interpreter, compile_program
from repro.vm.memory import Permission
from repro.workloads import (
    FLETCHER32_INPUT,
    coap_handler_program,
    fletcher32_program,
    sensor_program,
    thread_counter_program,
)
from repro.workloads.fletcher32 import INPUT_BASE, make_context
from repro.workloads.microbench import all_pairs

ENGINE_FACTORIES = (
    ("interpreter", Interpreter),
    ("certfc", CertFCInterpreter),
    ("jit", compile_program),
)

#: Engine implementation names accepted by HostingEngine, for workloads
#: that need helpers and therefore run under the full middleware.
IMPLEMENTATIONS = ("femto-containers", "certfc", "jit")


def _bare_outcomes(program, context=None, grants=()):
    """Run ``program`` on all three bare engines; return observables."""
    outcomes = {}
    for name, factory in ENGINE_FACTORIES:
        vm = factory(program)
        for grant in grants:
            vm.access_list.grant_bytes(*grant)
        result = vm.run(context=context)
        outcomes[name] = (
            result.value,
            vm.context_bytes(),
            result.stats.kind_counts,
            result.stats.branches_taken,
            result.stats.helper_calls,
        )
    return outcomes


def _assert_identical(outcomes):
    reference = outcomes["interpreter"]
    for name, observed in outcomes.items():
        assert observed == reference, (
            f"engine {name!r} diverged: {observed} != {reference}"
        )


class TestBareWorkloads:
    def test_fletcher32_differential(self):
        outcomes = _bare_outcomes(
            fletcher32_program(),
            context=make_context(),
            grants=[("in", INPUT_BASE, FLETCHER32_INPUT, Permission.READ)],
        )
        _assert_identical(outcomes)
        assert outcomes["interpreter"][0] != 0  # actually computed something

    def test_fletcher32_null_context_differential(self):
        _assert_identical(_bare_outcomes(fletcher32_program()))

    @pytest.mark.parametrize(
        "pair", all_pairs(iterations=6, unroll=3), ids=lambda p: p.key
    )
    def test_microbench_differential(self, pair):
        """All twelve Fig. 8 instruction programs, measured and baseline."""
        _assert_identical(_bare_outcomes(pair.measured))
        _assert_identical(_bare_outcomes(pair.baseline))

    def test_total_limit_abort_differential(self):
        """An aborted run must carry identical accounting on every engine
        (the engine charges modelled cycles for aborted runs too)."""
        from repro.vm import VMConfig, VMFault

        config = VMConfig(total_limit=50)
        outcomes = {}
        for name, factory in ENGINE_FACTORIES:
            vm = factory(fletcher32_program(), config=config)
            vm.access_list.grant_bytes(
                "in", INPUT_BASE, FLETCHER32_INPUT, Permission.READ
            )
            with pytest.raises(VMFault) as excinfo:
                vm.run(context=make_context())
            outcomes[name] = (str(excinfo.value), excinfo.value.pc)
        reference = outcomes["interpreter"]
        for name, observed in outcomes.items():
            assert observed == reference, name


def _engine(implementation):
    return HostingEngine(Kernel(nrf52840()), implementation=implementation)


def _run_outcome(run, container):
    vm = container.vm
    return (
        run.value,
        run.fault is None,
        vm.context_bytes(),
        run.stats.kind_counts,
        run.stats.branches_taken,
        run.stats.helper_calls,
    )


class TestHostedWorkloads:
    """Helper-using workloads, run under the full hosting engine."""

    def test_thread_counter_differential(self):
        outcomes = {}
        for implementation in IMPLEMENTATIONS:
            engine = _engine(implementation)
            container = engine.load(thread_counter_program())
            engine.attach(container, FC_HOOK_SCHED)
            runs = []
            for previous, nxt in ((0, 3), (3, 3), (1, 0)):
                run = engine.execute(
                    container, struct.pack("<QQ", previous, nxt)
                )
                runs.append(_run_outcome(run, container))
            outcomes[implementation] = (
                runs, dict(engine.global_store.snapshot())
            )
        reference = outcomes["femto-containers"]
        for implementation, observed in outcomes.items():
            assert observed == reference, implementation

    def test_sensor_differential(self):
        outcomes = {}
        for implementation in IMPLEMENTATIONS:
            kernel = Kernel(nrf52840())
            engine = HostingEngine(kernel, implementation=implementation)
            engine.saul.register(synthetic_temperature(
                kernel, seed=7, swing_centi_c=0, noise_centi_c=0,
                base_centi_c=2150,
            ))
            tenant = engine.create_tenant("A")
            container = engine.load(sensor_program(), tenant=tenant)
            engine.attach(container, FC_HOOK_TIMER)
            runs = [
                _run_outcome(
                    engine.execute(container, struct.pack("<QQ", 0, 0)),
                    container,
                )
                for _ in range(3)
            ]
            outcomes[implementation] = (runs, dict(tenant.store.snapshot()))
        reference = outcomes["femto-containers"]
        for implementation, observed in outcomes.items():
            assert observed == reference, implementation

    def test_shared_template_instances_differential(self):
        """Two JIT instances stamped from one cached template must stay
        bit-identical to each other *and* to the interpreter build —
        per-instance state (registers, stack, access list, stats) is
        fully separated from the shared immutable template."""
        from repro.vm import Program

        raw = thread_counter_program().to_bytes()
        contexts = [struct.pack("<QQ", 0, pid) for pid in (3, 3, 5, 0, 3)]

        def engine_outcomes(implementation, instances):
            engine = _engine(implementation)
            containers = [
                engine.load(Program.from_bytes(raw), name=f"i{index}")
                for index in range(instances)
            ]
            for container in containers:
                engine.attach(container, FC_HOOK_SCHED)
            runs = [
                [_run_outcome(engine.execute(c, ctx), c) for ctx in contexts]
                for c in containers
            ]
            return engine, containers, runs

        engine, containers, jit_runs = engine_outcomes("jit", 2)
        assert containers[0].vm._entry is containers[1].vm._entry
        # Both instances of the shared template behave identically...
        assert jit_runs[0] == jit_runs[1]
        # ...and identically to a cold interpreter engine.
        _, _, interp_runs = engine_outcomes("femto-containers", 1)
        assert jit_runs[0] == interp_runs[0]

    def test_coap_handler_differential(self):
        outcomes = {}
        for implementation in IMPLEMENTATIONS:
            engine = _engine(implementation)
            tenant = engine.create_tenant("A")
            tenant.store.store(0x10, 777)
            container = engine.load(coap_handler_program(), tenant=tenant)
            engine.attach(container, FC_HOOK_COAP)
            pdu = CoapResponseContext(token_length=2)
            run = engine.execute(container, struct.pack("<Q", 1), pdu=pdu)
            outcomes[implementation] = (
                _run_outcome(run, container),
                pdu.code,
                pdu.content_format,
                pdu.payload_bytes(),
            )
        reference = outcomes["femto-containers"]
        for implementation, observed in outcomes.items():
            assert observed == reference, implementation
