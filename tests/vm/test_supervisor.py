"""Container supervision: crash-loop quarantine, probation, strike-out.

The legacy engine behaviour (detach after ``FAULT_DETACH_THRESHOLD``
*lifetime* faults) is replaced by a per-slot
:class:`~repro.vm.supervisor.ContainerSupervisor` tracking *streaks*:
consecutive contained faults (or consecutive cycle-ceiling overruns)
quarantine the slot with exponential-backoff probation, and three
strikes make the quarantine permanent.  These tests drive the policy
through the public engine API only — attach, execute, and the kernel's
virtual clock for the probation timers.
"""

from __future__ import annotations

import pytest

from repro.core import (
    FC_HOOK_SCHED,
    FC_HOOK_TIMER,
    ContainerState,
    HostingEngine,
)
from repro.rtos import Kernel
from repro.vm import assemble
from repro.vm.supervisor import SupervisorConfig

RETURN_7 = "mov r0, 7\n    exit"
CRASHER = "lddw r1, 0xbad0000\n    ldxdw r0, [r1]\n    exit"
#: Faults when the first context u64 is non-zero, clean otherwise.
CONDITIONAL = """
    ldxdw r2, [r1]
    jeq r2, 0, +3
    lddw r1, 0xbad0000
    ldxdw r0, [r1]
    exit
"""

BAD = (1).to_bytes(8, "little")
GOOD = (0).to_bytes(8, "little")


def make_engine(board, **config) -> HostingEngine:
    kernel = Kernel(board)
    return HostingEngine(kernel, supervisor=SupervisorConfig(**config))


class TestFaultStreakQuarantine:
    def test_streak_quarantines_and_detaches(self, board_m4):
        engine = make_engine(board_m4, fault_streak=3)
        container = engine.attach(engine.load(assemble(CRASHER)),
                                  FC_HOOK_TIMER)
        for _ in range(3):
            engine.execute(container)
        assert container.state is ContainerState.DETACHED
        health = engine.supervisor.health(FC_HOOK_TIMER, container.name)
        assert health.quarantined and health.strikes == 1
        assert health.state == "quarantined"
        assert health.rearm_at_us is not None
        assert engine.supervisor.quarantined_slots() \
            == [(FC_HOOK_TIMER, container.name)]

    def test_clean_run_resets_streak(self, board_m4):
        engine = make_engine(board_m4, fault_streak=3)
        container = engine.attach(engine.load(assemble(CONDITIONAL)),
                                  FC_HOOK_TIMER)
        for _ in range(2):
            assert engine.execute(container, context=BAD).fault is not None
        assert engine.execute(container, context=GOOD).ok
        for _ in range(2):
            engine.execute(container, context=BAD)
        # 2 faults, clean, 2 faults: never 3 consecutive — still armed.
        assert container.state is ContainerState.ATTACHED
        assert engine.supervisor.health(FC_HOOK_TIMER,
                                        container.name).strikes == 0

    def test_default_threshold_is_engine_fault_detach(self, board_m4,
                                                      monkeypatch):
        # fault_streak=None reads FAULT_DETACH_THRESHOLD dynamically, so
        # suites that lower the class attribute keep their semantics.
        monkeypatch.setattr(HostingEngine, "FAULT_DETACH_THRESHOLD", 2)
        kernel = Kernel(board_m4)
        engine = HostingEngine(kernel)
        container = engine.attach(engine.load(assemble(CRASHER)),
                                  FC_HOOK_TIMER)
        engine.execute(container)
        assert container.state is ContainerState.ATTACHED
        engine.execute(container)
        assert container.state is ContainerState.DETACHED


class TestProbation:
    def test_probation_rearms_after_backoff(self, board_m4):
        engine = make_engine(board_m4, fault_streak=2,
                             probation_base_us=1_000.0)
        container = engine.attach(engine.load(assemble(CONDITIONAL)),
                                  FC_HOOK_TIMER)
        for _ in range(2):
            engine.execute(container, context=BAD)
        assert container.state is ContainerState.DETACHED
        engine.kernel.run(until_us=engine.kernel.now_us + 2_000.0)
        assert container.state is ContainerState.ATTACHED
        health = engine.supervisor.health(FC_HOOK_TIMER, container.name)
        assert health.probations == 1 and not health.quarantined
        # And the re-armed container runs again.
        assert engine.execute(container, context=GOOD).ok

    def test_probation_attach_charges_cycles(self, board_m4):
        engine = make_engine(board_m4, fault_streak=1,
                             probation_base_us=1_000.0)
        container = engine.attach(engine.load(assemble(CRASHER)),
                                  FC_HOOK_TIMER)
        engine.execute(container)
        before = engine.kernel.clock.cycles
        engine.kernel.run(until_us=engine.kernel.now_us + 2_000.0)
        # The re-attach pays the verify+install price on the virtual
        # clock — probation is never free.
        assert engine.kernel.clock.cycles > before
        assert container.state is ContainerState.ATTACHED

    def test_backoff_doubles_per_strike(self, board_m4):
        engine = make_engine(board_m4, fault_streak=1, max_strikes=10,
                             probation_base_us=1_000.0,
                             probation_cap_us=3_000.0)
        container = engine.attach(engine.load(assemble(CRASHER)),
                                  FC_HOOK_TIMER)
        delays = []
        for _ in range(3):
            engine.execute(container)  # fault -> quarantine
            health = engine.supervisor.health(FC_HOOK_TIMER, container.name)
            delays.append(health.rearm_at_us - engine.kernel.now_us)
            engine.kernel.run(until_us=health.rearm_at_us + 1.0)
            assert container.state is ContainerState.ATTACHED
        assert delays == [1_000.0, 2_000.0, 3_000.0]  # base, 2x, capped

    def test_permanent_after_max_strikes(self, board_m4):
        engine = make_engine(board_m4, fault_streak=1, max_strikes=3,
                             probation_base_us=1_000.0)
        container = engine.attach(engine.load(assemble(CRASHER)),
                                  FC_HOOK_TIMER)
        for strike in range(3):
            engine.execute(container)
            engine.kernel.run(until_us=engine.kernel.now_us + 60_000.0)
        health = engine.supervisor.health(FC_HOOK_TIMER, container.name)
        assert health.permanent and health.state == "permanent"
        assert health.rearm_at_us is None
        assert container.state is ContainerState.DETACHED
        # No timer will ever bring it back.
        engine.kernel.run(until_us=engine.kernel.now_us + 1_000_000.0)
        assert container.state is ContainerState.DETACHED
        assert engine.supervisor.quarantines == 3


class TestSlotOwnership:
    def test_fresh_install_cancels_stale_probation(self, board_m4):
        """A new container taking the slot must kill the old probation
        timer: a rolled-back slot can never be re-poisoned by a timer
        that outlived its rollback."""
        engine = make_engine(board_m4, fault_streak=1,
                             probation_base_us=5_000.0)
        poison = engine.attach(engine.load(assemble(CRASHER), name="app"),
                               FC_HOOK_TIMER)
        engine.execute(poison)
        assert poison.state is ContainerState.DETACHED
        fixed = engine.attach(engine.load(assemble(RETURN_7), name="app"),
                              FC_HOOK_TIMER)
        engine.kernel.run(until_us=engine.kernel.now_us + 60_000.0)
        hook = engine.hook(FC_HOOK_TIMER)
        assert hook.containers == [fixed]
        assert poison.state is ContainerState.DETACHED
        health = engine.supervisor.health(FC_HOOK_TIMER, "app")
        assert health is None or health.container is not poison

    def test_manual_reattach_clears_quarantine(self, board_m4):
        engine = make_engine(board_m4, fault_streak=1,
                             probation_base_us=5_000.0)
        container = engine.attach(engine.load(assemble(CONDITIONAL)),
                                  FC_HOOK_TIMER)
        engine.execute(container, context=BAD)
        assert container.state is ContainerState.DETACHED
        engine.attach(container, FC_HOOK_TIMER)  # operator override
        health = engine.supervisor.health(FC_HOOK_TIMER, container.name)
        assert not health.quarantined
        # The cancelled timer must not fire a duplicate attach.
        engine.kernel.run(until_us=engine.kernel.now_us + 60_000.0)
        assert engine.hook(FC_HOOK_TIMER).containers == [container]


class TestOverrunQuarantine:
    def test_cycle_ceiling_overruns_quarantine(self, board_m4):
        engine = make_engine(board_m4, cycle_ceiling=1, overrun_streak=4)
        container = engine.attach(engine.load(assemble(RETURN_7)),
                                  FC_HOOK_SCHED)
        for _ in range(3):
            engine.execute(container)
        assert container.state is ContainerState.ATTACHED
        engine.execute(container)
        assert container.state is ContainerState.DETACHED
        health = engine.supervisor.health(FC_HOOK_SCHED, container.name)
        assert health.overruns == 4 and health.quarantined

    def test_no_ceiling_means_no_overrun_tracking(self, board_m4):
        engine = make_engine(board_m4)
        container = engine.attach(engine.load(assemble(RETURN_7)),
                                  FC_HOOK_SCHED)
        for _ in range(10):
            engine.execute(container)
        health = engine.supervisor.health(FC_HOOK_SCHED, container.name)
        assert health.overruns == 0
        assert container.state is ContainerState.ATTACHED


class TestCostNeutrality:
    def test_fault_free_cycles_identical_with_and_without(self, board_m4):
        """Supervision charges nothing on the clean path: modelled cycles
        of a healthy workload are byte-identical either way."""
        charged = []
        for supervised in (True, False):
            kernel = Kernel(board_m4)
            engine = HostingEngine(kernel, supervisor=supervised)
            container = engine.attach(engine.load(assemble(RETURN_7)),
                                      FC_HOOK_TIMER)
            before = kernel.clock.cycles
            for _ in range(50):
                engine.execute(container)
            charged.append(kernel.clock.cycles - before)
        assert charged[0] == charged[1]


class TestSnapshotExposure:
    def test_runtime_snapshot_includes_quarantined_slot(self, board_m4):
        engine = make_engine(board_m4, fault_streak=1,
                             probation_base_us=60_000_000.0)
        container = engine.attach(engine.load(assemble(CRASHER), name="bad"),
                                  FC_HOOK_TIMER)
        engine.execute(container)
        snapshot = engine.runtime_snapshot()
        key = (FC_HOOK_TIMER, "bad")
        assert key in snapshot  # despite being detached
        assert snapshot[key].health.quarantined

    def test_disabled_supervisor_keeps_legacy_detach(self, board_m4):
        kernel = Kernel(board_m4)
        engine = HostingEngine(kernel, supervisor=False)
        assert engine.supervisor is None
        container = engine.attach(engine.load(assemble(CRASHER)),
                                  FC_HOOK_TIMER)
        for _ in range(HostingEngine.FAULT_DETACH_THRESHOLD):
            engine.execute(container)
        assert container.state is ContainerState.DETACHED
