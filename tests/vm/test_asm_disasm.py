"""Assembler / disassembler tests including the round-trip property."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.vm import AssemblerError, assemble, disassemble, isa
from repro.vm.disasm import disassemble_instruction
from repro.vm.instruction import Instruction


class TestAssembler:
    def test_labels_resolve_forward_and_backward(self):
        program = assemble("""
start:
    mov r0, 0
    jeq r0, 1, end
    ja start
end:
    exit
""")
        # jeq at slot 1, end at slot 3 -> offset 1; ja at 2 -> offset -3.
        assert program.slots[1].offset == 1
        assert program.slots[2].offset == -3

    def test_label_on_same_line(self):
        program = assemble("top: mov r0, 1\n    ja top")
        assert program.symbols["top"] == 0

    def test_numeric_branch_offsets(self):
        program = assemble("jeq r1, 0, +1\n    exit\n    exit")
        assert program.slots[0].offset == 1

    def test_helper_call_by_name_and_number(self):
        program = assemble("call bpf_fetch_global\n    call 0x42\n    exit")
        assert program.slots[0].imm == 0x13
        assert program.slots[1].imm == 0x42

    def test_memory_operand_forms(self):
        program = assemble("""
    ldxw r0, [r1]
    ldxw r0, [r1+4]
    ldxw r0, [r1-4]
    exit
""")
        assert [slot.offset for slot in program.slots[:3]] == [0, 4, -4]

    def test_comments_all_styles(self):
        program = assemble("""
    mov r0, 1   ; semicolon
    mov r1, 2   # hash
    mov r2, 3   // slashes
    exit
""")
        assert len(program.slots) == 4

    def test_lddw_occupies_two_slots(self):
        program = assemble("lddw r1, 0x1122334455667788\n    exit")
        assert len(program.slots) == 3
        assert program.slots[1].opcode == 0

    def test_hex_and_negative_immediates(self):
        program = assemble("mov r0, 0xff\n    add r0, -2\n    exit")
        assert program.slots[0].imm == 255
        assert program.slots[1].imm == -2

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1\n    exit")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("mov r0\n    exit")

    def test_unknown_label_raises(self):
        with pytest.raises(AssemblerError, match="unknown branch target"):
            assemble("ja nowhere\n    exit")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\na:\n    exit")

    def test_bad_register_raises(self):
        with pytest.raises(AssemblerError):
            assemble("mov r99, 1\n    exit")


class TestDisassembler:
    def test_single_instruction_forms(self):
        cases = [
            (Instruction(isa.MOV64_IMM, dst=1, imm=5), "mov r1, 5"),
            (Instruction(isa.ADD64_REG, dst=1, src=2), "add r1, r2"),
            (Instruction(isa.NEG64, dst=3), "neg r3"),
            (Instruction(isa.LDXW, dst=0, src=1, offset=4), "ldxw r0, [r1+4]"),
            (Instruction(isa.STXH, dst=10, src=2, offset=-2),
             "stxh [r10-2], r2"),
            (Instruction(isa.STB, dst=1, offset=0, imm=7), "stb [r1], 7"),
            (Instruction(isa.CALL, imm=0x13), "call bpf_fetch_global"),
            (Instruction(isa.EXIT), "exit"),
        ]
        for ins, expected in cases:
            assert disassemble_instruction(ins) == expected

    def test_program_roundtrip_with_branches(self):
        source = """
    mov r0, 0
    mov r1, 10
loop:
    add r0, r1
    sub r1, 1
    jne r1, 0, loop
    jeq r0, 55, good
    mov r0, 0
good:
    exit
"""
        program = assemble(source)
        rebuilt = assemble(disassemble(program))
        assert rebuilt.to_bytes() == program.to_bytes()

    def test_workloads_roundtrip(self):
        from repro.workloads import (
            coap_handler_program,
            fletcher32_program,
            sensor_program,
            thread_counter_program,
        )

        for program in (fletcher32_program(), thread_counter_program(),
                        sensor_program(), coap_handler_program()):
            rebuilt = assemble(disassemble(program))
            assert rebuilt.to_bytes() == program.to_bytes()


# -- property: random template programs round-trip ---------------------------

_REGS = st.integers(0, 9)
_IMM = st.integers(-(1 << 31), (1 << 31) - 1)
_OFF = st.integers(-64, 64)


@st.composite
def template_instruction(draw) -> str:
    kind = draw(st.sampled_from(
        ["alu_imm", "alu_reg", "neg", "endian", "load", "store_imm",
         "store_reg", "call", "lddw"]
    ))
    r1, r2 = draw(_REGS), draw(_REGS)
    if kind == "alu_imm":
        op = draw(st.sampled_from(
            ["add", "sub", "mul", "or", "and", "xor", "mov",
             "add32", "mov32", "xor32"]))
        return f"{op} r{r1}, {draw(_IMM)}"
    if kind == "alu_reg":
        op = draw(st.sampled_from(["add", "sub", "mul", "div", "mov", "arsh"]))
        return f"{op} r{r1}, r{r2}"
    if kind == "neg":
        return f"neg r{r1}"
    if kind == "endian":
        return f"{draw(st.sampled_from(['le', 'be']))} r{r1}, " \
               f"{draw(st.sampled_from([16, 32, 64]))}"
    if kind == "load":
        size = draw(st.sampled_from(["b", "h", "w", "dw"]))
        return f"ldx{size} r{r1}, [r{r2}+{draw(st.integers(0, 64))}]"
    if kind == "store_imm":
        size = draw(st.sampled_from(["b", "h", "w", "dw"]))
        return f"st{size} [r{r1}+{draw(st.integers(0, 64))}], {draw(_IMM)}"
    if kind == "store_reg":
        size = draw(st.sampled_from(["b", "h", "w", "dw"]))
        return f"stx{size} [r{r1}+{draw(st.integers(0, 64))}], r{r2}"
    if kind == "call":
        return f"call 0x{draw(st.integers(0, 255)):x}"
    return f"lddw r{r1}, 0x{draw(st.integers(0, (1 << 64) - 1)):x}"


@given(st.lists(template_instruction(), min_size=0, max_size=30))
def test_roundtrip_property(lines):
    source = "\n".join(f"    {line}" for line in lines) + "\n    exit"
    program = assemble(source)
    rebuilt = assemble(disassemble(program))
    assert rebuilt.to_bytes() == program.to_bytes()
