"""The shared program-image cache: hashing, sharing, isolation, bounds."""

from __future__ import annotations

import pytest

from repro.core import HostingEngine
from repro.rtos import Kernel, nrf52840
from repro.vm import (
    ImageCache,
    Interpreter,
    Program,
    VerificationError,
    VerifierConfig,
    VMConfig,
    assemble,
    compile_program,
)
from repro.vm.imagecache import IMAGE_CACHE

LOOPY = """
    mov r0, 0
    mov r1, 0
loop:
    add r0, 3
    add r1, 1
    jlt r1, 10, loop
    exit
"""

CALLER = """
    mov r1, 1
    mov r2, 2
    call 0x01
    exit
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts and ends with a cold process-wide cache."""
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


class TestImageHash:
    def test_same_bytes_same_hash(self):
        a = assemble(LOOPY)
        b = Program.from_bytes(a.to_bytes(), name="different-name")
        assert a.image_hash == b.image_hash  # name excluded: content only

    def test_different_text_different_hash(self):
        assert assemble(LOOPY).image_hash != assemble(CALLER).image_hash

    def test_data_sections_are_hashed_unambiguously(self):
        raw = assemble(LOOPY).to_bytes()
        a = Program.from_bytes(raw, rodata=b"ab", data=b"")
        b = Program.from_bytes(raw, rodata=b"a", data=b"b")
        c = Program.from_bytes(raw, rodata=b"ab", data=b"")
        assert a.image_hash != b.image_hash  # section boundary matters
        assert a.image_hash == c.image_hash

    def test_hash_cache_invalidated_on_slot_replacement(self):
        program = assemble(LOOPY)
        first = program.image_hash
        program.slots = assemble(CALLER).slots
        assert program.image_hash != first

    def test_hash_cache_invalidated_on_data_section_reassignment(self):
        program = assemble(LOOPY)
        first = program.image_hash
        program.data = b"\x01\x02"
        second = program.image_hash
        assert second != first
        program.rodata = b"ro"
        assert program.image_hash != second


class TestSharedArtifacts:
    def test_decoded_shared_across_program_objects(self):
        raw = assemble(LOOPY).to_bytes()
        a, b = Program.from_bytes(raw), Program.from_bytes(raw)
        assert a.decoded is b.decoded

    def test_jit_template_shared_across_instances(self):
        raw = assemble(LOOPY).to_bytes()
        one = compile_program(Program.from_bytes(raw))
        two = compile_program(Program.from_bytes(raw))
        assert one._entry is two._entry
        assert one.jit_source == two.jit_source
        # ...but all run state is private: both execute independently
        # with bit-identical observable results.
        r1, r2 = one.run(), two.run()
        assert (r1.value, r1.stats.kind_counts) == (r2.value,
                                                    r2.stats.kind_counts)

    def test_total_limit_keys_separate_templates(self):
        raw = assemble(LOOPY).to_bytes()
        plain = compile_program(Program.from_bytes(raw))
        budgeted = compile_program(Program.from_bytes(raw),
                                   config=VMConfig(total_limit=1000))
        assert plain._entry is not budgeted._entry

    def test_verify_cache_respects_helper_grants(self):
        """A cached permissive verdict must never leak to a stricter
        contract: the VerifierConfig is part of the cache key."""
        program = assemble(CALLER)
        IMAGE_CACHE.verify(program, VerifierConfig())  # permissive, cached
        with pytest.raises(VerificationError):
            IMAGE_CACHE.verify(
                program, VerifierConfig(allowed_helpers=frozenset())
            )

    def test_rejections_are_not_cached(self):
        program = assemble(CALLER)
        strict = VerifierConfig(allowed_helpers=frozenset())
        for _ in range(2):  # both attempts re-verify and re-raise
            with pytest.raises(VerificationError):
                IMAGE_CACHE.verify(program, strict)
        assert IMAGE_CACHE.stats()["report_entries"] == 0

    def test_mutable_helper_set_is_coerced_hashable(self):
        config = VerifierConfig(allowed_helpers={1, 2, 3})
        assert isinstance(config.allowed_helpers, frozenset)
        hash(config)  # must be usable as a cache key


class TestBoundsAndMaintenance:
    def test_lru_bound_is_respected(self):
        cache = ImageCache(max_entries=4)
        for value in range(10):
            program = assemble(f"mov r0, {value}\n    exit")
            cache.decoded(program)
        assert len(cache._decoded) == 4

    def test_invalidate_drops_all_artifacts_of_one_image(self):
        program = assemble(LOOPY)
        compile_program(program)
        IMAGE_CACHE.verify(program)
        IMAGE_CACHE.invalidate(program.image_hash)
        stats = IMAGE_CACHE.stats()
        assert stats["template_entries"] == 0
        assert stats["report_entries"] == 0

    def test_hit_miss_accounting(self):
        raw = assemble(LOOPY).to_bytes()
        compile_program(Program.from_bytes(raw))
        baseline = IMAGE_CACHE.stats()
        compile_program(Program.from_bytes(raw))
        after = IMAGE_CACHE.stats()
        assert after["misses"] == baseline["misses"]  # no new misses
        assert after["hits"] > baseline["hits"]


class TestVirtualClockOblivious:
    def test_attach_charges_same_cycles_cold_and_cached(self):
        """The cache is a wall-clock optimization only: every attach of
        the same image charges the identical modelled verify+install
        cost, cold or cached."""
        raw = assemble(LOOPY).to_bytes()
        for implementation in ("femto-containers", "jit"):
            IMAGE_CACHE.clear()
            engine = HostingEngine(Kernel(nrf52840()),
                                   implementation=implementation)
            charges = []
            for index in range(3):
                container = engine.load(Program.from_bytes(raw),
                                        name=f"i{index}")
                before = engine.kernel.clock.cycles
                engine.attach(container, "fc.hook.timer")
                charges.append(engine.kernel.clock.cycles - before)
            assert len(set(charges)) == 1, (implementation, charges)

    def test_shared_instances_keep_private_state(self):
        raw = assemble(LOOPY).to_bytes()
        one = compile_program(Program.from_bytes(raw))
        two = compile_program(Program.from_bytes(raw))
        assert one.access_list is not two.access_list
        assert one._regs is not two._regs
        assert one.stack is not two.stack
        reference = Interpreter(Program.from_bytes(raw)).run()
        for vm in (one, two):
            result = vm.run()
            assert result.value == reference.value
            assert result.stats.kind_counts == reference.stats.kind_counts
