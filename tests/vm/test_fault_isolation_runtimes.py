"""Fault containment parity across rBPF, mini-Wasm and script containers.

The §9 isolation property is runtime-agnostic in the multi-runtime deploy
plane: an out-of-bounds access, a divide-by-zero and a runaway loop must
each abort as a *contained* fault of the same taxonomy (MemoryFault /
DivisionFault / BranchLimitFault) regardless of which runtime hosts the
container — and the engine's fault-detach plus the supervisor's
crash-loop quarantine must fire identically, never disturbing the
well-behaved neighbours sharing the hook.
"""

from __future__ import annotations

import pytest

from repro.core import FC_HOOK_FANOUT, HostingEngine
from repro.core.hooks import Hook, HookMode
from repro.deploy import ImageSpec
from repro.rtos import Kernel
from repro.vm import assemble
from repro.vm.imagecache import IMAGE_CACHE
from repro.workloads import thread_counter_program

WASM_HEADER = "module pages=1\nfunc main params=1 locals=0\n"

#: runtime -> fault kind -> ImageSpec factory.  Every program verifies
#: (or parses) clean and faults only at run time.
FAULTY = {
    "rbpf": {
        "MemoryFault": lambda: ImageSpec.from_program(assemble(
            "lddw r1, 0x10\n    ldxb r0, [r1]\n    exit", name="oob")),
        "DivisionFault": lambda: ImageSpec.from_program(assemble(
            "mov r1, 0\n    mov r0, 7\n    div r0, r1\n    exit",
            name="div0")),
        "BranchLimitFault": lambda: ImageSpec.from_program(assemble(
            "spin:\n    add r1, 1\n    ja spin", name="spin")),
    },
    "wasm": {
        "MemoryFault": lambda: ImageSpec.from_wasm(
            WASM_HEADER + "    i32.const 999999\n    i32.load8_u 0\n"
            "    return\nend\n", name="oob"),
        "DivisionFault": lambda: ImageSpec.from_wasm(
            WASM_HEADER + "    i32.const 7\n    i32.const 0\n"
            "    i32.div_u\n    return\nend\n", name="div0"),
        "BranchLimitFault": lambda: ImageSpec.from_wasm(
            WASM_HEADER + "    loop\n        br 0\n    end\n"
            "    i32.const 0\n    return\nend\n", name="spin"),
    },
    "script": {
        "MemoryFault": lambda: ImageSpec.from_script(
            "return input[100000];", name="oob"),
        "DivisionFault": lambda: ImageSpec.from_script(
            "return 7 / 0;", name="div0"),
        "BranchLimitFault": lambda: ImageSpec.from_script(
            "var x = 0;\nwhile (1 > 0) { x = x + 1; }\nreturn x;",
            name="spin"),
    },
}

CASES = [(runtime, kind)
         for runtime, kinds in FAULTY.items()
         for kind in kinds]


@pytest.fixture(autouse=True)
def fresh_cache():
    IMAGE_CACHE.clear()
    yield
    IMAGE_CACHE.clear()


def make_engine() -> HostingEngine:
    engine = HostingEngine(Kernel(), implementation="jit")
    engine.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.SYNC))
    return engine


def attach_neighbours(engine: HostingEngine) -> list:
    """One well-behaved container per runtime, sharing the hook."""
    neighbours = []
    for spec in (
        ImageSpec.from_program(thread_counter_program(), name="good-rbpf"),
        ImageSpec.from_wasm(
            WASM_HEADER + "    i32.const 42\n    return\nend\n",
            name="good-wasm"),
        ImageSpec.from_script("return 7;", name="good-script"),
    ):
        container = engine.load(spec.instantiate(), name=spec.name)
        engine.attach(container, FC_HOOK_FANOUT)
        neighbours.append(container)
    return neighbours


@pytest.mark.parametrize("runtime,kind", CASES,
                         ids=[f"{r}-{k}" for r, k in CASES])
class TestFaultMatrix:
    def test_fault_contained_with_expected_kind(self, runtime, kind):
        engine = make_engine()
        spec = FAULTY[runtime][kind]()
        container = engine.load(spec.instantiate(), name="bad")
        engine.attach(container, FC_HOOK_FANOUT)
        run = engine.execute(container, context=bytearray(16))
        assert not run.ok
        assert run.fault.kind == kind
        # The host kernel keeps running; the fault is recorded, not raised.
        assert container.fault_count == 1

    def test_neighbours_undisturbed(self, runtime, kind):
        engine = make_engine()
        neighbours = attach_neighbours(engine)
        bad = engine.load(FAULTY[runtime][kind]().instantiate(), name="bad")
        engine.attach(bad, FC_HOOK_FANOUT)
        firing = engine.fire_hook(FC_HOOK_FANOUT, context=bytearray(16))
        by_name = {run.container.name: run for run in firing.runs}
        assert not by_name["bad"].ok
        for neighbour in neighbours:
            assert by_name[neighbour.name].ok, neighbour.name
            assert neighbour.fault_count == 0

    def test_crash_loop_detaches_only_the_sick_slot(self, runtime, kind):
        engine = make_engine()
        neighbours = attach_neighbours(engine)
        bad = engine.load(FAULTY[runtime][kind]().instantiate(), name="bad")
        engine.attach(bad, FC_HOOK_FANOUT)
        for _ in range(engine.FAULT_DETACH_THRESHOLD):
            engine.execute(bad, context=bytearray(16))
        attached = [c.name for c in engine.hook(FC_HOOK_FANOUT).containers]
        assert "bad" not in attached
        assert sorted(attached) == sorted(n.name for n in neighbours)
        assert (FC_HOOK_FANOUT, "bad") in engine.supervisor.quarantined_slots()
