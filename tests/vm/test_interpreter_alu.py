"""ALU semantics: 64-bit, 32-bit, signed ops, byte swaps, division faults."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.vm import DivisionFault, Interpreter, assemble

from tests.conftest import run_program

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1


def run_expr(setup: str) -> int:
    return run_program(f"{setup}\n    exit").value


class TestAlu64:
    def test_mov_and_add_imm(self):
        assert run_expr("mov r0, 40\n    add r0, 2") == 42

    def test_add_reg(self):
        assert run_expr("mov r0, 40\n    mov r1, 2\n    add r0, r1") == 42

    def test_add_negative_imm_sign_extends(self):
        assert run_expr("mov r0, 10\n    add r0, -3") == 7

    def test_sub_wraps_unsigned(self):
        assert run_expr("mov r0, 0\n    sub r0, 1") == U64

    def test_mul(self):
        assert run_expr("mov r0, 7\n    mul r0, 6") == 42

    def test_mul_wraps_64(self):
        result = run_expr("lddw r0, 0xffffffffffffffff\n    mul r0, 2")
        assert result == U64 - 1

    def test_div_unsigned(self):
        assert run_expr("mov r0, 42\n    div r0, 5") == 8

    def test_div_by_zero_register_faults(self):
        program = assemble("mov r0, 1\n    mov r1, 0\n    div r0, r1\n    exit")
        with pytest.raises(DivisionFault):
            Interpreter(program).run()

    def test_mod(self):
        assert run_expr("mov r0, 42\n    mod r0, 5") == 2

    def test_mod_by_zero_register_faults(self):
        program = assemble("mov r0, 1\n    mov r1, 0\n    mod r0, r1\n    exit")
        with pytest.raises(DivisionFault):
            Interpreter(program).run()

    def test_bitwise_ops(self):
        assert run_expr("mov r0, 0xf0\n    or r0, 0x0f") == 0xFF
        assert run_expr("mov r0, 0xff\n    and r0, 0x0f") == 0x0F
        assert run_expr("mov r0, 0xff\n    xor r0, 0xf0") == 0x0F

    def test_shifts(self):
        assert run_expr("mov r0, 1\n    lsh r0, 40") == 1 << 40
        assert run_expr("lddw r0, 0x8000000000000000\n    rsh r0, 63") == 1

    def test_shift_amount_masked_to_63(self):
        assert run_expr("mov r0, 1\n    mov r1, 64\n    lsh r0, r1") == 1

    def test_arsh_sign_extends(self):
        # -8 >> 1 arithmetically is -4.
        assert run_expr("mov r0, -8\n    arsh r0, 1") == U64 - 3

    def test_neg(self):
        assert run_expr("mov r0, 5\n    neg r0") == U64 - 4


class TestAlu32:
    def test_add32_truncates_and_zero_extends(self):
        result = run_expr("lddw r0, 0xffffffffffffffff\n    add32 r0, 1")
        assert result == 0  # upper half cleared by 32-bit op

    def test_mov32_zero_extends(self):
        result = run_expr("lddw r0, 0x1122334455667788\n    mov32 r0, r0")
        assert result == 0x55667788

    def test_sub32_wraps(self):
        assert run_expr("mov32 r0, 0\n    sub32 r0, 1") == U32

    def test_neg32(self):
        assert run_expr("mov r0, 5\n    neg32 r0") == U32 - 4

    def test_arsh32(self):
        assert run_expr("mov32 r0, 0x80000000\n    arsh32 r0, 31") == U32

    def test_div32(self):
        assert run_expr("mov r0, 100\n    div32 r0, 7") == 14


class TestEndian:
    def test_le_truncates(self):
        assert run_expr("lddw r0, 0x1122334455667788\n    le r0, 16") == 0x7788
        assert run_expr("lddw r0, 0x1122334455667788\n    le r0, 32") == 0x55667788

    def test_be16_swaps(self):
        assert run_expr("mov r0, 0x1234\n    be r0, 16") == 0x3412

    def test_be32_swaps(self):
        assert run_expr("mov r0, 0x12345678\n    be r0, 32") == 0x78563412

    def test_be64_swaps(self):
        result = run_expr("lddw r0, 0x1122334455667788\n    be r0, 64")
        assert result == 0x8877665544332211


class TestAluProperties:
    @given(a=st.integers(0, U64), b=st.integers(0, U64))
    def test_add_matches_python_semantics(self, a, b):
        source = f"""
    lddw r0, 0x{a:x}
    lddw r1, 0x{b:x}
    add r0, r1
    exit
"""
        assert run_program(source).value == (a + b) & U64

    @given(a=st.integers(0, U64), shift=st.integers(0, 63))
    def test_lsh_rsh_inverse_on_low_bits(self, a, shift):
        source = f"""
    lddw r0, 0x{a:x}
    lsh r0, {shift}
    rsh r0, {shift}
    exit
"""
        expected = ((a << shift) & U64) >> shift
        assert run_program(source).value == expected

    @given(a=st.integers(0, U64), b=st.integers(1, U64))
    def test_div_mod_reconstruct(self, a, b):
        source = f"""
    lddw r0, 0x{a:x}
    lddw r1, 0x{b:x}
    lddw r2, 0x{a:x}
    div r0, r1
    mod r2, r1
    mul r0, r1
    add r0, r2
    exit
"""
        assert run_program(source).value == a
