"""Execution tracer tests."""

from __future__ import annotations

from repro.vm import assemble
from repro.vm.trace import TracingInterpreter, trace_program


class TestTracer:
    def test_trace_records_every_instruction(self):
        program = assemble("mov r0, 1\n    add r0, 2\n    exit")
        trace = trace_program(program)
        assert len(trace) == 3
        assert trace.entries[0].text == "mov r0, 1"
        assert trace.entries[1].text == "add r0, 2"
        assert trace.entries[2].text == "exit"

    def test_trace_pc_follows_control_flow(self):
        program = assemble("""
    mov r0, 0
    ja skip
    mov r0, 99
skip:
    exit
""")
        trace = trace_program(program)
        assert [entry.pc for entry in trace.entries] == [0, 1, 3]

    def test_register_values_observed(self):
        program = assemble("mov r3, 7\n    add r3, 1\n    mov r0, r3\n    exit")
        trace = trace_program(program)
        assert trace.entries[0].touched == 3
        assert trace.entries[0].value == 7
        assert trace.entries[1].value == 8

    def test_trace_bounded(self):
        program = assemble("""
    mov r1, 1000
loop:
    sub r1, 1
    jne r1, 0, loop
    exit
""")
        trace = trace_program(program, max_entries=50)
        assert len(trace) == 50
        assert trace.truncated

    def test_trace_resets_between_runs(self):
        program = assemble("mov r0, 1\n    exit")
        vm = TracingInterpreter(program)
        vm.run()
        vm.run()
        assert len(vm.trace) == 2

    def test_wide_instruction_rendered_once(self):
        program = assemble("lddw r1, 0xdeadbeef\n    exit")
        trace = trace_program(program)
        assert len(trace) == 2
        assert "lddw r1, 0xdeadbeef" in trace.entries[0].text

    def test_format_output(self):
        program = assemble("mov r0, 5\n    exit")
        text = trace_program(program).format()
        assert "pc=   0" in text
        assert "mov r0, 5" in text

    def test_format_with_limit(self):
        program = assemble("mov r0, 1\n    mov r1, 2\n    exit")
        text = trace_program(program).format(limit=1)
        assert "mov r0, 1" in text
        assert "exit" not in text

    def test_results_match_untraced_interpreter(self):
        from repro.vm import Interpreter

        program = assemble("""
    mov r1, 10
    mov r0, 0
loop:
    add r0, r1
    sub r1, 1
    jne r1, 0, loop
    exit
""")
        vm = TracingInterpreter(program)
        assert vm.run().value == Interpreter(program).run().value == 55
