"""Fault-boundary and cache-coherence tests for the AccessList fast path.

The bisect + MRU-cache implementation must be observationally identical to
the reference linear scan: accesses fault exactly at region boundaries,
never partially succeed, and the MRU cache never serves stale regions
after the region set changes (most importantly after ``bind_context``
remaps the context region between hook firings).
"""

from __future__ import annotations

import pytest

from repro.vm import Interpreter, MemoryFault, assemble
from repro.vm.memory import CONTEXT_BASE, AccessList, MemoryRegion, Permission


@pytest.fixture
def adjacent():
    """Two directly adjacent regions with different permissions."""
    acl = AccessList()
    acl.grant_bytes("lo", 0x1000, bytes(range(32)), Permission.READ_WRITE)
    acl.grant_bytes("hi", 0x1020, b"\xaa" * 32, Permission.READ)
    return acl


class TestStraddlingAccess:
    def test_access_straddling_adjacent_regions_denied(self, adjacent):
        """A load spanning the seam of two *adjacent* grants must fault:
        regions are distinct protection domains even when contiguous."""
        with pytest.raises(MemoryFault):
            adjacent.load(0x1020 - 4, 8)

    def test_store_straddling_adjacent_regions_denied(self, adjacent):
        with pytest.raises(MemoryFault):
            adjacent.store(0x1020 - 1, 2, 0xFFFF)

    def test_last_byte_of_low_region_ok(self, adjacent):
        assert adjacent.load(0x101F, 1) == 31

    def test_first_byte_of_high_region_ok(self, adjacent):
        assert adjacent.load(0x1020, 1) == 0xAA

    def test_straddle_denied_even_after_mru_warmup(self, adjacent):
        # Warm the MRU cache on the low region, then straddle from it.
        adjacent.load(0x1000, 8)
        with pytest.raises(MemoryFault):
            adjacent.load(0x101C, 8)

    def test_cstring_continues_across_adjacent_regions(self, adjacent):
        """read_cstring resolves per region but must keep walking into an
        adjacent grant, exactly like the byte-wise reference walk."""
        adjacent.write_bytes(0x1000 + 28, b"abcd")  # runs to the seam
        # 'hi' region continues with 0xAA bytes, no NUL within max_len.
        assert adjacent.read_cstring(0x1000 + 28, max_len=8) == (
            b"abcd" + b"\xaa" * 4
        )

    def test_cstring_faults_at_unmapped_boundary(self, adjacent):
        # No terminator before the end of the *high* region, and nothing
        # is mapped after it: the walk must fault exactly at the edge.
        with pytest.raises(MemoryFault):
            adjacent.read_cstring(0x1020, max_len=64)


class TestZeroSizeAccess:
    def test_zero_size_read_inside_region(self, adjacent):
        assert adjacent.read_bytes(0x1010, 0) == b""

    def test_zero_size_read_outside_any_region(self, adjacent):
        # The reference implementation short-circuits empty reads before
        # consulting the allow list; keep that contract.
        assert adjacent.read_bytes(0xDEAD_0000, 0) == b""

    def test_zero_size_write_is_noop(self, adjacent):
        adjacent.write_bytes(0xDEAD_0000, b"")
        adjacent.write_bytes(0x1020, b"")  # read-only region: still a no-op


class TestPermissionFaults:
    def test_write_to_read_only_region_denied(self, adjacent):
        with pytest.raises(MemoryFault, match="lacks WRITE"):
            adjacent.store(0x1020, 1, 0)

    def test_write_denied_even_on_mru_hit(self, adjacent):
        adjacent.load(0x1020, 4)  # make the read-only region the MRU
        with pytest.raises(MemoryFault, match="lacks WRITE"):
            adjacent.store(0x1024, 4, 1)

    def test_read_of_write_only_region_denied(self):
        acl = AccessList()
        acl.add(MemoryRegion.zeroed("wo", 0x2000, 16, Permission.WRITE))
        acl.store(0x2000, 4, 7)
        with pytest.raises(MemoryFault, match="lacks READ"):
            acl.load(0x2000, 4)


class TestMruInvalidation:
    def test_bind_context_remap_invalidates_mru(self):
        """After bind_context replaces the context region, the old (larger)
        region must not be served from the MRU cache."""
        program = assemble("ldxb r0, [r1+0]\n    exit")
        vm = Interpreter(program)
        vm.bind_context(b"\x11" * 16)
        # Warm the MRU on the 16-byte context region.
        assert vm.access_list.load(CONTEXT_BASE + 12, 1) == 0x11
        # Remap with a *smaller* context: the tail must now be unmapped.
        vm.bind_context(b"\x22" * 4)
        assert vm.access_list.load(CONTEXT_BASE, 1) == 0x22
        with pytest.raises(MemoryFault):
            vm.access_list.load(CONTEXT_BASE + 12, 1)

    def test_bind_context_remap_changes_permissions(self):
        program = assemble("mov r0, 0\n    exit")
        vm = Interpreter(program)
        vm.bind_context(b"\x00" * 8, perms=Permission.READ_WRITE)
        vm.access_list.store(CONTEXT_BASE, 1, 0x7F)  # warm MRU for writes
        vm.bind_context(b"\x00" * 8, perms=Permission.READ)
        with pytest.raises(MemoryFault, match="lacks WRITE"):
            vm.access_list.store(CONTEXT_BASE, 1, 0x7F)

    def test_remove_invalidates_mru(self):
        acl = AccessList()
        region = acl.grant_bytes("g", 0x3000, bytes(8), Permission.READ)
        acl.load(0x3000, 8)
        assert acl.remove(region) is True
        with pytest.raises(MemoryFault, match="outside all granted"):
            acl.load(0x3000, 8)

    def test_remove_absent_region_is_noop(self):
        acl = AccessList()
        stray = MemoryRegion.zeroed("stray", 0x4000, 8, Permission.READ)
        assert acl.remove(stray) is False

    def test_vm_sees_fresh_context_after_rebind(self):
        """End-to-end: consecutive runs with different contexts (the hook
        firing pattern) read fresh bytes through the VM's load path."""
        program = assemble("ldxb r0, [r1+0]\n    exit")
        vm = Interpreter(program)
        assert vm.run(context=b"\x0a").value == 0x0A
        assert vm.run(context=b"\x0b").value == 0x0B
