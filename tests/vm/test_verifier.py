"""Pre-flight checker tests: every documented rejection, plus acceptance."""

from __future__ import annotations

import pytest

from repro.vm import (
    Instruction,
    Program,
    VerificationError,
    VerifierConfig,
    assemble,
    isa,
    verify,
)
from repro.vm.instruction import make_wide


def program_of(*slots: Instruction) -> Program:
    return Program(slots=list(slots))


EXIT = Instruction(isa.EXIT)


class TestAccepts:
    def test_minimal_program(self):
        report = verify(program_of(Instruction(isa.MOV64_IMM, dst=0), EXIT))
        assert report.instruction_count == 2

    def test_report_counts_branches_and_helpers(self):
        program = assemble("""
    mov r0, 0
    jeq r0, 0, done
    call 0x13
done:
    exit
""")
        report = verify(program)
        assert report.branch_count == 1
        assert report.helper_ids == {0x13}

    def test_backward_ja_terminator_accepted(self):
        program = assemble("""
top:
    mov r0, 1
    jeq r0, 2, out
    ja top
out:
    exit
""")
        verify(program)

    def test_store_via_r10_base_is_allowed(self):
        # r10 as a store *address base* is fine; only register writes are not.
        verify(program_of(
            Instruction(isa.STW, dst=isa.REG_STACK, offset=0, imm=1), EXIT
        ))


class TestRejects:
    def test_empty_program(self):
        with pytest.raises(VerificationError):
            verify(program_of())

    def test_unknown_opcode(self):
        with pytest.raises(VerificationError, match="unknown opcode"):
            verify(program_of(Instruction(0xFF), EXIT))

    def test_register_field_out_of_range(self):
        # dst=12 is encodable (4 bits) but no such register exists.
        with pytest.raises(VerificationError, match="register field"):
            verify(program_of(Instruction(isa.MOV64_IMM, dst=12), EXIT))

    def test_src_register_out_of_range(self):
        with pytest.raises(VerificationError, match="register field"):
            verify(program_of(Instruction(isa.MOV64_REG, dst=0, src=11), EXIT))

    def test_write_to_r10_rejected(self):
        with pytest.raises(VerificationError, match="read-only register r10"):
            verify(program_of(Instruction(isa.MOV64_IMM, dst=10), EXIT))

    def test_load_into_r10_rejected(self):
        with pytest.raises(VerificationError, match="read-only register r10"):
            verify(program_of(
                Instruction(isa.LDXW, dst=10, src=1), EXIT
            ))

    def test_jump_past_end_rejected(self):
        with pytest.raises(VerificationError, match="jump target"):
            verify(program_of(Instruction(isa.JA, offset=5), EXIT))

    def test_jump_before_start_rejected(self):
        with pytest.raises(VerificationError, match="jump target"):
            verify(program_of(Instruction(isa.JA, offset=-2), EXIT))

    def test_jump_into_wide_instruction_rejected(self):
        wide = make_wide(isa.LDDW, dst=1, imm64=1)
        with pytest.raises(VerificationError, match="wide instruction"):
            verify(program_of(
                Instruction(isa.JA, offset=1),  # lands on continuation slot
                *wide,
                EXIT,
            ))

    def test_truncated_wide_instruction_rejected(self):
        first, _ = make_wide(isa.LDDW, dst=1, imm64=1)
        with pytest.raises(VerificationError, match="truncated"):
            verify(program_of(first))

    def test_malformed_continuation_rejected(self):
        first, _ = make_wide(isa.LDDW, dst=1, imm64=1)
        bad_cont = Instruction(0, dst=3)  # continuation must be all-zero
        with pytest.raises(VerificationError, match="continuation"):
            verify(program_of(first, bad_cont, EXIT))

    def test_fallthrough_end_rejected(self):
        with pytest.raises(VerificationError, match="fall through"):
            verify(program_of(Instruction(isa.MOV64_IMM, dst=0)))

    def test_division_by_zero_immediate_rejected(self):
        with pytest.raises(VerificationError, match="division by zero"):
            verify(program_of(Instruction(isa.DIV64_IMM, dst=0, imm=0), EXIT))

    def test_oversized_shift_rejected(self):
        with pytest.raises(VerificationError, match="shift amount"):
            verify(program_of(Instruction(isa.LSH64_IMM, dst=0, imm=64), EXIT))

    def test_oversized_shift32_rejected(self):
        with pytest.raises(VerificationError, match="shift amount"):
            verify(program_of(Instruction(isa.LSH32_IMM, dst=0, imm=32), EXIT))

    def test_bad_byteswap_width_rejected(self):
        with pytest.raises(VerificationError, match="byteswap width"):
            verify(program_of(Instruction(isa.LE, dst=0, imm=24), EXIT))

    def test_ni_budget_enforced(self):
        slots = [Instruction(isa.MOV64_IMM, dst=0)] * 10 + [EXIT]
        with pytest.raises(VerificationError, match="N_i budget"):
            verify(Program(slots=slots), VerifierConfig(max_instructions=5))

    def test_helper_whitelist_enforced(self):
        program = program_of(Instruction(isa.CALL, imm=0x13), EXIT)
        with pytest.raises(VerificationError, match="not allowed by contract"):
            verify(program, VerifierConfig(allowed_helpers=frozenset({0x01})))

    def test_helper_whitelist_allows_listed(self):
        program = program_of(Instruction(isa.CALL, imm=0x13), EXIT)
        report = verify(program,
                        VerifierConfig(allowed_helpers=frozenset({0x13})))
        assert report.helper_ids == {0x13}

    def test_data_extensions_can_be_disabled(self):
        program = Program(slots=list(make_wide(isa.LDDWR, dst=1, imm64=0)) + [EXIT],
                          rodata=b"abc")
        with pytest.raises(VerificationError, match="extension"):
            verify(program, VerifierConfig(allow_data_extensions=False))

    def test_lddwr_outside_rodata_rejected(self):
        program = Program(
            slots=list(make_wide(isa.LDDWR, dst=1, imm64=10)) + [EXIT],
            rodata=b"abc",
        )
        with pytest.raises(VerificationError, match="rodata"):
            verify(program)

    def test_lddwd_outside_data_rejected(self):
        program = Program(
            slots=list(make_wide(isa.LDDWD, dst=1, imm64=99)) + [EXIT],
            data=b"xy",
        )
        with pytest.raises(VerificationError, match="data"):
            verify(program)


class TestPaperExamples:
    def test_all_canned_workloads_verify(self):
        from repro.workloads import (
            coap_handler_program,
            fletcher32_program,
            sensor_program,
            thread_counter_program,
        )

        for program in (fletcher32_program(), thread_counter_program(),
                        sensor_program(), coap_handler_program()):
            report = verify(program)
            assert report.instruction_count > 0
