"""Verifier robustness: arbitrary slot lists may only be accepted or
rejected with VerificationError — never crash."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.vm import Instruction, Program, VerificationError, verify

_slots = st.lists(
    st.builds(
        Instruction,
        opcode=st.integers(0, 255),
        dst=st.integers(0, 15),
        src=st.integers(0, 15),
        offset=st.integers(-(1 << 15), (1 << 15) - 1),
        imm=st.integers(-(1 << 31), (1 << 31) - 1),
    ),
    max_size=40,
)


@settings(max_examples=300, deadline=None)
@given(slots=_slots, rodata=st.binary(max_size=16), data=st.binary(max_size=16))
def test_verify_never_crashes(slots, rodata, data):
    program = Program(slots=slots, rodata=rodata, data=data)
    try:
        report = verify(program)
    except VerificationError:
        return
    # Accepted programs carry a sane report.
    assert report.instruction_count >= 1
    assert report.instruction_count <= len(slots)


@settings(max_examples=100, deadline=None)
@given(slots=_slots)
def test_verify_is_deterministic(slots):
    program = Program(slots=slots)

    def outcome():
        try:
            verify(program)
            return ("ok",)
        except VerificationError as error:
            return ("rejected", str(error))

    assert outcome() == outcome()
