"""ISA table integrity: the opcode space is complete and consistent."""

from __future__ import annotations

import pytest

from repro.vm import isa
from repro.vm.disasm import disassemble_instruction
from repro.vm.errors import EncodingError
from repro.vm.instruction import Instruction


class TestTables:
    def test_every_valid_opcode_classifies(self):
        for opcode in isa.VALID_OPCODES:
            assert isa.classify(opcode) in isa.InstructionKind.ALL

    def test_classify_rejects_unknown(self):
        with pytest.raises(ValueError):
            isa.classify(0x00)

    def test_names_are_unique_per_form(self):
        # imm/reg forms share a mnemonic by design; count distinct stems.
        names = set(isa.OPCODE_NAMES.values())
        assert "add" in names and "add32" in names
        assert "lddw" in names and "lddwd" in names and "lddwr" in names
        assert len(isa.VALID_OPCODES) >= 100  # full eBPF coverage

    def test_register_write_set_excludes_stores(self):
        assert isa.STXDW not in isa.REGISTER_WRITE_OPCODES
        assert isa.STW not in isa.REGISTER_WRITE_OPCODES
        assert isa.LDXW in isa.REGISTER_WRITE_OPCODES
        assert isa.MOV64_IMM in isa.REGISTER_WRITE_OPCODES

    def test_branch_set_excludes_call_exit(self):
        assert isa.CALL not in isa.BRANCH_OPCODES
        assert isa.EXIT not in isa.BRANCH_OPCODES
        assert isa.JA in isa.BRANCH_OPCODES
        assert isa.JEQ32_IMM in isa.BRANCH_OPCODES

    def test_wide_opcodes_are_ld_class(self):
        for opcode in isa.WIDE_OPCODES:
            assert isa.classify(opcode) == isa.InstructionKind.LDDW

    def test_size_bytes_table(self):
        assert isa.SIZE_BYTES == {0x00: 4, 0x08: 2, 0x10: 1, 0x18: 8}

    def test_stack_constants_match_paper(self):
        assert isa.STACK_SIZE == 512
        assert isa.REG_COUNT == 11
        assert isa.REG_STACK == 10


class TestDisasmErrors:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(EncodingError):
            disassemble_instruction(Instruction(opcode=0xFF))

    def test_wide_without_second_slot_rejected(self):
        with pytest.raises(EncodingError):
            disassemble_instruction(Instruction(opcode=isa.LDDW, dst=1))
