"""Multi-block loop folding and fallthrough superblocks in the template JIT.

Every shape is run differentially: the folded JIT must produce
bit-identical return values, per-kind instruction counts, taken-branch
counts — and on faults, identical fault pc/message — to the pre-decoded
interpreter.  Structural assertions on the generated source prove the
folds actually engaged (a differential test alone would also pass if
folding silently never fired).
"""

from __future__ import annotations

import pytest

from repro.vm import (
    BranchLimitFault,
    CertFCInterpreter,
    Interpreter,
    VMConfig,
    assemble,
    compile_program,
)

#: Multi-block counted loop: head tests, body falls through, JA backedge.
COUNTED = """
    mov r0, 0
    mov r1, 0
loop:
    jge r1, 10, done
    add r0, 2
    add r1, 1
    ja loop
done:
    exit
"""

#: Loop with an if/else diamond inside — the `odd` arm *falls through*
#: into `join`, exercising the batched-flush superblock extension.
DIAMOND = """
    mov r0, 0
    mov r1, 0
loop:
    jge r1, 8, done
    jset r1, 1, odd
    add r0, 100
    ja join
odd:
    add r0, 1
join:
    add r1, 1
    jlt r1, 99, loop
done:
    exit
"""

#: Nested loops: a self-loop inside a folded multi-block outer loop.
NESTED = """
    mov r0, 0
    mov r1, 0
outer:
    jge r1, 5, done
    mov r2, 0
inner:
    add r0, 1
    add r2, 1
    jlt r2, 3, inner
    add r1, 1
    ja outer
done:
    exit
"""

#: Mid-loop exit: a conditional branch leaves the loop from its middle.
MID_EXIT = """
    mov r0, 0
    mov r1, 0
loop:
    add r0, 1
    jgt r0, 17, out
    add r1, 1
    jlt r1, 1000, loop
out:
    add r0, 1000
    exit
"""

#: NOT foldable: an outside branch jumps into the middle of the loop
#: (two entries), so the single-entry check must reject the fold while
#: execution stays bit-identical.
SIDE_ENTRY = """
    mov r0, 0
    mov r1, 0
    ja middle
loop:
    add r0, 10
middle:
    add r1, 1
    jlt r1, 6, loop
    exit
"""

SHAPES = {
    "counted": COUNTED,
    "diamond": DIAMOND,
    "nested": NESTED,
    "mid_exit": MID_EXIT,
    "side_entry": SIDE_ENTRY,
}


def _outcomes(source: str, config: VMConfig | None = None):
    program = assemble(source)
    results = {}
    for name, factory in (("interpreter", Interpreter),
                          ("certfc", CertFCInterpreter),
                          ("jit", compile_program)):
        result = factory(program, config=config).run()
        results[name] = (result.value, result.stats.kind_counts,
                         result.stats.branches_taken,
                         result.stats.executed)
    return results


@pytest.mark.parametrize("shape", sorted(SHAPES), ids=sorted(SHAPES))
def test_loop_shapes_differential(shape):
    results = _outcomes(SHAPES[shape])
    assert results["jit"] == results["interpreter"], shape
    assert results["certfc"] == results["interpreter"], shape


@pytest.mark.parametrize("shape", sorted(SHAPES), ids=sorted(SHAPES))
def test_loop_shapes_differential_with_total_limit(shape):
    """Per-instruction publishing mode (total budget) on the same CFGs."""
    results = _outcomes(SHAPES[shape], config=VMConfig(total_limit=100_000))
    assert results["jit"] == results["interpreter"], shape


class TestFoldStructure:
    def test_multi_block_loop_gets_nested_dispatch(self):
        jit = compile_program(assemble(COUNTED))
        assert "_t2" in jit.jit_source  # nested loop dispatch engaged
        assert jit.run().value == 20

    def test_single_entry_violation_prevents_fold(self):
        jit = compile_program(assemble(SIDE_ENTRY))
        assert "_t2" not in jit.jit_source  # two entries: must not fold

    def test_diamond_fallthrough_is_inlined_with_batched_counts(self):
        jit = compile_program(assemble(DIAMOND))
        # The odd->join fallthrough is inlined: its two ALU bumps merge
        # into one batched publish somewhere in the generated code.
        assert "_kc['alu'] += 2" in jit.jit_source

    def test_nested_self_loop_stays_native_inside_fold(self):
        jit = compile_program(assemble(NESTED))
        # Outer fold (nested dispatch) plus the inner native self-loop.
        assert "_t2" in jit.jit_source
        assert jit.jit_source.count("while 1:") >= 3  # top + fold + self


class TestFaultParity:
    def test_branch_budget_fault_identical_in_folded_loop(self):
        program = assemble(NESTED)
        config = VMConfig(branch_limit=7)
        observed = {}
        for name, factory in (("interpreter", Interpreter),
                              ("jit", compile_program)):
            vm = factory(program, config=config)
            with pytest.raises(BranchLimitFault) as excinfo:
                vm.run()
            observed[name] = (str(excinfo.value), excinfo.value.pc)
        assert observed["jit"] == observed["interpreter"]

    def test_total_budget_fault_identical_in_folded_loop(self):
        program = assemble(DIAMOND)
        config = VMConfig(total_limit=23)
        observed = {}
        for name, factory in (("interpreter", Interpreter),
                              ("jit", compile_program)):
            vm = factory(program, config=config)
            with pytest.raises(BranchLimitFault) as excinfo:
                vm.run()
            observed[name] = (str(excinfo.value), excinfo.value.pc)
        assert observed["jit"] == observed["interpreter"]
