"""Binary instruction codec tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.vm import isa
from repro.vm.errors import EncodingError
from repro.vm.instruction import (
    SLOT_SIZE,
    Instruction,
    decode_program,
    encode_program,
    make_wide,
    wide_imm64,
)

VALID_OPCODES = sorted(isa.VALID_OPCODES)


class TestEncodeDecode:
    def test_slot_is_eight_bytes(self):
        assert len(Instruction(isa.EXIT).encode()) == SLOT_SIZE

    def test_known_encoding_mov_imm(self):
        # mov r3, 0x11223344: opcode b7, regs 03, offset 0, imm LE.
        ins = Instruction(isa.MOV64_IMM, dst=3, imm=0x11223344)
        assert ins.encode() == bytes.fromhex("b703000044332211")

    def test_known_encoding_ldxw(self):
        ins = Instruction(isa.LDXW, dst=2, src=1, offset=-4)
        raw = ins.encode()
        assert raw[0] == 0x61
        assert raw[1] == 0x12  # src in high nibble, dst in low
        assert raw[2:4] == (-4).to_bytes(2, "little", signed=True)

    def test_decode_reverses_fields(self):
        ins = Instruction(isa.JNE_IMM, dst=5, src=0, offset=-7, imm=99)
        assert Instruction.decode(ins.encode()) == ins

    def test_negative_immediate_roundtrip(self):
        ins = Instruction(isa.ADD64_IMM, dst=1, imm=-1)
        decoded = Instruction.decode(ins.encode())
        assert decoded.imm == -1

    def test_unsigned_32bit_immediate_accepted(self):
        ins = Instruction(isa.MOV64_IMM, dst=0, imm=0xFFFFFFFF)
        decoded = Instruction.decode(ins.encode())
        assert decoded.imm == -1  # stored as the same 32-bit pattern

    @given(
        opcode=st.sampled_from(VALID_OPCODES),
        dst=st.integers(0, 15),
        src=st.integers(0, 15),
        offset=st.integers(-(1 << 15), (1 << 15) - 1),
        imm=st.integers(-(1 << 31), (1 << 31) - 1),
    )
    def test_roundtrip_property(self, opcode, dst, src, offset, imm):
        ins = Instruction(opcode, dst=dst, src=src, offset=offset, imm=imm)
        assert Instruction.decode(ins.encode()) == ins


class TestValidation:
    def test_register_field_overflow_rejected(self):
        with pytest.raises(EncodingError):
            Instruction(isa.MOV64_IMM, dst=16)

    def test_offset_overflow_rejected(self):
        with pytest.raises(EncodingError):
            Instruction(isa.JA, offset=1 << 15)

    def test_opcode_overflow_rejected(self):
        with pytest.raises(EncodingError):
            Instruction(0x100)


class TestWide:
    def test_make_wide_splits_imm64(self):
        first, second = make_wide(isa.LDDW, dst=4, imm64=0x1122334455667788)
        assert first.imm == 0x55667788
        assert second.imm == 0x11223344
        assert wide_imm64(first, second) == 0x1122334455667788

    def test_make_wide_negative_wraps(self):
        first, second = make_wide(isa.LDDW, dst=0, imm64=-1)
        assert wide_imm64(first, second) == (1 << 64) - 1

    def test_make_wide_rejects_narrow_opcode(self):
        with pytest.raises(EncodingError):
            make_wide(isa.MOV64_IMM, dst=0, imm64=1)

    def test_wide_name(self):
        first, _second = make_wide(isa.LDDW, dst=0, imm64=5)
        assert first.name == "lddw"
        assert first.is_wide


class TestProgramCodec:
    def test_program_roundtrip(self):
        slots = [
            Instruction(isa.MOV64_IMM, dst=0, imm=7),
            *make_wide(isa.LDDW, dst=1, imm64=1 << 40),
            Instruction(isa.EXIT),
        ]
        assert decode_program(encode_program(slots)) == slots

    def test_ragged_bytecode_rejected(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x00" * 7)

    @given(st.binary(min_size=0, max_size=256).map(
        lambda b: b[: len(b) - len(b) % 8]))
    def test_decode_never_crashes_on_aligned_bytes(self, raw):
        slots = decode_program(raw)
        assert len(slots) == len(raw) // 8
