#!/usr/bin/env python3
"""Validate the repository's BENCH_*.json benchmark records.

Every benchmark guard writes a machine-readable record at the repository
root; this checker is the CI gate that keeps those records honest:

* every expected ``BENCH_*.json`` exists and parses;
* each record carries its required keys (schema drift fails CI);
* every performance ratio is at (or above) the bar its guard enforces —
  a regenerated record showing a regression fails even if someone forgot
  to run the guard's own assertion.

Run:  python tools/check_bench.py [repo_root]
Exit status 0 when everything passes, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


class BenchError(Exception):
    """A bench record is missing, malformed, or below its bar."""


def _require(record: dict, keys: list[str], name: str) -> None:
    missing = [key for key in keys if key not in record]
    if missing:
        raise BenchError(f"{name}: missing required keys {missing}")


def _positive_number(value, what: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise BenchError(f"{what} must be a number, got {value!r}")
    if value <= 0:
        raise BenchError(f"{what} must be positive, got {value!r}")
    return float(value)


def check_throughput(record: dict) -> list[str]:
    _require(
        record,
        [
            "workload",
            "unit",
            "python",
            "engines",
            "jit_speedup_vs_interpreter",
        ],
        "BENCH_throughput",
    )
    engines = record["engines"]
    for engine in ("interpreter", "certfc", "jit"):
        if engine not in engines:
            raise BenchError(f"BENCH_throughput: engine {engine!r} missing")
        _positive_number(engines[engine], f"engines.{engine}")
    # The simulator-performance bar: the template JIT must out-run the
    # interpreter by 3x in wall time.
    bar = 3.0
    speedup = engines["jit"] / engines["interpreter"]
    if speedup < bar:
        raise BenchError(
            f"BENCH_throughput: jit only {speedup:.2f}x interpreter "
            f"(bar {bar}x)"
        )
    recorded = _positive_number(
        record["jit_speedup_vs_interpreter"], "jit_speedup_vs_interpreter"
    )
    if abs(recorded - speedup) > 0.5:
        raise BenchError(
            f"BENCH_throughput: recorded speedup {recorded} does not match "
            f"engines ratio {speedup:.2f}"
        )
    return [f"jit {speedup:.2f}x interpreter (bar {bar}x)"]


def check_attach(record: dict) -> list[str]:
    _require(
        record,
        ["workload", "unit", "python", "engines", "jit_speedup_bar"],
        "BENCH_attach",
    )
    bar = _positive_number(record["jit_speedup_bar"], "jit_speedup_bar")
    for engine, row in record["engines"].items():
        _require(
            row,
            ["cold_us", "cached_us", "speedup", "attach_cycles"],
            f"BENCH_attach.engines.{engine}",
        )
        cold = _positive_number(row["cold_us"], f"{engine}.cold_us")
        cached = _positive_number(row["cached_us"], f"{engine}.cached_us")
        ratio = cold / cached
        recorded = _positive_number(row["speedup"], f"{engine}.speedup")
        if abs(ratio - recorded) > max(0.5, 0.1 * ratio):
            raise BenchError(
                f"BENCH_attach: {engine} speedup {recorded} does not match "
                f"cold/cached ratio {ratio:.2f}"
            )
    jit = record["engines"].get("jit")
    if jit is None:
        raise BenchError("BENCH_attach: jit engine missing")
    if jit["speedup"] < bar:
        raise BenchError(
            f"BENCH_attach: cached jit attach only {jit['speedup']:.2f}x "
            f"faster than cold (bar {bar}x)"
        )
    return [f"cached jit attach {jit['speedup']:.2f}x (bar {bar}x)"]


def _device_rows(record: dict, name: str) -> list[dict]:
    """The record's device rows, shape-checked before any indexing."""
    devices = record.get("devices")
    if not isinstance(devices, list) or len(devices) < 2:
        raise BenchError(f"{name}: needs at least two device rows")
    for row in devices:
        if not isinstance(row, dict):
            raise BenchError(f"{name}: device rows must be objects")
    return devices


def _check_device_speedups(
    record: dict, name: str, bar_key: str, speedup_key: str, baseline_role: str
) -> list[str]:
    bar = _positive_number(record[bar_key], f"{name}.{bar_key}")
    devices = _device_rows(record, name)
    _require(devices[0], ["device", "rollout_us"], f"{name}.devices[0]")
    cold_us = _positive_number(
        devices[0]["rollout_us"], f"{name}.devices[0].rollout_us"
    )
    warm = []
    for row in devices[1:]:
        _require(
            row, ["device", "rollout_us", speedup_key], f"{name}.devices[]"
        )
        speedup = _positive_number(
            row[speedup_key], f"{name}.{row['device']}.{speedup_key}"
        )
        row_us = _positive_number(
            row["rollout_us"], f"{name}.{row['device']}.rollout_us"
        )
        ratio = cold_us / row_us
        if abs(ratio - speedup) > max(0.5, 0.1 * ratio):
            raise BenchError(
                f"{name}: {row['device']} speedup {speedup} does not match "
                f"rollout_us ratio {ratio:.2f}"
            )
        if speedup < bar:
            raise BenchError(
                f"{name}: {row['device']} only {speedup:.2f}x faster than "
                f"{baseline_role} (bar {bar}x)"
            )
        warm.append(speedup)
    return [
        f"{len(warm)} warm devices {min(warm):.2f}..{max(warm):.2f}x "
        f"over {baseline_role} (bar {bar}x)"
    ]


def check_deploy(record: dict) -> list[str]:
    _require(
        record,
        [
            "workload",
            "unit",
            "python",
            "devices",
            "cycles_per_device",
            "warm_speedup_bar",
        ],
        "BENCH_deploy",
    )
    _positive_number(record["cycles_per_device"], "cycles_per_device")
    return _check_device_speedups(
        record,
        "BENCH_deploy",
        "warm_speedup_bar",
        "speedup_vs_dev0",
        "cold dev0",
    )


def check_canary(record: dict) -> list[str]:
    _require(
        record,
        [
            "workload",
            "unit",
            "python",
            "rollback",
            "devices",
            "promoted_speedup_bar",
        ],
        "BENCH_canary",
    )
    rollback = record["rollback"]
    _require(
        rollback,
        ["canary_faults", "control_devices_disturbed"],
        "BENCH_canary.rollback",
    )
    if rollback["control_devices_disturbed"] != 0:
        raise BenchError(
            "BENCH_canary: rollback disturbed "
            f"{rollback['control_devices_disturbed']} non-canary device(s)"
        )
    _positive_number(rollback["canary_faults"], "rollback.canary_faults")
    if _device_rows(record, "BENCH_canary")[0].get("role") != "canary":
        raise BenchError("BENCH_canary: first device row must be the canary")
    notes = _check_device_speedups(
        record,
        "BENCH_canary",
        "promoted_speedup_bar",
        "speedup_vs_canary",
        "cold canary",
    )
    notes.append(
        f"poisoned bake faulted {rollback['canary_faults']}x on the canary, "
        "0 control devices disturbed"
    )
    return notes


def check_publish(record: dict) -> list[str]:
    _require(
        record,
        [
            "workload",
            "unit",
            "python",
            "payload_bytes",
            "replay_refused",
            "republish_actions",
            "devices",
            "warm_speedup_bar",
        ],
        "BENCH_publish",
    )
    _positive_number(record["payload_bytes"], "payload_bytes")
    if record["replay_refused"] is not True:
        raise BenchError(
            "BENCH_publish: a replayed sequence number was not refused"
        )
    if record["republish_actions"] != 0:
        raise BenchError(
            "BENCH_publish: an idempotent republish planned "
            f"{record['republish_actions']} action(s)"
        )
    if _device_rows(record, "BENCH_publish")[0].get("role") != "cold":
        raise BenchError(
            "BENCH_publish: first device row must be the cold device"
        )
    notes = _check_device_speedups(
        record,
        "BENCH_publish",
        "warm_speedup_bar",
        "speedup_vs_dev0",
        "cold dev0",
    )
    notes.append(
        f"one {record['payload_bytes']} B signed payload, replay refused, "
        "republish idempotent"
    )
    return notes


def check_chaos(record: dict) -> list[str]:
    _require(
        record,
        [
            "workload",
            "unit",
            "python",
            "devices_total",
            "devices_converged",
            "loss",
            "scripted_crashes",
            "reboots",
            "retriggers",
            "unreachable_demo",
        ],
        "BENCH_chaos",
    )
    total = _positive_number(record["devices_total"], "devices_total")
    converged = record["devices_converged"]
    if converged != total:
        raise BenchError(
            f"BENCH_chaos: only {converged}/{total:.0f} devices converged "
            "under scripted chaos"
        )
    _positive_number(record["loss"], "loss")
    crashes = _positive_number(record["scripted_crashes"], "scripted_crashes")
    reboots = _positive_number(record["reboots"], "reboots")
    if reboots < crashes:
        raise BenchError(
            f"BENCH_chaos: {reboots:.0f} reboot(s) for {crashes:.0f} "
            "scripted crash(es) — a crashed device never came back"
        )
    retriggers = record["retriggers"]
    if not isinstance(retriggers, int) or retriggers < 0:
        raise BenchError(
            f"BENCH_chaos: retriggers must be a non-negative integer, "
            f"got {retriggers!r}"
        )
    demo = record["unreachable_demo"]
    _require(
        demo,
        ["converged", "unreachable", "others_converged", "raised"],
        "BENCH_chaos.unreachable_demo",
    )
    if demo["converged"] is not False:
        raise BenchError(
            "BENCH_chaos: the unreachable demo claims full convergence"
        )
    _positive_number(demo["unreachable"], "unreachable_demo.unreachable")
    _positive_number(
        demo["others_converged"], "unreachable_demo.others_converged"
    )
    if demo["raised"] is not False:
        raise BenchError(
            "BENCH_chaos: the unreachable publish raised instead of "
            "degrading gracefully"
        )
    return [
        f"{converged}/{total:.0f} devices converged at {record['loss']:.0%} "
        f"loss through {crashes:.0f} crash(es), {reboots:.0f} reboot(s), "
        f"{retriggers} re-trigger(s)",
        f"unreachable device degraded gracefully "
        f"({demo['others_converged']} other(s) converged, no exception)",
    ]


def check_supervisor(record: dict) -> list[str]:
    _require(
        record,
        [
            "workload",
            "unit",
            "python",
            "publish",
            "fires",
            "supervised_cycles",
            "unsupervised_cycles",
            "waste_ratio",
            "waste_ratio_bar",
        ],
        "BENCH_supervisor",
    )
    publish = record["publish"]
    _require(
        publish,
        [
            "devices_total",
            "devices_converged",
            "quarantined_devices",
            "quarantined_slots",
            "fault_delta",
        ],
        "BENCH_supervisor.publish",
    )
    total = _positive_number(publish["devices_total"],
                             "publish.devices_total")
    converged = publish["devices_converged"]
    if converged != total:
        raise BenchError(
            f"BENCH_supervisor: only {converged}/{total:.0f} devices "
            "converged around the quarantined container"
        )
    quarantined = _positive_number(publish["quarantined_devices"],
                                   "publish.quarantined_devices")
    _positive_number(publish["quarantined_slots"],
                     "publish.quarantined_slots")
    _positive_number(publish["fault_delta"], "publish.fault_delta")
    _positive_number(record["fires"], "fires")
    bar = _positive_number(record["waste_ratio_bar"], "waste_ratio_bar")
    supervised = _positive_number(record["supervised_cycles"],
                                  "supervised_cycles")
    unsupervised = _positive_number(record["unsupervised_cycles"],
                                    "unsupervised_cycles")
    ratio = supervised / unsupervised
    recorded = _positive_number(record["waste_ratio"], "waste_ratio")
    if abs(recorded - ratio) > max(0.01, 0.1 * ratio):
        raise BenchError(
            f"BENCH_supervisor: recorded waste_ratio {recorded} does not "
            f"match cycles ratio {ratio:.4f}"
        )
    if ratio > bar:
        raise BenchError(
            f"BENCH_supervisor: supervised runaway container burned "
            f"{ratio:.2f} of the unsupervised cycles (bar {bar})"
        )
    return [
        f"{converged}/{total:.0f} devices converged with "
        f"{quarantined:.0f} quarantined device(s) reported",
        f"runaway container waste ratio {ratio:.3f} (bar {bar})",
    ]


def check_fleet_scale(record: dict) -> list[str]:
    _require(
        record,
        [
            "workload",
            "unit",
            "python",
            "devices_total",
            "payload_bytes",
            "unicast",
            "multicast",
            "scale_speedup",
            "scale_speedup_bar",
            "trigger_bytes_ratio",
            "trigger_bytes_ratio_bar",
        ],
        "BENCH_fleet_scale",
    )
    total = _positive_number(record["devices_total"], "devices_total")
    if total < 1000:
        raise BenchError(
            f"BENCH_fleet_scale: measured at only {total:.0f} devices "
            "(the scale-out bar is N >= 1000)"
        )
    _positive_number(record["payload_bytes"], "payload_bytes")
    for mode in ("unicast", "multicast"):
        _require(
            record[mode],
            ["wall_s", "devices_per_s", "trigger_bytes_per_device"],
            f"BENCH_fleet_scale.{mode}",
        )
        for key in ("wall_s", "devices_per_s", "trigger_bytes_per_device"):
            _positive_number(record[mode][key], f"{mode}.{key}")
    _positive_number(record["multicast"]["ack_sample"], "multicast.ack_sample")

    speedup_bar = _positive_number(
        record["scale_speedup_bar"], "scale_speedup_bar"
    )
    speedup = (
        record["multicast"]["devices_per_s"]
        / record["unicast"]["devices_per_s"]
    )
    recorded = _positive_number(record["scale_speedup"], "scale_speedup")
    if abs(recorded - speedup) > max(0.05, 0.1 * speedup):
        raise BenchError(
            f"BENCH_fleet_scale: recorded scale_speedup {recorded} does "
            f"not match devices_per_s ratio {speedup:.2f}"
        )
    if speedup < speedup_bar:
        raise BenchError(
            f"BENCH_fleet_scale: scale profile converged only "
            f"{speedup:.2f}x the unicast baseline at N={total:.0f} "
            f"(bar {speedup_bar}x)"
        )

    ratio_bar = _positive_number(
        record["trigger_bytes_ratio_bar"], "trigger_bytes_ratio_bar"
    )
    ratio = (
        record["multicast"]["trigger_bytes_per_device"]
        / record["unicast"]["trigger_bytes_per_device"]
    )
    recorded_ratio = _positive_number(
        record["trigger_bytes_ratio"], "trigger_bytes_ratio"
    )
    if abs(recorded_ratio - ratio) > max(0.005, 0.1 * ratio):
        raise BenchError(
            f"BENCH_fleet_scale: recorded trigger_bytes_ratio "
            f"{recorded_ratio} does not match per-device bytes ratio "
            f"{ratio:.4f}"
        )
    if ratio > ratio_bar:
        raise BenchError(
            f"BENCH_fleet_scale: multicast trigger spent "
            f"{ratio:.2f}x the unicast airtime per device "
            f"(bar {ratio_bar})"
        )
    return [
        f"{total:.0f} devices converged off one publish, scale profile "
        f"{speedup:.2f}x unicast (bar {speedup_bar}x)",
        f"trigger airtime {ratio:.3f}x unicast per device "
        f"(bar {ratio_bar})",
    ]


def check_runtime_matrix(record: dict) -> list[str]:
    _require(
        record,
        [
            "workload",
            "unit",
            "python",
            "checksum",
            "runtimes",
            "wasm_exec_overhead_vs_rbpf",
            "script_exec_overhead_vs_wasm",
            "exec_overhead_bar",
        ],
        "BENCH_runtime_matrix",
    )
    runtimes = record["runtimes"]
    for runtime in ("rbpf", "wasm", "script"):
        if runtime not in runtimes:
            raise BenchError(
                f"BENCH_runtime_matrix: runtime {runtime!r} missing"
            )
        row = runtimes[runtime]
        _require(
            row,
            ["code_bytes", "attach_cycles", "exec_cycles", "ram_bytes",
             "checksum"],
            f"BENCH_runtime_matrix.{runtime}",
        )
        for key in ("code_bytes", "attach_cycles", "exec_cycles",
                    "ram_bytes"):
            _positive_number(row[key], f"{runtime}.{key}")
        if row["checksum"] != record["checksum"]:
            raise BenchError(
                f"BENCH_runtime_matrix: {runtime} computed "
                f"{row['checksum']} but the reference checksum is "
                f"{record['checksum']} — the deploy plane is no longer "
                "semantics-preserving across runtimes"
            )

    bar = _positive_number(record["exec_overhead_bar"], "exec_overhead_bar")
    wasm_ratio = (
        runtimes["wasm"]["exec_cycles"] / runtimes["rbpf"]["exec_cycles"]
    )
    script_ratio = (
        runtimes["script"]["exec_cycles"] / runtimes["wasm"]["exec_cycles"]
    )
    for key, ratio in (
        ("wasm_exec_overhead_vs_rbpf", wasm_ratio),
        ("script_exec_overhead_vs_wasm", script_ratio),
    ):
        recorded = _positive_number(record[key], key)
        if abs(recorded - ratio) > max(0.05, 0.1 * ratio):
            raise BenchError(
                f"BENCH_runtime_matrix: recorded {key} {recorded} does "
                f"not match exec_cycles ratio {ratio:.2f}"
            )
        if ratio <= bar:
            raise BenchError(
                f"BENCH_runtime_matrix: {key} is {ratio:.2f}x "
                f"(bar > {bar}x) — the §6 cost ordering "
                "script > wasm > rbpf no longer holds"
            )
    return [
        f"all three runtimes agree on checksum {record['checksum']}",
        f"exec cost ordering holds: wasm {wasm_ratio:.2f}x rbpf, "
        f"script {script_ratio:.2f}x wasm (bar > {bar}x each)",
    ]


#: File name -> checker.  Every entry is required to exist.
CHECKS = {
    "BENCH_throughput.json": check_throughput,
    "BENCH_attach.json": check_attach,
    "BENCH_deploy.json": check_deploy,
    "BENCH_canary.json": check_canary,
    "BENCH_publish.json": check_publish,
    "BENCH_chaos.json": check_chaos,
    "BENCH_supervisor.json": check_supervisor,
    "BENCH_fleet_scale.json": check_fleet_scale,
    "BENCH_runtime_matrix.json": check_runtime_matrix,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    failures = 0
    for name, checker in CHECKS.items():
        path = root / name
        try:
            if not path.exists():
                raise BenchError(f"{name}: file missing at {path}")
            try:
                record = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise BenchError(f"{name}: invalid JSON ({exc})") from None
            if not isinstance(record, dict):
                raise BenchError(f"{name}: top level must be an object")
            notes = checker(record)
        except BenchError as error:
            print(f"FAIL {error}")
            failures += 1
            continue
        for note in notes:
            print(f"OK   {name}: {note}")
    stray = sorted(
        path.name
        for path in root.glob("BENCH_*.json")
        if path.name not in CHECKS
    )
    if stray:
        print(
            f"FAIL unknown bench records without a schema: {stray} "
            "(add a checker to tools/check_bench.py)"
        )
        failures += 1
    if failures:
        print(f"{failures} bench check(s) failed")
        return 1
    print(f"all {len(CHECKS)} bench records valid and above their bars")
    return 0


if __name__ == "__main__":
    sys.exit(main())
