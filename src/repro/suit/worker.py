"""Device-side SUIT update worker (§5 "Low-power Secure Runtime Update").

The full over-the-air deployment path of the paper:

1. a maintainer signs a manifest naming a hook UUID as storage location and
   pushes the envelope to the device (CoAP POST ``/suit/trigger``);
2. the worker verifies the COSE/Ed25519 signature against its trust anchor
   and the anti-rollback sequence number;
3. it fetches the payload block-wise over CoAP from the firmware
   repository;
4. it checks size and SHA-256 digest, stores the image in the slot, runs
   the pre-flight verifier, and attaches (or hot-replaces) the container on
   the hook — all without touching the firmware.

Every failure mode is a distinct status, and none of them disturb the
running system: a malicious client (threat model §3) can at worst waste
some radio budget.

The pipeline is deliberately split into overridable steps —
:meth:`SuitUpdateWorker._resolve_target` and
:meth:`SuitUpdateWorker._activate` — so the whole-device *spec* update
worker (:class:`~repro.suit.specworker.SpecUpdateWorker`) reuses the
authentication, anti-rollback, storage-budget and block-transfer
machinery and only swaps what a verified payload *means*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.errors import UnknownHookError
from repro.net.coap import CHANGED, BAD_REQUEST, CoapMessage
from repro.suit import cbor
from repro.suit.manifest import (
    KIND_IMAGE,
    SuitEnvelope,
    SuitManifest,
    payload_digest,
)
from repro.suit.storage import StorageFullError, StorageRegistry, StorageSlot
from repro.rtos.errors import PowerFailure
from repro.rtos.thread import Wait
from repro.runtimes.base import container_runtime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import HostingEngine
    from repro.core.tenant import Tenant
    from repro.net.gcoap import CoapClient, CoapServer
    from repro.rtos.nvm import NvmStore

#: Ed25519 verification cost on a Cortex-M-class core (cycles).
SIG_VERIFY_CYCLES = 5_800_000
#: SHA-256 cost per payload byte (cycles).
SHA256_CYCLES_PER_BYTE = 60

#: NVM key prefix for checkpointed block-wise fetch progress.
NVM_FETCH_PREFIX = "suit/fetch/"
#: Block size the worker fetches with (szx=5 → 512-byte Block2 blocks).
FETCH_BLOCK_BYTES = 512

#: Every step boundary of :meth:`SuitUpdateWorker._process`, in pipeline
#: order.  Kill-point sweeps inject a power failure at each of these and
#: assert the device recovers with anti-rollback state intact and no
#: stranded storage reservation.
KILL_POINTS = (
    "decoded",
    "verified",
    "resolved",
    "reserved",
    "fetched",
    "checked",
    "installed",
    "activated",
)


class UpdateStatus(enum.Enum):
    OK = "ok"
    MALFORMED = "malformed-envelope"
    SIGNATURE_INVALID = "signature-invalid"
    SEQUENCE_REPLAY = "sequence-replay"
    UNKNOWN_HOOK = "unknown-storage-location"
    WRONG_KIND = "manifest-kind-mismatch"
    STORAGE_FULL = "storage-exhausted"
    FETCH_FAILED = "payload-fetch-failed"
    DIGEST_MISMATCH = "payload-digest-mismatch"
    SPEC_INVALID = "spec-invalid"
    REJECTED = "pre-flight-rejected"
    #: Synthesized by the fleet publisher: the device never acknowledged
    #: a trigger (or never reported) despite retries — no worker result.
    UNREACHABLE = "unreachable"
    #: Synthesized by the fleet publisher: the device power-cycled during
    #: the update but came back holding the published sequence in NVM.
    REBOOTED = "device-rebooted"
    #: Synthesized by the fleet publisher: the device converged on the
    #: published sequence but its supervisor is holding one or more
    #: container slots quarantined (crash-looping workload).
    QUARANTINED = "container-quarantined"


@dataclass
class UpdateResult:
    status: UpdateStatus
    message: str = ""
    manifest: SuitManifest | None = None
    container: object = None
    #: The :class:`~repro.deploy.plan.ApplyResult` of a spec update.
    applied: object = None
    duration_us: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is UpdateStatus.OK


class SuitUpdateWorker:
    """One device's update processor, running in its own thread."""

    #: Manifest kind this worker accepts; anything else is refused
    #: before any radio budget is spent on the payload.
    expected_kind = KIND_IMAGE
    #: Name of the worker thread (one per worker flavour per device).
    thread_name = "suit-worker"

    def __init__(
        self,
        engine: "HostingEngine",
        client: "CoapClient",
        trust_anchor: bytes,
        repo_addr: str,
        repo_port: int = 5683,
        tenant: "Tenant | None" = None,
        max_storage_slots: int | None = None,
        storage_gc_horizon: int | None = None,
        nvm: "NvmStore | None" = None,
    ) -> None:
        self.engine = engine
        self.kernel = engine.kernel
        self.client = client
        self.trust_anchor = trust_anchor
        self.repo_addr = repo_addr
        self.repo_port = repo_port
        self.tenant = tenant
        self.nvm = nvm
        if nvm is not None:
            nvm.bind(self.kernel)
        self.storage = StorageRegistry(max_slots=max_storage_slots,
                                       gc_horizon=storage_gc_horizon,
                                       nvm=nvm)
        if nvm is not None:
            # Anti-rollback state must be live from the first instruction
            # after boot, before any trigger can race the restore.
            self.storage.restore()
        self.results: list[UpdateResult] = []
        #: Publish-scoped decode memo, set by the fleet control plane on
        #: the workers of one release's target devices (``None`` on a
        #: standalone worker).  Maps raw envelope bytes to the decoded
        #: ``(envelope, manifest)`` pair (and, for spec workers, payload
        #: bytes to the decoded spec) so a 1,000-device publish decodes
        #: each artifact once.  **Wall-clock only**: the modelled verify
        #: and digest cycles are still charged per device in full, and
        #: the decoded objects are immutable (frozen dataclasses), so
        #: sharing them cannot leak state between devices.
        self.release_cache: dict | None = None
        self.on_result: Callable[[UpdateResult], None] | None = None
        #: Kill-point hook: called with each step name in
        #: :data:`KILL_POINTS` as the pipeline crosses that boundary.
        #: Chaos tests raise :class:`~repro.rtos.errors.PowerFailure`
        #: from here to die at an exact step.
        self.on_step: Callable[[str], None] | None = None
        #: Last pipeline boundary crossed (observability for sweeps).
        self.last_step: str | None = None
        self._queue = self.kernel.new_event_queue(self.thread_name)
        self._backlog: list[tuple[bytes, bytes | None]] = []
        self.thread = self.kernel.create_thread(
            self.thread_name, self._worker, priority=8, stack_size=4096
        )

    # -- triggers ----------------------------------------------------------

    def trigger(self, envelope_bytes: bytes,
                payload: bytes | None = None) -> None:
        """Queue one update (what the CoAP trigger endpoint calls).

        ``payload`` is a SUIT *integrated payload*: the trigger already
        carried the image alongside the envelope (a multicast publish
        broadcasts both in one frame), so the worker skips the per-device
        block-wise fetch.  The payload is still digest-checked against
        the signed manifest — an integrated payload changes the radio
        path, never the trust path.
        """
        self._queue.post_new(
            "trigger",
            (bytes(envelope_bytes),
             bytes(payload) if payload is not None else None),
        )

    def register_trigger_resource(self, server: "CoapServer",
                                  path: str = "/suit/trigger") -> None:
        """Expose the network trigger endpoint on a device CoAP server."""

        def handler(request: CoapMessage, _dg) -> CoapMessage:
            if not request.payload:
                return request.reply(BAD_REQUEST)
            self.trigger(request.payload)
            return request.reply(CHANGED)

        server.register(path, handler)

    # -- worker thread --------------------------------------------------------

    def _worker(self, thread):
        while True:
            if self._backlog:
                raw, inline = self._backlog.pop(0)
            else:
                event = yield Wait(self._queue)
                if event.kind != "trigger":
                    continue
                raw, inline = event.payload
            started_us = self.kernel.now_us
            outcome = yield from self._process(thread, raw, inline)
            outcome.duration_us = self.kernel.now_us - started_us
            self.results.append(outcome)
            if self.on_result is not None:
                self.on_result(outcome)

    def _mark(self, step: str) -> None:
        """Cross one pipeline boundary (see :data:`KILL_POINTS`)."""
        self.last_step = step
        if self.on_step is not None:
            self.on_step(step)

    def _process(self, thread, raw: bytes, inline: bytes | None = None):
        # 1. Decode and authenticate the envelope.  The publish-scoped
        # release cache shares the *decoded objects* (frozen, immutable)
        # across a fleet's workers — a wall-clock-only effect; every
        # modelled cycle below is still charged on this device's clock.
        cached = (self.release_cache.get(("envelope", raw))
                  if self.release_cache is not None else None)
        if cached is not None:
            envelope, manifest = cached
        else:
            try:
                envelope = SuitEnvelope.decode(raw)
                manifest = envelope.manifest()
            except Exception as exc:  # any malformed input is one status
                return UpdateResult(UpdateStatus.MALFORMED, str(exc))
            if self.release_cache is not None:
                self.release_cache[("envelope", raw)] = (envelope, manifest)
        self._mark("decoded")
        thread.charge(SIG_VERIFY_CYCLES)
        if not envelope.verify(self.trust_anchor):
            return UpdateResult(
                UpdateStatus.SIGNATURE_INVALID,
                "COSE signature does not verify against the trust anchor",
                manifest,
            )
        if manifest.kind != self.expected_kind:
            return UpdateResult(
                UpdateStatus.WRONG_KIND,
                f"this worker processes {self.expected_kind!r} manifests, "
                f"got {manifest.kind!r}",
                manifest,
            )
        self._mark("verified")

        # 2. Resolve the target and check anti-rollback state.
        target, failure = self._resolve_target(manifest)
        if failure is not None:
            return failure
        if manifest.sequence_number <= self.storage.highest_sequence(
            manifest.storage_location
        ):
            return UpdateResult(
                UpdateStatus.SEQUENCE_REPLAY,
                f"sequence {manifest.sequence_number} not newer than "
                f"{self.storage.highest_sequence(manifest.storage_location)}",
                manifest,
            )
        self._mark("resolved")
        # Reserve the storage slot *before* burning radio budget on a
        # payload the device has no room to keep.
        try:
            self.storage.slot(manifest.storage_location)
        except StorageFullError as exc:
            return UpdateResult(UpdateStatus.STORAGE_FULL, str(exc), manifest)
        self._mark("reserved")

        # 3. Obtain the payload.  A trigger that carried a SUIT
        # integrated payload already has it — no radio round-trips, no
        # checkpointing, and FETCH_FAILED is impossible on this path.
        # Otherwise fetch block-wise from the repository, resuming from
        # any checkpointed progress of a previous interrupted attempt at
        # this exact payload.
        if inline is not None:
            payload = inline
        else:
            self.client.get_blockwise(
                self.repo_addr,
                self.repo_port,
                manifest.uri,
                on_complete=lambda blob: self._queue.post_new("payload",
                                                              blob),
                on_error=lambda msg: self._queue.post_new("fetch-error",
                                                          msg),
                max_size=manifest.size,
                on_block=lambda acc: self._checkpoint_fetch(manifest, acc),
                resume_from=self._fetch_resume(manifest),
            )
            while True:
                event = yield Wait(self._queue)
                if event.kind == "trigger":
                    self._backlog.append(event.payload)
                    continue
                if event.kind in ("payload", "fetch-error"):
                    break
                # Anything else on the queue — a stray or future event
                # kind — is not a fetch outcome; misreading it as one
                # would corrupt the pipeline.  Keep waiting.
            if event.kind == "fetch-error":
                # Return the reservation: a failed fetch must not turn
                # the bounded storage budget into a dead empty slot.
                # The fetch checkpoint is deliberately kept: the next
                # trigger for the same payload resumes from the last
                # received block.
                self.storage.release_if_empty(manifest.storage_location)
                return UpdateResult(UpdateStatus.FETCH_FAILED,
                                    event.payload, manifest)
            payload = event.payload
        self._mark("fetched")

        # 4. Integrity check, then store and activate.
        thread.charge(SHA256_CYCLES_PER_BYTE * len(payload))
        if not manifest.matches_payload(payload):
            self.storage.release_if_empty(manifest.storage_location)
            self._clear_fetch(manifest.storage_location)
            return UpdateResult(
                UpdateStatus.DIGEST_MISMATCH,
                "payload size/digest does not match the signed manifest",
                manifest,
            )
        self._mark("checked")
        self.storage.install(manifest.storage_location, payload,
                             manifest.sequence_number, name=manifest.name,
                             runtime=manifest.runtime)
        self._clear_fetch(manifest.storage_location)
        self._mark("installed")
        outcome = self._activate(manifest, target, payload)
        self._mark("activated")
        return outcome

    # -- fetch checkpointing ---------------------------------------------------

    def _fetch_meta_key(self, location: str) -> str:
        return NVM_FETCH_PREFIX + location + "/meta"

    def _fetch_block_key(self, location: str, num: int) -> str:
        return f"{NVM_FETCH_PREFIX}{location}/{num:06d}"

    def _fetch_resume(self, manifest: SuitManifest) -> bytes:
        """Bytes already safely in NVM from an interrupted fetch.

        Progress is only reusable when it belongs to *this* payload: the
        checkpoint records the manifest digest, and a checkpoint for any
        other digest is purged, so a re-published (different) payload can
        never be stitched together from stale blocks.
        """
        if self.nvm is None:
            return b""
        meta_raw = self.nvm.read(self._fetch_meta_key(
            manifest.storage_location))
        if meta_raw is not None:
            meta = cbor.decode(meta_raw)
            if meta.get("digest") == manifest.digest:
                parts = []
                num = 0
                while True:
                    block = self.nvm.read(self._fetch_block_key(
                        manifest.storage_location, num))
                    if block is None:
                        break
                    parts.append(block)
                    num += 1
                return b"".join(parts)
        self._clear_fetch(manifest.storage_location)
        self.nvm.write(self._fetch_meta_key(manifest.storage_location),
                       cbor.encode({"digest": manifest.digest}))
        return b""

    def _checkpoint_fetch(self, manifest: SuitManifest,
                          accumulated: bytes) -> None:
        """Persist the newest received block (called after every block).

        Only the latest block is (re)written — one flash page per block,
        not a rewrite of the whole transfer — so checkpointing costs
        cycles linear in the payload, charged to this device's clock as
        the blocks arrive.

        This runs on the radio RX path, i.e. on the *link's* kernel
        stack, not this device's worker thread — so a power failure
        injected into the flash write (a torn-write chaos event) must be
        translated into a halt of **this device's** kernel here, instead
        of propagating into whichever kernel happened to deliver the
        frame.
        """
        if self.nvm is None or not accumulated:
            return
        num = (len(accumulated) - 1) // FETCH_BLOCK_BYTES
        try:
            self.nvm.write(
                self._fetch_block_key(manifest.storage_location, num),
                accumulated[num * FETCH_BLOCK_BYTES:],
            )
        except PowerFailure:
            self.kernel.power_fail()

    def _clear_fetch(self, location: str) -> None:
        if self.nvm is None:
            return
        for key in self.nvm.keys(NVM_FETCH_PREFIX + location):
            self.nvm.delete(key)

    # -- post-reboot recovery --------------------------------------------------

    def recover(self) -> list[UpdateResult]:
        """Bootloader role: re-activate what NVM says was installed.

        Called by whoever rebuilds the device after a power cycle.  Every
        occupied persisted slot is integrity-charged (the boot-time
        digest re-check a real bootloader performs) and re-activated
        through the same overridable :meth:`_activate` step as a live
        update, in install order.  Returns one result per slot.
        """
        outcomes = []
        slots = sorted(
            (s for s in self.storage.slots.values() if s.occupied),
            key=lambda s: s.sequence_number,
        )
        for slot in slots:
            self.kernel.clock.charge(SHA256_CYCLES_PER_BYTE * len(slot.image))
            outcome = self._recover_slot(slot)
            self.results.append(outcome)
            outcomes.append(outcome)
        return outcomes

    def _recover_slot(self, slot: StorageSlot) -> UpdateResult:
        manifest = SuitManifest(
            sequence_number=slot.sequence_number,
            storage_location=slot.location,
            digest=payload_digest(slot.image),
            size=len(slot.image),
            uri="",
            name=slot.name,
            kind=self.expected_kind,
            runtime=slot.runtime,
        )
        target, failure = self._resolve_target(manifest)
        if failure is not None:
            return failure
        return self._activate(manifest, target, slot.image)

    # -- overridable steps -----------------------------------------------------

    def _resolve_target(self, manifest: SuitManifest):
        """Map the manifest's storage location onto a device object.

        Returns ``(target, None)`` on success or ``(None, UpdateResult)``
        when the location cannot be resolved.  The image worker resolves
        a hook; the spec worker has no per-hook target.
        """
        try:
            return self.engine.hook_by_uuid(manifest.storage_location), None
        except UnknownHookError as exc:
            return None, UpdateResult(UpdateStatus.UNKNOWN_HOOK, str(exc),
                                      manifest)

    def _activate(self, manifest: SuitManifest, target,
                  payload: bytes) -> UpdateResult:
        """Turn a stored, integrity-checked payload into running state."""
        hook = target
        try:
            runtime = container_runtime(manifest.runtime)
            program = runtime.decode(payload, name=manifest.name)
            if hook.containers:
                container = self.engine.replace(hook.containers[0], program)
            else:
                container = self.engine.attach(
                    self.engine.load(program, tenant=self.tenant), hook.name
                )
        except Exception as exc:  # pre-flight or policy rejection
            return UpdateResult(UpdateStatus.REJECTED, str(exc), manifest)
        return UpdateResult(UpdateStatus.OK, "installed and attached",
                            manifest, container)
