"""Device-side SUIT update worker (§5 "Low-power Secure Runtime Update").

The full over-the-air deployment path of the paper:

1. a maintainer signs a manifest naming a hook UUID as storage location and
   pushes the envelope to the device (CoAP POST ``/suit/trigger``);
2. the worker verifies the COSE/Ed25519 signature against its trust anchor
   and the anti-rollback sequence number;
3. it fetches the payload block-wise over CoAP from the firmware
   repository;
4. it checks size and SHA-256 digest, stores the image in the slot, runs
   the pre-flight verifier, and attaches (or hot-replaces) the container on
   the hook — all without touching the firmware.

Every failure mode is a distinct status, and none of them disturb the
running system: a malicious client (threat model §3) can at worst waste
some radio budget.

The pipeline is deliberately split into overridable steps —
:meth:`SuitUpdateWorker._resolve_target` and
:meth:`SuitUpdateWorker._activate` — so the whole-device *spec* update
worker (:class:`~repro.suit.specworker.SpecUpdateWorker`) reuses the
authentication, anti-rollback, storage-budget and block-transfer
machinery and only swaps what a verified payload *means*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.errors import UnknownHookError
from repro.net.coap import CHANGED, BAD_REQUEST, CoapMessage
from repro.suit.manifest import KIND_IMAGE, SuitEnvelope, SuitManifest
from repro.suit.storage import StorageFullError, StorageRegistry
from repro.rtos.thread import Wait
from repro.vm.program import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import HostingEngine
    from repro.core.tenant import Tenant
    from repro.net.gcoap import CoapClient, CoapServer

#: Ed25519 verification cost on a Cortex-M-class core (cycles).
SIG_VERIFY_CYCLES = 5_800_000
#: SHA-256 cost per payload byte (cycles).
SHA256_CYCLES_PER_BYTE = 60


class UpdateStatus(enum.Enum):
    OK = "ok"
    MALFORMED = "malformed-envelope"
    SIGNATURE_INVALID = "signature-invalid"
    SEQUENCE_REPLAY = "sequence-replay"
    UNKNOWN_HOOK = "unknown-storage-location"
    WRONG_KIND = "manifest-kind-mismatch"
    STORAGE_FULL = "storage-exhausted"
    FETCH_FAILED = "payload-fetch-failed"
    DIGEST_MISMATCH = "payload-digest-mismatch"
    SPEC_INVALID = "spec-invalid"
    REJECTED = "pre-flight-rejected"


@dataclass
class UpdateResult:
    status: UpdateStatus
    message: str = ""
    manifest: SuitManifest | None = None
    container: object = None
    #: The :class:`~repro.deploy.plan.ApplyResult` of a spec update.
    applied: object = None
    duration_us: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is UpdateStatus.OK


class SuitUpdateWorker:
    """One device's update processor, running in its own thread."""

    #: Manifest kind this worker accepts; anything else is refused
    #: before any radio budget is spent on the payload.
    expected_kind = KIND_IMAGE
    #: Name of the worker thread (one per worker flavour per device).
    thread_name = "suit-worker"

    def __init__(
        self,
        engine: "HostingEngine",
        client: "CoapClient",
        trust_anchor: bytes,
        repo_addr: str,
        repo_port: int = 5683,
        tenant: "Tenant | None" = None,
        max_storage_slots: int | None = None,
        storage_gc_horizon: int | None = None,
    ) -> None:
        self.engine = engine
        self.kernel = engine.kernel
        self.client = client
        self.trust_anchor = trust_anchor
        self.repo_addr = repo_addr
        self.repo_port = repo_port
        self.tenant = tenant
        self.storage = StorageRegistry(max_slots=max_storage_slots,
                                       gc_horizon=storage_gc_horizon)
        self.results: list[UpdateResult] = []
        self.on_result: Callable[[UpdateResult], None] | None = None
        self._queue = self.kernel.new_event_queue(self.thread_name)
        self._backlog: list[bytes] = []
        self.thread = self.kernel.create_thread(
            self.thread_name, self._worker, priority=8, stack_size=4096
        )

    # -- triggers ----------------------------------------------------------

    def trigger(self, envelope_bytes: bytes) -> None:
        """Queue one update (what the CoAP trigger endpoint calls)."""
        self._queue.post_new("trigger", bytes(envelope_bytes))

    def register_trigger_resource(self, server: "CoapServer",
                                  path: str = "/suit/trigger") -> None:
        """Expose the network trigger endpoint on a device CoAP server."""

        def handler(request: CoapMessage, _dg) -> CoapMessage:
            if not request.payload:
                return request.reply(BAD_REQUEST)
            self.trigger(request.payload)
            return request.reply(CHANGED)

        server.register(path, handler)

    # -- worker thread --------------------------------------------------------

    def _worker(self, thread):
        while True:
            if self._backlog:
                raw = self._backlog.pop(0)
            else:
                event = yield Wait(self._queue)
                if event.kind != "trigger":
                    continue
                raw = event.payload
            started_us = self.kernel.now_us
            outcome = yield from self._process(thread, raw)
            outcome.duration_us = self.kernel.now_us - started_us
            self.results.append(outcome)
            if self.on_result is not None:
                self.on_result(outcome)

    def _process(self, thread, raw: bytes):
        # 1. Decode and authenticate the envelope.
        try:
            envelope = SuitEnvelope.decode(raw)
            manifest = envelope.manifest()
        except Exception as exc:  # any malformed input is one status
            return UpdateResult(UpdateStatus.MALFORMED, str(exc))
        thread.charge(SIG_VERIFY_CYCLES)
        if not envelope.verify(self.trust_anchor):
            return UpdateResult(
                UpdateStatus.SIGNATURE_INVALID,
                "COSE signature does not verify against the trust anchor",
                manifest,
            )
        if manifest.kind != self.expected_kind:
            return UpdateResult(
                UpdateStatus.WRONG_KIND,
                f"this worker processes {self.expected_kind!r} manifests, "
                f"got {manifest.kind!r}",
                manifest,
            )

        # 2. Resolve the target and check anti-rollback state.
        target, failure = self._resolve_target(manifest)
        if failure is not None:
            return failure
        if manifest.sequence_number <= self.storage.highest_sequence(
            manifest.storage_location
        ):
            return UpdateResult(
                UpdateStatus.SEQUENCE_REPLAY,
                f"sequence {manifest.sequence_number} not newer than "
                f"{self.storage.highest_sequence(manifest.storage_location)}",
                manifest,
            )
        # Reserve the storage slot *before* burning radio budget on a
        # payload the device has no room to keep.
        try:
            self.storage.slot(manifest.storage_location)
        except StorageFullError as exc:
            return UpdateResult(UpdateStatus.STORAGE_FULL, str(exc), manifest)

        # 3. Fetch the payload block-wise from the repository.
        self.client.get_blockwise(
            self.repo_addr,
            self.repo_port,
            manifest.uri,
            on_complete=lambda blob: self._queue.post_new("payload", blob),
            on_error=lambda msg: self._queue.post_new("fetch-error", msg),
            max_size=manifest.size,
        )
        while True:
            event = yield Wait(self._queue)
            if event.kind == "trigger":
                self._backlog.append(event.payload)
                continue
            break
        if event.kind == "fetch-error":
            # Return the reservation: a failed fetch must not turn the
            # bounded storage budget into a dead empty slot.
            self.storage.release_if_empty(manifest.storage_location)
            return UpdateResult(UpdateStatus.FETCH_FAILED, event.payload,
                                manifest)
        payload: bytes = event.payload

        # 4. Integrity check, then store and activate.
        thread.charge(SHA256_CYCLES_PER_BYTE * len(payload))
        if not manifest.matches_payload(payload):
            self.storage.release_if_empty(manifest.storage_location)
            return UpdateResult(
                UpdateStatus.DIGEST_MISMATCH,
                "payload size/digest does not match the signed manifest",
                manifest,
            )
        self.storage.install(manifest.storage_location, payload,
                             manifest.sequence_number)
        return self._activate(manifest, target, payload)

    # -- overridable steps -----------------------------------------------------

    def _resolve_target(self, manifest: SuitManifest):
        """Map the manifest's storage location onto a device object.

        Returns ``(target, None)`` on success or ``(None, UpdateResult)``
        when the location cannot be resolved.  The image worker resolves
        a hook; the spec worker has no per-hook target.
        """
        try:
            return self.engine.hook_by_uuid(manifest.storage_location), None
        except UnknownHookError as exc:
            return None, UpdateResult(UpdateStatus.UNKNOWN_HOOK, str(exc),
                                      manifest)

    def _activate(self, manifest: SuitManifest, target,
                  payload: bytes) -> UpdateResult:
        """Turn a stored, integrity-checked payload into running state."""
        hook = target
        try:
            program = Program.from_bytes(payload, name=manifest.name)
            if hook.containers:
                container = self.engine.replace(hook.containers[0], program)
            else:
                container = self.engine.attach(
                    self.engine.load(program, tenant=self.tenant), hook.name
                )
        except Exception as exc:  # pre-flight or policy rejection
            return UpdateResult(UpdateStatus.REJECTED, str(exc), manifest)
        return UpdateResult(UpdateStatus.OK, "installed and attached",
                            manifest, container)
