"""COSE_Sign1 (RFC 9052 subset) over Ed25519, for SUIT authentication."""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.suit import cbor, ed25519

#: COSE header parameter and algorithm identifiers.
HEADER_ALG = 1
ALG_EDDSA = -8
#: CBOR tag for COSE_Sign1.
TAG_SIGN1 = 18

#: Host-side verification memo, keyed by a digest of (message, signature,
#: public key).  A fleet publish hands the *same* envelope to N simulated
#: devices; the pure-Python Ed25519 math is the dominant host cost of
#: each device's verify, and — like the image cache — sharing it is a
#: wall-clock effect only: every device still charges the full modelled
#: ``SIG_VERIFY_CYCLES`` on its own virtual clock.  Only successful
#: verifications are memoized (a forgery is re-checked every time).
_VERIFY_MEMO: "OrderedDict[bytes, bool]" = OrderedDict()
_VERIFY_MEMO_MAX = 256


class CoseError(Exception):
    """Malformed or unverifiable COSE structure."""


@dataclass(frozen=True)
class CoseSign1:
    """A COSE_Sign1 message: [protected, unprotected, payload, signature]."""

    protected: bytes
    payload: bytes
    signature: bytes

    @staticmethod
    def _sig_structure(protected: bytes, payload: bytes) -> bytes:
        return cbor.encode(["Signature1", protected, b"", payload])

    @classmethod
    def sign(cls, payload: bytes, seed: bytes) -> "CoseSign1":
        """Sign ``payload`` with an Ed25519 seed key."""
        protected = cbor.encode({HEADER_ALG: ALG_EDDSA})
        signature = ed25519.sign(cls._sig_structure(protected, payload), seed)
        return cls(protected=protected, payload=payload, signature=signature)

    def verify(self, public_key: bytes) -> bool:
        """True when the signature validates under ``public_key``."""
        header = cbor.decode(self.protected)
        if not isinstance(header, dict) or header.get(HEADER_ALG) != ALG_EDDSA:
            return False
        message = self._sig_structure(self.protected, self.payload)
        memo_key = hashlib.sha256(
            b"%d:%d:" % (len(message), len(self.signature))
            + message + self.signature + public_key
        ).digest()
        if _VERIFY_MEMO.get(memo_key):
            _VERIFY_MEMO.move_to_end(memo_key)
            return True
        ok = ed25519.verify(message, self.signature, public_key)
        if ok:
            _VERIFY_MEMO[memo_key] = True
            if len(_VERIFY_MEMO) > _VERIFY_MEMO_MAX:
                _VERIFY_MEMO.popitem(last=False)
        return ok

    def encode(self) -> bytes:
        return cbor.encode(
            cbor.Tag(TAG_SIGN1,
                     [self.protected, {}, self.payload, self.signature])
        )

    @classmethod
    def decode(cls, raw: bytes) -> "CoseSign1":
        item = cbor.decode(raw)
        if isinstance(item, cbor.Tag):
            if item.number != TAG_SIGN1:
                raise CoseError(f"unexpected CBOR tag {item.number}")
            item = item.value
        if not isinstance(item, list) or len(item) != 4:
            raise CoseError("COSE_Sign1 must be a 4-element array")
        protected, _unprotected, payload, signature = item
        if not isinstance(protected, bytes) or not isinstance(payload, bytes) \
                or not isinstance(signature, bytes):
            raise CoseError("COSE_Sign1 fields have wrong types")
        return cls(protected=protected, payload=payload, signature=signature)
