"""CBOR codec (RFC 8949 subset) written from scratch for SUIT manifests.

Supports the types SUIT (and COSE) serialization needs: unsigned/negative
integers, byte strings, text strings, arrays, maps, tags, booleans, null
and 64-bit floats.  Encoding is *canonical/deterministic*: shortest integer
heads, definite lengths, and map keys sorted by their encoded bytes — so
signatures over encoded manifests are stable.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Any

# Major types.
_UNSIGNED = 0
_NEGATIVE = 1
_BYTES = 2
_TEXT = 3
_ARRAY = 4
_MAP = 5
_TAG = 6
_SIMPLE = 7

_FALSE, _TRUE, _NULL = 20, 21, 22
_FLOAT64 = 27


class CBORError(Exception):
    """Malformed or unsupported CBOR data."""


@dataclass(frozen=True)
class Tag:
    """A tagged value (major type 6)."""

    number: int
    value: Any


def _encode_head(major: int, argument: int) -> bytes:
    if argument < 0:
        raise CBORError(f"negative head argument {argument}")
    if argument < 24:
        return bytes([(major << 5) | argument])
    for additional, fmt, limit in (
        (24, ">B", 1 << 8),
        (25, ">H", 1 << 16),
        (26, ">I", 1 << 32),
        (27, ">Q", 1 << 64),
    ):
        if argument < limit:
            return bytes([(major << 5) | additional]) + struct.pack(
                fmt, argument
            )
    raise CBORError(f"argument {argument} exceeds 64 bits")


def encode(value: Any) -> bytes:
    """Encode a Python value into canonical CBOR."""
    if value is False:
        return bytes([(_SIMPLE << 5) | _FALSE])
    if value is True:
        return bytes([(_SIMPLE << 5) | _TRUE])
    if value is None:
        return bytes([(_SIMPLE << 5) | _NULL])
    if isinstance(value, int):
        if value >= 0:
            return _encode_head(_UNSIGNED, value)
        return _encode_head(_NEGATIVE, -1 - value)
    if isinstance(value, float):
        return bytes([(_SIMPLE << 5) | _FLOAT64]) + struct.pack(">d", value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        return _encode_head(_BYTES, len(data)) + data
    if isinstance(value, str):
        data = value.encode("utf-8")
        return _encode_head(_TEXT, len(data)) + data
    if isinstance(value, (list, tuple)):
        return _encode_head(_ARRAY, len(value)) + b"".join(
            encode(item) for item in value
        )
    if isinstance(value, dict):
        encoded_items = sorted(
            (encode(key), encode(val)) for key, val in value.items()
        )
        return _encode_head(_MAP, len(value)) + b"".join(
            key + val for key, val in encoded_items
        )
    if isinstance(value, Tag):
        return _encode_head(_TAG, value.number) + encode(value.value)
    raise CBORError(f"cannot encode {type(value).__name__}")


class _Decoder:
    def __init__(self, raw: bytes):
        self.raw = raw
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.raw):
            raise CBORError("truncated CBOR input")
        chunk = self.raw[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def head(self) -> tuple[int, int]:
        byte = self.take(1)[0]
        major, additional = byte >> 5, byte & 0x1F
        if additional < 24:
            return major, additional
        if additional == 24:
            return major, self.take(1)[0]
        if additional == 25:
            return major, struct.unpack(">H", self.take(2))[0]
        if additional == 26:
            return major, struct.unpack(">I", self.take(4))[0]
        if additional == 27:
            return major, struct.unpack(">Q", self.take(8))[0]
        raise CBORError(
            f"indefinite/reserved additional info {additional} unsupported"
        )

    def item(self) -> Any:
        start = self.pos
        byte = self.raw[self.pos] if self.pos < len(self.raw) else None
        if byte is None:
            raise CBORError("empty CBOR input")
        major = byte >> 5
        additional = byte & 0x1F
        if major == _SIMPLE:
            self.pos += 1
            if additional == _FALSE:
                return False
            if additional == _TRUE:
                return True
            if additional == _NULL:
                return None
            if additional == _FLOAT64:
                return struct.unpack(">d", self.take(8))[0]
            if additional == 25:  # float16, decode-only
                return _decode_half(self.take(2))
            if additional == 26:  # float32, decode-only
                return struct.unpack(">f", self.take(4))[0]
            raise CBORError(f"unsupported simple value {additional}")
        self.pos = start
        major, argument = self.head()
        if major == _UNSIGNED:
            return argument
        if major == _NEGATIVE:
            return -1 - argument
        if major == _BYTES:
            return self.take(argument)
        if major == _TEXT:
            return self.take(argument).decode("utf-8")
        if major == _ARRAY:
            return [self.item() for _ in range(argument)]
        if major == _MAP:
            result: dict[Any, Any] = {}
            for _ in range(argument):
                key = self.item()
                if isinstance(key, list):
                    key = tuple(key)
                value = self.item()
                try:
                    result[key] = value
                except TypeError:
                    raise CBORError(
                        f"unhashable map key of type {type(key).__name__}"
                    ) from None
            return result
        if major == _TAG:
            return Tag(argument, self.item())
        raise CBORError(f"unhandled major type {major}")


def _decode_half(raw: bytes) -> float:
    half = struct.unpack(">H", raw)[0]
    sign = -1.0 if half & 0x8000 else 1.0
    exponent = (half >> 10) & 0x1F
    mantissa = half & 0x3FF
    if exponent == 0:
        return sign * mantissa * 2.0**-24
    if exponent == 31:
        return sign * (math.inf if mantissa == 0 else math.nan)
    return sign * (1 + mantissa / 1024.0) * 2.0 ** (exponent - 15)


def decode(raw: bytes) -> Any:
    """Decode one CBOR item; trailing bytes are an error."""
    decoder = _Decoder(raw)
    value = decoder.item()
    if decoder.pos != len(raw):
        raise CBORError(
            f"{len(raw) - decoder.pos} trailing bytes after CBOR item"
        )
    return value
