"""SUIT secure software updates: CBOR, COSE/Ed25519, manifests, worker."""

from repro.suit import cbor, ed25519
from repro.suit.cose import CoseSign1, CoseError
from repro.suit.manifest import (
    ManifestError,
    SuitEnvelope,
    SuitManifest,
    payload_digest,
)
from repro.suit.storage import StorageRegistry, StorageSlot
from repro.suit.worker import SuitUpdateWorker, UpdateResult, UpdateStatus

__all__ = [
    "CoseError",
    "CoseSign1",
    "ManifestError",
    "StorageRegistry",
    "StorageSlot",
    "SuitEnvelope",
    "SuitManifest",
    "SuitUpdateWorker",
    "UpdateResult",
    "UpdateStatus",
    "cbor",
    "ed25519",
    "payload_digest",
]
