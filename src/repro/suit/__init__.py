"""SUIT secure software updates: CBOR, COSE/Ed25519, manifests, worker."""

from repro.suit import cbor, ed25519
from repro.suit.cose import CoseSign1, CoseError
from repro.suit.manifest import (
    KIND_IMAGE,
    KIND_SPEC,
    ManifestError,
    SuitEnvelope,
    SuitManifest,
    payload_digest,
)
from repro.suit.specworker import (
    SpecUpdateWorker,
    make_spec_manifest,
    sign_spec,
    spec_slot,
)
from repro.suit.storage import StorageFullError, StorageRegistry, StorageSlot
from repro.suit.worker import (
    KILL_POINTS,
    SuitUpdateWorker,
    UpdateResult,
    UpdateStatus,
)

__all__ = [
    "CoseError",
    "CoseSign1",
    "KILL_POINTS",
    "KIND_IMAGE",
    "KIND_SPEC",
    "ManifestError",
    "SpecUpdateWorker",
    "StorageFullError",
    "StorageRegistry",
    "StorageSlot",
    "SuitEnvelope",
    "SuitManifest",
    "SuitUpdateWorker",
    "UpdateResult",
    "UpdateStatus",
    "cbor",
    "ed25519",
    "make_spec_manifest",
    "payload_digest",
    "sign_spec",
    "spec_slot",
]
