"""Device-side storage slots for container images, keyed by hook UUID.

The paper stores deployed applications in RAM, addressed by the SUIT
storage-location identifier (the hook UUID).  A slot remembers the image
and the sequence number that installed it — the anti-rollback state.

A registry may be bounded (``max_slots``): a real device has a fixed
storage budget, and an update naming a storage location the device has no
room for must fail cleanly *before* any install happens — the update
worker turns :class:`StorageFullError` into a distinct rejection status.

A registry may also garbage-collect (``gc_horizon``): a slot whose image
was superseded long ago — its install sequence is ``gc_horizon`` or more
behind the registry's newest sequence — has its image *bytes* dropped so
detached-but-stored payloads stop pinning ``ram_bytes`` forever.  GC
never touches anti-rollback state: the slot (and its sequence number)
survives eviction, so a replayed old manifest is still refused, and the
slot holding the newest sequence — the live one — is never evicted.
Sequences are assumed to be drawn from one maintainer-wide epoch counter
(as :class:`~repro.deploy.publish.FleetPublisher` does), which is what
makes cross-location comparison meaningful.

A registry may be backed by an :class:`~repro.rtos.nvm.NvmStore`
(``nvm``): installs and GC then persist the slot — image, name and
anti-rollback sequence — to simulated flash, and :meth:`restore`
rebuilds the registry after a power cycle.  Only *installed* state is
persisted; a reservation (an empty slot created by :meth:`slot` before a
fetch) lives purely in RAM, which is exactly why a crash mid-fetch can
never strand a reservation: power loss returns it automatically.

Corruption safety: flash records carry CRC framing and shadow copies
(see :mod:`repro.rtos.nvm`), but a record can still come back
unreadable (both copies torn, a bit flip in an unreplicated record).
:meth:`restore` **degrades instead of raising**: an unreadable slot
record is dropped — the image can be re-fetched — and counted in
:attr:`StorageRegistry.corrupt_dropped`.  The anti-rollback *sequence*,
however, must never be dropped: :meth:`install` writes it twice — once
inside the slot record and once as a small **redundant** record under
``suit/seq/<location>`` whose shadow copy is kept as a standing
replica — and :meth:`restore` replays those records last, so even a
device that lost a whole slot record still refuses replayed manifests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.suit import cbor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.nvm import NvmStore

#: NVM key prefix under which slots are persisted.
NVM_SLOT_PREFIX = "suit/slot/"
#: NVM key prefix of the redundant anti-rollback sequence records.
NVM_SEQ_PREFIX = "suit/seq/"


class StorageFullError(Exception):
    """No free slot for a new storage location (device budget exhausted)."""


@dataclass
class StorageSlot:
    """One hook's application image slot."""

    location: str
    image: bytes = b""
    sequence_number: int = -1
    installs: int = 0
    #: Human-readable name from the installing manifest; persisted so a
    #: rebooted device can re-activate what it had without the manifest.
    name: str = ""
    #: Runtime tag from the installing manifest (persisted for the same
    #: reason; slots from before runtimes existed restore as rBPF).
    runtime: str = "rbpf"

    @property
    def occupied(self) -> bool:
        return bool(self.image)


@dataclass
class StorageRegistry:
    """All slots of one device."""

    slots: dict[str, StorageSlot] = field(default_factory=dict)
    #: Maximum number of distinct storage locations; None means unbounded.
    max_slots: int | None = None
    #: Auto-GC horizon: after every install, occupied slots whose
    #: sequence is this far (or further) behind the newest sequence are
    #: evicted.  None disables automatic GC; :meth:`gc` still works.
    gc_horizon: int | None = None
    #: Lifetime count of images dropped by GC (observability).
    gc_evictions: int = 0
    #: Optional persistent backing store (survives power failure).
    nvm: "NvmStore | None" = None
    #: Slot records dropped by :meth:`restore` because both flash
    #: copies were unreadable (observability; images are re-fetchable).
    corrupt_dropped: int = 0

    def peek(self, location: str) -> StorageSlot | None:
        """The slot for ``location`` if it exists, without creating it."""
        return self.slots.get(location)

    def slot(self, location: str) -> StorageSlot:
        if location not in self.slots:
            if (self.max_slots is not None
                    and len(self.slots) >= self.max_slots):
                raise StorageFullError(
                    f"no free storage slot for {location!r} "
                    f"({len(self.slots)}/{self.max_slots} in use)"
                )
            self.slots[location] = StorageSlot(location=location)
        return self.slots[location]

    def release_if_empty(self, location: str) -> None:
        """Drop an unoccupied slot (undo a reservation that never
        installed — a failed fetch must not consume the budget).

        Only *virgin* reservations are dropped: a slot that is
        unoccupied because GC evicted its image still carries the
        anti-rollback sequence of the install it once held, and deleting
        it would let a replayed old manifest back in.
        """
        slot = self.slots.get(location)
        if slot is not None and not slot.occupied and slot.sequence_number < 0:
            del self.slots[location]

    def install(self, location: str, image: bytes,
                sequence_number: int, name: str = "",
                runtime: str = "rbpf") -> StorageSlot:
        slot = self.slot(location)
        slot.image = bytes(image)
        slot.sequence_number = sequence_number
        slot.installs += 1
        if name:
            slot.name = name
        slot.runtime = runtime
        self._persist(slot)
        if self.gc_horizon is not None:
            self.gc()
        return slot

    def gc(self, horizon: int | None = None) -> list[str]:
        """Age out images whose sequence is ``horizon`` or more behind.

        Drops the image *bytes* of every occupied slot with
        ``sequence <= newest - horizon``; the slot itself — and with it
        the anti-rollback sequence — is kept, so storage freed by GC
        can never be re-filled by a replayed manifest.  The newest
        sequence's slot is by construction never evicted (``horizon``
        must be positive).  Returns the evicted locations.
        """
        if horizon is None:
            horizon = self.gc_horizon
        if horizon is None:
            return []
        if horizon < 1:
            raise ValueError(f"gc horizon must be >= 1, got {horizon}")
        newest = max((slot.sequence_number
                      for slot in self.slots.values()), default=-1)
        evicted = []
        for slot in self.slots.values():
            if slot.occupied and slot.sequence_number <= newest - horizon:
                slot.image = b""
                evicted.append(slot.location)
                self._persist(slot)
        self.gc_evictions += len(evicted)
        return evicted

    def highest_sequence(self, location: str) -> int:
        slot = self.peek(location)
        return slot.sequence_number if slot is not None else -1

    @property
    def ram_bytes(self) -> int:
        """RAM pinned by stored images."""
        return sum(len(slot.image) for slot in self.slots.values())

    # -- persistence -----------------------------------------------------------

    def _persist(self, slot: StorageSlot) -> None:
        """Write one installed slot's durable state to NVM (if backed).

        Two records, in a deliberate order: the big slot record first
        (image + metadata), then the small **redundant** anti-rollback
        sequence record.  A power cut before the sequence record lands
        leaves the new image installed under the old (lower) sequence
        floor — safe, the floor only ever lags — while the reverse
        order could raise the floor above an image that never made it,
        bricking the slot against its own re-install.
        """
        if self.nvm is None or slot.sequence_number < 0:
            return
        record = {
            "location": slot.location,
            "image": slot.image,
            "sequence": slot.sequence_number,
            "installs": slot.installs,
            "name": slot.name,
            "runtime": slot.runtime,
        }
        self.nvm.write(NVM_SLOT_PREFIX + slot.location, cbor.encode(record))
        seq_record = {"location": slot.location,
                      "sequence": slot.sequence_number}
        self.nvm.write(NVM_SEQ_PREFIX + slot.location,
                       cbor.encode(seq_record), redundant=True)

    def _read_record(self, key: str) -> dict | None:
        """One validated, decoded NVM record — or ``None`` if unreadable."""
        raw = self.nvm.read(key)
        if raw is None:
            return None
        try:
            record = cbor.decode(raw)
        except Exception:
            return None
        return record if isinstance(record, dict) else None

    def restore(self) -> list[StorageSlot]:
        """Reload every persisted slot from NVM after a power cycle.

        Returns the restored slots (for the caller to re-activate).
        RAM-only reservations from before the crash do not reappear —
        they were never persisted — so the slot budget comes back
        exactly as large as the durable state requires.

        Corrupt slot records (both flash copies unreadable) are dropped
        and counted in :attr:`corrupt_dropped` — their image is gone
        but re-fetchable.  The redundant ``suit/seq/`` records are
        replayed afterwards: any anti-rollback sequence they carry is
        re-imposed on the (possibly skeleton) slot, so no corruption
        scenario short of losing *three* flash copies can regress a
        device's replay floor.
        """
        if self.nvm is None:
            return []
        restored = []
        for key in self.nvm.keys(NVM_SLOT_PREFIX):
            record = self._read_record(key)
            if record is None or "location" not in record:
                # Unreadable even via the shadow copy: drop the slot
                # gracefully (the seq pass below still restores its
                # anti-rollback floor).
                self.nvm.delete(key)
                self.corrupt_dropped += 1
                continue
            slot = StorageSlot(
                location=record["location"],
                image=bytes(record.get("image", b"")),
                sequence_number=record.get("sequence", -1),
                installs=record.get("installs", 0),
                name=record.get("name", ""),
                runtime=record.get("runtime", "rbpf"),
            )
            self.slots[slot.location] = slot
            restored.append(slot)
        for key in self.nvm.keys(NVM_SEQ_PREFIX):
            record = self._read_record(key)
            if record is None or "location" not in record:
                continue
            location = record["location"]
            sequence = record.get("sequence", -1)
            slot = self.slots.get(location)
            if slot is None:
                # The slot record was lost: resurrect an empty skeleton
                # carrying the anti-rollback floor (never droppable).
                slot = StorageSlot(location=location,
                                   sequence_number=sequence)
                self.slots[location] = slot
            else:
                slot.sequence_number = max(slot.sequence_number, sequence)
        return restored
