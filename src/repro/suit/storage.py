"""Device-side storage slots for container images, keyed by hook UUID.

The paper stores deployed applications in RAM, addressed by the SUIT
storage-location identifier (the hook UUID).  A slot remembers the image
and the sequence number that installed it — the anti-rollback state.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StorageSlot:
    """One hook's application image slot."""

    location: str
    image: bytes = b""
    sequence_number: int = -1
    installs: int = 0

    @property
    def occupied(self) -> bool:
        return bool(self.image)


@dataclass
class StorageRegistry:
    """All slots of one device."""

    slots: dict[str, StorageSlot] = field(default_factory=dict)

    def slot(self, location: str) -> StorageSlot:
        if location not in self.slots:
            self.slots[location] = StorageSlot(location=location)
        return self.slots[location]

    def install(self, location: str, image: bytes,
                sequence_number: int) -> StorageSlot:
        slot = self.slot(location)
        slot.image = bytes(image)
        slot.sequence_number = sequence_number
        slot.installs += 1
        return slot

    def highest_sequence(self, location: str) -> int:
        return self.slot(location).sequence_number

    @property
    def ram_bytes(self) -> int:
        """RAM pinned by stored images."""
        return sum(len(slot.image) for slot in self.slots.values())
