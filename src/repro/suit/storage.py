"""Device-side storage slots for container images, keyed by hook UUID.

The paper stores deployed applications in RAM, addressed by the SUIT
storage-location identifier (the hook UUID).  A slot remembers the image
and the sequence number that installed it — the anti-rollback state.

A registry may be bounded (``max_slots``): a real device has a fixed
storage budget, and an update naming a storage location the device has no
room for must fail cleanly *before* any install happens — the update
worker turns :class:`StorageFullError` into a distinct rejection status.

A registry may also garbage-collect (``gc_horizon``): a slot whose image
was superseded long ago — its install sequence is ``gc_horizon`` or more
behind the registry's newest sequence — has its image *bytes* dropped so
detached-but-stored payloads stop pinning ``ram_bytes`` forever.  GC
never touches anti-rollback state: the slot (and its sequence number)
survives eviction, so a replayed old manifest is still refused, and the
slot holding the newest sequence — the live one — is never evicted.
Sequences are assumed to be drawn from one maintainer-wide epoch counter
(as :class:`~repro.deploy.publish.FleetPublisher` does), which is what
makes cross-location comparison meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class StorageFullError(Exception):
    """No free slot for a new storage location (device budget exhausted)."""


@dataclass
class StorageSlot:
    """One hook's application image slot."""

    location: str
    image: bytes = b""
    sequence_number: int = -1
    installs: int = 0

    @property
    def occupied(self) -> bool:
        return bool(self.image)


@dataclass
class StorageRegistry:
    """All slots of one device."""

    slots: dict[str, StorageSlot] = field(default_factory=dict)
    #: Maximum number of distinct storage locations; None means unbounded.
    max_slots: int | None = None
    #: Auto-GC horizon: after every install, occupied slots whose
    #: sequence is this far (or further) behind the newest sequence are
    #: evicted.  None disables automatic GC; :meth:`gc` still works.
    gc_horizon: int | None = None
    #: Lifetime count of images dropped by GC (observability).
    gc_evictions: int = 0

    def peek(self, location: str) -> StorageSlot | None:
        """The slot for ``location`` if it exists, without creating it."""
        return self.slots.get(location)

    def slot(self, location: str) -> StorageSlot:
        if location not in self.slots:
            if (self.max_slots is not None
                    and len(self.slots) >= self.max_slots):
                raise StorageFullError(
                    f"no free storage slot for {location!r} "
                    f"({len(self.slots)}/{self.max_slots} in use)"
                )
            self.slots[location] = StorageSlot(location=location)
        return self.slots[location]

    def release_if_empty(self, location: str) -> None:
        """Drop an unoccupied slot (undo a reservation that never
        installed — a failed fetch must not consume the budget)."""
        slot = self.slots.get(location)
        if slot is not None and not slot.occupied:
            del self.slots[location]

    def install(self, location: str, image: bytes,
                sequence_number: int) -> StorageSlot:
        slot = self.slot(location)
        slot.image = bytes(image)
        slot.sequence_number = sequence_number
        slot.installs += 1
        if self.gc_horizon is not None:
            self.gc()
        return slot

    def gc(self, horizon: int | None = None) -> list[str]:
        """Age out images whose sequence is ``horizon`` or more behind.

        Drops the image *bytes* of every occupied slot with
        ``sequence <= newest - horizon``; the slot itself — and with it
        the anti-rollback sequence — is kept, so storage freed by GC
        can never be re-filled by a replayed manifest.  The newest
        sequence's slot is by construction never evicted (``horizon``
        must be positive).  Returns the evicted locations.
        """
        if horizon is None:
            horizon = self.gc_horizon
        if horizon is None:
            return []
        if horizon < 1:
            raise ValueError(f"gc horizon must be >= 1, got {horizon}")
        newest = max((slot.sequence_number
                      for slot in self.slots.values()), default=-1)
        evicted = []
        for slot in self.slots.values():
            if slot.occupied and slot.sequence_number <= newest - horizon:
                slot.image = b""
                evicted.append(slot.location)
        self.gc_evictions += len(evicted)
        return evicted

    def highest_sequence(self, location: str) -> int:
        slot = self.peek(location)
        return slot.sequence_number if slot is not None else -1

    @property
    def ram_bytes(self) -> int:
        """RAM pinned by stored images."""
        return sum(len(slot.image) for slot in self.slots.values())
