"""Device-side storage slots for container images, keyed by hook UUID.

The paper stores deployed applications in RAM, addressed by the SUIT
storage-location identifier (the hook UUID).  A slot remembers the image
and the sequence number that installed it — the anti-rollback state.

A registry may be bounded (``max_slots``): a real device has a fixed
storage budget, and an update naming a storage location the device has no
room for must fail cleanly *before* any install happens — the update
worker turns :class:`StorageFullError` into a distinct rejection status.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class StorageFullError(Exception):
    """No free slot for a new storage location (device budget exhausted)."""


@dataclass
class StorageSlot:
    """One hook's application image slot."""

    location: str
    image: bytes = b""
    sequence_number: int = -1
    installs: int = 0

    @property
    def occupied(self) -> bool:
        return bool(self.image)


@dataclass
class StorageRegistry:
    """All slots of one device."""

    slots: dict[str, StorageSlot] = field(default_factory=dict)
    #: Maximum number of distinct storage locations; None means unbounded.
    max_slots: int | None = None

    def peek(self, location: str) -> StorageSlot | None:
        """The slot for ``location`` if it exists, without creating it."""
        return self.slots.get(location)

    def slot(self, location: str) -> StorageSlot:
        if location not in self.slots:
            if (self.max_slots is not None
                    and len(self.slots) >= self.max_slots):
                raise StorageFullError(
                    f"no free storage slot for {location!r} "
                    f"({len(self.slots)}/{self.max_slots} in use)"
                )
            self.slots[location] = StorageSlot(location=location)
        return self.slots[location]

    def release_if_empty(self, location: str) -> None:
        """Drop an unoccupied slot (undo a reservation that never
        installed — a failed fetch must not consume the budget)."""
        slot = self.slots.get(location)
        if slot is not None and not slot.occupied:
            del self.slots[location]

    def install(self, location: str, image: bytes,
                sequence_number: int) -> StorageSlot:
        slot = self.slot(location)
        slot.image = bytes(image)
        slot.sequence_number = sequence_number
        slot.installs += 1
        return slot

    def highest_sequence(self, location: str) -> int:
        slot = self.peek(location)
        return slot.sequence_number if slot is not None else -1

    @property
    def ram_bytes(self) -> int:
        """RAM pinned by stored images."""
        return sum(len(slot.image) for slot in self.slots.values())
