"""SUIT manifests (draft-ietf-suit-manifest flavoured, CBOR encoded).

A manifest describes one container update: where the payload lives, its
size and SHA-256 digest, a monotonically increasing sequence number (the
anti-rollback measure), and the *storage location* — the UUID of the hook
the new Femto-Container must attach to (§5: "The exact hook to attach the
new Femto-Container to is done by specifying the hook as a unique
identifier (UUID) as a storage location in the SUIT manifest").

The envelope wraps the manifest in a COSE_Sign1 authentication wrapper, so
integrity and authenticity hold end-to-end across untrusted transports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.suit import cbor
from repro.suit.cose import CoseSign1

# Map keys, following the SUIT manifest draft numbering where applicable.
KEY_VERSION = 1
KEY_SEQUENCE = 2
KEY_STORAGE_LOCATION = 3
KEY_DIGEST = 4
KEY_SIZE = 5
KEY_URI = 6
KEY_NAME = 7
KEY_KIND = 8
KEY_RUNTIME = 9

MANIFEST_VERSION = 1

#: Payload kinds a manifest can describe.  ``image`` (the default, and
#: the only kind before spec updates existed) ships one container image
#: for one hook; ``spec`` ships a whole-device deployment spec that the
#: device reconciles through plan/apply.
KIND_IMAGE = "image"
KIND_SPEC = "spec"
MANIFEST_KINDS = (KIND_IMAGE, KIND_SPEC)


class ManifestError(Exception):
    """Malformed manifest or envelope."""


def payload_digest(payload: bytes) -> bytes:
    """SHA-256 digest as carried in the manifest."""
    return hashlib.sha256(payload).digest()


@dataclass(frozen=True)
class SuitManifest:
    """The signed part of an update description."""

    sequence_number: int
    storage_location: str      # hook UUID string (or spec slot name)
    digest: bytes              # sha256 of the payload
    size: int                  # payload size in bytes
    uri: str                   # where to fetch the payload (CoAP path)
    name: str = "app"
    version: int = MANIFEST_VERSION
    kind: str = KIND_IMAGE
    #: Which container runtime hosts the payload (image manifests only;
    #: spec payloads carry per-image tags inside the spec itself).
    runtime: str = "rbpf"

    def to_cbor(self) -> bytes:
        doc = {
            KEY_VERSION: self.version,
            KEY_SEQUENCE: self.sequence_number,
            KEY_STORAGE_LOCATION: self.storage_location,
            KEY_DIGEST: self.digest,
            KEY_SIZE: self.size,
            KEY_URI: self.uri,
            KEY_NAME: self.name,
        }
        if self.kind != KIND_IMAGE:
            # Image manifests stay byte-identical to the pre-spec wire
            # format, so old signatures keep verifying.
            doc[KEY_KIND] = self.kind
        if self.runtime != "rbpf":
            # Same compatibility rule: rBPF manifests (all of them,
            # before runtimes were a manifest dimension) are unchanged.
            doc[KEY_RUNTIME] = self.runtime
        return cbor.encode(doc)

    @classmethod
    def from_cbor(cls, raw: bytes) -> "SuitManifest":
        item = cbor.decode(raw)
        if not isinstance(item, dict):
            raise ManifestError("manifest must be a CBOR map")
        try:
            manifest = cls(
                version=item[KEY_VERSION],
                sequence_number=item[KEY_SEQUENCE],
                storage_location=item[KEY_STORAGE_LOCATION],
                digest=item[KEY_DIGEST],
                size=item[KEY_SIZE],
                uri=item[KEY_URI],
                name=item.get(KEY_NAME, "app"),
                kind=item.get(KEY_KIND, KIND_IMAGE),
                runtime=item.get(KEY_RUNTIME, "rbpf"),
            )
        except KeyError as exc:
            raise ManifestError(f"manifest missing key {exc}") from None
        if manifest.version != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {manifest.version}"
            )
        if manifest.kind not in MANIFEST_KINDS:
            raise ManifestError(f"unknown manifest kind {manifest.kind!r}")
        if len(manifest.digest) != 32:
            raise ManifestError("digest must be 32 bytes of SHA-256")
        return manifest

    def matches_payload(self, payload: bytes) -> bool:
        return (
            len(payload) == self.size
            and payload_digest(payload) == self.digest
        )


@dataclass(frozen=True)
class SuitEnvelope:
    """Authentication wrapper + manifest, as sent to the device."""

    auth: CoseSign1

    @classmethod
    def create(cls, manifest: SuitManifest, signer_seed: bytes) -> "SuitEnvelope":
        """Sign ``manifest`` with the maintainer's Ed25519 seed."""
        return cls(auth=CoseSign1.sign(manifest.to_cbor(), signer_seed))

    def manifest(self) -> SuitManifest:
        return SuitManifest.from_cbor(self.auth.payload)

    def verify(self, public_key: bytes) -> bool:
        return self.auth.verify(public_key)

    def encode(self) -> bytes:
        return cbor.encode({"auth": self.auth.encode()})

    @classmethod
    def decode(cls, raw: bytes) -> "SuitEnvelope":
        item = cbor.decode(raw)
        if not isinstance(item, dict) or "auth" not in item:
            raise ManifestError("envelope must be a map with an 'auth' entry")
        return cls(auth=CoseSign1.decode(item["auth"]))
