"""Pure-Python Ed25519 (RFC 8032) for SUIT manifest authentication.

The paper's update pipeline signs manifests with ed25519 (Appendix A).
This is a from-scratch implementation over the twisted Edwards curve
edwards25519, using extended homogeneous coordinates; it is validated
against the RFC 8032 test vectors in the test suite.  Pure Python is slow
(~10 ms per operation) but entirely adequate for the simulation.
"""

from __future__ import annotations

import hashlib

P = 2**255 - 19
L = 2**252 + 27742317777372353535851937790883648493
D = (-121665 * pow(121666, P - 2, P)) % P

#: Base point.
_BY = (4 * pow(5, P - 2, P)) % P
_BX: int


def _recover_x(y: int, sign: int) -> int:
    x2 = (y * y - 1) * pow(D * y * y + 1, P - 2, P) % P
    if x2 == 0:
        if sign:
            raise ValueError("invalid point encoding")
        return 0
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P:
        x = x * pow(2, (P - 1) // 4, P) % P
    if (x * x - x2) % P:
        raise ValueError("invalid point encoding")
    if (x & 1) != sign:
        x = P - x
    return x


_BX = _recover_x(_BY, 0)
#: Base point in extended coordinates (X, Y, Z, T).
_B = (_BX, _BY, 1, (_BX * _BY) % P)
_IDENTITY = (0, 1, 1, 0)


def _add(p, q):
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % P
    b = (y1 + x1) * (y2 + x2) % P
    c = 2 * t1 * t2 * D % P
    dd = 2 * z1 * z2 % P
    e, f, g, h = b - a, dd - c, dd + c, b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _scalar_mul(scalar: int, point):
    result = _IDENTITY
    while scalar > 0:
        if scalar & 1:
            result = _add(result, point)
        point = _add(point, point)
        scalar >>= 1
    return result


def _compress(point) -> bytes:
    x, y, z, _t = point
    zinv = pow(z, P - 2, P)
    x, y = x * zinv % P, y * zinv % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _decompress(raw: bytes):
    if len(raw) != 32:
        raise ValueError("point encoding must be 32 bytes")
    y = int.from_bytes(raw, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    if y >= P:
        raise ValueError("invalid point encoding")
    x = _recover_x(y, sign)
    return (x, y, 1, (x * y) % P)


def _equal(p, q) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


def _sha512(*chunks: bytes) -> bytes:
    digest = hashlib.sha512()
    for chunk in chunks:
        digest.update(chunk)
    return digest.digest()


def _clamp(scalar_bytes: bytes) -> int:
    value = int.from_bytes(scalar_bytes, "little")
    value &= (1 << 254) - 8
    value |= 1 << 254
    return value


def public_key(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte seed."""
    if len(seed) != 32:
        raise ValueError("seed must be 32 bytes")
    scalar = _clamp(_sha512(seed)[:32])
    return _compress(_scalar_mul(scalar, _B))


def sign(message: bytes, seed: bytes) -> bytes:
    """Produce a 64-byte signature over ``message``."""
    if len(seed) != 32:
        raise ValueError("seed must be 32 bytes")
    hashed = _sha512(seed)
    scalar = _clamp(hashed[:32])
    prefix = hashed[32:]
    pub = _compress(_scalar_mul(scalar, _B))
    r = int.from_bytes(_sha512(prefix, message), "little") % L
    r_point = _compress(_scalar_mul(r, _B))
    k = int.from_bytes(_sha512(r_point, pub, message), "little") % L
    s = (r + k * scalar) % L
    return r_point + s.to_bytes(32, "little")


def verify(message: bytes, signature: bytes, public: bytes) -> bool:
    """Check a signature; returns False on any malformation."""
    if len(signature) != 64 or len(public) != 32:
        return False
    try:
        a_point = _decompress(public)
        r_point = _decompress(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    k = int.from_bytes(
        _sha512(signature[:32], public, message), "little"
    ) % L
    # Check [8][s]B == [8]R + [8][k]A (cofactored verification).
    lhs = _scalar_mul(8 * s, _B)
    rhs = _add(_scalar_mul(8, r_point), _scalar_mul(8 * k, a_point))
    return _equal(lhs, rhs)


def keypair(seed: bytes) -> tuple[bytes, bytes]:
    """(seed, public key) pair from a 32-byte seed."""
    return seed, public_key(seed)
