"""Over-the-air *spec* reconciliation: SUIT-shipped whole-device state.

:class:`~repro.suit.worker.SuitUpdateWorker` hot-swaps one container
image on one hook — the paper's §5 update path.  This module lifts that
path one level: a maintainer signs a manifest whose payload is a whole
:class:`~repro.deploy.spec.DeploymentSpec` (canonical CBOR), and the
device *reconciles itself* onto it through the declarative deployment
reconciler — tenants created, images installed or hot-replaced by content
hash, per-tenant hook policies re-granted, stale slots detached — in one
transactional apply.

The pipeline is the parent's: COSE/Ed25519 authentication, anti-rollback
sequence numbers (keyed by the manifest's storage location, one logical
slot per spec stream), storage-budget reservation, block-wise CoAP fetch
bounded by the signed payload size, and the SHA-256 digest check.  Only
the two overridable steps differ:

* the storage location is a *spec slot name* (e.g. ``spec:fleet``), not a
  hook UUID — nothing to resolve on the device;
* activation decodes the spec and runs ``plan``/``apply``.  A spec the
  device already satisfies converges with zero actions (idempotent); a
  spec that fails mid-apply — an image rejected by the pre-flight
  verifier, a contract the hook cannot grant — rolls the device back to
  its pre-update state and reports ``REJECTED``, exactly the paper's
  "failed update never disturbs the running system" property, now for
  whole-device desired state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.suit.manifest import (
    KIND_SPEC,
    SuitEnvelope,
    SuitManifest,
    payload_digest,
)
from repro.suit.worker import SuitUpdateWorker, UpdateResult, UpdateStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deploy.spec import DeploymentSpec

#: Default storage-location prefix for spec slots.  One device may track
#: several independent spec streams (e.g. per maintainer), each with its
#: own anti-rollback sequence.
SPEC_SLOT_PREFIX = "spec:"


def spec_slot(name: str = "device") -> str:
    """Storage-location identifier for a named spec stream."""
    return SPEC_SLOT_PREFIX + name


def make_spec_manifest(
    spec: "DeploymentSpec",
    sequence_number: int,
    uri: str,
    slot: str | None = None,
) -> tuple[SuitManifest, bytes]:
    """Maintainer side: manifest + canonical payload for one spec.

    Returns the (unsigned) manifest and the CBOR payload the repository
    must serve at ``uri``.  Sign with ``SuitEnvelope.create(manifest,
    seed)`` as for image manifests.
    """
    payload = spec.to_cbor()
    manifest = SuitManifest(
        sequence_number=sequence_number,
        storage_location=slot if slot is not None else spec_slot(spec.name),
        digest=payload_digest(payload),
        size=len(payload),
        uri=uri,
        name=spec.name,
        kind=KIND_SPEC,
    )
    return manifest, payload


def sign_spec(
    spec: "DeploymentSpec",
    sequence_number: int,
    uri: str,
    signer_seed: bytes,
    slot: str | None = None,
) -> tuple[bytes, bytes]:
    """Maintainer one-liner: (envelope bytes, payload bytes) for one spec."""
    manifest, payload = make_spec_manifest(spec, sequence_number, uri, slot)
    return SuitEnvelope.create(manifest, signer_seed).encode(), payload


class SpecUpdateWorker(SuitUpdateWorker):
    """Reconcile the whole device onto SUIT-shipped deployment specs."""

    expected_kind = KIND_SPEC
    thread_name = "spec-worker"

    def _resolve_target(self, manifest: SuitManifest):
        """A spec targets the device itself; only the slot name is checked."""
        if not manifest.storage_location.startswith(SPEC_SLOT_PREFIX):
            return None, UpdateResult(
                UpdateStatus.UNKNOWN_HOOK,
                f"spec manifests must use a {SPEC_SLOT_PREFIX!r}* storage "
                f"location, got {manifest.storage_location!r}",
                manifest,
            )
        return None, None

    def _activate(self, manifest: SuitManifest, target,
                  payload: bytes) -> UpdateResult:
        from repro.deploy.plan import apply, plan
        from repro.deploy.spec import DeploymentSpec, SpecError

        # The publish-scoped release cache shares one decoded spec —
        # and through it the per-image slot tables and content hashes
        # its frozen ImageSpecs lazily cache — across a fleet's
        # workers.  Wall-clock only: plan/apply below still charge every
        # modelled cycle on this device's clock.
        cached = (self.release_cache.get(("spec", payload))
                  if self.release_cache is not None else None)
        if cached is not None:
            spec = cached
        else:
            try:
                spec = DeploymentSpec.from_cbor(payload)
            except Exception as exc:  # CBOR, schema or validation failure
                return UpdateResult(UpdateStatus.SPEC_INVALID, str(exc),
                                    manifest)
            if self.release_cache is not None:
                self.release_cache[("spec", payload)] = spec
        try:
            deployment = plan(self.engine, spec)
            result = apply(self.engine, deployment)
        except SpecError as exc:
            return UpdateResult(UpdateStatus.SPEC_INVALID, str(exc),
                                manifest)
        except Exception as exc:
            # apply() already rolled the device back transactionally.
            return UpdateResult(UpdateStatus.REJECTED, str(exc), manifest)
        return UpdateResult(
            UpdateStatus.OK,
            ("converged — no actions"
             if deployment.empty
             else f"reconciled through {len(deployment.actions)} actions"),
            manifest,
            applied=result,
        )
