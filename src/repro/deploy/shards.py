"""Deterministic shard partitioning for the fleet co-run loop.

:meth:`~repro.deploy.publish.FleetPublisher._converge` co-runs every
still-pending device kernel in interleaved virtual-time windows.  At
1,000+ devices the bookkeeping of that single flat loop dominates:
every window walks the full device list even when most of the fleet
already converged.  A :class:`ShardExecutor` partitions the devices
into round-robin shards with an independent pending set per shard, so
a window skips a fully-converged shard in one set operation instead of
N membership probes, and the tail of a publish (a few stragglers in a
huge fleet) touches only the shards that still hold them.

Everything here is **wall-clock structure only**.  Shard assignment is
a pure function of device order and shard count (``devices[i::k]``),
so seeded chaos sweeps stay reproducible, and the executor never
touches a virtual clock: each device's kernel is still advanced in
full, whichever shard it lands in — modelled cycles are bit-identical
across any shard count (the shard-determinism regression test pins
this).  With ``shards=1`` the iteration order degenerates to exactly
the historical flat loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deploy.fleet import FleetDevice

#: Target devices per shard when the shard count is chosen automatically.
DEVICES_PER_SHARD = 64
#: Upper bound on automatically chosen shard counts.
MAX_AUTO_SHARDS = 16


def auto_shard_count(device_count: int) -> int:
    """Shard count for a fleet of ``device_count`` devices.

    Aims for :data:`DEVICES_PER_SHARD` devices per shard, clamped to
    ``1..MAX_AUTO_SHARDS``; tiny fleets run single-shard.
    """
    return max(1, min(MAX_AUTO_SHARDS,
                      (device_count + DEVICES_PER_SHARD - 1)
                      // DEVICES_PER_SHARD))


class ShardExecutor:
    """Round-robin device shards with per-shard pending tracking."""

    def __init__(self, devices: Sequence["FleetDevice"],
                 shards: int | None = 1) -> None:
        if shards is None:
            shards = auto_shard_count(len(devices))
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shard_count = min(shards, len(devices)) or 1
        #: Deterministic assignment: device ``i`` lands in shard
        #: ``i % shard_count`` — stable across runs for a fixed fleet
        #: order, independent of anything random.
        self.shards: list[list["FleetDevice"]] = [
            list(devices[i::self.shard_count])
            for i in range(self.shard_count)
        ]
        self._shard_names = [frozenset(device.name for device in shard)
                             for shard in self.shards]
        self.pending: set[str] = {device.name for device in devices}

    def assignment(self) -> dict[str, int]:
        """Device name → shard index (for tests and status reporting)."""
        return {device.name: index
                for index, shard in enumerate(self.shards)
                for device in shard}

    def discard(self, name: str) -> None:
        """Mark one device converged (idempotent)."""
        self.pending.discard(name)

    def __bool__(self) -> bool:
        return bool(self.pending)

    def iter_pending(self) -> Iterator["FleetDevice"]:
        """Still-pending devices, shard by shard, fleet order inside
        each shard.  Converged shards are skipped in one set probe.
        With one shard this is exactly the historical flat-loop order."""
        for shard, names in zip(self.shards, self._shard_names):
            if self.pending.isdisjoint(names):
                continue
            for device in shard:
                if device.name in self.pending:
                    yield device
