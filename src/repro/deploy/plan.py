"""Reconciliation: diff a :class:`DeploymentSpec` against a live engine.

:func:`plan` computes the minimal ordered action list that converges one
:class:`~repro.core.engine.HostingEngine` onto a spec's desired state;
:func:`apply` executes it transactionally.  The reconcile model:

* **Idempotent** — planning a spec against a device it already describes
  yields an empty plan; ``apply`` on an empty plan is a no-op.
* **Minimal** — a live container whose ``image_hash`` equals the spec
  image's hash is left untouched.  Editing one image in the spec plans
  exactly one :class:`Replace`, which hot-swaps through
  :meth:`~repro.core.engine.HostingEngine.replace` (the SUIT update
  effect: same container name, same hook, new content hash).  Hashes are
  compared, never Python object identity — a spec rebuilt from JSON or
  from an equal program converges to zero actions.
* **Scoped ownership** — the spec owns exactly the containers of the
  tenants it declares, plus untenanted containers on hooks it declares
  or attaches to.  Owned containers absent from the spec are detached;
  anything outside that scope (other tenants, other hooks) is never
  touched, so several specs — or a spec plus manual operator attaches —
  can coexist on one device.
* **Transactional** — ``apply`` keeps an undo log; if an action raises
  :class:`~repro.core.errors.AttachError` (contract rejected, image
  fails verification, ...), every action already executed is reverted in
  reverse order and the error re-raised, leaving the device in its
  pre-apply state.
* **Policy-aware** — per-tenant hook-policy overrides declared by the
  spec (:attr:`~repro.deploy.spec.AttachmentSpec.tenant_policies`) are
  diffed into :class:`SetTenantPolicy` actions; slots whose ceiling
  changed are re-installed so their containers are re-granted under the
  new policy, and only the spec's own tenants' overrides are ever set
  or cleared.

The virtual clock is charged exactly as by hand-written attach sequences:
``apply`` adds no modelled cost of its own, so a device built through a
spec is cycle-identical to the same device built imperatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Union
from weakref import WeakKeyDictionary

from repro.core.errors import AttachError
from repro.core.hooks import Hook, HookMode
from repro.core.policy import ContainerContract, HookPolicy
from repro.deploy.spec import DeploymentSpec, ImageSpec, SpecError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import FemtoContainer
    from repro.core.engine import HostingEngine


# -- actions ------------------------------------------------------------------


@dataclass(frozen=True)
class CreateTenant:
    tenant: str

    def describe(self) -> str:
        return f"create-tenant {self.tenant}"


@dataclass(frozen=True)
class RegisterHook:
    hook: str
    mode: HookMode

    def describe(self) -> str:
        return f"register-hook  {self.hook} ({self.mode.value})"


@dataclass(frozen=True)
class SetTenantPolicy:
    """Reconcile one tenant's privilege ceiling on one hook.

    ``policy=None`` clears the override (the tenant falls back to the
    hook's base policy).  Ordered before installs so re-granted slots
    attach under the new ceiling.
    """

    hook: str
    tenant: str
    policy: HookPolicy | None

    def describe(self) -> str:
        action = "clear" if self.policy is None else "set"
        return f"tenant-policy  {action} {self.tenant} on {self.hook}"


@dataclass(frozen=True)
class Install:
    name: str
    hook: str
    tenant: str | None
    image: ImageSpec
    contract: ContainerContract
    period_us: float | None = None

    def describe(self) -> str:
        period = (f" every {self.period_us:.0f} us"
                  if self.period_us is not None else "")
        return (f"install        {self.name} <- "
                f"{self.image.image_hash[:12]} on {self.hook}{period}")


@dataclass(frozen=True)
class Replace:
    name: str
    hook: str
    image: ImageSpec

    def describe(self) -> str:
        return (f"replace        {self.name} <- "
                f"{self.image.image_hash[:12]} on {self.hook}")


@dataclass(frozen=True)
class Detach:
    name: str
    hook: str

    def describe(self) -> str:
        return f"detach         {self.name} from {self.hook}"


Action = Union[CreateTenant, RegisterHook, SetTenantPolicy, Install,
               Replace, Detach]


@dataclass
class DeploymentPlan:
    """The ordered action list converging one engine onto one spec."""

    spec: DeploymentSpec
    actions: list[Action]

    @property
    def empty(self) -> bool:
        return not self.actions

    def describe(self) -> str:
        if self.empty:
            return "(converged — no actions)"
        return "\n".join(action.describe() for action in self.actions)


# -- planning -----------------------------------------------------------------


def _live_tenant(container: "FemtoContainer") -> str | None:
    return container.tenant.name if container.tenant is not None else None


def plan(engine: "HostingEngine", spec: DeploymentSpec) -> DeploymentPlan:
    """Diff ``spec`` against ``engine`` into an ordered action list."""
    spec.validate()
    actions: list[Action] = []

    for tenant in spec.tenants:
        if tenant not in engine.tenants:
            actions.append(CreateTenant(tenant))

    declared_hooks = {hook.name for hook in spec.hooks}
    for hook_spec in spec.hooks:
        live = engine.hooks.get(hook_spec.name)
        if live is None:
            actions.append(RegisterHook(hook_spec.name, hook_spec.mode))
        elif live.mode is not hook_spec.mode:
            raise SpecError(
                f"hook {hook_spec.name!r} is compiled as {live.mode.value} "
                f"but the spec wants {hook_spec.mode.value} — hook modes "
                "are fixed in firmware and cannot be reconciled"
            )
    for attachment in spec.attachments:
        if attachment.hook not in engine.hooks \
                and attachment.hook not in declared_hooks:
            raise SpecError(
                f"attachment targets hook {attachment.hook!r}, which is "
                "neither compiled into this firmware nor declared in the "
                "spec's hooks"
            )

    spec_hooks = declared_hooks | {a.hook for a in spec.attachments}

    # Per-tenant privilege ceilings on the spec's hooks (the §11 Hook
    # extension).  The spec owns the overrides of exactly the tenants it
    # declares: an owned tenant's live override absent from the spec is
    # cleared, other tenants' overrides are never touched.  A changed
    # ceiling re-installs the tenant's slots on that hook below, so the
    # running containers are re-granted under the new policy.
    desired_policies = spec.hook_tenant_policies()
    policy_actions: list[Action] = []
    policy_changed: set[tuple[str, str]] = set()
    for hook_name in sorted(spec_hooks):
        live_hook = engine.hooks.get(hook_name)
        live_policies = (live_hook.tenant_policies
                         if live_hook is not None else {})
        wanted = desired_policies.get(hook_name, {})
        for tenant in spec.tenants:
            if live_policies.get(tenant) != wanted.get(tenant):
                policy_actions.append(SetTenantPolicy(hook_name, tenant,
                                                      wanted.get(tenant)))
                policy_changed.add((hook_name, tenant))

    # The containers this spec owns (see the module docstring's scope rule).
    owned: dict[tuple[str, str], "FemtoContainer"] = {}
    for hook in engine.hooks.values():
        for container in hook.containers:
            tenant_name = _live_tenant(container)
            managed = (tenant_name in spec.tenants
                       if tenant_name is not None
                       else hook.name in spec_hooks)
            if managed:
                owned[(hook.name, container.name)] = container

    # Slots granted under a changed ceiling detach *before* the policy
    # flips, installs come after: a failing apply then unwinds in the
    # only safe order (restore the old ceiling first, then re-attach the
    # old containers under it).
    pre_detach: list[Action] = []
    converge: list[Action] = []
    for instance in spec.desired_instances():
        key = (instance.hook, instance.name)
        container = owned.pop(key, None)
        if container is None:
            converge.append(Install(
                name=instance.name, hook=instance.hook,
                tenant=instance.tenant, image=instance.image,
                contract=instance.contract, period_us=instance.period_us,
            ))
        elif (instance.hook, instance.tenant) in policy_changed:
            pre_detach.append(Detach(instance.name, instance.hook))
            converge.append(Install(
                name=instance.name, hook=instance.hook,
                tenant=instance.tenant, image=instance.image,
                contract=instance.contract, period_us=instance.period_us,
            ))
        elif (_live_tenant(container) != instance.tenant
              or container.contract != instance.contract):
            # Tenancy or contract drift cannot hot-swap: re-install
            # (the attach re-runs the grant intersection).
            converge.append(Detach(instance.name, instance.hook))
            converge.append(Install(
                name=instance.name, hook=instance.hook,
                tenant=instance.tenant, image=instance.image,
                contract=instance.contract, period_us=instance.period_us,
            ))
        elif container.image_hash != instance.image.image_hash:
            converge.append(Replace(instance.name, instance.hook,
                                    instance.image))
        # else: converged — the slot already holds this exact image.

    actions.extend(pre_detach)
    actions.extend(policy_actions)
    actions.extend(converge)
    for hook_name, name in sorted(owned):
        actions.append(Detach(name, hook_name))

    return DeploymentPlan(spec=spec, actions=actions)


# -- applying -----------------------------------------------------------------


@dataclass
class ApplyResult:
    """What one transactional apply did to the device."""

    plan: DeploymentPlan
    #: (hook, name) -> container installed or replaced by this apply,
    #: in action order.
    containers: dict[tuple[str, str], "FemtoContainer"] = field(
        default_factory=dict)
    #: Cancel functions for periodic firings armed by this apply.
    timers: dict[tuple[str, str], Callable[[], None]] = field(
        default_factory=dict)
    tenants_created: list[str] = field(default_factory=list)
    detached: list[tuple[str, str]] = field(default_factory=list)
    #: Virtual cycles the whole apply charged (verify + install costs).
    cycles_charged: int = 0

    @property
    def attached(self) -> list["FemtoContainer"]:
        """Containers this apply put on hooks, in action order."""
        return list(self.containers.values())


def _find_container(engine: "HostingEngine", hook_name: str,
                    name: str) -> "FemtoContainer":
    for container in engine.hooks[hook_name].containers:
        if container.name == name:
            return container
    raise AttachError(
        f"plan is stale: no container {name!r} on hook {hook_name!r}"
    )


#: Periodic firings armed by past applies, per engine, keyed like plan
#: actions by (hook, name).  Lets a later apply's Detach cancel the
#: cadence its slot's Install armed (the spec owns the timer exactly as
#: long as it owns the container).
_ARMED_TIMERS: "WeakKeyDictionary[object, dict[tuple[str, str], Callable[[], None]]]" \
    = WeakKeyDictionary()


def apply(engine: "HostingEngine", deployment: DeploymentPlan) -> ApplyResult:
    """Execute a plan transactionally (rollback on any failure).

    Actions run in plan order; each pushes an inverse onto an undo log.
    A failing action — an :class:`AttachError`, a plan gone stale
    between plan() and apply(), even a malformed image that only
    explodes at decode time — reverts everything already done, in
    reverse order, and re-raises, so a rejected spec never leaves a
    half-deployed device.  Rollback re-attaches through the normal
    verify path, so it charges the virtual clock like any install (a
    real device would pay it too).

    Detaching a slot also cancels the periodic firing its install armed;
    the cancellation is deferred until the whole plan succeeded, so
    rollback never has to re-arm a timer.  (Changing *only* ``period_us``
    on an otherwise-converged slot is not detected by ``plan`` — re-arm
    by detaching the slot in one spec revision and re-adding it in the
    next, or cancel via the install's returned handle.)
    """
    result = ApplyResult(plan=deployment)
    armed = _ARMED_TIMERS.setdefault(engine, {})
    undo: list[Callable[[], None]] = []
    deferred_cancels: list[Callable[[], None]] = []
    clock = engine.kernel.clock
    cycles_before = clock.cycles
    try:
        for action in deployment.actions:
            if isinstance(action, CreateTenant):
                engine.create_tenant(action.tenant)
                result.tenants_created.append(action.tenant)
                undo.append(lambda name=action.tenant:
                            engine.tenants.pop(name, None))
            elif isinstance(action, RegisterHook):
                hook = engine.register_hook(Hook(action.hook,
                                                 mode=action.mode))

                def _unregister(h: Hook = hook) -> None:
                    engine.hooks.pop(h.name, None)
                    engine.hooks_by_uuid.pop(str(h.uuid), None)

                undo.append(_unregister)
            elif isinstance(action, SetTenantPolicy):
                hook = engine.hooks[action.hook]
                previous = hook.tenant_policies.get(action.tenant)
                if action.policy is None:
                    hook.tenant_policies.pop(action.tenant, None)
                else:
                    hook.tenant_policies[action.tenant] = action.policy

                def _restore(h: Hook = hook, tenant: str = action.tenant,
                             old: HookPolicy | None = previous) -> None:
                    if old is None:
                        h.tenant_policies.pop(tenant, None)
                    else:
                        h.tenant_policies[tenant] = old

                undo.append(_restore)
            elif isinstance(action, Install):
                tenant = (engine.tenants[action.tenant]
                          if action.tenant is not None else None)
                container = engine.load(
                    action.image.instantiate(action.name),
                    tenant=tenant, contract=action.contract,
                    name=action.name,
                )
                engine.attach(container, action.hook)
                undo.append(lambda c=container: engine.detach(c))
                key = (action.hook, action.name)
                result.containers[key] = container
                if action.period_us is not None:
                    # A stale cadence can survive on this key when the
                    # slot's container was fault-detached by the engine
                    # (not by a plan): one slot owns one cadence, so
                    # retire it before arming the new one.
                    stale = armed.pop(key, None)
                    if stale is not None:
                        stale()
                    # attach_periodic sees the container already attached
                    # and only arms the firing (the §8.3 sensor pattern).
                    cancel = engine.attach_periodic(
                        container, action.period_us, action.hook)
                    result.timers[key] = cancel
                    armed[key] = cancel

                    def _disarm(k=key, c=cancel) -> None:
                        c()
                        if armed.get(k) is c:
                            del armed[k]

                    undo.append(_disarm)
            elif isinstance(action, Replace):
                old = _find_container(engine, action.hook, action.name)
                old_program = old.program
                fresh = engine.replace(
                    old, action.image.instantiate(action.name))
                undo.append(lambda c=fresh, p=old_program:
                            engine.replace(c, p))
                result.containers[(action.hook, action.name)] = fresh
            elif isinstance(action, Detach):
                container = _find_container(engine, action.hook, action.name)
                engine.detach(container)
                undo.append(lambda c=container, h=action.hook:
                            engine.attach(c, h))
                result.detached.append((action.hook, action.name))
                # Pop the slot's armed cadence *now* (a later Install in
                # this same plan may re-arm the same key) but cancel it
                # only once the whole plan succeeded; rollback re-attaches
                # the container, so it restores the registry entry.
                cancel = armed.pop((action.hook, action.name), None)
                if cancel is not None:
                    deferred_cancels.append(cancel)
                    undo.append(
                        lambda k=(action.hook, action.name), c=cancel:
                        armed.__setitem__(k, c))
            else:  # pragma: no cover - exhaustiveness guard
                raise TypeError(f"unknown plan action {action!r}")
    except Exception:
        for revert in reversed(undo):
            revert()
        raise
    for cancel in deferred_cancels:
        cancel()
    result.cycles_charged = clock.cycles - cycles_before
    return result


def apply_spec(engine: "HostingEngine", spec: DeploymentSpec) -> ApplyResult:
    """Convenience: ``apply(engine, plan(engine, spec))``."""
    return apply(engine, plan(engine, spec))
