"""Fleet rollout: one :class:`DeploymentSpec` across N simulated devices.

The paper frames the serverless-IoT workload as "a large number of
containers, but across a large number of devices" (§2).  A :class:`Fleet`
instantiates one spec on every device — boards may differ — and is the
first scenario to drive the image cache's *cross-board* sharing path:
the process-wide :data:`~repro.vm.imagecache.IMAGE_CACHE` is keyed by
content hash only, so the first device pays the host-side verify and JIT
compile and every later device attaches through pure cache hits.  Each
device's **virtual clock is its own** and is always charged the full
modelled verify+install cost — the cache is a wall-clock effect of the
simulator, never a device-semantics change (the deploy benchmark guard
asserts both halves of that invariant).

:meth:`Fleet.apply` records per-device rollout accounting — wall time,
modelled cycles charged, image-cache hits/misses — so benchmarks and the
``python -m repro fleet`` CLI can report the warm-rollout speedup of
devices 2..N over device 1.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.engine import HostingEngine
from repro.deploy.plan import ApplyResult, apply, plan
from repro.deploy.spec import DeploymentSpec, HookSpec
from repro.rtos.board import Board, nrf52840
from repro.rtos.kernel import Kernel
from repro.vm.imagecache import IMAGE_CACHE


@dataclass
class FleetDevice:
    """One simulated device: its own kernel, clock and hosting engine."""

    name: str
    kernel: Kernel
    engine: HostingEngine

    @property
    def board(self) -> Board:
        return self.kernel.board


@dataclass
class DeviceRollout:
    """Accounting for one device's plan+apply during a fleet rollout."""

    device: FleetDevice
    result: ApplyResult
    wall_s: float
    cycles_charged: int
    cache_hits: int
    cache_misses: int

    @property
    def actions(self) -> int:
        return len(self.result.plan.actions)


@dataclass
class FleetRollout:
    """One spec applied across the whole fleet, with per-device numbers."""

    spec: DeploymentSpec
    devices: list[DeviceRollout] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        return sum(rollout.wall_s for rollout in self.devices)

    def speedups(self) -> list[float]:
        """Wall-clock speedup of each later device over device 1.

        Device 1 populates the shared image cache (cold verify + JIT
        compile); devices 2..N ride its artifacts, so their rollouts
        should be dramatically faster in wall time while charging the
        same modelled cycles.
        """
        if len(self.devices) < 2:
            return []
        first = self.devices[0].wall_s
        return [first / max(rollout.wall_s, 1e-9)
                for rollout in self.devices[1:]]

    def cycles_per_device(self) -> list[int]:
        return [rollout.cycles_charged for rollout in self.devices]

    def cache_hit_rate(self) -> float:
        hits = sum(rollout.cache_hits for rollout in self.devices)
        misses = sum(rollout.cache_misses for rollout in self.devices)
        total = hits + misses
        return hits / total if total else 0.0


@dataclass
class CanaryRollout:
    """Outcome of one :meth:`Fleet.canary_rollout`.

    The rollout either **promoted** (every canary baked fault-free, the
    spec went fleet-wide) or **rolled back** (a canary faulted or failed
    to apply; every canary was reverted to the baseline spec and the
    non-canary devices were never touched — ``control`` stays empty).
    """

    spec: DeploymentSpec
    baseline: DeploymentSpec
    #: Canary-phase applies, in fleet order.
    canary: list[DeviceRollout] = field(default_factory=list)
    #: Promotion-phase applies (empty unless promoted).
    control: list[DeviceRollout] = field(default_factory=list)
    #: Rollback applies on the canary subset (empty unless rolled back).
    rollback: list[DeviceRollout] = field(default_factory=list)
    #: Contained faults observed per canary device across apply + bake.
    fault_deltas: dict[str, int] = field(default_factory=dict)
    promoted: bool = False
    rolled_back: bool = False
    reason: str = ""
    #: Virtual microseconds each canary baked for.
    bake_us: float = 0.0

    @property
    def canary_names(self) -> list[str]:
        return [rollout.device.name for rollout in self.canary]

    def promotion_speedups(self) -> list[float]:
        """Wall speedup of each promoted device over the cold canary.

        The first canary pays the cold verify/JIT-compile; promotion
        rides the image cache the bake already proved out, so promoted
        devices converge dramatically faster in wall time.
        """
        if not self.canary or not self.control:
            return []
        cold = self.canary[0].wall_s
        return [cold / max(rollout.wall_s, 1e-9)
                for rollout in self.control]


class Fleet:
    """N devices driven as one deployment target.

    ``boards`` is either a device count (homogeneous nRF52840 fleet) or
    an explicit board list (heterogeneous fleet — the cache shares across
    board models because images are content-addressed).
    """

    def __init__(
        self,
        boards: int | Sequence[Board] = 4,
        implementation: str = "jit",
    ) -> None:
        if isinstance(boards, int):
            boards = [nrf52840() for _ in range(boards)]
        if not boards:
            raise ValueError("a fleet needs at least one device")
        self.implementation = implementation
        self.devices: list[FleetDevice] = []
        #: The spec the whole fleet last converged on (the canary
        #: rollback target when no explicit baseline is given).
        self.current_spec: DeploymentSpec | None = None
        for index, board in enumerate(boards):
            kernel = Kernel(board)
            self.devices.append(FleetDevice(
                name=f"dev{index}",
                kernel=kernel,
                engine=HostingEngine(kernel, implementation=implementation),
            ))

    def __len__(self) -> int:
        return len(self.devices)

    def _converge(self, device: FleetDevice,
                  spec: DeploymentSpec) -> DeviceRollout:
        """Plan+apply ``spec`` on one device, with rollout accounting."""
        hits_before = IMAGE_CACHE.hits
        misses_before = IMAGE_CACHE.misses
        cycles_before = device.kernel.clock.cycles
        start = time.perf_counter()
        result = apply(device.engine, plan(device.engine, spec))
        wall_s = time.perf_counter() - start
        return DeviceRollout(
            device=device,
            result=result,
            wall_s=wall_s,
            cycles_charged=device.kernel.clock.cycles - cycles_before,
            cache_hits=IMAGE_CACHE.hits - hits_before,
            cache_misses=IMAGE_CACHE.misses - misses_before,
        )

    def apply(self, spec: DeploymentSpec) -> FleetRollout:
        """Plan+apply ``spec`` on every device, in fleet order."""
        rollout = FleetRollout(spec=spec)
        for device in self.devices:
            rollout.devices.append(self._converge(device, spec))
        self.current_spec = spec
        return rollout

    # -- canary rollout --------------------------------------------------------

    def canary_rollout(
        self,
        spec: DeploymentSpec,
        canary_fraction: float = 0.25,
        canary_count: int | None = None,
        bake_us: float = 2_000_000.0,
        bake_fires: int = 0,
        bake_hooks: Sequence[str] | None = None,
        bake_context: bytes | None = None,
        baseline: DeploymentSpec | None = None,
    ) -> CanaryRollout:
        """Stage ``spec`` on a canary subset, bake, then promote or revert.

        1. **Canary**: the first ``canary_count`` devices (default
           ``round(canary_fraction * N)``, at least one) are converged
           onto the spec.  A device whose apply fails (pre-flight
           rejection, contract mismatch, ...) is already restored by the
           transactional apply; the rollout aborts and reverts any
           earlier canaries.
        2. **Bake**: each canary runs its own virtual clock forward by
           ``bake_us`` — periodic attachments fire on their declared
           cadence — and every spec hook is additionally fired
           ``bake_fires`` times (SYNC hooks run inline, THREAD hooks
           drain through their worker threads before faults are read).
        3. **Gate**: the canaries' device-lifetime fault counters
           (:attr:`~repro.core.engine.HostingEngine.fault_total`) must
           not have moved.  Zero faults promotes the spec to the
           remaining devices (which ride the image cache the canaries
           warmed); any fault rolls every canary back to ``baseline``
           (default: the spec this fleet last converged on, or an empty
           spec of the same scope) and leaves the rest of the fleet
           untouched.
        """
        if not 0.0 < canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in (0, 1]")
        if canary_count is None:
            canary_count = max(1, round(canary_fraction * len(self.devices)))
        if not 1 <= canary_count <= len(self.devices):
            raise ValueError(
                f"canary_count {canary_count} outside 1..{len(self.devices)}"
            )
        canaries = self.devices[:canary_count]
        rest = self.devices[canary_count:]
        if baseline is None:
            baseline = self.current_spec
        if baseline is None:
            # Nothing ever applied: rolling back means detaching
            # everything the spec owns.  The synthesized baseline must
            # claim the same scope as the spec — its declared hooks
            # *plus* the firmware hooks its attachments target —
            # otherwise tenantless containers on compiled-in hooks
            # would survive the rollback.
            hooks = {hook.name: hook for hook in spec.hooks}
            live = canaries[0].engine.hooks
            for attachment in spec.attachments:
                if attachment.hook not in hooks and attachment.hook in live:
                    hooks[attachment.hook] = HookSpec(
                        attachment.hook, live[attachment.hook].mode)
            baseline = DeploymentSpec(
                name=f"{spec.name}-rollback",
                tenants=spec.tenants,
                hooks=tuple(hooks.values()),
            )
        rollout = CanaryRollout(spec=spec, baseline=baseline, bake_us=bake_us)

        def revert(staged_rollouts: list[DeviceRollout]) -> None:
            """Best-effort re-apply of the baseline; never raises (a
            device whose revert fails is recorded in the reason, the
            remaining devices still get reverted)."""
            for staged in staged_rollouts:
                try:
                    rollout.rollback.append(
                        self._converge(staged.device, baseline))
                except Exception as exc:
                    rollout.reason += (
                        f"; rollback failed on {staged.device.name}: {exc}")
            rollout.rolled_back = True

        # 1. Converge the canary subset.
        for device in canaries:
            try:
                rollout.canary.append(self._converge(device, spec))
            except Exception as exc:
                # apply() already rolled this device back; revert the
                # canaries staged before it.
                rollout.reason = (f"apply failed on {device.name}: {exc}")
                revert(rollout.canary)
                return rollout

        # 2. Bake: run the canaries' own workloads on their own clocks.
        fired_hooks = list(bake_hooks) if bake_hooks is not None else sorted(
            {a.hook for a in spec.attachments if a.period_us is None}
        )
        context = (bake_context if bake_context is not None
                   else struct.pack("<QQ", 0, 0))
        for device in canaries:
            faults_before = device.engine.fault_total
            kernel = device.kernel
            kernel.run(until_us=kernel.now_us + bake_us)
            for _ in range(bake_fires):
                for hook_name in fired_hooks:
                    if not device.engine.hooks[hook_name].containers:
                        continue
                    device.engine.fire_hook(hook_name, context)
            if bake_fires:
                # Drain THREAD-mode worker queues before reading the
                # fault counters: windows, not run_until_idle (a
                # periodic attachment keeps a timer pending forever),
                # repeated until every attached worker's backlog is
                # empty so no queued fault escapes the gate.
                for _ in range(1000):
                    if not any(
                        container.event_queue is not None
                        and container.event_queue.pending
                        for container in device.engine.containers()
                    ):
                        break
                    kernel.run(until_us=kernel.now_us + 10_000.0)
            rollout.fault_deltas[device.name] = (
                device.engine.fault_total - faults_before)

        # 3. Gate on the fault counters.
        faulted = {name: delta
                   for name, delta in rollout.fault_deltas.items() if delta}
        if faulted:
            rollout.reason = "faults during bake: " + ", ".join(
                f"{name} (+{delta})" for name, delta in sorted(faulted.items())
            )
            revert(rollout.canary)
            return rollout

        # Promote: the rest of the fleet rides the warmed image cache.
        for device in rest:
            try:
                rollout.control.append(self._converge(device, spec))
            except Exception as exc:
                # This device is already restored by the transactional
                # apply; take the whole fleet back to the baseline so it
                # never stays half-promoted.
                rollout.reason = (
                    f"promotion failed on {device.name}: {exc}")
                revert(rollout.canary + rollout.control)
                rollout.control = []
                return rollout
        rollout.promoted = True
        rollout.reason = (
            f"{len(canaries)} canaries baked {bake_us:.0f} us fault-free"
        )
        self.current_spec = spec
        return rollout

    def fire_all(self, hook_name: str, context: bytes = b"") -> int:
        """Fire one hook on every device; returns total container runs."""
        runs = 0
        for device in self.devices:
            runs += len(device.engine.fire_hook(hook_name, context).runs)
        return runs

    # -- aggregate accounting ------------------------------------------------

    def total_ram_bytes(self) -> int:
        """Engine-attributable RAM across the whole fleet (§10.3 view)."""
        return sum(device.engine.total_ram_bytes()
                   for device in self.devices)

    def containers(self):
        """Every attached container on every device, fleet order."""
        return [container
                for device in self.devices
                for container in device.engine.containers()]
