"""Fleet rollout: one :class:`DeploymentSpec` across N simulated devices.

The paper frames the serverless-IoT workload as "a large number of
containers, but across a large number of devices" (§2).  A :class:`Fleet`
instantiates one spec on every device — boards may differ — and is the
first scenario to drive the image cache's *cross-board* sharing path:
the process-wide :data:`~repro.vm.imagecache.IMAGE_CACHE` is keyed by
content hash only, so the first device pays the host-side verify and JIT
compile and every later device attaches through pure cache hits.  Each
device's **virtual clock is its own** and is always charged the full
modelled verify+install cost — the cache is a wall-clock effect of the
simulator, never a device-semantics change (the deploy benchmark guard
asserts both halves of that invariant).

:meth:`Fleet.apply` records per-device rollout accounting — wall time,
modelled cycles charged, image-cache hits/misses — so benchmarks and the
``python -m repro fleet`` CLI can report the warm-rollout speedup of
devices 2..N over device 1.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.engine import HostingEngine
from repro.deploy.plan import ApplyResult, apply, plan
from repro.deploy.registry import DeviceRegistry
from repro.deploy.results import FleetResult
from repro.deploy.spec import DeploymentSpec, HookSpec
from repro.rtos.board import Board, nrf52840
from repro.rtos.kernel import Kernel
from repro.rtos.thread import ThreadState
from repro.vm.imagecache import IMAGE_CACHE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.supervisor import SupervisorConfig


@dataclass
class FleetDevice:
    """One simulated device: its own kernel, clock and hosting engine."""

    name: str
    kernel: Kernel
    engine: HostingEngine
    #: Radio rig (interface, CoAP endpoints, spec-update worker) wired by
    #: :class:`~repro.deploy.publish.FleetPublisher`; ``None`` on a fleet
    #: that is only driven directly by the simulator.
    radio: object = None
    #: Persistent flash (:class:`~repro.rtos.nvm.NvmStore`) — owned by
    #: the *device*, not the kernel, so it survives power cycles.
    nvm: object = None
    #: Per-device energy meter; survives reboots like the NVM does.
    meter: object = None
    #: Power cycles this device has been through.
    reboots: int = 0
    #: The spec *this device* last converged on — the per-device
    #: rollback baseline.  A mode-heterogeneous fleet (devices running
    #: different specs) unwinds each device to its own prior state, not
    #: to one fleet-wide guess.
    current_spec: DeploymentSpec | None = None

    @property
    def board(self) -> Board:
        return self.kernel.board


@dataclass(frozen=True)
class HealthGate:
    """Pluggable canary health policy, checked after the bake.

    The default gate reproduces the PR 4 behavior: any contained fault
    during the bake rolls the canaries back.  Beyond faults, a gate can
    hold canaries to **modelled-cycle budgets** (a container whose new
    image suddenly burns more cycles per run than the budget allows is
    unhealthy even if it never faults) and to **KV-store agreement** with
    the control devices (a new image that corrupts device-wide state in
    the global store is caught by comparing the listed keys against a
    control device still running the baseline).

    All checks read simulator-observable state only — the gate never
    fires hooks or advances any clock itself.
    """

    #: Contained faults tolerated per canary during the bake.
    max_fault_delta: int = 0
    #: Container name -> max modelled cycles per run during the bake.
    #: A budget for a name no canary hosts is simply never checked.
    cycle_budgets: Mapping[str, int] = field(default_factory=dict)
    #: Global-store keys that must agree between each canary and every
    #: control device (empty: no store check; no controls: skipped).
    store_keys: tuple[int, ...] = ()
    #: Judge cycle budgets over a *sliding* bake window instead of the
    #: whole-bake total: the tightest trailing window holding at least
    #: this many runs must meet the budget.  A container with an
    #: expensive first run (cache warm-up, lazy init) then stays healthy
    #: as long as its steady state does; a container that *degrades*
    #: mid-bake is caught even when early cheap runs would have diluted
    #: the whole-bake average.  ``None`` keeps the whole-bake rule.
    window_runs: int | None = None
    #: Supervisor quarantines tolerated per canary during the bake;
    #: ``None`` skips the check (a quarantine usually also trips
    #: :attr:`max_fault_delta` — this knob lets a gate flag quarantines
    #: even when the fault budget was loosened).
    max_quarantined: int | None = None

    def breaches(
        self,
        device: FleetDevice,
        before: dict,
        fault_delta: int,
        controls: Sequence[FleetDevice],
        history: Sequence[Mapping] | None = None,
        quarantined: int = 0,
    ) -> list[str]:
        """Health violations of one baked canary (empty when healthy).

        ``before`` is the engine's
        :meth:`~repro.core.engine.HostingEngine.runtime_snapshot` taken
        after the canary converged on the spec but before the bake.
        ``history`` (used with :attr:`window_runs`) is a series of
        per-slot ``(runs, cycles)`` samples taken during the bake,
        oldest first, as built by ``Fleet._bake_and_gate``.
        """
        problems: list[str] = []
        if fault_delta > self.max_fault_delta:
            problems.append(f"+{fault_delta} faults during bake")
        if (self.max_quarantined is not None
                and quarantined > self.max_quarantined):
            problems.append(f"{quarantined} slot(s) quarantined during bake")
        for slot, snap in before.items():
            # A SlotSnapshot — or any (container, runs, cycles, ...)
            # tuple a custom gate hands in.
            container, runs0, cycles0 = snap[0], snap[1], snap[2]
            budget = self.cycle_budgets.get(slot[1])
            if budget is None:
                continue
            if (self.window_runs is not None and history
                    and len(history) >= 2):
                judged, problem = self._window_verdict(slot, budget, history)
                if judged:
                    if problem:
                        problems.append(problem)
                    continue
                # Too few runs for a full window: fall back to totals.
            # The snapshot pins the container object, so a slot that
            # fault-detached mid-bake is still accounted.
            runs = container.runs - runs0
            cycles = container.total_cycles - cycles0
            if runs > 0 and cycles > budget * runs:
                problems.append(
                    f"{slot[1]} burned {cycles // runs} cycles/run "
                    f"(budget {budget})"
                )
        if self.store_keys and controls:
            canary_store = device.engine.global_store.snapshot()
            for control in controls:
                control_store = control.engine.global_store.snapshot()
                for key in self.store_keys:
                    mine = canary_store.get(key, 0)
                    theirs = control_store.get(key, 0)
                    if mine != theirs:
                        problems.append(
                            f"store key {key} diverged: {mine} vs "
                            f"{theirs} on {control.name}"
                        )
                        break
        return problems

    def _window_verdict(self, slot, budget: int,
                        history: Sequence[Mapping]) -> tuple[bool, str]:
        """Judge one slot over the tightest trailing bake window.

        Walks sample intervals newest-first, accumulating until the
        window holds at least :attr:`window_runs` runs, and holds that
        window — not the whole bake — to the budget.  Returns
        ``(judged, problem)``; ``judged`` is False when the whole bake
        has fewer runs than one window (caller falls back to totals).
        """
        runs_acc = 0
        cycles_acc = 0
        for i in range(len(history) - 1, 0, -1):
            newer = history[i].get(slot)
            older = history[i - 1].get(slot)
            if newer is None or older is None:
                continue
            runs_acc += newer[0] - older[0]
            cycles_acc += newer[1] - older[1]
            if runs_acc >= self.window_runs:
                break
        if runs_acc < self.window_runs:
            return False, ""
        if cycles_acc > budget * runs_acc:
            return True, (
                f"{slot[1]} burned {cycles_acc // runs_acc} cycles/run "
                f"over the trailing {runs_acc}-run window (budget {budget})"
            )
        return True, ""


@dataclass
class DeviceRollout:
    """Accounting for one device's plan+apply during a fleet rollout."""

    device: FleetDevice
    result: ApplyResult
    wall_s: float
    cycles_charged: int
    cache_hits: int
    cache_misses: int

    @property
    def actions(self) -> int:
        return len(self.result.plan.actions)


@dataclass
class FleetRollout(FleetResult):
    """One spec applied across the whole fleet, with per-device numbers.

    Implements the :class:`~repro.deploy.results.FleetResult` protocol:
    ``ok`` (a direct apply raises on failure, so a returned rollout is
    always ok), ``wall_s``, ``speedups()`` and row iteration all come
    from the shared base; ``devices`` stays the historical row list.
    """

    spec: DeploymentSpec
    devices: list[DeviceRollout] = field(default_factory=list)

    def rows(self) -> list[DeviceRollout]:
        return self.devices

    def cycles_per_device(self) -> list[int]:
        return [rollout.cycles_charged for rollout in self.devices]

    def cache_hit_rate(self) -> float:
        hits = sum(rollout.cache_hits for rollout in self.devices)
        misses = sum(rollout.cache_misses for rollout in self.devices)
        total = hits + misses
        return hits / total if total else 0.0


@dataclass
class CanaryRollout(FleetResult):
    """Outcome of one :meth:`Fleet.canary_rollout`.

    The rollout either **promoted** (every canary baked fault-free, the
    spec went fleet-wide) or **rolled back** (a canary faulted or failed
    to apply; every canary was reverted to the baseline spec and the
    non-canary devices were never touched — ``control`` stays empty).

    Implements the :class:`~repro.deploy.results.FleetResult` protocol:
    ``ok`` is promotion, the rows are canary + control + rollback in
    phase order, and ``speedups()`` compares against the cold first
    canary while excluding rollback rows (those measure the undo).
    """

    spec: DeploymentSpec
    baseline: DeploymentSpec
    #: Canary-phase applies, in fleet order.
    canary: list[DeviceRollout] = field(default_factory=list)
    #: Promotion-phase applies (empty unless promoted).
    control: list[DeviceRollout] = field(default_factory=list)
    #: Rollback applies on the canary subset (empty unless rolled back).
    rollback: list[DeviceRollout] = field(default_factory=list)
    #: Contained faults observed per canary device across apply + bake.
    fault_deltas: dict[str, int] = field(default_factory=dict)
    #: Health-gate breaches per canary device (empty when healthy).
    health: dict[str, list[str]] = field(default_factory=dict)
    promoted: bool = False
    rolled_back: bool = False
    reason: str = ""
    #: Virtual microseconds each canary baked for.
    bake_us: float = 0.0

    def rows(self) -> list[DeviceRollout]:
        return self.canary + self.control + self.rollback

    def speedup_rows(self) -> list[DeviceRollout]:
        return self.canary + self.control

    @property
    def ok(self) -> bool:
        return self.promoted

    @property
    def devices(self) -> list[DeviceRollout]:
        """Alias for the protocol rows (matches the sibling results)."""
        return self.rows()

    @property
    def canary_names(self) -> list[str]:
        return [rollout.device.name for rollout in self.canary]

    def promotion_speedups(self) -> list[float]:
        """Wall speedup of each promoted device over the cold canary.

        The first canary pays the cold verify/JIT-compile; promotion
        rides the image cache the bake already proved out, so promoted
        devices converge dramatically faster in wall time.
        """
        if not self.canary or not self.control:
            return []
        cold = self.canary[0].wall_s
        return [cold / max(rollout.wall_s, 1e-9)
                for rollout in self.control]


class Fleet:
    """N devices driven as one deployment target.

    ``boards`` is either a device count (homogeneous nRF52840 fleet) or
    an explicit board list (heterogeneous fleet — the cache shares across
    board models because images are content-addressed).
    """

    def __init__(
        self,
        boards: int | Sequence[Board] = 4,
        implementation: str = "jit",
        supervisor: "SupervisorConfig | bool | None" = True,
    ) -> None:
        if isinstance(boards, int):
            boards = [nrf52840() for _ in range(boards)]
        if not boards:
            raise ValueError("a fleet needs at least one device")
        self.implementation = implementation
        #: Engine supervisor policy, also reused when the publisher
        #: rebuilds an engine after a device reboot.
        self.supervisor_config = supervisor
        #: Single source of truth for fleet membership (shared with the
        #: publisher and the control plane — no parallel device lists).
        self.registry = DeviceRegistry()
        #: The spec the whole fleet last converged on (the canary
        #: rollback target when no explicit baseline is given).
        self.current_spec: DeploymentSpec | None = None
        for index, board in enumerate(boards):
            self.add_device(board, name=f"dev{index}")

    @property
    def devices(self) -> list[FleetDevice]:
        """Registry view in registration order (list-compatible)."""
        return self.registry.devices()

    def add_device(self, board: Board | None = None,
                   name: str | None = None) -> FleetDevice:
        """Register one more device (the control plane's register path).

        Note this only creates the device; wiring its radio is the
        publisher's job (:meth:`FleetPublisher.adopt_device`).
        """
        if board is None:
            board = nrf52840()
        if name is None:
            name = f"dev{self.registry.next_index}"
        kernel = Kernel(board)
        device = FleetDevice(
            name=name,
            kernel=kernel,
            engine=HostingEngine(kernel, implementation=self.implementation,
                                 supervisor=self.supervisor_config),
        )
        self.registry.register(device)
        return device

    def __len__(self) -> int:
        return len(self.devices)

    def _converge(self, device: FleetDevice,
                  spec: DeploymentSpec) -> DeviceRollout:
        """Plan+apply ``spec`` on one device, with rollout accounting."""
        hits_before = IMAGE_CACHE.hits
        misses_before = IMAGE_CACHE.misses
        cycles_before = device.kernel.clock.cycles
        start = time.perf_counter()
        result = apply(device.engine, plan(device.engine, spec))
        wall_s = time.perf_counter() - start
        device.current_spec = spec
        return DeviceRollout(
            device=device,
            result=result,
            wall_s=wall_s,
            cycles_charged=device.kernel.clock.cycles - cycles_before,
            cache_hits=IMAGE_CACHE.hits - hits_before,
            cache_misses=IMAGE_CACHE.misses - misses_before,
        )

    def apply(self, spec: DeploymentSpec) -> FleetRollout:
        """Plan+apply ``spec`` on every device, in fleet order."""
        rollout = FleetRollout(spec=spec)
        for device in self.devices:
            rollout.devices.append(self._converge(device, spec))
        self.current_spec = spec
        return rollout

    # -- canary rollout --------------------------------------------------------

    def _rollback_baseline(
        self,
        spec: DeploymentSpec,
        canaries: Sequence[FleetDevice],
    ) -> DeploymentSpec:
        """Synthesize the rollback target when nothing was ever applied.

        Rolling back then means detaching everything the spec owns, so
        the synthesized baseline must claim the same scope as the spec —
        its declared hooks *plus* the firmware hooks its attachments
        target.  Firmware builds may differ across the fleet, so the
        hook lookup is the **union across all canaries**: a pad compiled
        only into a later canary's firmware still enters the baseline
        scope (taking that canary's mode), otherwise tenantless
        containers on it would survive the rollback.
        """
        hooks = {hook.name: hook for hook in spec.hooks}
        for attachment in spec.attachments:
            if attachment.hook in hooks:
                continue
            for canary in canaries:
                live = canary.engine.hooks.get(attachment.hook)
                if live is not None:
                    hooks[attachment.hook] = HookSpec(attachment.hook,
                                                      live.mode)
                    break
        return DeploymentSpec(
            name=f"{spec.name}-rollback",
            tenants=spec.tenants,
            hooks=tuple(hooks.values()),
        )

    @staticmethod
    def _worker_backlog(device: FleetDevice) -> bool:
        """True while any THREAD-mode container still has unrun work.

        Two places hide queued work: events sitting in a worker's queue
        (``pending``) *and* an event already popped and delivered to a
        worker thread that has not been scheduled since (the thread is
        READY but its run — and any fault it would record — has not
        happened yet).  The gate must wait out both.
        """
        for container in device.engine.containers():
            queue = container.event_queue
            if queue is None:
                continue
            if queue.pending:
                return True
            worker = container.worker
            if worker is not None and worker.state is ThreadState.READY:
                return True
        return False

    def _bake_device(
        self,
        device: FleetDevice,
        bake_us: float,
        bake_fires: int,
        fired_hooks: Sequence[str],
        context: bytes,
    ) -> None:
        """Run one canary's own workloads on its own virtual clock.

        Periodic attachments fire on their declared cadence during the
        ``bake_us`` window; every hook in ``fired_hooks`` is additionally
        fired ``bake_fires`` times.  Before returning, THREAD-mode
        worker backlogs are drained **unconditionally** — a periodic
        attachment that enqueued work right at the end of the bake
        window must still deliver its faults to the gate even when
        ``bake_fires`` is zero (windows, not ``run_until_idle``: a
        periodic attachment keeps a timer pending forever).
        """
        kernel = device.kernel
        kernel.run(until_us=kernel.now_us + bake_us)
        for _ in range(bake_fires):
            for hook_name in fired_hooks:
                if not device.engine.hooks[hook_name].containers:
                    continue
                device.engine.fire_hook(hook_name, context)
        for _ in range(1000):
            if not self._worker_backlog(device):
                break
            kernel.run(until_us=kernel.now_us + 10_000.0)

    def _bake_and_gate(
        self,
        canaries: Sequence[FleetDevice],
        controls: Sequence[FleetDevice],
        spec: DeploymentSpec,
        bake_us: float,
        bake_fires: int,
        bake_hooks: Sequence[str] | None,
        bake_context: bytes | None,
        health_gate: HealthGate,
    ) -> tuple[dict[str, int], dict[str, list[str]]]:
        """Bake every canary, then judge each against the health gate.

        Returns ``(fault deltas, health breaches)`` per canary name;
        the rollout is healthy iff every breach list is empty.
        """
        fired_hooks = list(bake_hooks) if bake_hooks is not None else sorted(
            {a.hook for a in spec.attachments if a.period_us is None}
        )
        context = (bake_context if bake_context is not None
                   else struct.pack("<QQ", 0, 0))
        fault_deltas: dict[str, int] = {}
        health: dict[str, list[str]] = {}
        # A sliding-window gate needs intra-bake samples; a whole-bake
        # gate needs none — one slice keeps the classic behavior intact.
        slices = 8 if health_gate.window_runs is not None else 1
        for device in canaries:
            faults_before = device.engine.fault_total
            supervisor = device.engine.supervisor
            quar_before = (supervisor.quarantines
                           if supervisor is not None else 0)
            snapshot_before = device.engine.runtime_snapshot()

            def sample() -> dict:
                # Read the *pinned* container objects from the pre-bake
                # snapshot, so a slot replaced or fault-detached
                # mid-bake keeps a continuous series.
                return {slot: (snap.container.runs,
                               snap.container.total_cycles)
                        for slot, snap in snapshot_before.items()}

            history = [sample()]
            for index in range(slices):
                self._bake_device(
                    device, bake_us / slices,
                    bake_fires if index == slices - 1 else 0,
                    fired_hooks, context,
                )
                history.append(sample())
            delta = device.engine.fault_total - faults_before
            fault_deltas[device.name] = delta
            quarantined = (supervisor.quarantines - quar_before
                           if supervisor is not None else 0)
            health[device.name] = health_gate.breaches(
                device, snapshot_before, delta, controls,
                history=history if slices > 1 else None,
                quarantined=quarantined)
        return fault_deltas, health

    def canary_rollout(
        self,
        spec: DeploymentSpec,
        canary_fraction: float = 0.25,
        canary_count: int | None = None,
        bake_us: float = 2_000_000.0,
        bake_fires: int = 0,
        bake_hooks: Sequence[str] | None = None,
        bake_context: bytes | None = None,
        baseline: DeploymentSpec | None = None,
        health_gate: HealthGate | None = None,
    ) -> CanaryRollout:
        """Stage ``spec`` on a canary subset, bake, then promote or revert.

        1. **Canary**: the first ``canary_count`` devices (default
           ``round(canary_fraction * N)``, at least one) are converged
           onto the spec.  A device whose apply fails (pre-flight
           rejection, contract mismatch, ...) is already restored by the
           transactional apply; the rollout aborts and reverts any
           earlier canaries.
        2. **Bake**: each canary runs its own virtual clock forward by
           ``bake_us`` — periodic attachments fire on their declared
           cadence — and every spec hook is additionally fired
           ``bake_fires`` times (SYNC hooks run inline, THREAD hooks
           drain through their worker threads before the gate reads any
           counter, whether or not extra fires were requested).
        3. **Gate**: each canary must pass ``health_gate`` (default: the
           device-lifetime fault counter
           :attr:`~repro.core.engine.HostingEngine.fault_total` must not
           have moved; a custom :class:`HealthGate` can additionally
           hold per-container modelled-cycle budgets and global-store
           agreement with the control devices).  A healthy bake promotes
           the spec to the remaining devices (which ride the image cache
           the canaries warmed); any breach rolls every canary back to
           ``baseline`` (default: the spec this fleet last converged on,
           or an empty spec of the same scope) and leaves the rest of
           the fleet untouched.
        """
        if not 0.0 < canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in (0, 1]")
        if canary_count is None:
            canary_count = max(1, round(canary_fraction * len(self.devices)))
        if not 1 <= canary_count <= len(self.devices):
            raise ValueError(
                f"canary_count {canary_count} outside 1..{len(self.devices)}"
            )
        if health_gate is None:
            health_gate = HealthGate()
        canaries = self.devices[:canary_count]
        rest = self.devices[canary_count:]
        # Per-device rollback baselines, captured *before* any canary is
        # touched: a mode-heterogeneous fleet unwinds each device to its
        # own prior spec.  An explicit ``baseline`` argument overrides
        # them all; the fleet-level value is kept on the rollout record.
        explicit_baseline = baseline
        prior_specs = {device.name: device.current_spec
                       for device in self.devices}
        if baseline is None:
            baseline = self.current_spec
        if baseline is None:
            baseline = self._rollback_baseline(spec, canaries)
        rollout = CanaryRollout(spec=spec, baseline=baseline, bake_us=bake_us)

        def revert_target(device: FleetDevice) -> DeploymentSpec:
            if explicit_baseline is not None:
                return explicit_baseline
            return (prior_specs[device.name]
                    or self.current_spec
                    or self._rollback_baseline(spec, [device]))

        def revert(staged_rollouts: list[DeviceRollout]) -> None:
            """Best-effort re-apply of each device's baseline; never
            raises (a device whose revert fails is recorded in the
            reason, the remaining devices still get reverted)."""
            for staged in staged_rollouts:
                try:
                    rollout.rollback.append(self._converge(
                        staged.device, revert_target(staged.device)))
                except Exception as exc:
                    rollout.reason += (
                        f"; rollback failed on {staged.device.name}: {exc}")
            rollout.rolled_back = True

        # 1. Converge the canary subset.
        for device in canaries:
            try:
                rollout.canary.append(self._converge(device, spec))
            except Exception as exc:
                # apply() already rolled this device back; revert the
                # canaries staged before it.
                rollout.reason = (f"apply failed on {device.name}: {exc}")
                revert(rollout.canary)
                return rollout

        # 2. Bake: run the canaries' own workloads on their own clocks,
        # then judge each against the health gate.
        rollout.fault_deltas, rollout.health = self._bake_and_gate(
            canaries, rest, spec, bake_us, bake_fires, bake_hooks,
            bake_context, health_gate,
        )

        # 3. Gate: any breach reverts the canary subset.
        unhealthy = {name: problems
                     for name, problems in rollout.health.items() if problems}
        if unhealthy:
            rollout.reason = "health gate: " + "; ".join(
                f"{name}: {', '.join(problems)}"
                for name, problems in sorted(unhealthy.items())
            )
            revert(rollout.canary)
            return rollout

        # Promote: the rest of the fleet rides the warmed image cache.
        for device in rest:
            try:
                rollout.control.append(self._converge(device, spec))
            except Exception as exc:
                # This device is already restored by the transactional
                # apply; take the whole fleet back to the baseline so it
                # never stays half-promoted.
                rollout.reason = (
                    f"promotion failed on {device.name}: {exc}")
                revert(rollout.canary + rollout.control)
                rollout.control = []
                return rollout
        rollout.promoted = True
        rollout.reason = (
            f"{len(canaries)} canaries baked {bake_us:.0f} us fault-free"
        )
        self.current_spec = spec
        return rollout

    def fire_all(self, hook_name: str, context: bytes = b"") -> int:
        """Fire one hook on every device; returns total container runs.

        Heterogeneous firmware is expected: a device whose build does
        not compile the pad simply does not participate (the fire is a
        no-op there, not an error), and the runs of the devices that do
        have it are still returned.
        """
        runs = 0
        for device in self.devices:
            if hook_name not in device.engine.hooks:
                continue
            runs += len(device.engine.fire_hook(hook_name, context).runs)
        return runs

    # -- aggregate accounting ------------------------------------------------

    def total_ram_bytes(self) -> int:
        """Engine-attributable RAM across the whole fleet (§10.3 view)."""
        return sum(device.engine.total_ram_bytes()
                   for device in self.devices)

    def containers(self):
        """Every attached container on every device, fleet order."""
        return [container
                for device in self.devices
                for container in device.engine.containers()]
