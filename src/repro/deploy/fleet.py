"""Fleet rollout: one :class:`DeploymentSpec` across N simulated devices.

The paper frames the serverless-IoT workload as "a large number of
containers, but across a large number of devices" (§2).  A :class:`Fleet`
instantiates one spec on every device — boards may differ — and is the
first scenario to drive the image cache's *cross-board* sharing path:
the process-wide :data:`~repro.vm.imagecache.IMAGE_CACHE` is keyed by
content hash only, so the first device pays the host-side verify and JIT
compile and every later device attaches through pure cache hits.  Each
device's **virtual clock is its own** and is always charged the full
modelled verify+install cost — the cache is a wall-clock effect of the
simulator, never a device-semantics change (the deploy benchmark guard
asserts both halves of that invariant).

:meth:`Fleet.apply` records per-device rollout accounting — wall time,
modelled cycles charged, image-cache hits/misses — so benchmarks and the
``python -m repro fleet`` CLI can report the warm-rollout speedup of
devices 2..N over device 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.engine import HostingEngine
from repro.deploy.plan import ApplyResult, apply, plan
from repro.deploy.spec import DeploymentSpec
from repro.rtos.board import Board, nrf52840
from repro.rtos.kernel import Kernel
from repro.vm.imagecache import IMAGE_CACHE


@dataclass
class FleetDevice:
    """One simulated device: its own kernel, clock and hosting engine."""

    name: str
    kernel: Kernel
    engine: HostingEngine

    @property
    def board(self) -> Board:
        return self.kernel.board


@dataclass
class DeviceRollout:
    """Accounting for one device's plan+apply during a fleet rollout."""

    device: FleetDevice
    result: ApplyResult
    wall_s: float
    cycles_charged: int
    cache_hits: int
    cache_misses: int

    @property
    def actions(self) -> int:
        return len(self.result.plan.actions)


@dataclass
class FleetRollout:
    """One spec applied across the whole fleet, with per-device numbers."""

    spec: DeploymentSpec
    devices: list[DeviceRollout] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        return sum(rollout.wall_s for rollout in self.devices)

    def speedups(self) -> list[float]:
        """Wall-clock speedup of each later device over device 1.

        Device 1 populates the shared image cache (cold verify + JIT
        compile); devices 2..N ride its artifacts, so their rollouts
        should be dramatically faster in wall time while charging the
        same modelled cycles.
        """
        if len(self.devices) < 2:
            return []
        first = self.devices[0].wall_s
        return [first / max(rollout.wall_s, 1e-9)
                for rollout in self.devices[1:]]

    def cycles_per_device(self) -> list[int]:
        return [rollout.cycles_charged for rollout in self.devices]

    def cache_hit_rate(self) -> float:
        hits = sum(rollout.cache_hits for rollout in self.devices)
        misses = sum(rollout.cache_misses for rollout in self.devices)
        total = hits + misses
        return hits / total if total else 0.0


class Fleet:
    """N devices driven as one deployment target.

    ``boards`` is either a device count (homogeneous nRF52840 fleet) or
    an explicit board list (heterogeneous fleet — the cache shares across
    board models because images are content-addressed).
    """

    def __init__(
        self,
        boards: int | Sequence[Board] = 4,
        implementation: str = "jit",
    ) -> None:
        if isinstance(boards, int):
            boards = [nrf52840() for _ in range(boards)]
        if not boards:
            raise ValueError("a fleet needs at least one device")
        self.implementation = implementation
        self.devices: list[FleetDevice] = []
        for index, board in enumerate(boards):
            kernel = Kernel(board)
            self.devices.append(FleetDevice(
                name=f"dev{index}",
                kernel=kernel,
                engine=HostingEngine(kernel, implementation=implementation),
            ))

    def __len__(self) -> int:
        return len(self.devices)

    def apply(self, spec: DeploymentSpec) -> FleetRollout:
        """Plan+apply ``spec`` on every device, in fleet order."""
        rollout = FleetRollout(spec=spec)
        for device in self.devices:
            hits_before = IMAGE_CACHE.hits
            misses_before = IMAGE_CACHE.misses
            cycles_before = device.kernel.clock.cycles
            start = time.perf_counter()
            result = apply(device.engine, plan(device.engine, spec))
            wall_s = time.perf_counter() - start
            rollout.devices.append(DeviceRollout(
                device=device,
                result=result,
                wall_s=wall_s,
                cycles_charged=device.kernel.clock.cycles - cycles_before,
                cache_hits=IMAGE_CACHE.hits - hits_before,
                cache_misses=IMAGE_CACHE.misses - misses_before,
            ))
        return rollout

    def fire_all(self, hook_name: str, context: bytes = b"") -> int:
        """Fire one hook on every device; returns total container runs."""
        runs = 0
        for device in self.devices:
            runs += len(device.engine.fire_hook(hook_name, context).runs)
        return runs

    # -- aggregate accounting ------------------------------------------------

    def total_ram_bytes(self) -> int:
        """Engine-attributable RAM across the whole fleet (§10.3 view)."""
        return sum(device.engine.total_ram_bytes()
                   for device in self.devices)

    def containers(self):
        """Every attached container on every device, fleet order."""
        return [container
                for device in self.devices
                for container in device.engine.containers()]
