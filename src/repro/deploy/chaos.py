"""Fault injection for the OTA pipeline: crashes, reboots, loss, stalls.

The SUIT workflow (§6 of the paper) is designed for devices that lose
power at arbitrary instants and radios that drop most frames.  This
module injects exactly those faults into a
:class:`~repro.deploy.publish.FleetPublisher` run, deterministically: a
:class:`FaultInjector` executes a *plan* of events pinned to virtual
timestamps on the publisher's backhaul clock, so the same plan + the
same seeds reproduce the same chaos bit for bit.

Six event kinds exist — three attacking power and links:

* :class:`CrashAt` — the device power-fails at ``at_us`` (all RAM state
  dropped, NVM kept) and is rebooted ``down_us`` later by the publisher,
  which rebuilds the kernel/engine/radio rig, restores storage from NVM
  and re-activates installed state;
* :class:`LinkLossBurst` — the shared link's frame-loss probability is
  raised to ``loss`` for ``duration_us`` (a jammed or congested channel),
  then restored;
* :class:`StallAt` — the device stops being scheduled for
  ``duration_us`` (wedged firmware, busy peripheral): it is neither dead
  nor reachable, the publisher's retries must simply outlast it;

and three attacking the flash itself (PR 7):

* :class:`TornWriteAt` — arms the device's NVM so the next matching
  record commit is torn by a power failure mid-program (at the shadow
  or the primary phase); the device halts mid-commit and is rebooted
  ``down_us`` after the tear fires;
* :class:`BitFlipAt` — flips one bit in a stored record (radiation,
  marginal cell); the CRC framing must catch it and the shadow/replica
  must repair or contain it;
* :class:`WearOut` — imposes an erase-cycle budget on the device's
  flash; regions erased past the budget go bad and corrupt whatever is
  programmed into them (the journal must detect and route around).

Failure modes and recovery paths
--------------------------------

How a publish converges (or degrades) for each crash point, given an
NVM-backed worker — this is the contract the kill-point sweep and the
chaos tests pin down:

========================  ==========================  ===========================================
crash point               observed publish status     recovery path
========================  ==========================  ===========================================
before trigger arrives    row pending → retriggered   publisher backoff re-POSTs the trigger
``decoded``/``verified``  no result → retriggered     re-trigger re-runs the full pipeline
``resolved``/``reserved``  no result → retriggered    RAM reservation vanished with the RAM —
                                                      nothing to release; re-trigger re-reserves
mid-fetch (any block)     no result → retriggered     fetch checkpoint in NVM; resume from the
                                                      last persisted block, not byte zero
``fetched``/``checked``   no result → retriggered     payload was RAM-only → full re-fetch of
                                                      the (cheap) remaining state
``installed``             ``REBOOTED`` row            install hit NVM before the crash: reboot
                                                      restores + re-activates it; the re-trigger
                                                      is refused as a replay, which the
                                                      publisher recognizes as convergence
``activated``             ``REBOOTED`` row            same — activation is RAM state rebuilt by
                                                      :meth:`~repro.suit.worker.SuitUpdateWorker.recover`
device never reboots      ``UNREACHABLE`` row,        none — the publisher reports partial
                          ``converged=False``         convergence instead of raising
torn write, shadow phase  no result → retriggered     primary record untouched: the device
                                                      reboots on the *old* value and the
                                                      re-trigger re-runs the pipeline
torn write, commit phase  retriggered / ``REBOOTED``  the shadow copy holds the full new frame;
                                                      the first read after reboot repairs the
                                                      primary (``nvm.repairs``)
bit flip in a record      silent repair or refetch    CRC framing rejects the frame; redundant
                                                      records repair from the replica, plain
                                                      records are dropped by ``restore()`` and
                                                      the image re-fetched
worn-out flash region     shadow/replica serves       a region past its erase budget corrupts
                                                      programs; the read-back verify keeps the
                                                      journal's good copy alive
crash-looping container   ``QUARANTINED`` row         the device-side supervisor detaches the
                                                      looper with exponential-backoff probation;
                                                      the publisher reports the slot, the rest
                                                      of the fleet converges
========================  ==========================  ===========================================

Anti-rollback state is written **twice** — inside the slot record and as
a small redundant ``suit/seq/`` record whose shadow replica is kept —
so no crash point, torn write or single bit flip can lose or regress an
accepted sequence number, and no crash point can strand a storage
reservation (reservations are deliberately RAM-only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deploy.publish import FleetPublisher


@dataclass(frozen=True)
class CrashAt:
    """Power-fail ``device`` at ``at_us``; reboot it ``down_us`` later.

    ``down_us=None`` means the device never comes back — the publisher
    must degrade to partial convergence (an ``UNREACHABLE`` row).
    """

    device: str
    at_us: float
    down_us: float | None = 500_000.0


@dataclass(frozen=True)
class LinkLossBurst:
    """Raise the shared link's loss to ``loss`` for ``duration_us``."""

    at_us: float
    duration_us: float
    loss: float = 0.9


@dataclass(frozen=True)
class StallAt:
    """Freeze ``device``'s scheduling for ``duration_us`` (wedged, not dead)."""

    device: str
    at_us: float
    duration_us: float


@dataclass(frozen=True)
class TornWriteAt:
    """Arm ``device``'s flash to tear its next matching record commit.

    The next :meth:`~repro.rtos.nvm.NvmStore.write` whose key contains
    ``match`` dies mid-``phase`` (``"shadow"`` or ``"commit"``): power
    fails with a half-programmed frame in that region.  The injector
    reboots the device ``down_us`` after the tear actually fires.
    """

    device: str
    at_us: float
    phase: str = "commit"
    match: str = "suit/"
    down_us: float | None = 200_000.0


@dataclass(frozen=True)
class BitFlipAt:
    """Flip one bit in ``device``'s first stored record under
    ``key_prefix`` (cosmic ray / marginal cell — no power event)."""

    device: str
    at_us: float
    key_prefix: str = "suit/"


@dataclass(frozen=True)
class WearOut:
    """Impose an erase-cycle budget on ``device``'s flash from ``at_us``
    on: any region erased more than ``erase_budget`` times goes bad."""

    device: str
    at_us: float
    erase_budget: int = 64


ChaosEvent = CrashAt | LinkLossBurst | StallAt | TornWriteAt | BitFlipAt \
    | WearOut


class FaultInjector:
    """Executes a chaos plan against a fleet publisher's converge loop.

    The publisher polls the injector once per converge window
    (:meth:`poll`); every event whose ``at_us`` has passed on the
    backhaul clock fires exactly once.  All state transitions happen at
    window granularity of the *virtual* clocks — wall time never enters,
    so a plan is exactly reproducible.
    """

    def __init__(self, plan: Sequence[ChaosEvent] = (),
                 auto_reboot_us: float | None = None) -> None:
        #: When set, any device found power-failed *outside* the plan —
        #: e.g. a kill-point hook raising
        #: :class:`~repro.rtos.errors.PowerFailure` mid-pipeline — is
        #: rebooted this long after the injector first sees it down.
        self.auto_reboot_us = auto_reboot_us
        self._pending: list[ChaosEvent] = sorted(plan, key=lambda e: e.at_us)
        #: Device name -> virtual instant to reboot it (None: never).
        self._down: dict[str, float | None] = {}
        #: Device name -> virtual instant its stall ends.
        self._stalled_until: dict[str, float] = {}
        self._burst_until: float | None = None
        self._base_loss: float | None = None
        #: Device name -> (down_us, torn count when armed): a tear has
        #: been armed on its NVM and we are waiting for it to fire.
        self._torn_armed: dict[str, tuple[float | None, int]] = {}
        #: Observability counters.
        self.crashes = 0
        self.reboots = 0
        self.bursts = 0
        self.stalls = 0
        self.torn_writes = 0
        self.bitflips = 0
        self.wearouts = 0

    @classmethod
    def random_plan(
        cls,
        device_names: Sequence[str],
        seed: int,
        horizon_us: float,
        crashes: int = 2,
        bursts: int = 1,
        stalls: int = 1,
        down_us: float = 500_000.0,
        torn_writes: int = 0,
        bitflips: int = 0,
        wearouts: int = 0,
    ) -> list[ChaosEvent]:
        """A seeded random plan over ``horizon_us`` of backhaul time.

        The storage-fault draws come *after* the classic three, so a
        plan with the default counts is byte-identical to pre-PR 7
        plans for the same seed.
        """
        rng = random.Random(seed)
        plan: list[ChaosEvent] = []
        for _ in range(crashes):
            plan.append(CrashAt(
                device=rng.choice(list(device_names)),
                at_us=rng.uniform(0.05, 0.8) * horizon_us,
                down_us=down_us,
            ))
        for _ in range(bursts):
            plan.append(LinkLossBurst(
                at_us=rng.uniform(0.05, 0.7) * horizon_us,
                duration_us=rng.uniform(0.05, 0.2) * horizon_us,
                loss=rng.uniform(0.5, 0.9),
            ))
        for _ in range(stalls):
            plan.append(StallAt(
                device=rng.choice(list(device_names)),
                at_us=rng.uniform(0.05, 0.7) * horizon_us,
                duration_us=rng.uniform(0.05, 0.2) * horizon_us,
            ))
        for _ in range(torn_writes):
            plan.append(TornWriteAt(
                device=rng.choice(list(device_names)),
                at_us=rng.uniform(0.05, 0.6) * horizon_us,
                phase=rng.choice(["shadow", "commit"]),
                down_us=down_us,
            ))
        for _ in range(bitflips):
            plan.append(BitFlipAt(
                device=rng.choice(list(device_names)),
                at_us=rng.uniform(0.05, 0.8) * horizon_us,
            ))
        for _ in range(wearouts):
            plan.append(WearOut(
                device=rng.choice(list(device_names)),
                at_us=rng.uniform(0.05, 0.5) * horizon_us,
                erase_budget=rng.randint(8, 32),
            ))
        return sorted(plan, key=lambda e: e.at_us)

    # -- the converge-loop hooks -------------------------------------------

    def stalled(self, device_name: str) -> bool:
        """True while ``device_name`` must not be scheduled."""
        return device_name in self._stalled_until

    def poll(self, publisher: "FleetPublisher") -> None:
        """Fire every due event; progress reboots, bursts and stalls."""
        now = publisher.kernel.now_us
        while self._pending and self._pending[0].at_us <= now:
            self._fire(self._pending.pop(0), publisher, now)
        for name, (down_us, baseline) in list(self._torn_armed.items()):
            device = publisher.device_by_name(name)
            if device.nvm is None or device.nvm.torn == baseline:
                continue  # still armed, no matching write happened yet
            # The tear fired: the device died mid-commit.  Queue its
            # reboot like a scripted crash.
            del self._torn_armed[name]
            self.torn_writes += 1
            if device.kernel.halted and name not in self._down:
                publisher.crash_device(device)
                self.crashes += 1
                self._down[name] = (None if down_us is None
                                    else now + down_us)
        if self.auto_reboot_us is not None:
            for device in publisher.fleet.devices:
                if device.kernel.halted and device.name not in self._down:
                    # Crashed outside the plan (kill-point injection):
                    # take its radio off the air and queue the reboot.
                    publisher.crash_device(device)
                    self.crashes += 1
                    self._down[device.name] = now + self.auto_reboot_us
        for name, reboot_at in list(self._down.items()):
            if reboot_at is not None and now >= reboot_at:
                del self._down[name]
                publisher.reboot_device(publisher.device_by_name(name))
                self.reboots += 1
        if self._burst_until is not None and now >= self._burst_until:
            publisher.link.loss = self._base_loss
            self._burst_until = None
            self._base_loss = None
        for name, until in list(self._stalled_until.items()):
            if now >= until:
                del self._stalled_until[name]

    def _fire(self, event: ChaosEvent, publisher: "FleetPublisher",
              now: float) -> None:
        if isinstance(event, CrashAt):
            device = publisher.device_by_name(event.device)
            if device.kernel.halted:
                return  # already down — crashing a corpse is a no-op
            publisher.crash_device(device)
            self.crashes += 1
            self._down[event.device] = (
                None if event.down_us is None else now + event.down_us
            )
        elif isinstance(event, LinkLossBurst):
            if self._burst_until is None:
                self._base_loss = publisher.link.loss
            publisher.link.loss = event.loss
            self._burst_until = max(self._burst_until or 0.0,
                                    now + event.duration_us)
            self.bursts += 1
        elif isinstance(event, StallAt):
            self._stalled_until[event.device] = max(
                self._stalled_until.get(event.device, 0.0),
                now + event.duration_us,
            )
            self.stalls += 1
        elif isinstance(event, TornWriteAt):
            device = publisher.device_by_name(event.device)
            if device.nvm is None or device.kernel.halted:
                return  # nothing to tear / already a corpse
            device.nvm.tear_next_write(event.phase, event.match)
            self._torn_armed[event.device] = (event.down_us,
                                              device.nvm.torn)
        elif isinstance(event, BitFlipAt):
            device = publisher.device_by_name(event.device)
            if device.nvm is None:
                return
            for key in device.nvm.keys(event.key_prefix):
                if device.nvm.bit_flip(key):
                    self.bitflips += 1
                    break
        elif isinstance(event, WearOut):
            device = publisher.device_by_name(event.device)
            if device.nvm is None:
                return
            device.nvm.erase_budget = event.erase_budget
            self.wearouts += 1

    @property
    def quiescent(self) -> bool:
        """True once every planned fault has fired and resolved."""
        return (not self._pending and not self._down
                and self._burst_until is None and not self._stalled_until)
