"""Fault injection for the OTA pipeline: crashes, reboots, loss, stalls.

The SUIT workflow (§6 of the paper) is designed for devices that lose
power at arbitrary instants and radios that drop most frames.  This
module injects exactly those faults into a
:class:`~repro.deploy.publish.FleetPublisher` run, deterministically: a
:class:`FaultInjector` executes a *plan* of events pinned to virtual
timestamps on the publisher's backhaul clock, so the same plan + the
same seeds reproduce the same chaos bit for bit.

Three event kinds exist:

* :class:`CrashAt` — the device power-fails at ``at_us`` (all RAM state
  dropped, NVM kept) and is rebooted ``down_us`` later by the publisher,
  which rebuilds the kernel/engine/radio rig, restores storage from NVM
  and re-activates installed state;
* :class:`LinkLossBurst` — the shared link's frame-loss probability is
  raised to ``loss`` for ``duration_us`` (a jammed or congested channel),
  then restored;
* :class:`StallAt` — the device stops being scheduled for
  ``duration_us`` (wedged firmware, busy peripheral): it is neither dead
  nor reachable, the publisher's retries must simply outlast it.

Failure modes and recovery paths
--------------------------------

How a publish converges (or degrades) for each crash point, given an
NVM-backed worker — this is the contract the kill-point sweep and the
chaos tests pin down:

========================  ==========================  ===========================================
crash point               observed publish status     recovery path
========================  ==========================  ===========================================
before trigger arrives    row pending → retriggered   publisher backoff re-POSTs the trigger
``decoded``/``verified``  no result → retriggered     re-trigger re-runs the full pipeline
``resolved``/``reserved``  no result → retriggered    RAM reservation vanished with the RAM —
                                                      nothing to release; re-trigger re-reserves
mid-fetch (any block)     no result → retriggered     fetch checkpoint in NVM; resume from the
                                                      last persisted block, not byte zero
``fetched``/``checked``   no result → retriggered     payload was RAM-only → full re-fetch of
                                                      the (cheap) remaining state
``installed``             ``REBOOTED`` row            install hit NVM before the crash: reboot
                                                      restores + re-activates it; the re-trigger
                                                      is refused as a replay, which the
                                                      publisher recognizes as convergence
``activated``             ``REBOOTED`` row            same — activation is RAM state rebuilt by
                                                      :meth:`~repro.suit.worker.SuitUpdateWorker.recover`
device never reboots      ``UNREACHABLE`` row,        none — the publisher reports partial
                          ``converged=False``         convergence instead of raising
========================  ==========================  ===========================================

Anti-rollback state lives in the same NVM records as the images, written
atomically after the in-RAM install: no crash point can lose an accepted
sequence number, and no crash point can strand a storage reservation
(reservations are deliberately RAM-only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deploy.publish import FleetPublisher


@dataclass(frozen=True)
class CrashAt:
    """Power-fail ``device`` at ``at_us``; reboot it ``down_us`` later.

    ``down_us=None`` means the device never comes back — the publisher
    must degrade to partial convergence (an ``UNREACHABLE`` row).
    """

    device: str
    at_us: float
    down_us: float | None = 500_000.0


@dataclass(frozen=True)
class LinkLossBurst:
    """Raise the shared link's loss to ``loss`` for ``duration_us``."""

    at_us: float
    duration_us: float
    loss: float = 0.9


@dataclass(frozen=True)
class StallAt:
    """Freeze ``device``'s scheduling for ``duration_us`` (wedged, not dead)."""

    device: str
    at_us: float
    duration_us: float


ChaosEvent = CrashAt | LinkLossBurst | StallAt


class FaultInjector:
    """Executes a chaos plan against a fleet publisher's converge loop.

    The publisher polls the injector once per converge window
    (:meth:`poll`); every event whose ``at_us`` has passed on the
    backhaul clock fires exactly once.  All state transitions happen at
    window granularity of the *virtual* clocks — wall time never enters,
    so a plan is exactly reproducible.
    """

    def __init__(self, plan: Sequence[ChaosEvent] = (),
                 auto_reboot_us: float | None = None) -> None:
        #: When set, any device found power-failed *outside* the plan —
        #: e.g. a kill-point hook raising
        #: :class:`~repro.rtos.errors.PowerFailure` mid-pipeline — is
        #: rebooted this long after the injector first sees it down.
        self.auto_reboot_us = auto_reboot_us
        self._pending: list[ChaosEvent] = sorted(plan, key=lambda e: e.at_us)
        #: Device name -> virtual instant to reboot it (None: never).
        self._down: dict[str, float | None] = {}
        #: Device name -> virtual instant its stall ends.
        self._stalled_until: dict[str, float] = {}
        self._burst_until: float | None = None
        self._base_loss: float | None = None
        #: Observability counters.
        self.crashes = 0
        self.reboots = 0
        self.bursts = 0
        self.stalls = 0

    @classmethod
    def random_plan(
        cls,
        device_names: Sequence[str],
        seed: int,
        horizon_us: float,
        crashes: int = 2,
        bursts: int = 1,
        stalls: int = 1,
        down_us: float = 500_000.0,
    ) -> list[ChaosEvent]:
        """A seeded random plan over ``horizon_us`` of backhaul time."""
        rng = random.Random(seed)
        plan: list[ChaosEvent] = []
        for _ in range(crashes):
            plan.append(CrashAt(
                device=rng.choice(list(device_names)),
                at_us=rng.uniform(0.05, 0.8) * horizon_us,
                down_us=down_us,
            ))
        for _ in range(bursts):
            plan.append(LinkLossBurst(
                at_us=rng.uniform(0.05, 0.7) * horizon_us,
                duration_us=rng.uniform(0.05, 0.2) * horizon_us,
                loss=rng.uniform(0.5, 0.9),
            ))
        for _ in range(stalls):
            plan.append(StallAt(
                device=rng.choice(list(device_names)),
                at_us=rng.uniform(0.05, 0.7) * horizon_us,
                duration_us=rng.uniform(0.05, 0.2) * horizon_us,
            ))
        return sorted(plan, key=lambda e: e.at_us)

    # -- the converge-loop hooks -------------------------------------------

    def stalled(self, device_name: str) -> bool:
        """True while ``device_name`` must not be scheduled."""
        return device_name in self._stalled_until

    def poll(self, publisher: "FleetPublisher") -> None:
        """Fire every due event; progress reboots, bursts and stalls."""
        now = publisher.kernel.now_us
        while self._pending and self._pending[0].at_us <= now:
            self._fire(self._pending.pop(0), publisher, now)
        if self.auto_reboot_us is not None:
            for device in publisher.fleet.devices:
                if device.kernel.halted and device.name not in self._down:
                    # Crashed outside the plan (kill-point injection):
                    # take its radio off the air and queue the reboot.
                    publisher.crash_device(device)
                    self.crashes += 1
                    self._down[device.name] = now + self.auto_reboot_us
        for name, reboot_at in list(self._down.items()):
            if reboot_at is not None and now >= reboot_at:
                del self._down[name]
                publisher.reboot_device(publisher.device_by_name(name))
                self.reboots += 1
        if self._burst_until is not None and now >= self._burst_until:
            publisher.link.loss = self._base_loss
            self._burst_until = None
            self._base_loss = None
        for name, until in list(self._stalled_until.items()):
            if now >= until:
                del self._stalled_until[name]

    def _fire(self, event: ChaosEvent, publisher: "FleetPublisher",
              now: float) -> None:
        if isinstance(event, CrashAt):
            device = publisher.device_by_name(event.device)
            if device.kernel.halted:
                return  # already down — crashing a corpse is a no-op
            publisher.crash_device(device)
            self.crashes += 1
            self._down[event.device] = (
                None if event.down_us is None else now + event.down_us
            )
        elif isinstance(event, LinkLossBurst):
            if self._burst_until is None:
                self._base_loss = publisher.link.loss
            publisher.link.loss = event.loss
            self._burst_until = max(self._burst_until or 0.0,
                                    now + event.duration_us)
            self.bursts += 1
        elif isinstance(event, StallAt):
            self._stalled_until[event.device] = max(
                self._stalled_until.get(event.device, 0.0),
                now + event.duration_us,
            )
            self.stalls += 1

    @property
    def quiescent(self) -> bool:
        """True once every planned fault has fired and resolved."""
        return (not self._pending and not self._down
                and self._burst_until is None and not self._stalled_until)
