"""Declarative deployment: spec → plan → apply, from one device to a fleet.

This package is the management plane on top of the hosting engine's
imperative ``create_tenant``/``load``/``attach`` primitives:

* :mod:`repro.deploy.spec` — :class:`DeploymentSpec` describes desired
  state (tenants, content-addressed images, per-hook attachments with
  contracts and instance counts), JSON round-trippable;
* :mod:`repro.deploy.plan` — :func:`plan` diffs a spec against a live
  engine into a minimal ordered action list; :func:`apply` executes it
  transactionally (rollback on :class:`~repro.core.errors.AttachError`),
  hot-swapping edited images by content hash through ``engine.replace``;
* :mod:`repro.deploy.fleet` — :class:`Fleet` stamps one spec onto N
  simulated devices, sharing the process-wide image cache across boards
  with per-device clock/wall/cache accounting; :class:`HealthGate`
  judges canary bakes on faults, cycle budgets and store divergence;
* :mod:`repro.deploy.publish` — :class:`FleetPublisher` signs one spec
  manifest and fans it out over a shared radio link to every device's
  ``SpecUpdateWorker`` trigger endpoint, with an optional health-gated
  canary phase, trigger retry with backoff, and crash/reboot recovery
  (devices persist installed state to NVM and resume interrupted
  fetches);
* :mod:`repro.deploy.chaos` — :class:`FaultInjector` schedules device
  crashes, reboots, link-loss bursts, stalls and storage faults (torn
  writes, bit flips, flash wear-out) at virtual timestamps from a
  deterministic plan; its module docstring carries the failure modes
  table (crash point → observed status → recovery path).

Applying an unchanged spec twice plans zero actions; editing one image
plans exactly one replace.  See the module docstrings for the full
reconcile model.
"""

from repro.deploy.chaos import (
    BitFlipAt,
    ChaosEvent,
    CrashAt,
    FaultInjector,
    LinkLossBurst,
    StallAt,
    TornWriteAt,
    WearOut,
)
from repro.deploy.fleet import (
    CanaryRollout,
    DeviceRollout,
    Fleet,
    FleetDevice,
    FleetRollout,
    HealthGate,
)
from repro.deploy.publish import (
    DevicePublish,
    DeviceRadio,
    FleetPublisher,
    PublishResult,
)
from repro.deploy.plan import (
    Action,
    ApplyResult,
    CreateTenant,
    DeploymentPlan,
    Detach,
    Install,
    RegisterHook,
    Replace,
    SetTenantPolicy,
    apply,
    apply_spec,
    plan,
)
from repro.deploy.spec import (
    BUILTIN_SPECS,
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
    SpecError,
    builtin_spec,
    fanout_spec,
    multi_tenant_spec,
)

__all__ = [
    "Action",
    "ApplyResult",
    "AttachmentSpec",
    "BUILTIN_SPECS",
    "BitFlipAt",
    "CanaryRollout",
    "ChaosEvent",
    "CrashAt",
    "CreateTenant",
    "DeploymentPlan",
    "DeploymentSpec",
    "Detach",
    "DevicePublish",
    "DeviceRadio",
    "DeviceRollout",
    "FaultInjector",
    "Fleet",
    "FleetDevice",
    "FleetPublisher",
    "FleetRollout",
    "HealthGate",
    "LinkLossBurst",
    "StallAt",
    "TornWriteAt",
    "WearOut",
    "HookSpec",
    "PublishResult",
    "ImageSpec",
    "Install",
    "RegisterHook",
    "Replace",
    "SetTenantPolicy",
    "SpecError",
    "apply",
    "apply_spec",
    "builtin_spec",
    "fanout_spec",
    "multi_tenant_spec",
    "plan",
]
