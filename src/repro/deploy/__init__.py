"""Declarative deployment: spec → plan → apply, from one device to a fleet.

This package is the management plane on top of the hosting engine's
imperative ``create_tenant``/``load``/``attach`` primitives:

* :mod:`repro.deploy.spec` — :class:`DeploymentSpec` describes desired
  state (tenants, content-addressed images, per-hook attachments with
  contracts and instance counts), JSON round-trippable;
* :mod:`repro.deploy.plan` — :func:`plan` diffs a spec against a live
  engine into a minimal ordered action list; :func:`apply` executes it
  transactionally (rollback on :class:`~repro.core.errors.AttachError`),
  hot-swapping edited images by content hash through ``engine.replace``;
* :mod:`repro.deploy.fleet` — :class:`Fleet` stamps one spec onto N
  simulated devices, sharing the process-wide image cache across boards
  with per-device clock/wall/cache accounting; :class:`HealthGate`
  judges canary bakes on faults, cycle budgets and store divergence;
* :mod:`repro.deploy.publish` — :class:`FleetPublisher` signs one spec
  manifest and fans it out over a shared radio link to every device's
  ``SpecUpdateWorker`` trigger endpoint, with an optional health-gated
  canary phase, trigger retry with backoff, and crash/reboot recovery
  (devices persist installed state to NVM and resume interrupted
  fetches);
* :mod:`repro.deploy.chaos` — :class:`FaultInjector` schedules device
  crashes, reboots, link-loss bursts, stalls and storage faults (torn
  writes, bit flips, flash wear-out) at virtual timestamps from a
  deterministic plan; its module docstring carries the failure modes
  table (crash point → observed status → recovery path);
* :mod:`repro.deploy.controlplane` — :class:`ControlPlane` is the
  long-lived maintainer service over one shared
  :class:`~repro.deploy.registry.DeviceRegistry`: register/evict
  devices at runtime, :meth:`~ControlPlane.submit` specs into signed
  :class:`Release` records, publish/canary with the fleet-scale
  profile (:meth:`PublishOptions.scale`: multicast trigger with the
  integrated payload, sharded co-run, shared release decode) and
  stream typed :class:`DeviceStatus` rows.

Applying an unchanged spec twice plans zero actions; editing one image
plans exactly one replace.  See the module docstrings for the full
reconcile model.
"""

from repro.deploy.chaos import (
    BitFlipAt,
    ChaosEvent,
    CrashAt,
    FaultInjector,
    LinkLossBurst,
    StallAt,
    TornWriteAt,
    WearOut,
)
from repro.deploy.controlplane import (
    ControlPlane,
    DeviceStatus,
    Release,
)
from repro.deploy.fleet import (
    CanaryRollout,
    DeviceRollout,
    Fleet,
    FleetDevice,
    FleetRollout,
    HealthGate,
)
from repro.deploy.publish import (
    DevicePublish,
    DeviceRadio,
    FleetPublisher,
    PublishOptions,
    PublishResult,
)
from repro.deploy.registry import DeviceRegistry
from repro.deploy.results import FleetResult
from repro.deploy.shards import ShardExecutor, auto_shard_count
from repro.deploy.plan import (
    Action,
    ApplyResult,
    CreateTenant,
    DeploymentPlan,
    Detach,
    Install,
    RegisterHook,
    Replace,
    SetTenantPolicy,
    apply,
    apply_spec,
    plan,
)
from repro.deploy.spec import (
    BUILTIN_SPECS,
    AttachmentSpec,
    DeploymentSpec,
    HookSpec,
    ImageSpec,
    SpecError,
    builtin_spec,
    fanout_spec,
    multi_tenant_spec,
    runtime_matrix_spec,
    script_checksum_spec,
    wasm_checksum_spec,
)

__all__ = [
    "Action",
    "ApplyResult",
    "AttachmentSpec",
    "BUILTIN_SPECS",
    "BitFlipAt",
    "CanaryRollout",
    "ChaosEvent",
    "ControlPlane",
    "CrashAt",
    "CreateTenant",
    "DeploymentPlan",
    "DeploymentSpec",
    "Detach",
    "DevicePublish",
    "DeviceRadio",
    "DeviceRegistry",
    "DeviceRollout",
    "DeviceStatus",
    "FaultInjector",
    "Fleet",
    "FleetDevice",
    "FleetPublisher",
    "FleetResult",
    "FleetRollout",
    "HealthGate",
    "LinkLossBurst",
    "Release",
    "ShardExecutor",
    "StallAt",
    "TornWriteAt",
    "WearOut",
    "HookSpec",
    "PublishOptions",
    "PublishResult",
    "auto_shard_count",
    "ImageSpec",
    "Install",
    "RegisterHook",
    "Replace",
    "SetTenantPolicy",
    "SpecError",
    "apply",
    "apply_spec",
    "builtin_spec",
    "fanout_spec",
    "multi_tenant_spec",
    "plan",
    "runtime_matrix_spec",
    "script_checksum_spec",
    "wasm_checksum_spec",
]
