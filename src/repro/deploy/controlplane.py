"""Long-lived maintainer control plane for one device fleet.

The maintainer side of the stack grew up as three loosely coupled
pieces — :class:`~repro.deploy.fleet.Fleet` (devices + direct applies),
:class:`~repro.deploy.publish.FleetPublisher` (radio + OTA publish) and
the canary staging logic — each holding its own idea of "the device
list".  :class:`ControlPlane` is the faasd-style service object that
owns the whole lifecycle behind one typed API:

* **device registry** — register/evict/list devices at any time, not
  just at construction; everyone (fleet, publisher, chaos) reads the
  same :class:`~repro.deploy.registry.DeviceRegistry`;
* **release submission** — :meth:`submit` signs a spec into an
  immutable :class:`Release` (sequence number, envelope, payload) that
  can be published, canaried, or audited later;
* **publish/canary orchestration** — :meth:`publish` and
  :meth:`canary` drive :meth:`FleetPublisher.publish` with the
  fleet-scale profile (multicast trigger + integrated payload, sharded
  co-run, shared release decode) by default;
* **streamed status** — :meth:`status` yields one typed
  :class:`DeviceStatus` row per device, registry order, cheap enough
  to call at N=1000.

The plane adds **no new mechanism** — it is a facade over the same
fleet/publisher objects (exposed as attributes for tests and advanced
callers), which is exactly what keeps it honest: anything the plane
reports can be cross-checked against the underlying pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.deploy.fleet import Fleet, FleetDevice
from repro.deploy.publish import (
    FleetPublisher,
    PublishOptions,
    PublishResult,
)
from repro.deploy.registry import DeviceRegistry
from repro.deploy.spec import DeploymentSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtos.board import Board


@dataclass(frozen=True)
class Release:
    """One signed, immutable fleet release."""

    spec: DeploymentSpec
    sequence_number: int
    #: Signed COSE envelope bytes (what a trigger carries).
    envelope: bytes
    #: Canonical CBOR spec payload (what devices reconcile onto).
    payload: bytes

    @property
    def name(self) -> str:
        return f"{self.spec.name}@{self.sequence_number}"


@dataclass(frozen=True)
class DeviceStatus:
    """One streamed per-device status row."""

    name: str
    index: int
    board: str
    addr: str | None
    #: Highest anti-rollback sequence the device holds for the fleet
    #: spec slot (0: never converged on any publish).
    sequence: int
    #: Name of the spec this device last converged on, if any.
    spec: str | None
    reboots: int
    quarantined: int
    halted: bool
    cycles: int
    radio_uj: float


class ControlPlane:
    """One maintainer service owning fleet, releases and publishes."""

    def __init__(
        self,
        devices: int | Sequence["Board"] = 4,
        implementation: str = "jit",
        loss: float = 0.0,
        seed: int = 1234,
        supervisor=True,
        **publisher_kwargs,
    ) -> None:
        self.fleet = Fleet(devices, implementation=implementation,
                           supervisor=supervisor)
        self.publisher = FleetPublisher(self.fleet, loss=loss, seed=seed,
                                        **publisher_kwargs)
        #: Chronological record of every submitted release.
        self.releases: list[Release] = []

    @property
    def registry(self) -> DeviceRegistry:
        """THE device registry (same object the fleet/publisher use)."""
        return self.fleet.registry

    # -- device lifecycle ----------------------------------------------

    def register(self, board: "Board | None" = None,
                 name: str | None = None) -> FleetDevice:
        """Add one device to the live fleet and wire its radio."""
        device = self.fleet.add_device(board, name=name)
        self.publisher.adopt_device(device)
        return device

    def evict(self, name: str) -> FleetDevice:
        """Remove one device from the fleet and take it off the air."""
        return self.publisher.evict_device(name)

    def devices(self) -> list[FleetDevice]:
        return self.registry.devices()

    def device(self, name: str) -> FleetDevice:
        return self.registry.get(name)

    def __len__(self) -> int:
        return len(self.registry)

    # -- releases ------------------------------------------------------

    def submit(self, spec: DeploymentSpec,
               sequence_number: int | None = None) -> Release:
        """Sign ``spec`` into an immutable release (not yet published).

        The release takes the next maintainer sequence number (or the
        explicit one) and its payload is registered with the repository,
        so devices triggered later can fetch it.
        """
        envelope, payload, sequence = self.publisher._sign(
            spec, sequence_number, None)
        release = Release(spec=spec, sequence_number=sequence,
                          envelope=envelope, payload=payload)
        self.releases.append(release)
        return release

    # -- orchestration -------------------------------------------------

    def publish(self, release: Release | DeploymentSpec,
                options: PublishOptions | None = None) -> PublishResult:
        """Fan one release out to the whole fleet.

        Defaults to :meth:`PublishOptions.scale` — the control plane
        exists for fleets where one broadcast beats N POSTs.  Passing a
        bare spec submits it implicitly first.
        """
        if isinstance(release, DeploymentSpec):
            release = self.submit(release)
        if options is None:
            options = PublishOptions.scale()
        # Publishing re-signs the same spec under the release's sequence
        # number; Ed25519 is deterministic, so the envelope on the air
        # is byte-identical to the submitted release's.
        options = replace(options, sequence_number=release.sequence_number)
        return self.publisher.publish(release.spec, options)

    def canary(self, release: Release | DeploymentSpec,
               canary_count: int,
               options: PublishOptions | None = None) -> PublishResult:
        """Health-gated staged publish through ``canary_count`` devices."""
        if options is None:
            options = PublishOptions.scale()
        options = replace(options, canary_count=canary_count)
        return self.publish(release, options)

    # -- streamed status -----------------------------------------------

    def status(self) -> Iterator[DeviceStatus]:
        """Stream one typed status row per device, registry order."""
        slot = self.publisher.slot
        for device in self.registry:
            radio = device.radio
            supervisor = device.engine.supervisor
            yield DeviceStatus(
                name=device.name,
                index=self.registry.index_of(device.name),
                board=device.kernel.board.name,
                addr=radio.addr if radio is not None else None,
                sequence=(max(0, radio.worker.storage.highest_sequence(slot))
                          if radio is not None else 0),
                spec=(device.current_spec.name
                      if device.current_spec is not None else None),
                reboots=device.reboots,
                quarantined=(len(supervisor.quarantined_slots())
                             if supervisor is not None else 0),
                halted=device.kernel.halted,
                cycles=device.kernel.clock.cycles,
                radio_uj=(device.meter.report().radio_uj
                          if device.meter is not None else 0.0),
            )
