"""The fleet's single source of truth for device membership.

Before the control plane existed, three objects each kept their own
device list — :class:`~repro.deploy.fleet.Fleet` (a plain list),
:class:`~repro.deploy.publish.FleetPublisher` (linear scans by name),
and the canary staging logic (positional slices).  A 1,000-device
publish turned those scans into O(N²) behavior, and registering or
evicting a device after construction had no single place to happen.

:class:`DeviceRegistry` is that place: an insertion-ordered name →
device map with O(1) lookup, a stable per-device **wiring index** (used
for radio address allocation — indices are never reused, so a device
registered after an eviction cannot collide with in-flight frames
addressed to its predecessor), and a cached list view so the many
existing ``fleet.devices[...]`` call sites keep their list semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deploy.fleet import FleetDevice


class DeviceRegistry:
    """Insertion-ordered device membership with O(1) name lookup."""

    def __init__(self) -> None:
        self._devices: dict[str, "FleetDevice"] = {}
        self._indices: dict[str, int] = {}
        self._next_index = 0
        self._view: list["FleetDevice"] | None = None

    @property
    def next_index(self) -> int:
        """Wiring index the next registered device will receive."""
        return self._next_index

    def register(self, device: "FleetDevice") -> int:
        """Add one device; returns its permanent wiring index."""
        if device.name in self._devices:
            raise ValueError(
                f"device {device.name!r} is already registered")
        index = self._next_index
        self._next_index += 1
        self._devices[device.name] = device
        self._indices[device.name] = index
        self._view = None
        return index

    def evict(self, name: str) -> "FleetDevice":
        """Remove one device from the fleet; its index is retired."""
        device = self.get(name)
        del self._devices[name]
        del self._indices[name]
        self._view = None
        return device

    def get(self, name: str) -> "FleetDevice":
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"no fleet device named {name!r}") from None

    def index_of(self, name: str) -> int:
        """The device's permanent wiring (radio address) index."""
        self.get(name)  # uniform KeyError message
        return self._indices[name]

    def devices(self) -> list["FleetDevice"]:
        """List view in registration order (cached between mutations)."""
        if self._view is None:
            self._view = list(self._devices.values())
        return self._view

    def names(self) -> list[str]:
        return list(self._devices)

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator["FleetDevice"]:
        return iter(self.devices())
