"""One result protocol for every fleet-shaped outcome.

Three result types grew up independently —
:class:`~repro.deploy.fleet.FleetRollout` (direct applies),
:class:`~repro.deploy.fleet.CanaryRollout` (staged applies) and
:class:`~repro.deploy.publish.PublishResult` (over-the-air publishes) —
and every caller special-cased which attribute meant "did it work" and
which list held the per-device rows.  :class:`FleetResult` is the shared
protocol they now all implement:

* ``ok`` — one boolean verdict (promoted / converged / applied);
* ``wall_s`` — total host wall-clock across the per-device rows;
* ``speedups()`` — wall speedup of each later device over the first
  (cold) one, the image-cache headline every bench guards;
* iteration — ``for row in result`` walks the per-device rows, and
  ``len(result)`` counts them.

Subclasses keep their historical attribute names (``devices``,
``canary``/``control``/``rollback``, ``promoted``, ``converged``) as
thin aliases over the protocol, so existing callers never notice.
"""

from __future__ import annotations

from typing import Iterator, Sequence


class FleetResult:
    """Protocol base for fleet-wide results with per-device rows."""

    def rows(self) -> Sequence:
        """Per-device rows, in convergence order."""
        raise NotImplementedError

    def speedup_rows(self) -> Sequence:
        """Rows entering the cold-vs-warm comparison (subclasses drop
        rollback rows — those measure the *undo*, not the publish)."""
        return self.rows()

    @property
    def ok(self) -> bool:
        """One verdict for the whole operation."""
        return True

    @property
    def wall_s(self) -> float:
        """Total host wall-clock across the per-device rows."""
        return sum(row.wall_s for row in self.rows())

    def speedups(self) -> list[float]:
        """Wall speedup of each later device over the first (cold) one.

        The first device pays the cold host-side verify + JIT compile;
        every later device rides the content-addressed image cache.
        """
        rows = list(self.speedup_rows())
        if len(rows) < 2:
            return []
        cold = rows[0].wall_s
        return [cold / max(row.wall_s, 1e-9) for row in rows[1:]]

    def __iter__(self) -> Iterator:
        return iter(self.rows())

    def __len__(self) -> int:
        return len(self.rows())

    def __bool__(self) -> bool:
        # ``__len__`` alone would make an empty result falsy; a result
        # object's truthiness must stay "it exists", not "it has rows".
        return True
