"""Fleet-wide OTA publish: one signed spec fanned out over the radio.

PR 4 closed the loop from signed spec to *single-device* reconciliation
(:class:`~repro.suit.specworker.SpecUpdateWorker`), but the fleet still
converged by the simulator reaching into each engine.  This module adds
the missing radio path: a :class:`FleetPublisher` wires every
:class:`~repro.deploy.fleet.FleetDevice` with a radio rig — an interface
on one **shared broadcast link**, a device-side gcoap server exposing the
worker's ``/suit/trigger`` endpoint, a CoAP client for the block-wise
payload fetch, and a per-device ``SpecUpdateWorker`` — plus a
maintainer-side repository serving the spec payload.

:meth:`FleetPublisher.publish` then signs **one** manifest (one COSE
envelope, one canonical CBOR payload) and POSTs it to every device's
trigger endpoint.  Each device independently authenticates the envelope,
enforces *its own* anti-rollback sequence, fetches the payload block-wise
from the repository, and reconciles itself through ``plan``/``apply`` —
so one publish produces N per-device convergences.  The wire payload is
one; the *host-side* verify and JIT compile are also one, because every
device's apply resolves through the content-addressed
:data:`~repro.vm.imagecache.IMAGE_CACHE` — device 1 pays the cold
compile in its apply slice and devices 2..N ride it (the
``BENCH_publish.json`` guard holds that at >=5x).

Each device keeps its **own virtual clock**, as everywhere in the fleet
layer: the signature check, the SHA-256 digest, and the full modelled
verify+install cost are charged per device, cold or cached.  The
maintainer runs on a separate backhaul kernel that owns the link's
airtime timers; :meth:`FleetPublisher.publish` co-runs all kernels in
small interleaved windows until every triggered worker reported.

With ``canary_count`` the publish is staged like
:meth:`~repro.deploy.fleet.Fleet.canary_rollout`, but entirely over the
radio: trigger the canaries, bake them, judge them against a
:class:`~repro.deploy.fleet.HealthGate`, and only then trigger the rest
of the fleet.  An unhealthy bake publishes each canary's *own* prior
spec back to it — under a **new, higher** sequence number, because
anti-rollback forbids re-announcing an old one; devices sharing a
baseline share one signed envelope — and never touches the control
devices at all.

Since PR 7 every row also carries the device's health/energy telemetry
(contained-fault delta, quarantined slot count, radio energy), and a
device whose :class:`~repro.vm.supervisor.ContainerSupervisor`
quarantined a crash-looping slot reports a ``QUARANTINED`` row: still
*converged* — the device runs the published sequence, the sick workload
is contained — but visibly flagged instead of silently green.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.engine import HostingEngine
from repro.deploy.fleet import Fleet, FleetDevice, HealthGate
from repro.deploy.spec import DeploymentSpec
from repro.net import coap
from repro.net.coap import CoapMessage
from repro.net.gcoap import CoapClient, CoapServer
from repro.net.link import Interface, Link
from repro.net.udp import UdpStack
from repro.rtos.energy import EnergyMeter
from repro.rtos.kernel import Kernel
from repro.suit import ed25519
from repro.suit.specworker import SpecUpdateWorker
from repro.suit.worker import UpdateResult, UpdateStatus
from repro.vm.imagecache import IMAGE_CACHE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deploy.chaos import FaultInjector

MAINTAINER_ADDR = "2001:db8::maint"
DEVICE_ADDR_TEMPLATE = "2001:db8::dev{index}"
COAP_PORT = 5683
TRIGGER_PATH = "/suit/trigger"

#: App-level trigger retry: first re-POST after this backhaul-clock
#: delay, doubling per attempt up to the cap.  This sits *on top of* the
#: CoAP layer's own CON retransmissions — it covers the cases those
#: cannot: a device that rebooted (new radio incarnation) or stayed dark
#: past the whole CoAP exchange lifetime.
TRIGGER_RETRY_BASE_US = 2_000_000.0
TRIGGER_RETRY_CAP_US = 16_000_000.0
MAX_TRIGGER_ATTEMPTS = 8

#: Worker statuses worth a re-trigger: transient transport outcomes, not
#: policy refusals.  A re-triggered fetch resumes from the NVM
#: checkpoint, so retries get monotonically cheaper.
RETRYABLE_STATUSES = (UpdateStatus.FETCH_FAILED,)


@dataclass
class DeviceRadio:
    """One fleet device's end of the shared link."""

    addr: str
    iface: Interface
    udp: UdpStack
    server: CoapServer
    client: CoapClient
    worker: SpecUpdateWorker


@dataclass
class DevicePublish:
    """Accounting for one device's OTA convergence off one publish."""

    device: FleetDevice
    role: str
    result: UpdateResult
    wall_s: float
    cycles_charged: int
    cache_hits: int
    cache_misses: int
    #: Trigger re-POSTs this device needed beyond the first.
    retries: int = 0
    #: Power cycles this device went through during this convergence.
    reboots: int = 0
    #: Contained faults this device recorded during the convergence
    #: (summed across reboots — each reboot starts a fresh engine).
    fault_delta: int = 0
    #: Container slots the device's supervisor is holding quarantined
    #: at report time.
    quarantined: int = 0
    #: Radio energy this convergence cost the device (µJ).
    radio_uj: float = 0.0

    @property
    def ok(self) -> bool:
        """Converged: a clean reconcile, a reboot that kept the
        published sequence in NVM, or a convergence whose supervisor is
        quarantining a crash-looping slot (the *device* holds the
        published sequence; the sick workload is contained, reported,
        and does not block the rest of the fleet)."""
        return (self.result.ok
                or self.result.status is UpdateStatus.REBOOTED
                or self.result.status is UpdateStatus.QUARANTINED)

    @property
    def actions(self) -> int:
        """Plan actions the device's reconcile executed (0 if refused)."""
        applied = self.result.applied
        return len(applied.plan.actions) if applied is not None else 0


@dataclass
class PublishResult:
    """Outcome of one :meth:`FleetPublisher.publish`."""

    spec: DeploymentSpec
    sequence_number: int
    payload_bytes: int
    #: Per-device convergences in trigger order; on a canary publish the
    #: canary entries come first, followed by control (promotion) or
    #: rollback entries.
    devices: list[DevicePublish] = field(default_factory=list)
    #: Contained faults per canary during the bake (canary publish only).
    fault_deltas: dict[str, int] = field(default_factory=dict)
    #: Health-gate breaches per canary (canary publish only).
    health: dict[str, list[str]] = field(default_factory=dict)
    promoted: bool = False
    rolled_back: bool = False
    reason: str = ""

    @property
    def converged(self) -> bool:
        """Every triggered device reconciled OK (no refusals)."""
        return bool(self.devices) and all(row.ok for row in self.devices)

    @property
    def total_retries(self) -> int:
        return sum(row.retries for row in self.devices)

    @property
    def total_reboots(self) -> int:
        return sum(row.reboots for row in self.devices)

    def unreachable(self) -> list[DevicePublish]:
        """Devices that never reported despite every retry."""
        return [row for row in self.devices
                if row.result.status is UpdateStatus.UNREACHABLE]

    def quarantined_devices(self) -> list[DevicePublish]:
        """Devices that converged but hold quarantined container slots."""
        return [row for row in self.devices
                if row.result.status is UpdateStatus.QUARANTINED]

    @property
    def total_fault_delta(self) -> int:
        """Contained faults across the fleet during this publish."""
        return sum(row.fault_delta for row in self.devices)

    @property
    def total_radio_uj(self) -> float:
        """Radio energy the whole fleet spent converging (µJ)."""
        return sum(row.radio_uj for row in self.devices)

    def by_role(self, role: str) -> list[DevicePublish]:
        return [row for row in self.devices if row.role == role]

    def speedups(self) -> list[float]:
        """Wall speedup of each later device over the first (cold) one.

        The first triggered device's apply slice pays the cold verify +
        JIT compile; every later device converges off the same publish
        through pure image-cache hits.
        """
        rows = [row for row in self.devices if row.role != "rollback"]
        if len(rows) < 2:
            return []
        cold = rows[0].wall_s
        return [cold / max(row.wall_s, 1e-9) for row in rows[1:]]


class FleetPublisher:
    """Maintainer-side OTA publisher for one :class:`Fleet`.

    Construction wires the radio: one shared :class:`Link` (owned by a
    dedicated backhaul kernel), the maintainer repository + trigger
    client, and a full :class:`DeviceRadio` rig per fleet device
    (stored on ``device.radio``).  Sequence numbers come from one
    maintainer-wide epoch counter, which is also what makes the storage
    registry's cross-location GC horizon meaningful.
    """

    def __init__(
        self,
        fleet: Fleet,
        maintainer_seed: bytes = bytes(range(32)),
        loss: float = 0.0,
        seed: int = 1234,
        spec_uri: str = "/specs/fleet",
        slot: str = "spec:fleet",
        max_storage_slots: int | None = None,
        storage_gc_horizon: int | None = None,
        use_nvm: bool = True,
    ) -> None:
        self.fleet = fleet
        self.maintainer_seed = maintainer_seed
        self.spec_uri = spec_uri
        self.slot = slot
        self.sequence = 0
        self.kernel = Kernel()  # the maintainer/backhaul side
        self.link = Link(self.kernel, loss=loss, seed=seed)
        maint_if = self.link.attach(Interface(MAINTAINER_ADDR))
        maint_udp = UdpStack(maint_if)
        self.repo = CoapServer(self.kernel, maint_udp.socket(COAP_PORT),
                               threaded=False, name="spec-repo")
        self.trigger_client = CoapClient(self.kernel,
                                         maint_udp.socket(49900))
        self.trust_anchor = ed25519.public_key(maintainer_seed)
        self._max_storage_slots = max_storage_slots
        self._storage_gc_horizon = storage_gc_horizon
        #: Fault injector driven once per converge window; ``None`` runs
        #: an undisturbed publish.
        self.chaos: "FaultInjector | None" = None
        #: Per-device trigger state (attempts, acked, next retry) keyed
        #: by device name; all timing on the backhaul clock.
        self._triggers: dict[str, dict] = {}
        for index, device in enumerate(fleet.devices):
            if use_nvm and device.nvm is None:
                device.nvm = device.kernel.board.nvm(device.kernel)
            if device.meter is None:
                device.meter = EnergyMeter(device.kernel.board)
            self._wire_device(device, index)

    # -- wire plumbing -----------------------------------------------------

    def _wire_device(self, device: FleetDevice, index: int) -> None:
        """Build one device's radio rig (initial wiring and re-wiring
        after a reboot — the NVM and energy meter persist, everything
        else is rebuilt from scratch)."""
        addr = DEVICE_ADDR_TEMPLATE.format(index=index)
        iface = self.link.attach(Interface(addr))
        udp = UdpStack(iface)
        server = CoapServer(device.kernel, udp.socket(COAP_PORT),
                            threaded=False, name=f"{device.name}-coap")
        client = CoapClient(device.kernel, udp.socket(49001))
        worker = SpecUpdateWorker(
            device.engine,
            client,
            trust_anchor=self.trust_anchor,
            repo_addr=MAINTAINER_ADDR,
            repo_port=COAP_PORT,
            max_storage_slots=self._max_storage_slots,
            storage_gc_horizon=self._storage_gc_horizon,
            nvm=device.nvm,
        )
        worker.register_trigger_resource(server, TRIGGER_PATH)
        device.radio = DeviceRadio(addr=addr, iface=iface, udp=udp,
                                   server=server, client=client,
                                   worker=worker)
        if device.meter is not None:
            device.meter.track_interface(iface)

    def device_by_name(self, name: str) -> FleetDevice:
        for device in self.fleet.devices:
            if device.name == name:
                return device
        raise KeyError(f"no fleet device named {name!r}")

    # -- crash / reboot ----------------------------------------------------

    def crash_device(self, device: FleetDevice) -> None:
        """Power-fail one device *now*: RAM gone, radio off the air.

        The interface is detached so in-flight frames land on a dead
        radio instead of leaking into the next incarnation; the NVM and
        the virtual clock (monotonic across power cycles) survive.
        """
        device.kernel.power_fail()
        if device.radio is not None:
            self.link.detach(device.radio.addr)

    def reboot_device(self, device: FleetDevice) -> None:
        """Boot a crashed device back up from its non-volatile state.

        A fresh kernel continues the device's own monotonic clock and is
        charged the boot cost; the engine and radio rig are rebuilt from
        scratch; the spec worker restores its storage registry from NVM
        and re-activates whatever was installed (the bootloader role).
        """
        index = self.fleet.devices.index(device)
        old_clock = device.kernel.clock
        board = device.kernel.board
        if device.radio is not None:
            self.link.detach(device.radio.addr)  # no-op after crash_device
        kernel = Kernel(board, clock=old_clock)
        kernel.clock.charge(board.reboot_cycles)
        device.kernel = kernel
        device.engine = HostingEngine(
            kernel, implementation=self.fleet.implementation,
            supervisor=getattr(self.fleet, "supervisor_config", True))
        device.reboots += 1
        self._wire_device(device, index)
        device.radio.worker.recover()

    def _sign(self, spec: DeploymentSpec, sequence_number: int | None,
              signer_seed: bytes | None) -> tuple[bytes, bytes, int]:
        from repro.suit.specworker import sign_spec

        if sequence_number is None:
            self.sequence += 1
            sequence_number = self.sequence
        else:
            self.sequence = max(self.sequence, sequence_number)
        envelope, payload = sign_spec(
            spec, sequence_number, self.spec_uri,
            signer_seed if signer_seed is not None else self.maintainer_seed,
            slot=self.slot,
        )
        self.repo.register_blob(self.spec_uri, lambda: payload)
        return envelope, payload, sequence_number

    def _trigger(self, devices: Sequence[FleetDevice],
                 envelope: bytes) -> None:
        """Arm per-device trigger state and fire the first POST round.

        Unacknowledged triggers are re-POSTed by :meth:`_pump_triggers`
        with exponential backoff as the converge loop runs.
        """
        now = self.kernel.now_us
        for device in devices:
            self._triggers[device.name] = {
                "envelope": envelope,
                "attempts": 0,
                "acked": False,
                "next_retry_us": now,
            }
        self._pump_triggers()

    def _retrigger(self, name: str) -> None:
        """Re-arm one device's trigger (straggler or rebooted device)."""
        state = self._triggers.get(name)
        if state is not None:
            state["acked"] = False
            state["next_retry_us"] = self.kernel.now_us

    def _pump_triggers(self) -> None:
        """POST every due, unacknowledged trigger (backhaul clock)."""
        now = self.kernel.now_us
        for name, state in self._triggers.items():
            if state["acked"] or state["attempts"] >= MAX_TRIGGER_ATTEMPTS:
                continue
            if now < state["next_retry_us"]:
                continue
            device = self.device_by_name(name)
            if device.kernel.halted or device.radio is None:
                continue  # down right now: retry once it reboots
            state["attempts"] += 1
            state["next_retry_us"] = now + min(
                TRIGGER_RETRY_BASE_US * 2 ** (state["attempts"] - 1),
                TRIGGER_RETRY_CAP_US,
            )
            request = CoapMessage(mtype=coap.CON, code=coap.POST,
                                  payload=state["envelope"])
            request.add_uri_path(TRIGGER_PATH)

            def on_response(_reply, state=state) -> None:
                state["acked"] = True

            self.trigger_client.request(
                device.radio.addr, COAP_PORT, request,
                on_response=on_response,
            )

    def _converge(
        self,
        devices: Sequence[FleetDevice],
        role: str,
        window_us: float,
        max_windows: int,
        sequence_number: int | None = None,
        spec: DeploymentSpec | None = None,
    ) -> list[DevicePublish]:
        """Co-run all kernels until every triggered worker reported.

        The backhaul kernel (which owns the link's delivery timers) and
        each still-converging device kernel advance in interleaved
        ``window_us`` slices of their own virtual clocks.  Wall time,
        cycles and image-cache traffic are attributed to a device by
        measuring around *its* kernel's slices — only one kernel runs at
        a time, so the deltas are unambiguous.

        This loop is where the publish *self-heals*: each window it
        polls the fault injector (if any), re-POSTs unacknowledged
        triggers with backoff, re-triggers devices whose fetch failed
        (they resume from the NVM checkpoint), and recognizes rebooted
        devices — one whose NVM already holds ``sequence_number`` gets a
        ``REBOOTED`` row, one that lost the update mid-flight gets
        re-triggered.  A device that never reports despite every retry
        degrades to an ``UNREACHABLE`` row instead of an exception:
        partial convergence is an answer, not an error.
        """
        state = {
            device.name: {
                "device": device,
                "worker": device.radio.worker,
                "results_before": len(device.radio.worker.results),
                "wall_s": 0.0,
                "cycles_before": device.kernel.clock.cycles,
                "reboots_before": device.reboots,
                "hits": 0,
                "misses": 0,
                # Health/energy baselines.  fault_total lives on the
                # engine, which a reboot rebuilds from scratch — so the
                # accumulator banks the old engine's count whenever the
                # engine identity changes (the meter survives reboots and
                # is already cumulative).
                "engine": device.engine,
                "faults_before": device.engine.fault_total,
                "faults_accum": 0,
                "radio_before": (device.meter.report().radio_uj
                                 if device.meter is not None else 0.0),
            }
            for device in devices
        }
        pending = {device.name for device in devices}
        rows: list[DevicePublish] = []

        def fault_delta(device: FleetDevice, entry: dict) -> int:
            engine = device.engine
            if engine is not entry["engine"]:
                entry["faults_accum"] += (entry["engine"].fault_total
                                          - entry["faults_before"])
                entry["engine"] = engine
                entry["faults_before"] = engine.fault_total
            return (entry["faults_accum"] + engine.fault_total
                    - entry["faults_before"])

        def finish(device: FleetDevice, entry: dict,
                   result: UpdateResult) -> None:
            pending.discard(device.name)
            trigger = self._triggers.get(device.name, {})
            supervisor = device.engine.supervisor
            rows.append(DevicePublish(
                device=device,
                role=role,
                result=result,
                wall_s=entry["wall_s"],
                cycles_charged=(device.kernel.clock.cycles
                                - entry["cycles_before"]),
                cache_hits=entry["hits"],
                cache_misses=entry["misses"],
                retries=max(0, trigger.get("attempts", 1) - 1),
                reboots=device.reboots - entry["reboots_before"],
                fault_delta=fault_delta(device, entry),
                quarantined=(len(supervisor.quarantined_slots())
                             if supervisor is not None else 0),
                radio_uj=(device.meter.report().radio_uj
                          - entry["radio_before"]
                          if device.meter is not None else 0.0),
            ))
            if rows[-1].ok and spec is not None:
                # Per-device rollback baseline: this device now runs
                # ``spec`` regardless of what the rest of the fleet does.
                device.current_spec = spec

        def holds_sequence(worker) -> bool:
            return (sequence_number is not None
                    and worker.storage.highest_sequence(self.slot)
                    >= sequence_number)

        for _ in range(max_windows):
            if self.chaos is not None:
                self.chaos.poll(self)
            self._pump_triggers()
            target_us = self.kernel.now_us + window_us
            self.kernel.run(until_us=target_us)
            if self.kernel.now_us < target_us:
                # An idle backhaul (no in-flight frames, no pending CoAP
                # retransmits) must still move through time: the retry
                # backoff and the injector's reboot deadlines live on
                # this clock.
                self.kernel.clock.advance_to(
                    self.kernel.clock.us_to_cycles(target_us))
            for device in devices:
                if device.name not in pending:
                    continue
                entry = state[device.name]
                worker = device.radio.worker
                if worker is not entry["worker"]:
                    # The device power-cycled: fresh kernel, fresh
                    # worker, storage restored from NVM.
                    entry["worker"] = worker
                    entry["results_before"] = len(worker.results)
                    if holds_sequence(worker):
                        # The install hit flash before the lights went
                        # out; recovery re-activated it.  Converged.
                        finish(device, entry, UpdateResult(
                            UpdateStatus.REBOOTED,
                            "power-cycled mid-publish; NVM held sequence "
                            f"{sequence_number}, recovery re-activated it",
                        ))
                        continue
                    self._retrigger(device.name)
                if device.kernel.halted:
                    continue  # crashed and not yet rebooted
                if (self.chaos is not None
                        and self.chaos.stalled(device.name)):
                    continue  # wedged: gets no scheduling this window
                hits_before = IMAGE_CACHE.hits
                misses_before = IMAGE_CACHE.misses
                start = time.perf_counter()
                device.kernel.run(
                    until_us=device.kernel.now_us + window_us)
                entry["wall_s"] += time.perf_counter() - start
                entry["hits"] += IMAGE_CACHE.hits - hits_before
                entry["misses"] += IMAGE_CACHE.misses - misses_before
                while len(worker.results) > entry["results_before"]:
                    # Take the *first* unseen result for THIS publish: a
                    # duplicate trigger (lost ACK, app-level re-POST)
                    # appends a bonus SEQUENCE_REPLAY after the real
                    # outcome, and a backlogged re-trigger from an
                    # *earlier* publish can drain late — its verdict is
                    # about that sequence, not this one.
                    result = worker.results[entry["results_before"]]
                    entry["results_before"] += 1
                    if (sequence_number is not None
                            and result.manifest is not None
                            and result.manifest.sequence_number
                            != sequence_number):
                        continue  # stale: keep scanning
                    trigger = self._triggers.get(device.name, {})
                    if (result.status in RETRYABLE_STATUSES
                            and trigger.get("attempts", 0)
                            < MAX_TRIGGER_ATTEMPTS):
                        # Transient failure: re-trigger; the fetch
                        # resumes from the checkpointed block.
                        self._retrigger(device.name)
                        break
                    if (result.status is UpdateStatus.SEQUENCE_REPLAY
                            and device.reboots > entry["reboots_before"]
                            and holds_sequence(worker)):
                        # The re-trigger of a rebooted device raced its
                        # recovery: the refusal *is* proof it converged.
                        result = UpdateResult(
                            UpdateStatus.REBOOTED,
                            "rebooted with the published sequence in "
                            "NVM; replay refusal confirms convergence",
                        )
                    finish(device, entry, result)
                    break
            if not pending:
                break
        for name in sorted(pending):
            entry = state[name]
            finish(entry["device"], entry, UpdateResult(
                UpdateStatus.UNREACHABLE,
                f"no report within {max_windows} windows of "
                f"{window_us:.0f} us despite "
                f"{self._triggers.get(name, {}).get('attempts', 0)} "
                "trigger attempts",
            ))
        return rows

    def _mark_quarantined(self, result: PublishResult) -> PublishResult:
        """Fold end-of-publish supervisor state into the device rows.

        A device's supervisor may quarantine a crash-looping slot *after*
        its convergence row was finished — a finished device's clock
        freezes only for the publisher; its own bake/chaos windows keep
        running.  This final pass re-samples every row's device: rows
        whose device holds quarantined slots are upgraded from
        ``OK``/``REBOOTED`` to ``QUARANTINED`` (still counted as
        converged — the device runs the published sequence; the sick
        workload is contained and named in the message).
        """
        for row in result.devices:
            supervisor = getattr(row.device.engine, "supervisor", None)
            if supervisor is None:
                continue
            slots = supervisor.quarantined_slots()
            row.quarantined = len(slots)
            if slots and row.result.status in (UpdateStatus.OK,
                                               UpdateStatus.REBOOTED):
                names = ", ".join(f"{hook}/{name}" for hook, name in slots)
                row.result = UpdateResult(
                    UpdateStatus.QUARANTINED,
                    f"converged, but the supervisor quarantined {names} "
                    "as crash-looping",
                    manifest=row.result.manifest,
                    container=row.result.container,
                    applied=row.result.applied,
                    duration_us=row.result.duration_us,
                )
        return result

    # -- the publish -------------------------------------------------------

    def publish(
        self,
        spec: DeploymentSpec,
        sequence_number: int | None = None,
        signer_seed: bytes | None = None,
        canary_count: int | None = None,
        health_gate: HealthGate | None = None,
        bake_us: float = 2_000_000.0,
        bake_fires: int = 0,
        bake_hooks: Sequence[str] | None = None,
        bake_context: bytes | None = None,
        window_us: float = 20_000.0,
        max_windows: int = 4000,
    ) -> PublishResult:
        """Sign ``spec`` once and fan it out to the fleet over the radio.

        Without ``canary_count`` every device is triggered at once off
        the one envelope.  With it, the publish is health-gated: only
        the first ``canary_count`` devices are triggered; after they
        converge they are baked (``bake_us`` virtual microseconds each,
        plus ``bake_fires`` explicit firings of the spec's hooks) and
        judged against ``health_gate`` (default: zero contained faults).
        A healthy bake triggers the remaining devices with the *same*
        envelope — their applies ride the canary-warmed image cache; an
        unhealthy one publishes the fleet baseline back to the canaries
        under the next sequence number and leaves the rest untouched.

        Anti-rollback holds per device: a ``sequence_number`` at or
        below a device's stored sequence is refused by that device
        (``SEQUENCE_REPLAY``) without any payload fetch.
        """
        fleet = self.fleet
        envelope, payload, sequence_number = self._sign(
            spec, sequence_number, signer_seed)
        result = PublishResult(spec=spec, sequence_number=sequence_number,
                               payload_bytes=len(payload))

        if canary_count is None:
            self._trigger(fleet.devices, envelope)
            result.devices = self._converge(fleet.devices, "device",
                                            window_us, max_windows,
                                            sequence_number=sequence_number,
                                            spec=spec)
            if result.converged:
                fleet.current_spec = spec
                result.reason = (f"{len(result.devices)} devices "
                                 "reconciled off one publish")
            else:
                unreachable = sorted(row.device.name
                                     for row in result.unreachable())
                refused = sorted(
                    row.device.name for row in result.devices
                    if not row.ok
                    and row.result.status is not UpdateStatus.UNREACHABLE)
                parts = []
                if refused:
                    parts.append(f"refused by {', '.join(refused)}")
                if unreachable:
                    parts.append(f"unreachable: {', '.join(unreachable)}")
                result.reason = "; ".join(parts)
            return self._mark_quarantined(result)

        if not 1 <= canary_count <= len(fleet.devices):
            raise ValueError(
                f"canary_count {canary_count} outside 1..{len(fleet.devices)}"
            )
        if health_gate is None:
            health_gate = HealthGate()
        canaries = fleet.devices[:canary_count]
        rest = fleet.devices[canary_count:]
        baseline = fleet.current_spec
        if baseline is None:
            baseline = fleet._rollback_baseline(spec, canaries)
        # Per-device baselines, captured *before* anything is triggered:
        # a heterogeneous fleet (devices converged onto different specs
        # by earlier publishes or direct applies) must roll each device
        # back to *its own* prior spec, not one fleet-wide guess.
        prior_specs = {device.name: device.current_spec
                       for device in fleet.devices}

        def publish_rollback(reason: str,
                             targets: Sequence[FleetDevice]) -> PublishResult:
            """OTA rollback: each device's *own* prior spec goes out as a
            *new* sequence (anti-rollback forbids re-announcing an old
            one) and only to the devices that converged on the bad spec —
            a control that was never triggered is never touched.  Devices
            sharing a baseline share one signed envelope; each distinct
            baseline gets its own envelope and sequence number."""
            result.rolled_back = True
            result.reason = reason
            groups: list[tuple[DeploymentSpec, list[FleetDevice]]] = []
            for device in targets:
                target_spec = prior_specs.get(device.name) or baseline
                for grouped_spec, members in groups:
                    if grouped_spec is target_spec:
                        members.append(device)
                        break
                else:
                    groups.append((target_spec, [device]))
            for target_spec, members in groups:
                rollback_envelope, _, rollback_seq = self._sign(
                    target_spec, None, None)
                self._trigger(members, rollback_envelope)
                result.devices.extend(self._converge(
                    members, "rollback", window_us, max_windows,
                    sequence_number=rollback_seq, spec=target_spec))
            return self._mark_quarantined(result)

        # 1. Canary: trigger and converge the subset only.
        self._trigger(canaries, envelope)
        canary_rows = self._converge(canaries, "canary", window_us,
                                     max_windows,
                                     sequence_number=sequence_number,
                                     spec=spec)
        result.devices = canary_rows
        refused = sorted(row.device.name for row in canary_rows
                         if not row.ok)
        if refused:
            # A refused spec (replay, bad signature, rejected apply)
            # never changed the refusing device — the worker's pipeline
            # and the transactional apply guarantee that.  Canaries that
            # *did* accept it, however, now run an unbaked spec and must
            # be taken back to the baseline over the air.
            accepted = [row.device for row in canary_rows if row.ok]
            if accepted:
                return publish_rollback(
                    f"refused by canaries {', '.join(refused)}", accepted)
            result.rolled_back = True
            result.reason = (f"refused by canaries {', '.join(refused)}; "
                             "devices unchanged")
            return self._mark_quarantined(result)

        # 2. Bake + health gate, exactly as the direct canary rollout.
        result.fault_deltas, result.health = fleet._bake_and_gate(
            canaries, rest, spec, bake_us, bake_fires, bake_hooks,
            bake_context, health_gate,
        )
        unhealthy = {name: problems
                     for name, problems in result.health.items() if problems}
        if unhealthy:
            return publish_rollback(
                "health gate: " + "; ".join(
                    f"{name}: {', '.join(problems)}"
                    for name, problems in sorted(unhealthy.items())
                ),
                canaries,
            )

        # 3. Promote: the rest of the fleet rides the warmed cache.
        self._trigger(rest, envelope)
        control_rows = self._converge(rest, "control", window_us,
                                      max_windows,
                                      sequence_number=sequence_number,
                                      spec=spec)
        result.devices.extend(control_rows)
        refused = sorted(row.device.name for row in control_rows
                         if not row.ok)
        if refused:
            # Take the whole fleet back: canaries plus every control
            # that did accept the spec, so it never stays half-promoted.
            promoted_ok = [row.device for row in control_rows if row.ok]
            return publish_rollback(
                f"promotion refused by {', '.join(refused)}",
                list(canaries) + promoted_ok)
        result.promoted = True
        result.reason = (
            f"{len(canaries)} canaries baked {bake_us:.0f} us healthy, "
            f"{len(rest)} devices promoted"
        )
        fleet.current_spec = spec
        return self._mark_quarantined(result)
