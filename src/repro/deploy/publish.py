"""Fleet-wide OTA publish: one signed spec fanned out over the radio.

PR 4 closed the loop from signed spec to *single-device* reconciliation
(:class:`~repro.suit.specworker.SpecUpdateWorker`), but the fleet still
converged by the simulator reaching into each engine.  This module adds
the missing radio path: a :class:`FleetPublisher` wires every
:class:`~repro.deploy.fleet.FleetDevice` with a radio rig — an interface
on one **shared broadcast link**, a device-side gcoap server exposing the
worker's ``/suit/trigger`` endpoint, a CoAP client for the block-wise
payload fetch, and a per-device ``SpecUpdateWorker`` — plus a
maintainer-side repository serving the spec payload.

:meth:`FleetPublisher.publish` then signs **one** manifest (one COSE
envelope, one canonical CBOR payload) and POSTs it to every device's
trigger endpoint.  Each device independently authenticates the envelope,
enforces *its own* anti-rollback sequence, fetches the payload block-wise
from the repository, and reconciles itself through ``plan``/``apply`` —
so one publish produces N per-device convergences.  The wire payload is
one; the *host-side* verify and JIT compile are also one, because every
device's apply resolves through the content-addressed
:data:`~repro.vm.imagecache.IMAGE_CACHE` — device 1 pays the cold
compile in its apply slice and devices 2..N ride it (the
``BENCH_publish.json`` guard holds that at >=5x).

Each device keeps its **own virtual clock**, as everywhere in the fleet
layer: the signature check, the SHA-256 digest, and the full modelled
verify+install cost are charged per device, cold or cached.  The
maintainer runs on a separate backhaul kernel that owns the link's
airtime timers; :meth:`FleetPublisher.publish` co-runs all kernels in
small interleaved windows until every triggered worker reported.

With ``canary_count`` the publish is staged like
:meth:`~repro.deploy.fleet.Fleet.canary_rollout`, but entirely over the
radio: trigger the canaries, bake them, judge them against a
:class:`~repro.deploy.fleet.HealthGate`, and only then trigger the rest
of the fleet.  An unhealthy bake publishes each canary's *own* prior
spec back to it — under a **new, higher** sequence number, because
anti-rollback forbids re-announcing an old one; devices sharing a
baseline share one signed envelope — and never touches the control
devices at all.

Since PR 7 every row also carries the device's health/energy telemetry
(contained-fault delta, quarantined slot count, radio energy), and a
device whose :class:`~repro.vm.supervisor.ContainerSupervisor`
quarantined a crash-looping slot reports a ``QUARANTINED`` row: still
*converged* — the device runs the published sequence, the sick workload
is contained — but visibly flagged instead of silently green.
"""

from __future__ import annotations

import random
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from repro.core.engine import HostingEngine
from repro.deploy.fleet import Fleet, FleetDevice, HealthGate
from repro.deploy.results import FleetResult
from repro.deploy.shards import ShardExecutor
from repro.deploy.spec import DeploymentSpec
from repro.net import coap
from repro.net.coap import CoapMessage
from repro.net.gcoap import CoapClient, CoapServer
from repro.net.link import Interface, Link
from repro.net.udp import UdpStack
from repro.rtos.energy import EnergyMeter
from repro.rtos.kernel import Kernel
from repro.suit import cbor, ed25519
from repro.suit.specworker import SpecUpdateWorker
from repro.suit.worker import UpdateResult, UpdateStatus
from repro.vm.imagecache import IMAGE_CACHE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deploy.chaos import FaultInjector

MAINTAINER_ADDR = "2001:db8::maint"
DEVICE_ADDR_TEMPLATE = "2001:db8::dev{index}"
COAP_PORT = 5683
TRIGGER_PATH = "/suit/trigger"

#: RFC 7390-style CoAP group address every fleet device joins at wiring
#: time; one NON POST here reaches the whole fleet in one airtime cost.
GROUP_ADDR = "ff15::fleet:all"
#: Device-side resource the multicast trigger lands on.
MCAST_TRIGGER_PATH = "/suit/mtrigger"
#: Maintainer-side resource the suppressed ack sample lands on.
ACK_PATH = "/fleet/ack"

#: App-level trigger retry: first re-POST after this backhaul-clock
#: delay, doubling per attempt up to the cap.  This sits *on top of* the
#: CoAP layer's own CON retransmissions — it covers the cases those
#: cannot: a device that rebooted (new radio incarnation) or stayed dark
#: past the whole CoAP exchange lifetime.
TRIGGER_RETRY_BASE_US = 2_000_000.0
TRIGGER_RETRY_CAP_US = 16_000_000.0
MAX_TRIGGER_ATTEMPTS = 8

#: Worker statuses worth a re-trigger: transient transport outcomes, not
#: policy refusals.  A re-triggered fetch resumes from the NVM
#: checkpoint, so retries get monotonically cheaper.
RETRYABLE_STATUSES = (UpdateStatus.FETCH_FAILED,)


@dataclass(frozen=True)
class PublishOptions:
    """Every knob of one :meth:`FleetPublisher.publish`, in one place.

    The defaults reproduce the historical keyword-argument behavior
    exactly (unicast triggers, single-shard co-run, no cross-device
    decode sharing); :meth:`scale` turns on the fleet-scale path.  The
    old keyword arguments are still accepted by ``publish`` (with a
    :class:`DeprecationWarning`) and are folded into an options value.
    """

    #: Explicit sequence number (``None``: next maintainer epoch).
    sequence_number: int | None = None
    #: Signing seed overriding the maintainer's (rogue-signer tests).
    signer_seed: bytes | None = None
    #: Stage through this many canaries first (``None``: whole fleet).
    canary_count: int | None = None
    #: Canary health policy (``None``: default :class:`HealthGate`).
    health_gate: HealthGate | None = None
    #: Virtual microseconds each canary bakes for.
    bake_us: float = 2_000_000.0
    #: Explicit hook firings per canary during the bake.
    bake_fires: int = 0
    #: Hooks fired during the bake (``None``: spec's aperiodic hooks).
    bake_hooks: Sequence[str] | None = None
    #: Context bytes for bake firings.
    bake_context: bytes | None = None
    #: Virtual-time slice per co-run window.
    window_us: float = 20_000.0
    #: Convergence window budget before UNREACHABLE rows.
    max_windows: int = 4000
    #: Broadcast the trigger to the link group instead of N unicast
    #: POSTs (full-fleet publishes only — canary subsets stay unicast).
    multicast: bool = False
    #: Carry the payload inside the multicast trigger (SUIT integrated
    #: payload) so devices skip the per-device block-wise fetch.
    inline_payload: bool = True
    #: Expected size of the suppressed ack sample the maintainer hears
    #: (each device acks with probability ``ack_sample / N``).
    ack_sample: int = 8
    #: Max randomized suppression delay before an ack (RFC 7390 leisure).
    leisure_us: float = 250_000.0
    #: Backhaul-clock grace before unicast fallback re-POSTs chase
    #: devices that missed the broadcast.
    mcast_grace_us: float = 2_000_000.0
    #: Co-run shard count (``None``: auto-sized from the fleet).
    shards: int | None = 1
    #: Share one decoded envelope/spec across the target workers for
    #: this publish (wall-clock only; modelled cycles are unaffected).
    share_release: bool = False

    @classmethod
    def legacy(cls, **overrides) -> "PublishOptions":
        """The historical behavior, spelled out (the bench baseline)."""
        return cls(**{"multicast": False, "shards": 1,
                      "share_release": False, **overrides})

    @classmethod
    def scale(cls, **overrides) -> "PublishOptions":
        """The fleet-scale profile: one broadcast trigger with the
        integrated payload, auto-sized shards, shared release decode."""
        return cls(**{"multicast": True, "shards": None,
                      "share_release": True, **overrides})


@dataclass
class DeviceRadio:
    """One fleet device's end of the shared link."""

    addr: str
    iface: Interface
    udp: UdpStack
    server: CoapServer
    client: CoapClient
    worker: SpecUpdateWorker


@dataclass
class DevicePublish:
    """Accounting for one device's OTA convergence off one publish."""

    device: FleetDevice
    role: str
    result: UpdateResult
    wall_s: float
    cycles_charged: int
    cache_hits: int
    cache_misses: int
    #: Trigger re-POSTs this device needed beyond the first.
    retries: int = 0
    #: Power cycles this device went through during this convergence.
    reboots: int = 0
    #: Contained faults this device recorded during the convergence
    #: (summed across reboots — each reboot starts a fresh engine).
    fault_delta: int = 0
    #: Container slots the device's supervisor is holding quarantined
    #: at report time.
    quarantined: int = 0
    #: Radio energy this convergence cost the device (µJ).
    radio_uj: float = 0.0

    @property
    def ok(self) -> bool:
        """Converged: a clean reconcile, a reboot that kept the
        published sequence in NVM, or a convergence whose supervisor is
        quarantining a crash-looping slot (the *device* holds the
        published sequence; the sick workload is contained, reported,
        and does not block the rest of the fleet)."""
        return (self.result.ok
                or self.result.status is UpdateStatus.REBOOTED
                or self.result.status is UpdateStatus.QUARANTINED)

    @property
    def actions(self) -> int:
        """Plan actions the device's reconcile executed (0 if refused)."""
        applied = self.result.applied
        return len(applied.plan.actions) if applied is not None else 0


@dataclass
class PublishResult(FleetResult):
    """Outcome of one :meth:`FleetPublisher.publish`.

    Implements the :class:`~repro.deploy.results.FleetResult` protocol:
    ``ok`` is convergence, iteration walks the per-device rows, and
    ``speedups()`` compares later devices against the cold first one
    while excluding rollback rows.
    """

    spec: DeploymentSpec
    sequence_number: int
    payload_bytes: int
    #: Per-device convergences in trigger order; on a canary publish the
    #: canary entries come first, followed by control (promotion) or
    #: rollback entries.
    devices: list[DevicePublish] = field(default_factory=list)
    #: Contained faults per canary during the bake (canary publish only).
    fault_deltas: dict[str, int] = field(default_factory=dict)
    #: Health-gate breaches per canary (canary publish only).
    health: dict[str, list[str]] = field(default_factory=dict)
    promoted: bool = False
    rolled_back: bool = False
    reason: str = ""
    #: The fan-out trigger went over the group address (one broadcast).
    multicast: bool = False
    #: Radio bytes the maintainer spent on trigger fan-out (broadcast
    #: frame plus any unicast first-POSTs/retries), from ``LinkStats``.
    trigger_tx_bytes: int = 0
    #: Device names whose randomized suppression timer elected them into
    #: the bounded multicast ack sample.
    mcast_acks: list[str] = field(default_factory=list)

    def rows(self) -> list[DevicePublish]:
        return self.devices

    def speedup_rows(self) -> list[DevicePublish]:
        return [row for row in self.devices if row.role != "rollback"]

    @property
    def ok(self) -> bool:
        return self.converged

    @property
    def converged(self) -> bool:
        """Every triggered device reconciled OK (no refusals)."""
        return bool(self.devices) and all(row.ok for row in self.devices)

    @property
    def total_retries(self) -> int:
        return sum(row.retries for row in self.devices)

    @property
    def total_reboots(self) -> int:
        return sum(row.reboots for row in self.devices)

    def unreachable(self) -> list[DevicePublish]:
        """Devices that never reported despite every retry."""
        return [row for row in self.devices
                if row.result.status is UpdateStatus.UNREACHABLE]

    def quarantined_devices(self) -> list[DevicePublish]:
        """Devices that converged but hold quarantined container slots."""
        return [row for row in self.devices
                if row.result.status is UpdateStatus.QUARANTINED]

    @property
    def total_fault_delta(self) -> int:
        """Contained faults across the fleet during this publish."""
        return sum(row.fault_delta for row in self.devices)

    @property
    def total_radio_uj(self) -> float:
        """Radio energy the whole fleet spent converging (µJ)."""
        return sum(row.radio_uj for row in self.devices)

    def by_role(self, role: str) -> list[DevicePublish]:
        return [row for row in self.devices if row.role == role]


class FleetPublisher:
    """Maintainer-side OTA publisher for one :class:`Fleet`.

    Construction wires the radio: one shared :class:`Link` (owned by a
    dedicated backhaul kernel), the maintainer repository + trigger
    client, and a full :class:`DeviceRadio` rig per fleet device
    (stored on ``device.radio``).  Sequence numbers come from one
    maintainer-wide epoch counter, which is also what makes the storage
    registry's cross-location GC horizon meaningful.
    """

    def __init__(
        self,
        fleet: Fleet,
        maintainer_seed: bytes = bytes(range(32)),
        loss: float = 0.0,
        seed: int = 1234,
        spec_uri: str = "/specs/fleet",
        slot: str = "spec:fleet",
        max_storage_slots: int | None = None,
        storage_gc_horizon: int | None = None,
        use_nvm: bool = True,
    ) -> None:
        self.fleet = fleet
        self.maintainer_seed = maintainer_seed
        self.spec_uri = spec_uri
        self.slot = slot
        self.sequence = 0
        self.seed = seed
        self.kernel = Kernel()  # the maintainer/backhaul side
        self.link = Link(self.kernel, loss=loss, seed=seed)
        self._maint_iface = self.link.attach(Interface(MAINTAINER_ADDR))
        maint_udp = UdpStack(self._maint_iface)
        self.repo = CoapServer(self.kernel, maint_udp.socket(COAP_PORT),
                               threaded=False, name="spec-repo")
        self.trigger_client = CoapClient(self.kernel,
                                         maint_udp.socket(49900))
        #: Raw socket for group-addressed NON triggers.  Not the CoAP
        #: client: a NON request would sit in its pending table forever
        #: (no reply is ever coming back from a group).
        self._mcast_socket = maint_udp.socket(49901)
        self._mcast_mid = 1
        #: Names that answered the current broadcast's suppressed-ack
        #: lottery (the bounded sample the maintainer actually hears).
        self._mcast_acks: set[str] = set()
        #: name -> (kernel incarnation, virtual deadline us) for every
        #: scheduled-but-not-yet-fired lottery ack this publish.
        self._mcast_ack_due: dict[str, tuple[object, float]] = {}
        self._used_multicast = False
        #: Radio bytes spent on trigger fan-out this publish.
        self.trigger_tx_bytes = 0
        #: Publish-scoped decode memo handed to target workers when the
        #: options ask for release sharing (``None`` otherwise).
        self._release_cache: dict | None = None
        self.repo.register(ACK_PATH, self._handle_mcast_ack)
        self.trust_anchor = ed25519.public_key(maintainer_seed)
        self._max_storage_slots = max_storage_slots
        self._storage_gc_horizon = storage_gc_horizon
        #: Fault injector driven once per converge window; ``None`` runs
        #: an undisturbed publish.
        self.chaos: "FaultInjector | None" = None
        #: Per-device trigger state (attempts, acked, next retry) keyed
        #: by device name; all timing on the backhaul clock.
        self._triggers: dict[str, dict] = {}
        for device in fleet.devices:
            self.adopt_device(device, use_nvm=use_nvm)

    # -- wire plumbing -----------------------------------------------------

    def adopt_device(self, device: FleetDevice,
                     use_nvm: bool = True) -> None:
        """Give one registered device its radio rig (construction path,
        and the control plane's post-construction register path)."""
        if use_nvm and device.nvm is None:
            device.nvm = device.kernel.board.nvm(device.kernel)
        if device.meter is None:
            device.meter = EnergyMeter(device.kernel.board)
        self._wire_device(device, self.fleet.registry.index_of(device.name))

    def evict_device(self, name: str) -> FleetDevice:
        """Remove one device from the fleet and take it off the air."""
        device = self.fleet.registry.evict(name)
        if device.radio is not None:
            self.link.detach(device.radio.addr)
            self.link.leave(GROUP_ADDR, device.radio.addr)
        self._triggers.pop(name, None)
        return device

    def _wire_device(self, device: FleetDevice, index: int) -> None:
        """Build one device's radio rig (initial wiring and re-wiring
        after a reboot — the NVM and energy meter persist, everything
        else is rebuilt from scratch)."""
        addr = DEVICE_ADDR_TEMPLATE.format(index=index)
        iface = self.link.attach(Interface(addr))
        udp = UdpStack(iface)
        server = CoapServer(device.kernel, udp.socket(COAP_PORT),
                            threaded=False, name=f"{device.name}-coap")
        client = CoapClient(device.kernel, udp.socket(49001))
        worker = SpecUpdateWorker(
            device.engine,
            client,
            trust_anchor=self.trust_anchor,
            repo_addr=MAINTAINER_ADDR,
            repo_port=COAP_PORT,
            max_storage_slots=self._max_storage_slots,
            storage_gc_horizon=self._storage_gc_horizon,
            nvm=device.nvm,
        )
        worker.register_trigger_resource(server, TRIGGER_PATH)
        self.link.join(GROUP_ADDR, iface)
        self._register_mcast_trigger(device, server, worker)
        device.radio = DeviceRadio(addr=addr, iface=iface, udp=udp,
                                   server=server, client=client,
                                   worker=worker)
        if device.meter is not None:
            device.meter.track_interface(iface)

    def _register_mcast_trigger(self, device: FleetDevice,
                                server: CoapServer, worker) -> None:
        """Device-side half of the group trigger (RFC 7390 style).

        The broadcast body carries the signed envelope (and usually its
        integrated payload); the handler queues the update and enters
        the suppressed-ack lottery: with probability ``p/1000`` this
        device schedules a NON ack after a seeded random share of the
        leisure period — so the maintainer hears a bounded, collision-
        spread sample instead of N simultaneous replies.  Returning
        ``None`` suppresses any CoAP-layer response.
        """

        def handler(request: CoapMessage, _dg) -> None:
            try:
                body = cbor.decode(request.payload)
                envelope = body["e"]
            except Exception:
                return None  # malformed broadcast: stay silent
            worker.release_cache = self._release_cache
            worker.trigger(envelope, payload=body.get("y"))
            rng = random.Random(
                f"{self.seed}:{body.get('s', 0)}:{device.name}")
            if rng.random() * 1000 >= body.get("p", 0):
                return None  # suppressed: not in this publish's sample
            delay_us = rng.random() * body.get("l", 0)

            def send_ack() -> None:
                radio = device.radio
                if radio is None or radio.worker is not worker:
                    return  # rebooted mid-leisure: new incarnation
                ack = CoapMessage(mtype=coap.NON, code=coap.POST,
                                  payload=device.name.encode())
                ack.add_uri_path(ACK_PATH)
                ack.message_id = body.get("s", 0) & 0xFFFF
                radio.client.socket.send_to(MAINTAINER_ADDR, COAP_PORT,
                                            ack.encode())

            device.kernel.timers.set(send_ack, delay_us)
            # Remember when this device's lottery ack comes due, keyed
            # to THIS kernel incarnation: a device can converge before
            # its leisure delay elapses, and a converged device is no
            # longer scheduled by the co-run loop — the publisher
            # drains these deadlines before reporting.
            self._mcast_ack_due[device.name] = (
                device.kernel, device.kernel.now_us + delay_us)
            return None

        server.register(MCAST_TRIGGER_PATH, handler)

    def _handle_mcast_ack(self, request: CoapMessage, _dg) -> None:
        """Maintainer side of the suppressed ack sample (no reply)."""
        name = request.payload.decode("utf-8", errors="replace")
        self._mcast_acks.add(name)
        state = self._triggers.get(name)
        if state is not None:
            state["acked"] = True
        return None

    def device_by_name(self, name: str) -> FleetDevice:
        return self.fleet.registry.get(name)

    # -- crash / reboot ----------------------------------------------------

    def crash_device(self, device: FleetDevice) -> None:
        """Power-fail one device *now*: RAM gone, radio off the air.

        The interface is detached so in-flight frames land on a dead
        radio instead of leaking into the next incarnation; the NVM and
        the virtual clock (monotonic across power cycles) survive.
        """
        device.kernel.power_fail()
        if device.radio is not None:
            self.link.detach(device.radio.addr)

    def reboot_device(self, device: FleetDevice) -> None:
        """Boot a crashed device back up from its non-volatile state.

        A fresh kernel continues the device's own monotonic clock and is
        charged the boot cost; the engine and radio rig are rebuilt from
        scratch; the spec worker restores its storage registry from NVM
        and re-activates whatever was installed (the bootloader role).
        """
        index = self.fleet.registry.index_of(device.name)
        old_clock = device.kernel.clock
        board = device.kernel.board
        if device.radio is not None:
            self.link.detach(device.radio.addr)  # no-op after crash_device
        kernel = Kernel(board, clock=old_clock)
        kernel.clock.charge(board.reboot_cycles)
        device.kernel = kernel
        device.engine = HostingEngine(
            kernel, implementation=self.fleet.implementation,
            supervisor=getattr(self.fleet, "supervisor_config", True))
        device.reboots += 1
        self._wire_device(device, index)
        device.radio.worker.recover()

    def _sign(self, spec: DeploymentSpec, sequence_number: int | None,
              signer_seed: bytes | None) -> tuple[bytes, bytes, int]:
        from repro.suit.specworker import sign_spec

        if sequence_number is None:
            self.sequence += 1
            sequence_number = self.sequence
        else:
            self.sequence = max(self.sequence, sequence_number)
        envelope, payload = sign_spec(
            spec, sequence_number, self.spec_uri,
            signer_seed if signer_seed is not None else self.maintainer_seed,
            slot=self.slot,
        )
        self.repo.register_blob(self.spec_uri, lambda: payload)
        return envelope, payload, sequence_number

    def _trigger(self, devices: Sequence[FleetDevice], envelope: bytes,
                 options: PublishOptions | None = None,
                 payload: bytes | None = None,
                 sequence_number: int = 0) -> None:
        """Arm per-device trigger state and fire the first round.

        Unicast (the default): one CON POST per device now, re-POSTed by
        :meth:`_pump_triggers` with exponential backoff as the converge
        loop runs.  Multicast (``options.multicast``, full-fleet targets
        only): ONE group-addressed NON frame carries the envelope — and,
        with ``inline_payload``, the payload itself — to every device at
        one airtime cost; the broadcast counts as attempt 1 and the same
        unicast backoff path becomes the self-healing fallback for any
        device that missed it (visible as ``retries >= 1`` on its row).
        """
        if options is None:
            options = PublishOptions()
        now = self.kernel.now_us
        use_mcast = (options.multicast
                     and len(devices) == len(self.fleet.devices))
        if not use_mcast:
            if options.share_release and self._release_cache is not None:
                for device in devices:
                    if device.radio is not None:
                        device.radio.worker.release_cache = \
                            self._release_cache
            for device in devices:
                self._triggers[device.name] = {
                    "envelope": envelope,
                    "attempts": 0,
                    "acked": False,
                    "next_retry_us": now,
                }
            self._pump_triggers()
            return

        self._used_multicast = True
        self._mcast_acks.clear()
        for device in devices:
            # The broadcast is attempt 1; stragglers fall back to the
            # unicast retry path after the grace period.
            self._triggers[device.name] = {
                "envelope": envelope,
                "attempts": 1,
                "acked": False,
                "next_retry_us": now + options.mcast_grace_us,
            }
        body: dict = {
            "e": envelope,
            "s": sequence_number,
            # Each device acks with probability ack_sample/N (permille
            # on the wire), spread over the leisure period.
            "p": min(1000, options.ack_sample * 1000
                     // max(1, len(devices))),
            "l": int(options.leisure_us),
        }
        if options.inline_payload and payload is not None:
            body["y"] = payload
        message = CoapMessage(mtype=coap.NON, code=coap.POST,
                              payload=cbor.encode(body))
        message.add_uri_path(MCAST_TRIGGER_PATH)
        message.message_id = self._mcast_mid
        self._mcast_mid = (self._mcast_mid + 1) & 0xFFFF
        sent_before = self._maint_iface.stats.bytes_sent
        self._mcast_socket.send_to(GROUP_ADDR, COAP_PORT, message.encode())
        self.trigger_tx_bytes += (self._maint_iface.stats.bytes_sent
                                  - sent_before)

    def _retrigger(self, name: str) -> None:
        """Re-arm one device's trigger (straggler or rebooted device)."""
        state = self._triggers.get(name)
        if state is not None:
            state["acked"] = False
            state["next_retry_us"] = self.kernel.now_us

    def _pump_triggers(self) -> None:
        """POST every due, unacknowledged trigger (backhaul clock)."""
        now = self.kernel.now_us
        for name, state in self._triggers.items():
            if state["acked"] or state["attempts"] >= MAX_TRIGGER_ATTEMPTS:
                continue
            if now < state["next_retry_us"]:
                continue
            device = self.device_by_name(name)
            if device.kernel.halted or device.radio is None:
                continue  # down right now: retry once it reboots
            state["attempts"] += 1
            state["next_retry_us"] = now + min(
                TRIGGER_RETRY_BASE_US * 2 ** (state["attempts"] - 1),
                TRIGGER_RETRY_CAP_US,
            )
            request = CoapMessage(mtype=coap.CON, code=coap.POST,
                                  payload=state["envelope"])
            request.add_uri_path(TRIGGER_PATH)

            def on_response(_reply, state=state) -> None:
                state["acked"] = True

            sent_before = self._maint_iface.stats.bytes_sent
            self.trigger_client.request(
                device.radio.addr, COAP_PORT, request,
                on_response=on_response,
            )
            self.trigger_tx_bytes += (self._maint_iface.stats.bytes_sent
                                      - sent_before)

    def _converge(
        self,
        devices: Sequence[FleetDevice],
        role: str,
        options: PublishOptions,
        sequence_number: int | None = None,
        spec: DeploymentSpec | None = None,
    ) -> list[DevicePublish]:
        """Co-run all kernels until every triggered worker reported.

        The backhaul kernel (which owns the link's delivery timers) and
        each still-converging device kernel advance in interleaved
        ``window_us`` slices of their own virtual clocks.  Wall time,
        cycles and image-cache traffic are attributed to a device by
        measuring around *its* kernel's slices — only one kernel runs at
        a time, so the deltas are unambiguous.

        Devices are partitioned across a :class:`ShardExecutor`: a
        window skips fully-converged shards wholesale instead of probing
        every device, which is what keeps the straggler tail of a
        1,000-device publish cheap.  Sharding is wall-clock structure
        only — each pending device still gets its full virtual-time
        slice every window, in a deterministic order, so modelled cycles
        are bit-identical across any shard count (``shards=1`` *is* the
        historical flat loop).

        This loop is where the publish *self-heals*: each window it
        polls the fault injector (if any), re-POSTs unacknowledged
        triggers with backoff, re-triggers devices whose fetch failed
        (they resume from the NVM checkpoint), and recognizes rebooted
        devices — one whose NVM already holds ``sequence_number`` gets a
        ``REBOOTED`` row, one that lost the update mid-flight gets
        re-triggered.  A device that never reports despite every retry
        degrades to an ``UNREACHABLE`` row instead of an exception:
        partial convergence is an answer, not an error.
        """
        state = {
            device.name: {
                "device": device,
                "worker": device.radio.worker,
                "results_before": len(device.radio.worker.results),
                "wall_s": 0.0,
                "cycles_before": device.kernel.clock.cycles,
                "reboots_before": device.reboots,
                "hits": 0,
                "misses": 0,
                # Health/energy baselines.  fault_total lives on the
                # engine, which a reboot rebuilds from scratch — so the
                # accumulator banks the old engine's count whenever the
                # engine identity changes (the meter survives reboots and
                # is already cumulative).
                "engine": device.engine,
                "faults_before": device.engine.fault_total,
                "faults_accum": 0,
                "radio_before": (device.meter.report().radio_uj
                                 if device.meter is not None else 0.0),
            }
            for device in devices
        }
        executor = ShardExecutor(devices, options.shards)
        window_us = options.window_us
        rows: list[DevicePublish] = []

        def fault_delta(device: FleetDevice, entry: dict) -> int:
            engine = device.engine
            if engine is not entry["engine"]:
                entry["faults_accum"] += (entry["engine"].fault_total
                                          - entry["faults_before"])
                entry["engine"] = engine
                entry["faults_before"] = engine.fault_total
            return (entry["faults_accum"] + engine.fault_total
                    - entry["faults_before"])

        def finish(device: FleetDevice, entry: dict,
                   result: UpdateResult) -> None:
            executor.discard(device.name)
            trigger = self._triggers.get(device.name, {})
            if self._used_multicast and trigger:
                # A converged device never CON-acked the broadcast;
                # mark it so the fallback pump stops chasing it.
                trigger["acked"] = True
            supervisor = device.engine.supervisor
            rows.append(DevicePublish(
                device=device,
                role=role,
                result=result,
                wall_s=entry["wall_s"],
                cycles_charged=(device.kernel.clock.cycles
                                - entry["cycles_before"]),
                cache_hits=entry["hits"],
                cache_misses=entry["misses"],
                retries=max(0, trigger.get("attempts", 1) - 1),
                reboots=device.reboots - entry["reboots_before"],
                fault_delta=fault_delta(device, entry),
                quarantined=(len(supervisor.quarantined_slots())
                             if supervisor is not None else 0),
                radio_uj=(device.meter.report().radio_uj
                          - entry["radio_before"]
                          if device.meter is not None else 0.0),
            ))
            if rows[-1].ok and spec is not None:
                # Per-device rollback baseline: this device now runs
                # ``spec`` regardless of what the rest of the fleet does.
                device.current_spec = spec

        def holds_sequence(worker) -> bool:
            return (sequence_number is not None
                    and worker.storage.highest_sequence(self.slot)
                    >= sequence_number)

        for _ in range(options.max_windows):
            if self.chaos is not None:
                self.chaos.poll(self)
            self._pump_triggers()
            target_us = self.kernel.now_us + window_us
            self.kernel.run(until_us=target_us)
            if self.kernel.now_us < target_us:
                # An idle backhaul (no in-flight frames, no pending CoAP
                # retransmits) must still move through time: the retry
                # backoff and the injector's reboot deadlines live on
                # this clock.
                self.kernel.clock.advance_to(
                    self.kernel.clock.us_to_cycles(target_us))
            for device in executor.iter_pending():
                entry = state[device.name]
                worker = device.radio.worker
                if worker is not entry["worker"]:
                    # The device power-cycled: fresh kernel, fresh
                    # worker, storage restored from NVM.
                    entry["worker"] = worker
                    entry["results_before"] = len(worker.results)
                    if options.share_release:
                        worker.release_cache = self._release_cache
                    if holds_sequence(worker):
                        # The install hit flash before the lights went
                        # out; recovery re-activated it.  Converged.
                        finish(device, entry, UpdateResult(
                            UpdateStatus.REBOOTED,
                            "power-cycled mid-publish; NVM held sequence "
                            f"{sequence_number}, recovery re-activated it",
                        ))
                        continue
                    self._retrigger(device.name)
                if device.kernel.halted:
                    continue  # crashed and not yet rebooted
                if (self.chaos is not None
                        and self.chaos.stalled(device.name)):
                    continue  # wedged: gets no scheduling this window
                hits_before = IMAGE_CACHE.hits
                misses_before = IMAGE_CACHE.misses
                start = time.perf_counter()
                device.kernel.run(
                    until_us=device.kernel.now_us + window_us)
                entry["wall_s"] += time.perf_counter() - start
                entry["hits"] += IMAGE_CACHE.hits - hits_before
                entry["misses"] += IMAGE_CACHE.misses - misses_before
                while len(worker.results) > entry["results_before"]:
                    # Take the *first* unseen result for THIS publish: a
                    # duplicate trigger (lost ACK, app-level re-POST)
                    # appends a bonus SEQUENCE_REPLAY after the real
                    # outcome, and a backlogged re-trigger from an
                    # *earlier* publish can drain late — its verdict is
                    # about that sequence, not this one.
                    result = worker.results[entry["results_before"]]
                    entry["results_before"] += 1
                    if (sequence_number is not None
                            and result.manifest is not None
                            and result.manifest.sequence_number
                            != sequence_number):
                        continue  # stale: keep scanning
                    trigger = self._triggers.get(device.name, {})
                    if (result.status in RETRYABLE_STATUSES
                            and trigger.get("attempts", 0)
                            < MAX_TRIGGER_ATTEMPTS):
                        # Transient failure: re-trigger; the fetch
                        # resumes from the checkpointed block.
                        self._retrigger(device.name)
                        break
                    if (result.status is UpdateStatus.SEQUENCE_REPLAY
                            and device.reboots > entry["reboots_before"]
                            and holds_sequence(worker)):
                        # The re-trigger of a rebooted device raced its
                        # recovery: the refusal *is* proof it converged.
                        result = UpdateResult(
                            UpdateStatus.REBOOTED,
                            "rebooted with the published sequence in "
                            "NVM; replay refusal confirms convergence",
                        )
                    finish(device, entry, result)
                    break
            if not executor.pending:
                break
        for name in sorted(executor.pending):
            entry = state[name]
            finish(entry["device"], entry, UpdateResult(
                UpdateStatus.UNREACHABLE,
                f"no report within {options.max_windows} windows of "
                f"{window_us:.0f} us despite "
                f"{self._triggers.get(name, {}).get('attempts', 0)} "
                "trigger attempts",
            ))
        if self._used_multicast and self._mcast_ack_due:
            self._drain_mcast_acks(window_us)
        return rows

    def _drain_mcast_acks(self, window_us: float) -> None:
        """Fire lottery acks still pending on converged devices.

        A device that converges before its leisure delay elapses stops
        being scheduled by the co-run loop, so its ack timer would
        never fire and the maintainer's sample would under-count.  Run
        each such device's kernel to its recorded deadline (name-sorted,
        shard-independent — per-device rows were already snapshotted at
        convergence), then give the backhaul one window to deliver the
        NONs.
        """
        for name in sorted(self._mcast_ack_due):
            kernel, due = self._mcast_ack_due[name]
            if name not in self.fleet.registry:
                continue  # evicted mid-publish
            device = self.fleet.registry.get(name)
            if device.kernel is not kernel or device.kernel.halted:
                continue  # rebooted: that incarnation's timer is gone
            device.kernel.run(until_us=max(due, device.kernel.now_us) + 1.0)
        self._mcast_ack_due.clear()
        target_us = self.kernel.now_us + window_us
        self.kernel.run(until_us=target_us)
        if self.kernel.now_us < target_us:
            self.kernel.clock.advance_to(
                self.kernel.clock.us_to_cycles(target_us))

    def _mark_quarantined(self, result: PublishResult) -> PublishResult:
        """Fold end-of-publish supervisor state into the device rows.

        A device's supervisor may quarantine a crash-looping slot *after*
        its convergence row was finished — a finished device's clock
        freezes only for the publisher; its own bake/chaos windows keep
        running.  This final pass re-samples every row's device: rows
        whose device holds quarantined slots are upgraded from
        ``OK``/``REBOOTED`` to ``QUARANTINED`` (still counted as
        converged — the device runs the published sequence; the sick
        workload is contained and named in the message).

        Every publish exit funnels through here, so this is also where
        the trigger-path accounting (fan-out mode, radio bytes, the
        multicast ack sample) lands on the result.
        """
        result.multicast = self._used_multicast
        result.trigger_tx_bytes = self.trigger_tx_bytes
        result.mcast_acks = sorted(self._mcast_acks)
        for row in result.devices:
            supervisor = getattr(row.device.engine, "supervisor", None)
            if supervisor is None:
                continue
            slots = supervisor.quarantined_slots()
            row.quarantined = len(slots)
            if slots and row.result.status in (UpdateStatus.OK,
                                               UpdateStatus.REBOOTED):
                names = ", ".join(f"{hook}/{name}" for hook, name in slots)
                row.result = UpdateResult(
                    UpdateStatus.QUARANTINED,
                    f"converged, but the supervisor quarantined {names} "
                    "as crash-looping",
                    manifest=row.result.manifest,
                    container=row.result.container,
                    applied=row.result.applied,
                    duration_us=row.result.duration_us,
                )
        return result

    # -- the publish -------------------------------------------------------

    def publish(
        self,
        spec: DeploymentSpec,
        options: PublishOptions | int | None = None,
        **legacy_kwargs,
    ) -> PublishResult:
        """Sign ``spec`` once and fan it out to the fleet over the radio.

        All knobs live on :class:`PublishOptions` (``options=None`` is
        the historical default behavior; the old keyword arguments are
        still accepted with a :class:`DeprecationWarning` and folded
        in).  Without ``canary_count`` every device is triggered at once
        off the one envelope — as one group-addressed broadcast under
        ``PublishOptions.scale()``, or one CON POST per device
        otherwise.  With it, the publish is health-gated: only the first
        ``canary_count`` devices are triggered; after they converge they
        are baked (``bake_us`` virtual microseconds each, plus
        ``bake_fires`` explicit firings of the spec's hooks) and judged
        against ``health_gate`` (default: zero contained faults).  A
        healthy bake triggers the remaining devices with the *same*
        envelope — their applies ride the canary-warmed image cache; an
        unhealthy one publishes the fleet baseline back to the canaries
        under the next sequence number and leaves the rest untouched.
        Canary subsets and rollbacks always trigger unicast: a group
        broadcast cannot address a subset of the fleet.

        Anti-rollback holds per device: a ``sequence_number`` at or
        below a device's stored sequence is refused by that device
        (``SEQUENCE_REPLAY``) without any payload fetch.
        """
        if isinstance(options, int):
            # Historical positional second argument was sequence_number.
            legacy_kwargs.setdefault("sequence_number", options)
            options = None
        if legacy_kwargs:
            warnings.warn(
                "publish(**kwargs) is deprecated; pass a PublishOptions "
                f"(got {sorted(legacy_kwargs)})",
                DeprecationWarning, stacklevel=2)
            options = replace(options or PublishOptions(), **legacy_kwargs)
        if options is None:
            options = PublishOptions()
        fleet = self.fleet
        self.trigger_tx_bytes = 0
        self._used_multicast = False
        self._mcast_ack_due.clear()
        self._release_cache = {} if options.share_release else None
        envelope, payload, sequence_number = self._sign(
            spec, options.sequence_number, options.signer_seed)
        result = PublishResult(spec=spec, sequence_number=sequence_number,
                               payload_bytes=len(payload))

        if options.canary_count is None:
            self._trigger(fleet.devices, envelope, options,
                          payload=payload,
                          sequence_number=sequence_number)
            result.devices = self._converge(fleet.devices, "device",
                                            options,
                                            sequence_number=sequence_number,
                                            spec=spec)
            if result.converged:
                fleet.current_spec = spec
                result.reason = (f"{len(result.devices)} devices "
                                 "reconciled off one publish")
            else:
                unreachable = sorted(row.device.name
                                     for row in result.unreachable())
                refused = sorted(
                    row.device.name for row in result.devices
                    if not row.ok
                    and row.result.status is not UpdateStatus.UNREACHABLE)
                parts = []
                if refused:
                    parts.append(f"refused by {', '.join(refused)}")
                if unreachable:
                    parts.append(f"unreachable: {', '.join(unreachable)}")
                result.reason = "; ".join(parts)
            return self._mark_quarantined(result)

        canary_count = options.canary_count
        if not 1 <= canary_count <= len(fleet.devices):
            raise ValueError(
                f"canary_count {canary_count} outside 1..{len(fleet.devices)}"
            )
        health_gate = options.health_gate
        if health_gate is None:
            health_gate = HealthGate()
        canaries = fleet.devices[:canary_count]
        rest = fleet.devices[canary_count:]
        baseline = fleet.current_spec
        if baseline is None:
            baseline = fleet._rollback_baseline(spec, canaries)
        # Per-device baselines, captured *before* anything is triggered:
        # a heterogeneous fleet (devices converged onto different specs
        # by earlier publishes or direct applies) must roll each device
        # back to *its own* prior spec, not one fleet-wide guess.
        prior_specs = {device.name: device.current_spec
                       for device in fleet.devices}

        def publish_rollback(reason: str,
                             targets: Sequence[FleetDevice]) -> PublishResult:
            """OTA rollback: each device's *own* prior spec goes out as a
            *new* sequence (anti-rollback forbids re-announcing an old
            one) and only to the devices that converged on the bad spec —
            a control that was never triggered is never touched.  Devices
            sharing a baseline share one signed envelope; each distinct
            baseline gets its own envelope and sequence number."""
            result.rolled_back = True
            result.reason = reason
            groups: list[tuple[DeploymentSpec, list[FleetDevice]]] = []
            for device in targets:
                target_spec = prior_specs.get(device.name) or baseline
                for grouped_spec, members in groups:
                    if grouped_spec is target_spec:
                        members.append(device)
                        break
                else:
                    groups.append((target_spec, [device]))
            for target_spec, members in groups:
                rollback_envelope, rollback_payload, rollback_seq = \
                    self._sign(target_spec, None, None)
                self._trigger(members, rollback_envelope, options,
                              payload=rollback_payload,
                              sequence_number=rollback_seq)
                result.devices.extend(self._converge(
                    members, "rollback", options,
                    sequence_number=rollback_seq, spec=target_spec))
            return self._mark_quarantined(result)

        # 1. Canary: trigger and converge the subset only.
        self._trigger(canaries, envelope, options,
                      sequence_number=sequence_number)
        canary_rows = self._converge(canaries, "canary", options,
                                     sequence_number=sequence_number,
                                     spec=spec)
        result.devices = canary_rows
        refused = sorted(row.device.name for row in canary_rows
                         if not row.ok)
        if refused:
            # A refused spec (replay, bad signature, rejected apply)
            # never changed the refusing device — the worker's pipeline
            # and the transactional apply guarantee that.  Canaries that
            # *did* accept it, however, now run an unbaked spec and must
            # be taken back to the baseline over the air.
            accepted = [row.device for row in canary_rows if row.ok]
            if accepted:
                return publish_rollback(
                    f"refused by canaries {', '.join(refused)}", accepted)
            result.rolled_back = True
            result.reason = (f"refused by canaries {', '.join(refused)}; "
                             "devices unchanged")
            return self._mark_quarantined(result)

        # 2. Bake + health gate, exactly as the direct canary rollout.
        result.fault_deltas, result.health = fleet._bake_and_gate(
            canaries, rest, spec, options.bake_us, options.bake_fires,
            options.bake_hooks, options.bake_context, health_gate,
        )
        unhealthy = {name: problems
                     for name, problems in result.health.items() if problems}
        if unhealthy:
            return publish_rollback(
                "health gate: " + "; ".join(
                    f"{name}: {', '.join(problems)}"
                    for name, problems in sorted(unhealthy.items())
                ),
                canaries,
            )

        # 3. Promote: the rest of the fleet rides the warmed cache.
        self._trigger(rest, envelope, options,
                      sequence_number=sequence_number)
        control_rows = self._converge(rest, "control", options,
                                      sequence_number=sequence_number,
                                      spec=spec)
        result.devices.extend(control_rows)
        refused = sorted(row.device.name for row in control_rows
                         if not row.ok)
        if refused:
            # Take the whole fleet back: canaries plus every control
            # that did accept the spec, so it never stays half-promoted.
            promoted_ok = [row.device for row in control_rows if row.ok]
            return publish_rollback(
                f"promotion refused by {', '.join(refused)}",
                list(canaries) + promoted_ok)
        result.promoted = True
        result.reason = (
            f"{len(canaries)} canaries baked {options.bake_us:.0f} us "
            f"healthy, {len(rest)} devices promoted"
        )
        fleet.current_spec = spec
        return self._mark_quarantined(result)
