"""Declarative deployment specifications (the "spec" of spec → plan → apply).

A :class:`DeploymentSpec` describes the *desired* state of one device —
which tenants exist, which content-addressed application images are
available, and which container instances (image + contract + hook) should
be attached — without saying anything about how to get there.  The
reconciler in :mod:`repro.deploy.plan` diffs a spec against a live
:class:`~repro.core.engine.HostingEngine` and emits the minimal ordered
action list that converges the device; :func:`repro.deploy.plan.apply`
executes it transactionally.

Images are stored *encoded* (text bytes plus data sections — exactly the
payload a SUIT manifest ships), and every install decodes a fresh
:class:`~repro.vm.program.Program` from those bytes.  All sharing of
verify reports and JIT templates therefore goes through the content hash
(:attr:`ImageSpec.image_hash`), never Python object identity: re-reading
the same spec from JSON, or re-building it from an equal program, plans
to zero actions.

Specs are JSON round-trippable (``DeploymentSpec.to_json``/``from_json``)
so ``python -m repro deploy my-spec.json`` can drive a device from a
file; a few :func:`builtin_spec` names cover the paper's canonical
systems (the §8.3 / Fig 5 multi-tenant device and the image fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Mapping

from repro.core.hooks import (
    FC_HOOK_COAP,
    FC_HOOK_FANOUT,
    FC_HOOK_SCHED,
    FC_HOOK_TIMER,
    HookMode,
)
from repro.core.policy import ContainerContract, HookPolicy, MemoryGrant
from repro.vm.memory import Permission
from repro.vm.program import Program


class SpecError(Exception):
    """The deployment spec is internally inconsistent."""


# -- images -------------------------------------------------------------------


@dataclass(frozen=True)
class ImageSpec:
    """One content-addressed application image.

    Holds the encoded text section plus the data sections — the bytes a
    SUIT payload carries — so an image in a spec is exactly as immutable
    as the flash slot it models.  :meth:`instantiate` decodes a *fresh*
    :class:`Program` per container instance; the process-wide image cache
    recognises instances by :attr:`image_hash`, not object identity.
    """

    name: str
    text: bytes
    rodata: bytes = b""
    data: bytes = b""
    #: Which container runtime decodes/hosts these bytes.  Tag-less
    #: specs (everything before runtimes were a spec dimension) are rBPF.
    runtime: str = "rbpf"

    @classmethod
    def from_program(cls, program: Program, name: str | None = None) -> "ImageSpec":
        return cls(name=name or program.name, text=program.to_bytes(),
                   rodata=program.rodata, data=program.data)

    @classmethod
    def from_wasm(cls, source, name: str = "wasm-app") -> "ImageSpec":
        """A mini-wasm image from wat-lite text, a Module or raw bytes."""
        from repro.runtimes.wasm.module import Module

        if isinstance(source, Module):
            payload = source.encode()
        elif isinstance(source, (bytes, bytearray)):
            payload = bytes(source)
        else:
            from repro.runtimes.wasm.asm import assemble

            payload = assemble(source).encode()
        return cls(name=name, text=payload, runtime="wasm")

    @classmethod
    def from_script(cls, source, name: str = "script-app") -> "ImageSpec":
        """A script image from source text (the payload *is* the source)."""
        payload = (source.encode("utf-8") if isinstance(source, str)
                   else bytes(source))
        return cls(name=name, text=payload, runtime="script")

    def instantiate(self, name: str | None = None):
        """Decode a fresh image instance (the per-instance RAM copy).

        For rBPF this returns a new :class:`Program` whose slot list is
        decoded once per image and shared — the slots are frozen value
        objects, so sharing is as safe as sharing the bytes — with the
        content-hash cache pre-seeded so attaching N instances neither
        re-decodes nor re-hashes the image.  Non-rBPF images decode
        through their registered runtime.
        """
        if self.runtime != "rbpf":
            from repro.runtimes.base import container_runtime

            return container_runtime(self.runtime).decode(
                self.text, name=name or self.name,
                rodata=self.rodata, data=self.data,
            )
        program = Program(slots=list(self._slots), rodata=self.rodata,
                          data=self.data, name=name or self.name)
        program.seed_hash_cache(self.image_hash)
        return program

    @cached_property
    def _slots(self) -> list:
        from repro.vm.instruction import decode_program

        return decode_program(self.text)

    @cached_property
    def image_hash(self) -> str:
        """Content hash — identical to the installed instances' hashes.

        Runtime-tagged for non-rBPF images: the same bytes under two
        runtimes are two distinct images (rBPF keeps its historical
        untagged hash, so existing content addressing is unchanged).
        """
        if self.runtime != "rbpf":
            from repro.runtimes.base import container_runtime

            return container_runtime(self.runtime).image_hash(
                self.text, self.rodata, self.data)
        return Program.from_bytes(self.text, rodata=self.rodata,
                                  data=self.data, name=self.name).image_hash

    def to_json(self) -> dict:
        doc: dict = {"hex": self.text.hex()}
        if self.name:
            doc["name"] = self.name
        if self.rodata:
            doc["rodata_hex"] = self.rodata.hex()
        if self.data:
            doc["data_hex"] = self.data.hex()
        if self.runtime != "rbpf":
            # Pure-rBPF specs stay byte-identical to the pre-runtime
            # wire format (their CBOR digests and signatures hold).
            doc["runtime"] = self.runtime
        return doc

    @classmethod
    def from_json(cls, name: str, doc: dict) -> "ImageSpec":
        """Accepts ``hex`` (canonical), ``asm``/``wat``/``source`` text
        or a ``workload`` name; ``runtime`` defaults to rBPF."""
        name = doc.get("name", name)
        runtime = doc.get("runtime", "rbpf")
        if "workload" in doc:
            return cls.from_program(_workload_program(doc["workload"]),
                                    name=name)
        if "wat" in doc:
            return cls.from_wasm(doc["wat"], name=name)
        if "source" in doc:
            return cls.from_script(doc["source"], name=name)
        if "asm" in doc:
            from repro.vm import assemble

            return cls.from_program(assemble(doc["asm"], name=name), name=name)
        if "hex" in doc:
            return cls(
                name=name,
                text=bytes.fromhex(doc["hex"]),
                rodata=bytes.fromhex(doc.get("rodata_hex", "")),
                data=bytes.fromhex(doc.get("data_hex", "")),
                runtime=runtime,
            )
        raise SpecError(
            f"image {name!r} needs one of 'hex', 'asm', 'wat', "
            "'source' or 'workload'"
        )


def _workload_program(name: str) -> Program:
    from repro.workloads import (
        coap_handler_program,
        fletcher32_program,
        sensor_program,
        thread_counter_program,
    )

    factories: dict[str, Callable[[], Program]] = {
        "thread-counter": thread_counter_program,
        "sensor": sensor_program,
        "coap-handler": coap_handler_program,
        "fletcher32": fletcher32_program,
    }
    try:
        return factories[name]()
    except KeyError:
        raise SpecError(
            f"unknown workload image {name!r}; "
            f"choose from {sorted(factories)}"
        ) from None


# -- hooks and attachments ----------------------------------------------------


@dataclass(frozen=True)
class HookSpec:
    """A launchpad the spec expects compiled into the firmware.

    Default firmware pads (timer, CoAP, sched, ...) never need declaring;
    a spec lists a hook only when it relies on an extra debug-build pad
    (e.g. the fan-out hook) that the reconciler must register first.
    """

    name: str
    mode: HookMode = HookMode.SYNC

    def to_json(self) -> dict:
        return {"name": self.name, "mode": self.mode.value}

    @classmethod
    def from_json(cls, doc: dict) -> "HookSpec":
        return cls(name=doc["name"], mode=HookMode(doc.get("mode", "sync")))


@dataclass(frozen=True)
class AttachmentSpec:
    """Desired container instances of one image on one hook.

    ``count`` stamps N instances from the same image; ``name`` may embed
    ``{i}`` for the instance index (a bare name with ``count > 1`` gets
    ``-{i}`` appended).  ``period_us`` declares the §8.3 timer pattern —
    the reconciler arms a periodic firing of the hook immediately after
    the install, so a spec fully describes a self-driving sensor pipeline.

    ``tenant_policies`` maps tenant names to the per-tenant
    :class:`HookPolicy` overrides the attachment's hook should carry (the
    §11 Hook extension; the OS-side ceiling the grant intersection uses).
    The reconciler diffs them against the live hook and re-installs
    affected slots, so a policy edit in the spec re-grants running
    containers under the new ceiling.
    """

    image: str
    hook: str
    tenant: str | None = None
    name: str | None = None
    count: int = 1
    contract: ContainerContract = field(default_factory=ContainerContract)
    period_us: float | None = None
    tenant_policies: Mapping[str, HookPolicy] = field(default_factory=dict)

    def instance_names(self) -> list[str]:
        base = self.name or self.image
        if self.count == 1 and "{i}" not in base:
            return [base]
        template = base if "{i}" in base else base + "-{i}"
        return [template.format(i=index) for index in range(self.count)]

    def to_json(self) -> dict:
        doc: dict = {"image": self.image, "hook": self.hook}
        if self.tenant is not None:
            doc["tenant"] = self.tenant
        if self.name is not None:
            doc["name"] = self.name
        if self.count != 1:
            doc["count"] = self.count
        if self.contract != ContainerContract():
            doc["contract"] = _contract_to_json(self.contract)
        if self.period_us is not None:
            doc["period_us"] = self.period_us
        if self.tenant_policies:
            doc["tenant_policies"] = {
                tenant: _policy_to_json(policy)
                for tenant, policy in sorted(self.tenant_policies.items())
            }
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "AttachmentSpec":
        return cls(
            image=doc["image"],
            hook=doc["hook"],
            tenant=doc.get("tenant"),
            name=doc.get("name"),
            count=doc.get("count", 1),
            contract=_contract_from_json(doc.get("contract", {})),
            period_us=doc.get("period_us"),
            tenant_policies={
                tenant: _policy_from_json(policy_doc)
                for tenant, policy_doc
                in doc.get("tenant_policies", {}).items()
            },
        )


def _contract_to_json(contract: ContainerContract) -> dict:
    defaults = ContainerContract()
    doc: dict = {}
    if contract.helpers is not None:
        doc["helpers"] = sorted(contract.helpers)
    if contract.max_instructions != defaults.max_instructions:
        doc["max_instructions"] = contract.max_instructions
    if contract.branch_limit != defaults.branch_limit:
        doc["branch_limit"] = contract.branch_limit
    if contract.memory_regions:
        doc["memory_regions"] = list(contract.memory_regions)
    if contract.stack_size != defaults.stack_size:
        doc["stack_size"] = contract.stack_size
    return doc


def _contract_from_json(doc: dict) -> ContainerContract:
    defaults = ContainerContract()
    helpers = doc.get("helpers")
    return ContainerContract(
        helpers=frozenset(helpers) if helpers is not None else None,
        max_instructions=doc.get("max_instructions",
                                 defaults.max_instructions),
        branch_limit=doc.get("branch_limit", defaults.branch_limit),
        memory_regions=tuple(doc.get("memory_regions", ())),
        stack_size=doc.get("stack_size", defaults.stack_size),
    )


def _policy_to_json(policy: HookPolicy) -> dict:
    defaults = HookPolicy()
    doc: dict = {}
    if policy.allowed_helpers is not None:
        doc["allowed_helpers"] = sorted(policy.allowed_helpers)
    if policy.max_instructions != defaults.max_instructions:
        doc["max_instructions"] = policy.max_instructions
    if policy.branch_limit != defaults.branch_limit:
        doc["branch_limit"] = policy.branch_limit
    if policy.context_writable != defaults.context_writable:
        doc["context_writable"] = policy.context_writable
    if policy.memory_grants:
        doc["memory_grants"] = [
            {"name": grant.name, "start": grant.start,
             "size": grant.size, "perms": int(grant.perms)}
            for grant in policy.memory_grants
        ]
    if policy.max_stack_size != defaults.max_stack_size:
        doc["max_stack_size"] = policy.max_stack_size
    return doc


def _policy_from_json(doc: dict) -> HookPolicy:
    defaults = HookPolicy()
    helpers = doc.get("allowed_helpers")
    return HookPolicy(
        allowed_helpers=frozenset(helpers) if helpers is not None else None,
        max_instructions=doc.get("max_instructions",
                                 defaults.max_instructions),
        branch_limit=doc.get("branch_limit", defaults.branch_limit),
        context_writable=doc.get("context_writable",
                                 defaults.context_writable),
        memory_grants=tuple(
            MemoryGrant(name=grant["name"], start=grant["start"],
                        size=grant["size"],
                        perms=Permission(grant["perms"]))
            for grant in doc.get("memory_grants", ())
        ),
        max_stack_size=doc.get("max_stack_size", defaults.max_stack_size),
    )


# -- the spec -----------------------------------------------------------------


@dataclass(frozen=True, eq=True)
class DesiredInstance:
    """One flattened (hook, name) slot the spec wants occupied."""

    hook: str
    name: str
    tenant: str | None
    image: ImageSpec
    contract: ContainerContract
    period_us: float | None


@dataclass(frozen=True)
class DeploymentSpec:
    """Desired state of one device: tenants, images, attachments."""

    name: str = "deployment"
    tenants: tuple[str, ...] = ()
    hooks: tuple[HookSpec, ...] = ()
    images: Mapping[str, ImageSpec] = field(default_factory=dict)
    attachments: tuple[AttachmentSpec, ...] = ()

    def validate(self) -> None:
        if len(set(self.tenants)) != len(self.tenants):
            raise SpecError("duplicate tenant names in spec")
        from repro.runtimes.base import runtime_names

        known_runtimes = runtime_names()
        for key, image in self.images.items():
            if image.runtime not in known_runtimes:
                raise SpecError(
                    f"image {key!r} targets unknown runtime "
                    f"{image.runtime!r}; "
                    f"registered: {sorted(known_runtimes)}"
                )
        hook_names = [hook.name for hook in self.hooks]
        if len(set(hook_names)) != len(hook_names):
            raise SpecError("duplicate hook declarations in spec")
        seen: set[tuple[str, str]] = set()
        policies: dict[tuple[str, str], HookPolicy] = {}
        for attachment in self.attachments:
            if attachment.count < 1:
                raise SpecError(
                    f"attachment {attachment.name or attachment.image!r} "
                    f"has count {attachment.count} (must be >= 1)"
                )
            if attachment.image not in self.images:
                raise SpecError(
                    "attachment references unknown image "
                    f"{attachment.image!r}"
                )
            if (attachment.tenant is not None
                    and attachment.tenant not in self.tenants):
                raise SpecError(
                    "attachment references unknown tenant "
                    f"{attachment.tenant!r}"
                )
            for tenant_name, policy in attachment.tenant_policies.items():
                if tenant_name not in self.tenants:
                    raise SpecError(
                        "tenant policy references unknown tenant "
                        f"{tenant_name!r}"
                    )
                previous = policies.setdefault(
                    (attachment.hook, tenant_name), policy)
                if previous != policy:
                    raise SpecError(
                        f"conflicting policies for tenant {tenant_name!r} "
                        f"on hook {attachment.hook!r}"
                    )
            for instance_name in attachment.instance_names():
                key = (attachment.hook, instance_name)
                if key in seen:
                    raise SpecError(
                        "two attachments produce container "
                        f"{instance_name!r} on hook {attachment.hook!r}"
                    )
                seen.add(key)

    def hook_tenant_policies(self) -> dict[str, dict[str, HookPolicy]]:
        """Merged desired per-tenant policies, hook -> tenant -> policy.

        ``validate`` guarantees attachments never disagree about one
        (hook, tenant) pair, so merging is conflict-free.
        """
        merged: dict[str, dict[str, HookPolicy]] = {}
        for attachment in self.attachments:
            for tenant_name, policy in attachment.tenant_policies.items():
                merged.setdefault(attachment.hook, {})[tenant_name] = policy
        return merged

    def desired_instances(self) -> list[DesiredInstance]:
        """Flatten attachments into (hook, name) slots, in spec order."""
        instances: list[DesiredInstance] = []
        for attachment in self.attachments:
            image = self.images[attachment.image]
            for instance_name in attachment.instance_names():
                instances.append(DesiredInstance(
                    hook=attachment.hook,
                    name=instance_name,
                    tenant=attachment.tenant,
                    image=image,
                    contract=attachment.contract,
                    period_us=attachment.period_us,
                ))
        return instances

    # -- serialization -------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "tenants": list(self.tenants),
            "hooks": [hook.to_json() for hook in self.hooks],
            "images": {key: image.to_json()
                       for key, image in self.images.items()},
            "attachments": [a.to_json() for a in self.attachments],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "DeploymentSpec":
        spec = cls(
            name=doc.get("name", "deployment"),
            tenants=tuple(doc.get("tenants", ())),
            hooks=tuple(HookSpec.from_json(h) for h in doc.get("hooks", ())),
            images={key: ImageSpec.from_json(key, image_doc)
                    for key, image_doc in doc.get("images", {}).items()},
            attachments=tuple(AttachmentSpec.from_json(a)
                              for a in doc.get("attachments", ())),
        )
        spec.validate()
        return spec

    def to_cbor(self) -> bytes:
        """Canonical CBOR encoding — the OTA spec-manifest payload shape.

        Deterministic (sorted map keys, definite lengths), so the SHA-256
        digest a signed spec manifest carries is stable across encoders.
        """
        from repro.suit import cbor

        return cbor.encode(self.to_json())

    @classmethod
    def from_cbor(cls, raw: bytes) -> "DeploymentSpec":
        from repro.suit import cbor

        doc = cbor.decode(raw)
        if not isinstance(doc, dict):
            raise SpecError("spec payload must be a CBOR map")
        return cls.from_json(doc)


# -- canonical specs ----------------------------------------------------------


def multi_tenant_spec(sensor_period_us: float = 1_000_000.0) -> DeploymentSpec:
    """The §8.3 / Fig 5 system as a declarative spec.

    Two tenants, three containers: tenant A's periodic sensor reader and
    CoAP response formatter, tenant B's scheduler-hook thread counter.
    """
    from repro.workloads import (
        coap_handler_program,
        sensor_program,
        thread_counter_program,
    )

    return DeploymentSpec(
        name="multi-tenant",
        tenants=("tenant-a", "tenant-b"),
        images={
            "sensor": ImageSpec.from_program(sensor_program()),
            "coap-responder": ImageSpec.from_program(coap_handler_program()),
            "thread-counter": ImageSpec.from_program(
                thread_counter_program()),
        },
        attachments=(
            AttachmentSpec(image="sensor", hook=FC_HOOK_TIMER,
                           tenant="tenant-a", name="sensor",
                           period_us=sensor_period_us),
            AttachmentSpec(image="coap-responder", hook=FC_HOOK_COAP,
                           tenant="tenant-a", name="coap-responder"),
            AttachmentSpec(image="thread-counter", hook=FC_HOOK_SCHED,
                           tenant="tenant-b", name="thread-counter"),
        ),
    )


def fanout_spec(
    tenants: int = 2,
    instances_per_tenant: int = 4,
    image: Program | None = None,
) -> DeploymentSpec:
    """K tenants x M instances of one image on one SYNC hook."""
    if image is None:
        from repro.workloads import thread_counter_program

        image = thread_counter_program()
    return DeploymentSpec(
        name="fanout",
        tenants=tuple(f"tenant-{index}" for index in range(tenants)),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"fanout-image": ImageSpec.from_program(image)},
        attachments=tuple(
            AttachmentSpec(
                image="fanout-image", hook=FC_HOOK_FANOUT,
                tenant=f"tenant-{tenant_index}",
                name=f"fc-{tenant_index}-{{i}}",
                count=instances_per_tenant,
            )
            for tenant_index in range(tenants)
        ),
    )


def wasm_checksum_spec() -> DeploymentSpec:
    """One mini-Wasm fletcher32 checksummer on the fan-out hook."""
    from repro.runtimes.sources import WASM_FLETCHER32

    return DeploymentSpec(
        name="wasm-checksum",
        tenants=("tenant-a",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"checksum": ImageSpec.from_wasm(WASM_FLETCHER32,
                                                name="checksum")},
        attachments=(
            AttachmentSpec(image="checksum", hook=FC_HOOK_FANOUT,
                           tenant="tenant-a", name="checksum"),
        ),
    )


def script_checksum_spec() -> DeploymentSpec:
    """One script fletcher32 checksummer on the fan-out hook."""
    from repro.runtimes.sources import SCRIPT_FLETCHER32_PY

    return DeploymentSpec(
        name="script-checksum",
        tenants=("tenant-a",),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={"checksum": ImageSpec.from_script(SCRIPT_FLETCHER32_PY,
                                                  name="checksum")},
        attachments=(
            AttachmentSpec(image="checksum", hook=FC_HOOK_FANOUT,
                           tenant="tenant-a", name="checksum"),
        ),
    )


def runtime_matrix_spec() -> DeploymentSpec:
    """One device hosting all three runtimes side by side.

    Three tenants on one SYNC hook: an rBPF thread counter, a mini-Wasm
    fletcher32 and a script fletcher32 — a single firing exercises every
    registered runtime, which is what the fault-isolation and OTA suites
    lean on.
    """
    from repro.runtimes.sources import SCRIPT_FLETCHER32_PY, WASM_FLETCHER32
    from repro.workloads import thread_counter_program

    return DeploymentSpec(
        name="runtime-matrix",
        tenants=("tenant-rbpf", "tenant-wasm", "tenant-script"),
        hooks=(HookSpec(FC_HOOK_FANOUT, HookMode.SYNC),),
        images={
            "counter-rbpf": ImageSpec.from_program(
                thread_counter_program(), name="counter-rbpf"),
            "checksum-wasm": ImageSpec.from_wasm(
                WASM_FLETCHER32, name="checksum-wasm"),
            "checksum-script": ImageSpec.from_script(
                SCRIPT_FLETCHER32_PY, name="checksum-script"),
        },
        attachments=(
            AttachmentSpec(image="counter-rbpf", hook=FC_HOOK_FANOUT,
                           tenant="tenant-rbpf", name="counter-rbpf"),
            AttachmentSpec(image="checksum-wasm", hook=FC_HOOK_FANOUT,
                           tenant="tenant-wasm", name="checksum-wasm"),
            AttachmentSpec(image="checksum-script", hook=FC_HOOK_FANOUT,
                           tenant="tenant-script", name="checksum-script"),
        ),
    )


#: Name -> zero-argument spec factory, for the CLI and tests.
BUILTIN_SPECS: dict[str, Callable[[], DeploymentSpec]] = {
    "multi-tenant": multi_tenant_spec,
    "fanout": fanout_spec,
    "wasm-checksum": wasm_checksum_spec,
    "script-checksum": script_checksum_spec,
    "runtime-matrix": runtime_matrix_spec,
}


def builtin_spec(name: str) -> DeploymentSpec:
    try:
        return BUILTIN_SPECS[name]()
    except KeyError:
        raise SpecError(
            f"unknown builtin spec {name!r}; "
            f"choose from {sorted(BUILTIN_SPECS)}"
        ) from None
