"""Pre-wired end-to-end scenarios from the paper, reused by examples,
integration tests and benchmarks.

:func:`build_multi_tenant_device` constructs the §8.3 / Fig 5 system: one
device hosting three containers from two tenants —

* **Tenant A**: a timer-triggered sensor container (read temperature via
  SAUL, keep a moving average in the tenant store) and a CoAP-triggered
  response formatter exposing the average at ``/sensor/temp``;
* **Tenant B**: the Listing 2 thread-counter attached to the scheduler
  hook, counting every context switch in the global store.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core import (
    FC_HOOK_COAP,
    FC_HOOK_FANOUT,
    FC_HOOK_SCHED,
    FemtoContainer,
    Hook,
    HookMode,
    HostingEngine,
    Tenant,
)
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.rtos import Board, Kernel, nrf52840, synthetic_temperature
from repro.vm import Program
from repro.workloads import (
    coap_handler_program,
    sensor_program,
    thread_counter_program,
)

DEVICE_ADDR = "2001:db8::dev"
HOST_ADDR = "2001:db8::host"
COAP_PORT = 5683


@dataclass
class MultiTenantDevice:
    """The assembled Fig 5 system plus a host-side client to poke it."""

    kernel: Kernel
    engine: HostingEngine
    link: Link
    server: CoapServer
    client: CoapClient
    tenant_a: Tenant
    tenant_b: Tenant
    sensor: FemtoContainer
    coap_responder: FemtoContainer
    thread_counter: FemtoContainer
    cancel_sensor_timer: object

    def container_count(self) -> int:
        return len(self.engine.containers())


def build_multi_tenant_device(
    board: Board | None = None,
    sensor_period_us: float = 1_000_000.0,
    link_loss: float = 0.0,
    seed: int = 1234,
    implementation: str = "femto-containers",
) -> MultiTenantDevice:
    """Build the complete two-tenant, three-container device of §8.3."""
    kernel = Kernel(board or nrf52840())
    engine = HostingEngine(kernel, implementation=implementation)
    engine.saul.register(synthetic_temperature(kernel, seed=seed))

    # Network plumbing: device plus a host-side endpoint.
    link = Link(kernel, loss=link_loss, seed=seed)
    device_if = link.attach(Interface(DEVICE_ADDR))
    host_if = link.attach(Interface(HOST_ADDR))
    device_udp = UdpStack(device_if)
    host_udp = UdpStack(host_if)
    server = CoapServer(kernel, device_udp.socket(COAP_PORT))
    client = CoapClient(kernel, host_udp.socket(49000))

    # Tenant A: sensor pipeline (Fig 5, Femto-Containers 1 and 2, Store A).
    tenant_a = engine.create_tenant("tenant-a")
    sensor = engine.load(sensor_program(), tenant=tenant_a, name="sensor")
    cancel = engine.attach_periodic(sensor, sensor_period_us)
    responder = engine.load(coap_handler_program(), tenant=tenant_a,
                            name="coap-responder")
    engine.attach(responder, FC_HOOK_COAP)
    server.register_container("/sensor/temp", engine, responder)

    # Tenant B: kernel-debug thread counter (Fig 5, Femto-Container 3).
    tenant_b = engine.create_tenant("tenant-b")
    counter = engine.load(thread_counter_program(), tenant=tenant_b,
                          name="thread-counter")
    engine.attach(counter, FC_HOOK_SCHED)

    return MultiTenantDevice(
        kernel=kernel,
        engine=engine,
        link=link,
        server=server,
        client=client,
        tenant_a=tenant_a,
        tenant_b=tenant_b,
        sensor=sensor,
        coap_responder=responder,
        thread_counter=counter,
        cancel_sensor_timer=cancel,
    )


@dataclass
class FanoutDevice:
    """The multi-instance fan-out system: one image, many instances.

    This is the "N instances of one image" scenario class the shared
    image cache exists for: K tenants each attach M instances of the
    *same* application image to one synchronous launchpad, and every
    fire runs all K x M containers back to back.
    """

    kernel: Kernel
    engine: HostingEngine
    hook_name: str
    image: Program
    tenants: list[Tenant] = field(default_factory=list)
    containers: list[FemtoContainer] = field(default_factory=list)

    def fire(self, fires: int = 1, next_pid: int = 1) -> int:
        """Fire the hook ``fires`` times; returns the number of runs."""
        engine = self.engine
        hook_name = self.hook_name
        context = struct.pack("<QQ", 0, next_pid)
        total_runs = 0
        for _ in range(fires):
            total_runs += len(engine.fire_hook(hook_name, context).runs)
        return total_runs

    def shared_templates(self) -> int:
        """Distinct compiled templates across all instances (JIT only)."""
        return len({
            id(container.vm.template)
            for container in self.containers
            if hasattr(container.vm, "template")
        })


def build_fanout_device(
    tenants: int = 2,
    instances_per_tenant: int = 4,
    implementation: str = "jit",
    board: Board | None = None,
    program: Program | None = None,
) -> FanoutDevice:
    """Build K tenants x M instances of one image on one SYNC hook.

    Every instance is loaded from a *fresh* :class:`Program` object
    decoded from the image bytes — exactly what a SUIT deployment does —
    so the scenario exercises the content-hash path of the image cache,
    not Python object identity.
    """
    kernel = Kernel(board or nrf52840())
    engine = HostingEngine(kernel, implementation=implementation)
    engine.register_hook(Hook(FC_HOOK_FANOUT, mode=HookMode.SYNC))
    image = program if program is not None else thread_counter_program()
    raw = image.to_bytes()
    device = FanoutDevice(
        kernel=kernel, engine=engine, hook_name=FC_HOOK_FANOUT, image=image
    )
    for tenant_index in range(tenants):
        tenant = engine.create_tenant(f"tenant-{tenant_index}")
        device.tenants.append(tenant)
        for instance_index in range(instances_per_tenant):
            instance_image = Program.from_bytes(
                raw, rodata=image.rodata, data=image.data,
                name=f"{image.name}-{tenant_index}-{instance_index}",
            )
            container = engine.load(
                instance_image, tenant=tenant,
                name=f"fc-{tenant_index}-{instance_index}",
            )
            engine.attach(container, FC_HOOK_FANOUT)
            device.containers.append(container)
    return device
