"""Pre-wired end-to-end scenarios from the paper, reused by examples,
integration tests and benchmarks.

Since PR 3 both scenarios are thin wrappers over the declarative
deployment API (:mod:`repro.deploy`): each builds a
:class:`~repro.deploy.DeploymentSpec` and converges the device through
``plan``/``apply``, then wires the non-deployable plumbing (network
endpoints, SAUL devices) around the result.  The produced systems are
cycle-identical to the historical hand-wired attach sequences.

:func:`build_multi_tenant_device` constructs the §8.3 / Fig 5 system: one
device hosting three containers from two tenants —

* **Tenant A**: a timer-triggered sensor container (read temperature via
  SAUL, keep a moving average in the tenant store) and a CoAP-triggered
  response formatter exposing the average at ``/sensor/temp``;
* **Tenant B**: the Listing 2 thread-counter attached to the scheduler
  hook, counting every context switch in the global store.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core import (
    FC_HOOK_COAP,
    FC_HOOK_FANOUT,
    FC_HOOK_SCHED,
    FC_HOOK_TIMER,
    FemtoContainer,
    HostingEngine,
    Tenant,
)
from repro.deploy import DeploymentSpec, apply_spec, fanout_spec, \
    multi_tenant_spec
from repro.net import CoapClient, CoapServer, Interface, Link, UdpStack
from repro.rtos import Board, Kernel, nrf52840, synthetic_temperature
from repro.suit import SpecUpdateWorker, UpdateResult, ed25519, sign_spec
from repro.vm import Program
from repro.workloads import thread_counter_program

DEVICE_ADDR = "2001:db8::dev"
HOST_ADDR = "2001:db8::host"
COAP_PORT = 5683


@dataclass
class MultiTenantDevice:
    """The assembled Fig 5 system plus a host-side client to poke it."""

    kernel: Kernel
    engine: HostingEngine
    link: Link
    server: CoapServer
    client: CoapClient
    tenant_a: Tenant
    tenant_b: Tenant
    sensor: FemtoContainer
    coap_responder: FemtoContainer
    thread_counter: FemtoContainer
    cancel_sensor_timer: object

    def container_count(self) -> int:
        return len(self.engine.containers())


def build_multi_tenant_device(
    board: Board | None = None,
    sensor_period_us: float = 1_000_000.0,
    link_loss: float = 0.0,
    seed: int = 1234,
    implementation: str = "femto-containers",
) -> MultiTenantDevice:
    """Build the complete two-tenant, three-container device of §8.3."""
    kernel = Kernel(board or nrf52840())
    engine = HostingEngine(kernel, implementation=implementation)
    engine.saul.register(synthetic_temperature(kernel, seed=seed))

    # Network plumbing: device plus a host-side endpoint.
    link = Link(kernel, loss=link_loss, seed=seed)
    device_if = link.attach(Interface(DEVICE_ADDR))
    host_if = link.attach(Interface(HOST_ADDR))
    device_udp = UdpStack(device_if)
    host_udp = UdpStack(host_if)
    server = CoapServer(kernel, device_udp.socket(COAP_PORT))
    client = CoapClient(kernel, host_udp.socket(49000))

    # The whole Fig 5 deployment — two tenants, three containers, the
    # sensor's periodic firing — is one declarative spec converged in a
    # single transactional apply.
    result = apply_spec(engine, multi_tenant_spec(sensor_period_us))
    sensor = result.containers[(FC_HOOK_TIMER, "sensor")]
    responder = result.containers[(FC_HOOK_COAP, "coap-responder")]
    counter = result.containers[(FC_HOOK_SCHED, "thread-counter")]
    server.register_container("/sensor/temp", engine, responder)

    return MultiTenantDevice(
        kernel=kernel,
        engine=engine,
        link=link,
        server=server,
        client=client,
        tenant_a=engine.tenants["tenant-a"],
        tenant_b=engine.tenants["tenant-b"],
        sensor=sensor,
        coap_responder=responder,
        thread_counter=counter,
        cancel_sensor_timer=result.timers[(FC_HOOK_TIMER, "sensor")],
    )


@dataclass
class FanoutDevice:
    """The multi-instance fan-out system: one image, many instances.

    This is the "N instances of one image" scenario class the shared
    image cache exists for: K tenants each attach M instances of the
    *same* application image to one synchronous launchpad, and every
    fire runs all K x M containers back to back.
    """

    kernel: Kernel
    engine: HostingEngine
    hook_name: str
    image: Program
    tenants: list[Tenant] = field(default_factory=list)
    containers: list[FemtoContainer] = field(default_factory=list)

    def fire(self, fires: int = 1, next_pid: int = 1) -> int:
        """Fire the hook ``fires`` times; returns the number of runs."""
        engine = self.engine
        hook_name = self.hook_name
        context = struct.pack("<QQ", 0, next_pid)
        total_runs = 0
        for _ in range(fires):
            total_runs += len(engine.fire_hook(hook_name, context).runs)
        return total_runs

    def shared_templates(self) -> int:
        """Distinct compiled templates across all instances (JIT only)."""
        return len({
            id(container.vm.template)
            for container in self.containers
            if hasattr(container.vm, "template")
        })


@dataclass
class SpecOtaRig:
    """One device receiving whole-device specs over the air.

    A maintainer-side CoAP repository and a device-side
    :class:`~repro.suit.SpecUpdateWorker` wired over one simulated radio
    link: :meth:`publish` signs a spec, serves its CBOR payload, triggers
    the worker, and runs the world until the device reconciled — the
    §5 update story lifted from one image to whole-device desired state.
    """

    kernel: Kernel
    engine: HostingEngine
    link: Link
    repo: CoapServer
    client: CoapClient
    worker: SpecUpdateWorker
    maintainer_seed: bytes
    spec_uri: str = "/specs/device"
    published: int = 0

    def publish(self, spec: DeploymentSpec, sequence_number: int | None = None,
                run_for_us: float = 400_000_000.0) -> UpdateResult:
        """Sign ``spec``, serve it, trigger the device, await the result."""
        self.published += 1
        if sequence_number is None:
            sequence_number = self.published
        envelope, payload = sign_spec(
            spec, sequence_number, self.spec_uri, self.maintainer_seed,
            slot="spec:device",
        )
        self.repo.register_blob(self.spec_uri, lambda: payload)
        results_before = len(self.worker.results)
        self.worker.trigger(envelope)
        self.kernel.run(until_us=self.kernel.now_us + run_for_us)
        if len(self.worker.results) == results_before:
            raise RuntimeError("spec update did not complete in time")
        return self.worker.results[-1]


def build_spec_ota_rig(
    board: Board | None = None,
    link_loss: float = 0.0,
    seed: int = 1234,
    implementation: str = "femto-containers",
    maintainer_seed: bytes = bytes(range(32)),
) -> SpecOtaRig:
    """Device + maintainer repo wired for over-the-air spec updates."""
    kernel = Kernel(board or nrf52840())
    engine = HostingEngine(kernel, implementation=implementation)
    link = Link(kernel, loss=link_loss, seed=seed)
    device_if = link.attach(Interface(DEVICE_ADDR))
    host_if = link.attach(Interface(HOST_ADDR))
    repo = CoapServer(kernel, UdpStack(host_if).socket(COAP_PORT),
                      threaded=False)
    client = CoapClient(kernel, UdpStack(device_if).socket(49001))
    worker = SpecUpdateWorker(
        engine, client, trust_anchor=ed25519.public_key(maintainer_seed),
        repo_addr=HOST_ADDR, repo_port=COAP_PORT,
    )
    return SpecOtaRig(
        kernel=kernel,
        engine=engine,
        link=link,
        repo=repo,
        client=client,
        worker=worker,
        maintainer_seed=maintainer_seed,
    )


def build_fleet_publisher(
    devices: int = 4,
    boards: list[Board] | None = None,
    implementation: str = "jit",
    loss: float = 0.0,
    seed: int = 1234,
    maintainer_seed: bytes = bytes(range(32)),
    max_storage_slots: int | None = None,
    storage_gc_horizon: int | None = None,
    supervisor=True,
):
    """Fleet + maintainer wired for over-the-air fleet publishes.

    The N-device analogue of :func:`build_spec_ota_rig`: every device
    of a fresh :class:`~repro.deploy.Fleet` gets a radio rig on one
    shared link and a :class:`~repro.suit.SpecUpdateWorker`, and the
    returned :class:`~repro.deploy.FleetPublisher` signs one manifest
    per publish and fans it out to all of them (``publisher.fleet`` is
    the fleet).
    """
    from repro.deploy import Fleet, FleetPublisher

    fleet = Fleet(boards if boards is not None else devices,
                  implementation=implementation, supervisor=supervisor)
    return FleetPublisher(
        fleet,
        maintainer_seed=maintainer_seed,
        loss=loss,
        seed=seed,
        max_storage_slots=max_storage_slots,
        storage_gc_horizon=storage_gc_horizon,
    )


def build_control_plane(
    devices: int = 4,
    boards: list[Board] | None = None,
    implementation: str = "jit",
    loss: float = 0.0,
    seed: int = 1234,
    supervisor=True,
    **publisher_kwargs,
):
    """Maintainer control plane over a freshly wired fleet.

    The service-object analogue of :func:`build_fleet_publisher`:
    the returned :class:`~repro.deploy.ControlPlane` owns the fleet
    *and* its publisher behind one typed API — register/evict devices
    at runtime, submit signed releases, publish/canary with the
    fleet-scale profile by default, and stream per-device status rows.
    """
    from repro.deploy import ControlPlane

    return ControlPlane(
        boards if boards is not None else devices,
        implementation=implementation,
        loss=loss,
        seed=seed,
        supervisor=supervisor,
        **publisher_kwargs,
    )


def build_fanout_device(
    tenants: int = 2,
    instances_per_tenant: int = 4,
    implementation: str = "jit",
    board: Board | None = None,
    program: Program | None = None,
) -> FanoutDevice:
    """Build K tenants x M instances of one image on one SYNC hook.

    The whole system is one :func:`~repro.deploy.fanout_spec` applied
    through the deployment reconciler.  Every instance is decoded from
    the spec image's *bytes* into a fresh :class:`Program` — exactly
    what a SUIT deployment does — so the scenario exercises the
    content-hash path of the image cache, not Python object identity.
    """
    kernel = Kernel(board or nrf52840())
    engine = HostingEngine(kernel, implementation=implementation)
    image = program if program is not None else thread_counter_program()
    result = apply_spec(engine, fanout_spec(tenants, instances_per_tenant,
                                            image))
    return FanoutDevice(
        kernel=kernel,
        engine=engine,
        hook_name=FC_HOOK_FANOUT,
        image=image,
        tenants=[engine.tenants[f"tenant-{index}"]
                 for index in range(tenants)],
        containers=result.attached,
    )
