"""gcoap-style CoAP server and client on the simulated stack.

The server mirrors RIOT's gcoap: resources registered by path, handled in a
dedicated server thread (so CoAP traffic causes real context switches — the
thread-counter example observes them, as on the real OS).  Three resource
flavours exist:

* plain Python handlers (native firmware logic);
* blob resources served block-wise (the SUIT payload store);
* **container resources** — the §8.3 bridge: a GET fires a Femto-Container
  with a :class:`~repro.core.syscalls.CoapResponseContext`, and the PDU the
  container built becomes the response.

The client implements CON retransmission with exponential backoff and
block-wise GET reassembly, both driven by kernel timers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.net import coap
from repro.net.block import BlockOption, slice_block
from repro.net.coap import CoapMessage
from repro.net.udp import Datagram, UdpSocket
from repro.rtos.thread import Wait

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.container import FemtoContainer
    from repro.core.engine import HostingEngine
    from repro.rtos.kernel import Kernel

#: A handler takes the request and returns the response message, or
#: ``None`` to suppress the response (group-addressed NON requests).
Handler = Callable[[CoapMessage, Datagram], "CoapMessage | None"]


@dataclass
class Resource:
    path: str
    handler: Handler
    requests: int = 0


class CoapServer:
    """Device-side CoAP endpoint."""

    def __init__(self, kernel: "Kernel", socket: UdpSocket,
                 threaded: bool = True, name: str = "gcoap"):
        self.kernel = kernel
        self.socket = socket
        self.resources: dict[str, Resource] = {}
        self._dedup: dict[tuple[str, int, int], bytes] = {}
        socket.on_datagram = self._on_datagram
        self._queue = kernel.new_event_queue(f"{name}-rx") if threaded else None
        if threaded:
            self.thread = kernel.create_thread(name, self._server_loop,
                                               priority=6, stack_size=2048)

    # -- registration ----------------------------------------------------------

    def register(self, path: str, handler: Handler) -> Resource:
        resource = Resource(path=path.rstrip("/") or "/", handler=handler)
        self.resources[resource.path] = resource
        return resource

    def register_blob(self, path: str, get_blob: Callable[[], bytes],
                      content_format: int = 42) -> Resource:
        """Serve a byte blob with Block2 slicing (SUIT payload store)."""

        def handler(request: CoapMessage, _dg: Datagram) -> CoapMessage:
            blob = get_blob()
            option = request.option(coap.OPT_BLOCK2)
            block = BlockOption.decode(option) if option else BlockOption(0, False, 5)
            chunk, more = slice_block(blob, block)
            reply = request.reply(coap.CONTENT, payload=chunk)
            reply.add_option(
                coap.OPT_BLOCK2,
                BlockOption(block.num, more, block.szx).encode(),
            )
            reply.add_option(coap.OPT_CONTENT_FORMAT, bytes([content_format]))
            return reply

        return self.register(path, handler)

    def register_container(self, path: str, engine: "HostingEngine",
                           container: "FemtoContainer") -> Resource:
        """§8.3: a container-backed resource.

        The handler fires the container with a fresh PDU context; a faulted
        container yields 5.00 without disturbing the server — fault
        isolation extends to the network surface.
        """
        from repro.core.syscalls import CoapResponseContext

        def handler(request: CoapMessage, _dg: Datagram) -> CoapMessage:
            pdu = CoapResponseContext(token_length=len(request.token))
            run = engine.execute(container, context=struct.pack("<Q", 1),
                                 pdu=pdu)
            if not run.ok or run.value is None:
                return request.reply(coap.INTERNAL_SERVER_ERROR)
            reply = request.reply(pdu.code or coap.CONTENT,
                                  payload=pdu.payload_bytes())
            if pdu.content_format is not None:
                reply.add_option(
                    coap.OPT_CONTENT_FORMAT,
                    bytes([pdu.content_format]) if pdu.content_format else b"",
                )
            return reply

        return self.register(path, handler)

    # -- datagram path -------------------------------------------------------------

    def _on_datagram(self, datagram: Datagram) -> None:
        if self._queue is not None:
            self._queue.post_new("coap-rx", datagram)
        else:
            self._handle(datagram)

    def _server_loop(self, thread):
        while True:
            event = yield Wait(self._queue)
            self._handle(event.payload)

    def _handle(self, datagram: Datagram) -> None:
        try:
            request = CoapMessage.decode(datagram.payload)
        except coap.CoapError:
            return  # malformed input is dropped, never crashes the server
        if request.mtype not in (coap.CON, coap.NON):
            return
        key = (datagram.src_addr, datagram.src_port, request.message_id)
        cached = self._dedup.get(key)
        if cached is not None:  # retransmitted CON: replay the response
            self.socket.send_to(datagram.src_addr, datagram.src_port, cached)
            return
        resource = self.resources.get(request.uri_path)
        if resource is None:
            reply = request.reply(coap.NOT_FOUND)
        else:
            resource.requests += 1
            reply = resource.handler(request, datagram)
        if reply is None:
            # RFC 7390-style group semantics: a handler may suppress its
            # response entirely (multicast NON requests must not trigger
            # N simultaneous replies).  Only meaningful for NON traffic —
            # a suppressed CON would just be retransmitted by the peer.
            return
        raw = reply.encode()
        if request.mtype == coap.CON:
            self._dedup[key] = raw
            if len(self._dedup) > 64:  # bounded exchange cache
                self._dedup.pop(next(iter(self._dedup)))
        self.socket.send_to(datagram.src_addr, datagram.src_port, raw)


@dataclass
class _Pending:
    message: CoapMessage
    dst: tuple[str, int]
    on_response: Callable[[CoapMessage], None]
    on_timeout: Callable[[], None] | None
    retransmits: int = 0
    timer: object = None


class CoapClient:
    """CON client with retransmission and block-wise GET."""

    def __init__(self, kernel: "Kernel", socket: UdpSocket):
        self.kernel = kernel
        self.socket = socket
        # RFC 7252 §4.4: a fresh endpoint must not restart message IDs
        # from a fixed value, or a peer's exchange cache will replay a
        # previous incarnation's responses to it.  Seeding from the
        # virtual clock keeps it deterministic while guaranteeing a
        # rebooted device (same address, monotonic clock) never reuses
        # the MIDs its pre-crash self already burned.
        start = (int(kernel.now_us) & 0x7FFF) + 1
        self._next_mid = start
        self._next_token = start
        self._pending: dict[bytes, _Pending] = {}
        socket.on_datagram = self._on_datagram
        self.timeouts = 0

    def request(
        self,
        dst_addr: str,
        dst_port: int,
        message: CoapMessage,
        on_response: Callable[[CoapMessage], None],
        on_timeout: Callable[[], None] | None = None,
    ) -> None:
        message.message_id = self._next_mid
        self._next_mid = (self._next_mid + 1) & 0xFFFF
        message.token = self._next_token.to_bytes(2, "big")
        self._next_token = (self._next_token + 1) & 0xFFFF
        pending = _Pending(message, (dst_addr, dst_port), on_response,
                           on_timeout)
        self._pending[message.token] = pending
        self._transmit(pending)

    def _transmit(self, pending: _Pending) -> None:
        self.socket.send_to(*pending.dst, pending.message.encode())
        if pending.message.mtype != coap.CON:
            return
        backoff = coap.ACK_TIMEOUT_US * (2 ** pending.retransmits)

        def on_expire() -> None:
            if pending.message.token not in self._pending:
                return
            if pending.retransmits >= coap.MAX_RETRANSMIT:
                del self._pending[pending.message.token]
                self.timeouts += 1
                if pending.on_timeout is not None:
                    pending.on_timeout()
                return
            pending.retransmits += 1
            self._transmit(pending)

        pending.timer = self.kernel.timers.set(on_expire, backoff)

    def _on_datagram(self, datagram: Datagram) -> None:
        try:
            message = CoapMessage.decode(datagram.payload)
        except coap.CoapError:
            return
        pending = self._pending.pop(message.token, None)
        if pending is None:
            return  # stale or duplicate response
        if pending.timer is not None:
            self.kernel.timers.cancel(pending.timer)
        pending.on_response(message)

    # -- block-wise GET --------------------------------------------------------

    def get_blockwise(
        self,
        dst_addr: str,
        dst_port: int,
        path: str,
        on_complete: Callable[[bytes], None],
        on_error: Callable[[str], None] | None = None,
        szx: int = 5,
        max_size: int | None = None,
        on_block: Callable[[bytes], None] | None = None,
        resume_from: bytes = b"",
    ) -> None:
        """Fetch a blob block by block, then call ``on_complete``.

        ``max_size`` bounds the reassembly buffer: a transfer that grows
        beyond it is aborted with ``on_error`` instead of completing.  A
        SUIT worker passes the manifest's signed payload size here, so a
        lying repository cannot make a constrained device buffer (or keep
        radio-receiving) more bytes than the manifest promised.

        ``on_block`` is called with the accumulated bytes after every block
        lands, letting the caller checkpoint transfer progress (e.g. to
        NVM).  ``resume_from`` pre-seeds the reassembly buffer with bytes
        from an earlier interrupted transfer; only whole already-received
        blocks are reused, so the fetch restarts at the first missing
        block rather than byte zero.
        """
        block_bytes = 1 << (szx + 4)
        whole_blocks = len(resume_from) // block_bytes
        chunks: list[bytes] = [
            resume_from[i * block_bytes:(i + 1) * block_bytes]
            for i in range(whole_blocks)
        ]
        received = whole_blocks * block_bytes

        def fetch(num: int) -> None:
            request = CoapMessage(mtype=coap.CON, code=coap.GET)
            request.add_uri_path(path)
            request.add_option(
                coap.OPT_BLOCK2, BlockOption(num, False, szx).encode()
            )

            def on_response(reply: CoapMessage) -> None:
                nonlocal received
                if reply.code != coap.CONTENT:
                    if on_error is not None:
                        on_error(f"unexpected code {coap.code_string(reply.code)}")
                    return
                received += len(reply.payload)
                if max_size is not None and received > max_size:
                    if on_error is not None:
                        on_error(
                            f"transfer of {path} exceeds the promised "
                            f"{max_size} bytes — aborted"
                        )
                    return
                chunks.append(reply.payload)
                if on_block is not None:
                    on_block(b"".join(chunks))
                option = reply.option(coap.OPT_BLOCK2)
                block = BlockOption.decode(option) if option else None
                if block is not None and block.more:
                    fetch(num + 1)
                else:
                    on_complete(b"".join(chunks))

            def on_timeout() -> None:
                if on_error is not None:
                    on_error(f"timeout fetching block {num} of {path}")

            self.request(dst_addr, dst_port, request, on_response, on_timeout)

        fetch(whole_blocks)
