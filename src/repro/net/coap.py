"""CoAP message codec and reliability (RFC 7252 subset).

Implements what the paper's update and sensor paths need: the 4-byte
header, tokens, option delta encoding (with the 13/269 extended forms),
payload marker, CON/ACK exchange with binary exponential backoff, and the
Block2 option (RFC 7959) used for SUIT payload fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

COAP_VERSION = 1
COAP_PORT = 5683

# Message types.
CON, NON, ACK, RST = 0, 1, 2, 3

# Method and response codes (class.detail packed as in RFC 7252).


def code(class_: int, detail: int) -> int:
    return (class_ << 5) | detail


GET = code(0, 1)
POST = code(0, 2)
PUT = code(0, 3)
DELETE = code(0, 4)
CREATED = code(2, 1)
CHANGED = code(2, 4)
CONTENT = code(2, 5)
BAD_REQUEST = code(4, 0)
UNAUTHORIZED = code(4, 1)
FORBIDDEN = code(4, 3)
NOT_FOUND = code(4, 4)
INTERNAL_SERVER_ERROR = code(5, 0)

# Option numbers.
OPT_URI_PATH = 11
OPT_CONTENT_FORMAT = 12
OPT_BLOCK2 = 23
OPT_BLOCK1 = 27

#: Retransmission parameters (RFC 7252 §4.8, scaled for simulation).
ACK_TIMEOUT_US = 2_000_000.0
MAX_RETRANSMIT = 4


class CoapError(Exception):
    """Malformed CoAP message."""


def code_string(value: int) -> str:
    """Render a code as the usual dotted form, e.g. 0x45 -> '2.05'."""
    return f"{value >> 5}.{value & 0x1F:02d}"


@dataclass
class CoapMessage:
    """One CoAP PDU."""

    mtype: int = CON
    code: int = GET
    message_id: int = 0
    token: bytes = b""
    options: list[tuple[int, bytes]] = field(default_factory=list)
    payload: bytes = b""

    # -- option helpers -----------------------------------------------------

    def add_option(self, number: int, value: bytes) -> "CoapMessage":
        self.options.append((number, value))
        return self

    def add_uri_path(self, path: str) -> "CoapMessage":
        for segment in path.strip("/").split("/"):
            if segment:
                self.add_option(OPT_URI_PATH, segment.encode())
        return self

    def option(self, number: int) -> bytes | None:
        for num, value in self.options:
            if num == number:
                return value
        return None

    @property
    def uri_path(self) -> str:
        return "/" + "/".join(
            value.decode() for num, value in self.options if num == OPT_URI_PATH
        )

    # -- codec ------------------------------------------------------------------

    def encode(self) -> bytes:
        if not 0 <= len(self.token) <= 8:
            raise CoapError(f"token length {len(self.token)} out of range")
        out = bytearray()
        out.append((COAP_VERSION << 6) | (self.mtype << 4) | len(self.token))
        out.append(self.code & 0xFF)
        out += self.message_id.to_bytes(2, "big")
        out += self.token
        last_number = 0
        for number, value in sorted(self.options, key=lambda item: item[0]):
            delta = number - last_number
            last_number = number
            out += _encode_option_header(delta, len(value))
            out += value
        if self.payload:
            out.append(0xFF)
            out += self.payload
        return bytes(out)

    @classmethod
    def decode(cls, raw: bytes) -> "CoapMessage":
        if len(raw) < 4:
            raise CoapError("message shorter than the base header")
        version = raw[0] >> 6
        if version != COAP_VERSION:
            raise CoapError(f"unsupported CoAP version {version}")
        mtype = (raw[0] >> 4) & 0x3
        tkl = raw[0] & 0xF
        if tkl > 8:
            raise CoapError(f"token length {tkl} is reserved")
        msg = cls(
            mtype=mtype,
            code=raw[1],
            message_id=int.from_bytes(raw[2:4], "big"),
        )
        pos = 4
        if pos + tkl > len(raw):
            raise CoapError("truncated token")
        msg.token = raw[pos : pos + tkl]
        pos += tkl
        number = 0
        while pos < len(raw):
            if raw[pos] == 0xFF:
                payload = raw[pos + 1 :]
                if not payload:
                    raise CoapError("payload marker with empty payload")
                msg.payload = payload
                break
            delta, length, pos = _decode_option_header(raw, pos)
            number += delta
            if pos + length > len(raw):
                raise CoapError("truncated option value")
            msg.add_option(number, raw[pos : pos + length])
            pos += length
        return msg

    def reply(self, response_code: int, payload: bytes = b"",
              mtype: int | None = None) -> "CoapMessage":
        """Build a piggybacked (ACK) response to this request."""
        return CoapMessage(
            mtype=ACK if mtype is None else mtype,
            code=response_code,
            message_id=self.message_id,
            token=self.token,
            payload=payload,
        )


def _encode_option_header(delta: int, length: int) -> bytes:
    def split(value: int) -> tuple[int, bytes]:
        if value < 13:
            return value, b""
        if value < 269:
            return 13, bytes([value - 13])
        return 14, (value - 269).to_bytes(2, "big")

    delta_nibble, delta_ext = split(delta)
    length_nibble, length_ext = split(length)
    return bytes([(delta_nibble << 4) | length_nibble]) + delta_ext + length_ext


def _decode_option_header(raw: bytes, pos: int) -> tuple[int, int, int]:
    byte = raw[pos]
    pos += 1
    delta, length = byte >> 4, byte & 0xF
    if delta == 15 or length == 15:
        raise CoapError("reserved option nibble 15")

    def extend(nibble: int) -> int:
        nonlocal pos
        if nibble == 13:
            if pos + 1 > len(raw):
                raise CoapError("truncated extended option header")
            value = raw[pos] + 13
            pos += 1
            return value
        if nibble == 14:
            if pos + 2 > len(raw):
                raise CoapError("truncated extended option header")
            value = int.from_bytes(raw[pos : pos + 2], "big") + 269
            pos += 2
            return value
        return nibble

    delta = extend(delta)
    length = extend(length)
    return delta, length, pos
